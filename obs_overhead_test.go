package fdx_test

import (
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"fdx"
)

// TestObsOverhead verifies the telemetry-is-cheap guarantee
// quantitatively: a Discover with a live tracer and metrics registry must
// run within 2% of one with nil sinks. Since the nil-sink run already
// pays the instrumentation's nil checks, this bounds the whole telemetry
// layer — and a fortiori the nil-sink overhead — at the 2% budget. The
// measurement is wall-clock and inherently noisy, so the test is opt-in:
// it runs only under FDX_OBS_OVERHEAD=1 (`make bench-obs` sets it) and
// takes the best of three attempts.
func TestObsOverhead(t *testing.T) {
	if os.Getenv("FDX_OBS_OVERHEAD") != "1" {
		t.Skip("set FDX_OBS_OVERHEAD=1 to run the overhead gate (make bench-obs)")
	}
	rel := noisyAddressRelation(rand.New(rand.NewSource(9)), 2000, 0.02)
	bare := fdx.Options{Seed: 7}
	traced := fdx.Options{Seed: 7, Tracer: fdx.NewTracer(), Metrics: fdx.NewMetrics()}

	// Warm caches and page in both paths.
	for i := 0; i < 3; i++ {
		if _, err := fdx.Discover(rel, bare); err != nil {
			t.Fatal(err)
		}
		if _, err := fdx.Discover(rel, traced); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 9
	measure := func(opts fdx.Options) time.Duration {
		times := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			if _, err := fdx.Discover(rel, opts); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(t0))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}

	const attempts = 3
	var best float64
	for a := 0; a < attempts; a++ {
		// Interleave the medians so machine-wide noise hits both sides.
		bareMed := measure(bare)
		tracedMed := measure(traced)
		ratio := float64(tracedMed) / float64(bareMed)
		t.Logf("attempt %d: bare %v, traced %v, ratio %.4f", a+1, bareMed, tracedMed, ratio)
		if a == 0 || ratio < best {
			best = ratio
		}
		if best <= 1.02 {
			return
		}
	}
	t.Errorf("telemetry overhead ratio %.4f exceeds 1.02 across %d attempts", best, attempts)
}
