// Package fdx discovers functional dependencies in noisy relational data.
//
// It implements FDX (Zhang, Guo, Rekatsinas, SIGMOD 2020), which treats FD
// discovery as structure learning: the input relation is transformed into
// binary tuple-pair equality samples, a sparse inverse covariance matrix of
// those samples is estimated with the Graphical Lasso, and its UDUᵀ
// factorization yields an autoregression matrix whose non-zero entries are
// the discovered dependencies.
//
// Basic usage:
//
//	rel, err := fdx.LoadCSV("hospital.csv")
//	...
//	res, err := fdx.Discover(rel, fdx.Options{})
//	for _, fd := range res.FDs {
//		fmt.Println(fd)
//	}
//
// The exported API is intentionally small; the substrates (linear algebra,
// Graphical Lasso, orderings, baselines' lattice machinery) live under
// internal/.
package fdx

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/obs"
)

// Relation is a typed table with named attributes and explicit missing
// values. Construct one with LoadCSV, ReadCSV, or NewRelation+AppendRow.
type Relation = dataset.Relation

// LoadCSV reads a relation from a CSV file with a header row; column types
// (categorical, numeric, text) are inferred and empty cells become NULLs.
func LoadCSV(path string) (*Relation, error) { return dataset.LoadCSV(path) }

// ReadCSV parses a relation from CSV data.
func ReadCSV(name string, r io.Reader) (*Relation, error) { return dataset.ReadCSV(name, r) }

// LoadJSONL reads a relation from a JSON Lines file (one flat object per
// line; missing keys and nulls become NULL cells).
func LoadJSONL(path string) (*Relation, error) { return dataset.LoadJSONL(path) }

// ReadJSONL parses a relation from JSON Lines data.
func ReadJSONL(name string, r io.Reader) (*Relation, error) { return dataset.ReadJSONL(name, r) }

// NewRelation creates an empty relation with categorical attributes.
func NewRelation(name string, attrs ...string) *Relation { return dataset.New(name, attrs...) }

// FD is a discovered functional dependency over attribute names.
type FD struct {
	// LHS holds the determinant attribute names.
	LHS []string
	// RHS is the determined attribute name.
	RHS string
	// Score is the largest absolute autoregression coefficient on the LHS
	// — a confidence proxy in (0, 1].
	Score float64
}

// String renders the FD as "A,B -> C".
func (fd FD) String() string { return strings.Join(fd.LHS, ",") + " -> " + fd.RHS }

// Options configures discovery. The zero value uses the defaults of the
// paper's configuration: no extra sparsity penalty, minimum-degree column
// ordering, and the adaptive coefficient threshold (absolute floor plus a
// per-column relative rule).
type Options struct {
	// Lambda is the Graphical Lasso sparsity penalty (paper Table 8).
	Lambda float64
	// Threshold is the absolute floor on |B| coefficients for an FD edge
	// (default 0.05). An edge must also pass the per-column relative rule
	// |b| ≥ RelFraction·(column max), which adapts to the data set's
	// coefficient scale.
	Threshold float64
	// RelFraction is the relative per-column threshold fraction
	// (default 0.4); set negative to disable the relative rule.
	RelFraction float64
	// Ordering selects the column-ordering heuristic: "heuristic"
	// (minimum degree, default), "natural", "amd", "colamd", "metis",
	// "nesdis", "reverse", or "random" (paper Table 9).
	Ordering string
	// MaxRows caps the tuples used by the pair transform (0 = all);
	// sampling accelerates large inputs at a small accuracy cost.
	MaxRows int
	// NumericTolerance treats numeric values within this fraction of the
	// column range as equal in the pair transform.
	NumericTolerance float64
	// TextSimilarity enables 3-gram Jaccard similarity for text columns.
	TextSimilarity bool
	// CompactTransform stores the transformed tuple-pair samples in a
	// float32 backing store, halving the transform's memory footprint —
	// the dominant allocation on wide schemas. The samples are 0/1
	// indicators (exact in float32) and every consumer widens each
	// element to float64 before any arithmetic, so the covariance, the
	// precision estimate, and the discovered FDs are bit-for-bit
	// identical to the default float64 store.
	CompactTransform bool
	// Workers sets the number of goroutines in the pair transform
	// (0 = GOMAXPROCS, 1 = sequential) and in the numeric stages — the
	// Graphical Lasso's screened-block fan-out and the streaming
	// accumulator's per-stratum moments (there 0 also means sequential).
	// Every setting produces bit-for-bit identical results; see
	// determinism_test.go.
	Workers int
	// Seed drives the transform's shuffling (0 is a valid fixed seed).
	Seed int64
	// RequireConvergence makes a Graphical Lasso estimate that still has
	// not converged after the full regularization fallback ladder a hard
	// ErrNotConverged failure. By default such an estimate is accepted as
	// a degraded result with Diagnostics.GlassoConverged == false.
	RequireConvergence bool
	// Tracer, when non-nil, records a span tree of the run — every
	// pipeline stage, each transform worker, each glasso sweep and ladder
	// rung — exportable as Chrome trace-event JSON (Tracer.WriteJSON,
	// loadable in Perfetto) or a text summary (Tracer.Summary). Telemetry
	// never changes results: FDs and B are identical with or without it.
	Tracer *Tracer
	// Metrics, when non-nil, receives run counters (rows absorbed, glasso
	// sweeps, fallback escalations, ...) and per-stage latency
	// histograms, exportable in Prometheus text format or via expvar.
	Metrics *Metrics
	// MetricLabels, when set, are Prometheus-style key/value pairs
	// (alternating) appended to every metric name this run records, so a
	// host sharing one registry across tenants or shards gets separate
	// series — fdx_stage_glasso_seconds{tenant="acme"} — without separate
	// registries. Ignored when Metrics is nil.
	MetricLabels []string
}

// Tracer collects nestable timing spans from an instrumented run; create
// one with NewTracer and attach it via Options.Tracer. See internal/obs
// for the span API.
type Tracer = obs.Tracer

// NewTracer returns an empty tracer whose trace clock starts now.
func NewTracer() *Tracer { return obs.New() }

// Span is one timed region of a trace, returned by Tracer.Find/Spans.
type Span = obs.Span

// Metrics is a concurrent registry of counters, gauges, and fixed-bucket
// histograms; create one with NewMetrics and attach it via
// Options.Metrics. It implements expvar.Var and writes Prometheus text
// format via WritePrometheus. See internal/obs for metric names.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// StageTiming is the aggregated duration of one pipeline stage in
// Result.StageTimings.
type StageTiming = obs.StageTiming

// Result is the outcome of discovery.
type Result struct {
	// Attributes lists the relation's attribute names in order.
	Attributes []string
	// FDs are the discovered dependencies.
	FDs []FD
	// B is the autoregression matrix in attribute order: B[i][j] is the
	// coefficient of attribute i in the linear equation of attribute j
	// (the matrix the paper visualizes in Figures 3 and 5).
	B [][]float64
	// Order is the global attribute order used by the factorization.
	Order []int
	// TransformDuration and ModelDuration split the runtime into the data
	// transformation and the structure-learning phases (paper Figure 6).
	TransformDuration time.Duration
	ModelDuration     time.Duration
	// Diagnostics records how the run degraded, if it did: fallbacks
	// taken by the regularization ladder, Graphical Lasso convergence,
	// and attributes whose statistics were sanitized. Check Degraded()
	// before trusting a result obtained from pathological data.
	Diagnostics Diagnostics
	// StageTimings breaks the run down per pipeline stage (transform,
	// covariance, fit, generate, ...), aggregated from the telemetry
	// root span. Nil unless Options.Tracer or Options.Metrics was set.
	StageTimings []StageTiming
}

// coreOptions maps the public options onto the pipeline configuration.
func coreOptions(opts Options) core.Options {
	return core.Options{
		Lambda:             opts.Lambda,
		Threshold:          opts.Threshold,
		RelFraction:        opts.RelFraction,
		Ordering:           opts.Ordering,
		Workers:            opts.Workers,
		Seed:               opts.Seed,
		RequireConvergence: opts.RequireConvergence,
		Obs:                obs.Hooks{Tracer: opts.Tracer, Metrics: opts.Metrics, Labels: opts.MetricLabels},
		Transform: core.TransformOptions{
			Seed:           opts.Seed,
			MaxRows:        opts.MaxRows,
			NumericTol:     opts.NumericTolerance,
			TextSimilarity: opts.TextSimilarity,
			Compact:        opts.CompactTransform,
			Workers:        opts.Workers,
			Obs:            obs.Hooks{Tracer: opts.Tracer, Metrics: opts.Metrics, Labels: opts.MetricLabels},
		},
	}
}

// Discover runs FDX on the relation.
//
// It never panics: malformed input returns an ErrBadInput-wrapped error,
// numerically degenerate input degrades through the regularization
// fallback ladder (recorded in Result.Diagnostics), and internal invariant
// panics are recovered and returned as ErrInternal-wrapped errors.
func Discover(rel *Relation, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), rel, opts)
}

// DiscoverContext is Discover with cancellation: the context is checked in
// the transform worker loop, each Graphical Lasso sweep, every rung of the
// fallback ladder, and the ordering search. On expiry the returned error
// wraps both ctx.Err() and ErrCancelled.
func DiscoverContext(ctx context.Context, rel *Relation, opts Options) (res *Result, err error) {
	defer guard("fdx: Discover", &err)
	if verr := core.ValidateRelation(rel); verr != nil {
		return nil, fmt.Errorf("fdx: %w", verr)
	}
	copts := coreOptions(opts)
	// Root telemetry span for the whole run; every stage nests under it.
	// End is deferred for error paths and idempotent on success.
	run := copts.Obs.Start("discover")
	defer run.End()
	copts.Obs = copts.Obs.Under(run)
	copts.Transform.Obs = copts.Obs
	copts.Obs.Count(obs.MDiscoverRuns, 1)
	//fdx:lint-ignore detsource wall-clock timing metadata (Result.TransformDuration); never feeds FD scores
	t0 := time.Now()
	var model *core.Model
	var t1 time.Time
	if copts.Transform.Compact {
		samples, terr := core.TransformContext32(ctx, rel, copts.Transform)
		if terr != nil {
			return nil, fmt.Errorf("fdx: %w", terr)
		}
		//fdx:lint-ignore detsource wall-clock timing metadata (Result.TransformDuration); never feeds FD scores
		t1 = time.Now()
		model, err = core.DiscoverFromSamples32Context(ctx, samples, rel.AttrNames(), copts)
	} else {
		samples, terr := core.TransformContext(ctx, rel, copts.Transform)
		if terr != nil {
			return nil, fmt.Errorf("fdx: %w", terr)
		}
		//fdx:lint-ignore detsource wall-clock timing metadata (Result.TransformDuration); never feeds FD scores
		t1 = time.Now()
		model, err = core.DiscoverFromSamplesContext(ctx, samples, rel.AttrNames(), copts)
	}
	if err != nil {
		return nil, fmt.Errorf("fdx: %w", err)
	}
	//fdx:lint-ignore detsource wall-clock timing metadata (Result.ModelDuration); never feeds FD scores
	t2 := time.Now()
	run.End()
	res = resultFromModel(model, rel.AttrNames())
	res.TransformDuration = t1.Sub(t0)
	res.ModelDuration = t2.Sub(t1)
	res.StageTimings = run.StageTimings()
	return res, nil
}

func resultFromModel(model *core.Model, names []string) *Result {
	res := &Result{
		Attributes:  names,
		Order:       append([]int(nil), model.Order...),
		Diagnostics: diagnosticsFromCore(model.Diagnostics, names),
	}
	k := len(names)
	res.B = make([][]float64, k)
	for i := 0; i < k; i++ {
		res.B[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			res.B[i][j] = model.B.At(i, j)
		}
	}
	for _, fd := range model.FDs {
		res.FDs = append(res.FDs, fdFromCore(fd, names))
	}
	return res
}

func diagnosticsFromCore(d core.Diagnostics, names []string) Diagnostics {
	out := Diagnostics{
		GlassoSweeps:    d.GlassoSweeps,
		GlassoConverged: d.GlassoConverged,
		GlassoBlocks:    d.GlassoBlocks,
	}
	for _, f := range d.Fallbacks {
		out.Fallbacks = append(out.Fallbacks, Fallback{Stage: f.Stage, Epsilon: f.Epsilon, Reason: f.Reason})
	}
	for _, c := range d.SanitizedColumns {
		out.SanitizedColumns = append(out.SanitizedColumns, names[c])
	}
	return out
}

func fdFromCore(fd core.FD, names []string) FD {
	out := FD{RHS: names[fd.RHS], Score: fd.Score}
	for _, x := range fd.LHS {
		out.LHS = append(out.LHS, names[x])
	}
	return out
}

// Heatmap renders |B| as an ASCII heatmap, one row per attribute — the
// textual analogue of the paper's autoregression-matrix figures.
func (r *Result) Heatmap() string {
	width := 0
	for _, n := range r.Attributes {
		if len(n) > width {
			width = len(n)
		}
	}
	if width > 18 {
		width = 18
	}
	ramp := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for i, name := range r.Attributes {
		if len(name) > width {
			name = name[:width]
		}
		fmt.Fprintf(&sb, "%-*s |", width, name)
		for j := range r.Attributes {
			v := r.B[i][j]
			if v < 0 {
				v = -v
			}
			if v > 1 {
				v = 1
			}
			sb.WriteByte(ramp[int(v*float64(len(ramp)-1))])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// HasFDWith reports whether the attribute participates in any discovered FD
// (either side) — the grouping used by the paper's data-preparation study
// (Table 7).
func (r *Result) HasFDWith(attr string) bool {
	for _, fd := range r.FDs {
		if fd.RHS == attr {
			return true
		}
		for _, l := range fd.LHS {
			if l == attr {
				return true
			}
		}
	}
	return false
}
