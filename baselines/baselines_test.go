package baselines

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"fdx"
	"fdx/internal/dataset"
	"fdx/internal/rfi"
)

func fdRelation(rng *rand.Rand, n int) *dataset.Relation {
	tab := make([]int, 8)
	for i := range tab {
		tab[i] = rng.Intn(4)
	}
	rel := dataset.New("t", "a", "b", "c")
	for i := 0; i < n; i++ {
		a := rng.Intn(8)
		rel.AppendRow([]string{
			strconv.Itoa(a), strconv.Itoa(tab[a]), strconv.Itoa(rng.Intn(5)),
		})
	}
	return rel
}

func TestAllDiscoverersRunAndFindTheFD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := fdRelation(rng, 600)
	discoverers := []Discoverer{
		&FDX{}, &TANE{}, &PYRO{}, &RFI{}, &CORDS{}, &GL{},
	}
	for _, d := range discoverers {
		fds, err := d.Discover(rel)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		found := false
		for _, fd := range fds {
			if fd.RHS == "b" {
				for _, l := range fd.LHS {
					if l == "a" {
						found = true
					}
				}
			}
			// GL may orient the edge the other way.
			if fd.RHS == "a" {
				for _, l := range fd.LHS {
					if l == "b" {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("%s did not find the a—b dependency: %v", d.Name(), fds)
		}
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		d    Discoverer
		want string
	}{
		{&FDX{}, "FDX"},
		{&FDX{Label: "FDX(pooled)"}, "FDX(pooled)"},
		{&TANE{}, "TANE"},
		{&PYRO{}, "PYRO"},
		{&CORDS{}, "CORDS"},
		{&GL{}, "GL"},
		{&RFI{}, "RFI(1.0)"},
	}
	for _, c := range cases {
		if got := c.d.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestRFINameVariants(t *testing.T) {
	cases := []struct {
		alpha float64
		want  string
	}{
		{0.3, "RFI(.3)"}, {0.5, "RFI(.5)"}, {1.0, "RFI(1.0)"}, {0.7, "RFI"},
	}
	for _, c := range cases {
		d := &RFI{Options: rfi.Options{Alpha: c.alpha}}
		if got := d.Name(); got != c.want {
			t.Errorf("alpha %v: Name = %q, want %q", c.alpha, got, c.want)
		}
	}
}

func TestDeadlineSettersAreImplemented(t *testing.T) {
	past := time.Now().Add(-time.Hour)
	for _, d := range []Discoverer{&TANE{}, &PYRO{}, &RFI{}} {
		ds, ok := d.(DeadlineSetter)
		if !ok {
			t.Fatalf("%s does not implement DeadlineSetter", d.Name())
		}
		ds.SetDeadline(past)
		rel := fdRelation(rand.New(rand.NewSource(2)), 300)
		fds, err := d.Discover(rel)
		if err != nil {
			t.Fatal(err)
		}
		// An already-expired deadline must cut the search short (few or no
		// results) without error.
		if len(fds) > 3 {
			t.Errorf("%s ignored an expired deadline: %d FDs", d.Name(), len(fds))
		}
	}
}

func TestFDXDiscovererPropagatesErrors(t *testing.T) {
	d := &FDX{Options: fdx.Options{Ordering: "bogus"}}
	rel := fdRelation(rand.New(rand.NewSource(3)), 100)
	if _, err := d.Discover(rel); err == nil {
		t.Error("invalid ordering accepted")
	}
}
