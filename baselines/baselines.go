// Package baselines exposes the FD discovery methods the FDX paper
// compares against (§5.1): TANE, PYRO, RFI, CORDS, and GL (naive Graphical
// Lasso on the raw data), behind a common Discoverer interface, plus FDX
// itself in the same shape for side-by-side benchmarking.
package baselines

import (
	"time"

	"fdx"

	"fdx/internal/cords"
	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/gl"
	"fdx/internal/pyro"
	"fdx/internal/rfi"
	"fdx/internal/tane"
)

// FD mirrors fdx.FD (name-based dependency with a method-specific score).
type FD = fdx.FD

// Discoverer is a uniform interface over FD discovery methods.
type Discoverer interface {
	// Name identifies the method in experiment tables, e.g. "PYRO".
	Name() string
	// Discover returns the FDs found in the relation.
	Discover(rel *dataset.Relation) ([]FD, error)
}

// DeadlineSetter is implemented by methods supporting cooperative
// cancellation: the search stops (returning partial results) once the wall
// clock passes the deadline. Benchmark harnesses set it slightly past
// their own timeout so abandoned runs do not keep burning CPU.
type DeadlineSetter interface {
	SetDeadline(t time.Time)
}

func toNamed(fds []core.FD, names []string) []FD {
	var out []FD
	for _, fd := range fds {
		nf := FD{RHS: names[fd.RHS], Score: fd.Score}
		for _, x := range fd.LHS {
			nf.LHS = append(nf.LHS, names[x])
		}
		out = append(out, nf)
	}
	return out
}

// FDX wraps fdx.Discover as a Discoverer.
type FDX struct {
	Options fdx.Options
	// Label overrides the display name (e.g. for ablations).
	Label string
}

// Name implements Discoverer.
func (d *FDX) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "FDX"
}

// Discover implements Discoverer.
func (d *FDX) Discover(rel *dataset.Relation) ([]FD, error) {
	res, err := fdx.Discover(rel, d.Options)
	if err != nil {
		return nil, err
	}
	return res.FDs, nil
}

// TANE wraps the TANE baseline.
type TANE struct{ Options tane.Options }

// Name implements Discoverer.
func (d *TANE) Name() string { return "TANE" }

// Discover implements Discoverer.
func (d *TANE) Discover(rel *dataset.Relation) ([]FD, error) {
	return toNamed(tane.Discover(rel, d.Options), rel.AttrNames()), nil
}

// SetDeadline implements DeadlineSetter.
func (d *TANE) SetDeadline(t time.Time) { d.Options.Deadline = t }

// PYRO wraps the PYRO-style baseline.
type PYRO struct{ Options pyro.Options }

// Name implements Discoverer.
func (d *PYRO) Name() string { return "PYRO" }

// Discover implements Discoverer.
func (d *PYRO) Discover(rel *dataset.Relation) ([]FD, error) {
	return toNamed(pyro.Discover(rel, d.Options), rel.AttrNames()), nil
}

// SetDeadline implements DeadlineSetter.
func (d *PYRO) SetDeadline(t time.Time) { d.Options.Deadline = t }

// RFI wraps the Reliable Fraction of Information baseline.
type RFI struct{ Options rfi.Options }

// Name implements Discoverer.
func (d *RFI) Name() string {
	switch d.Options.Alpha {
	case 0, 1:
		return "RFI(1.0)"
	case 0.3:
		return "RFI(.3)"
	case 0.5:
		return "RFI(.5)"
	default:
		return "RFI"
	}
}

// Discover implements Discoverer.
func (d *RFI) Discover(rel *dataset.Relation) ([]FD, error) {
	return toNamed(rfi.Discover(rel, d.Options), rel.AttrNames()), nil
}

// SetDeadline implements DeadlineSetter.
func (d *RFI) SetDeadline(t time.Time) { d.Options.Deadline = t }

// CORDS wraps the CORDS baseline.
type CORDS struct{ Options cords.Options }

// Name implements Discoverer.
func (d *CORDS) Name() string { return "CORDS" }

// Discover implements Discoverer.
func (d *CORDS) Discover(rel *dataset.Relation) ([]FD, error) {
	return toNamed(cords.Discover(rel, d.Options), rel.AttrNames()), nil
}

// GL wraps the naive Graphical Lasso baseline.
type GL struct{ Options gl.Options }

// Name implements Discoverer.
func (d *GL) Name() string { return "GL" }

// Discover implements Discoverer.
func (d *GL) Discover(rel *dataset.Relation) ([]FD, error) {
	return toNamed(gl.Discover(rel, d.Options), rel.AttrNames()), nil
}
