package fdx

import (
	"time"

	"fdx/internal/core"
)

// Accumulator supports incremental FD discovery over a stream of tuple
// batches: each Add folds a batch's pair statistics into running sums, and
// Discover derives the current dependencies without retransforming
// history. Batches must share the accumulator's schema. Pairs never span
// batches, so the estimate approximates (and with growing data converges
// to) the batch Discover on the concatenation.
type Accumulator struct {
	inner *core.Accumulator
	names []string
}

// NewAccumulator creates an incremental discovery session over relations
// with the given attribute names.
func NewAccumulator(attrNames []string, opts Options) *Accumulator {
	copts := core.Options{
		Lambda:      opts.Lambda,
		Threshold:   opts.Threshold,
		RelFraction: opts.RelFraction,
		Ordering:    opts.Ordering,
		Seed:        opts.Seed,
		Transform: core.TransformOptions{
			Seed:           opts.Seed,
			MaxRows:        opts.MaxRows,
			NumericTol:     opts.NumericTolerance,
			TextSimilarity: opts.TextSimilarity,
		},
	}
	return &Accumulator{
		inner: core.NewAccumulator(attrNames, copts),
		names: append([]string(nil), attrNames...),
	}
}

// Add absorbs one batch (at least two rows, matching schema).
func (a *Accumulator) Add(rel *Relation) error { return a.inner.Add(rel) }

// Rows returns the total number of tuples absorbed.
func (a *Accumulator) Rows() int { return a.inner.Rows() }

// Batches returns the number of batches absorbed.
func (a *Accumulator) Batches() int { return a.inner.Batches() }

// Discover derives the dependencies currently supported by the stream.
func (a *Accumulator) Discover() (*Result, error) {
	t0 := time.Now()
	model, err := a.inner.Discover()
	if err != nil {
		return nil, err
	}
	res := resultFromModel(model, a.names)
	res.ModelDuration = time.Since(t0)
	return res, nil
}
