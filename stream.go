package fdx

import (
	"context"
	"time"

	"fdx/internal/core"
)

// Accumulator supports incremental FD discovery over a stream of tuple
// batches: each Add folds a batch's pair statistics into running sums, and
// Discover derives the current dependencies without retransforming
// history. Batches must share the accumulator's schema. Pairs never span
// batches, so the estimate approximates (and with growing data converges
// to) the batch Discover on the concatenation.
//
// Like Discover, the Accumulator never panics: schema mismatches return
// ErrBadInput-wrapped errors and internal invariant panics are recovered
// into ErrInternal-wrapped errors.
type Accumulator struct {
	inner *core.Accumulator
	names []string
}

// NewAccumulator creates an incremental discovery session over relations
// with the given attribute names.
func NewAccumulator(attrNames []string, opts Options) *Accumulator {
	return &Accumulator{
		inner: core.NewAccumulator(attrNames, coreOptions(opts)),
		names: append([]string(nil), attrNames...),
	}
}

// Add absorbs one batch (at least two rows, matching schema).
func (a *Accumulator) Add(rel *Relation) (err error) {
	defer guard("fdx: Accumulator.Add", &err)
	return a.inner.Add(rel)
}

// Rows returns the total number of tuples absorbed.
func (a *Accumulator) Rows() int { return a.inner.Rows() }

// Batches returns the number of batches absorbed.
func (a *Accumulator) Batches() int { return a.inner.Batches() }

// Discover derives the dependencies currently supported by the stream.
func (a *Accumulator) Discover() (*Result, error) {
	return a.DiscoverContext(context.Background())
}

// DiscoverContext is Discover with cancellation; see fdx.DiscoverContext
// for where the context is checked.
func (a *Accumulator) DiscoverContext(ctx context.Context) (res *Result, err error) {
	defer guard("fdx: Accumulator.Discover", &err)
	t0 := time.Now()
	model, err := a.inner.DiscoverContext(ctx)
	if err != nil {
		return nil, err
	}
	res = resultFromModel(model, a.names)
	res.ModelDuration = time.Since(t0)
	return res, nil
}
