package fdx

import (
	"context"
	"io"
	"time"

	"fdx/internal/checkpoint"
	"fdx/internal/core"
	"fdx/internal/fdxerr"
	"fdx/internal/obs"
)

// Accumulator supports incremental FD discovery over a stream of tuple
// batches: each Add folds a batch's pair statistics into running sums, and
// Discover derives the current dependencies without retransforming
// history. Batches must share the accumulator's schema. Pairs never span
// batches, so the estimate approximates (and with growing data converges
// to) the batch Discover on the concatenation.
//
// Like Discover, the Accumulator never panics: schema mismatches return
// ErrBadInput-wrapped errors and internal invariant panics are recovered
// into ErrInternal-wrapped errors.
type Accumulator struct {
	inner *core.Accumulator
	names []string
}

// NewAccumulator creates an incremental discovery session over relations
// with the given attribute names.
func NewAccumulator(attrNames []string, opts Options) *Accumulator {
	return &Accumulator{
		inner: core.NewAccumulator(attrNames, coreOptions(opts)),
		names: append([]string(nil), attrNames...),
	}
}

// Add absorbs one batch (at least two rows, matching schema).
func (a *Accumulator) Add(rel *Relation) (err error) {
	defer guard("fdx: Accumulator.Add", &err)
	return a.inner.Add(rel)
}

// Rows returns the total number of tuples absorbed.
func (a *Accumulator) Rows() int { return a.inner.Rows() }

// Batches returns the number of batches absorbed.
func (a *Accumulator) Batches() int { return a.inner.Batches() }

// Attributes returns the accumulator's attribute names in order.
func (a *Accumulator) Attributes() []string { return append([]string(nil), a.names...) }

// Discover derives the dependencies currently supported by the stream.
func (a *Accumulator) Discover() (*Result, error) {
	return a.DiscoverContext(context.Background())
}

// DiscoverContext is Discover with cancellation; see fdx.DiscoverContext
// for where the context is checked.
func (a *Accumulator) DiscoverContext(ctx context.Context) (res *Result, err error) {
	defer guard("fdx: Accumulator.Discover", &err)
	//fdx:lint-ignore detsource wall-clock timing metadata (Result.ModelDuration); never feeds FD scores
	t0 := time.Now()
	model, err := a.inner.DiscoverContext(ctx)
	if err != nil {
		return nil, err
	}
	res = resultFromModel(model, a.names)
	//fdx:lint-ignore detsource wall-clock timing metadata (Result.ModelDuration); never feeds FD scores
	res.ModelDuration = time.Since(t0)
	res.StageTimings = model.Trace.StageTimings()
	return res, nil
}

// WALSuffix is appended to a checkpoint path to name its companion
// write-ahead log: SaveCheckpoint(path) pairs with the WAL at
// path+WALSuffix, which LoadCheckpoint replays automatically.
const WALSuffix = checkpoint.WALSuffix

// Snapshot writes a versioned, checksummed snapshot of the accumulator's
// state to w. The snapshot embeds a fingerprint of the options that
// determine what the statistics mean (transform seed and pair-transform
// knobs); RestoreAccumulator refuses a snapshot taken under different
// ones. Snapshot provides no durability by itself — use SaveCheckpoint
// for the fsync-and-rename file protocol.
func (a *Accumulator) Snapshot(w io.Writer) (err error) {
	defer guard("fdx: Snapshot", &err)
	copts := a.inner.Options()
	return checkpoint.WriteSnapshot(w, a.inner.State(), checkpoint.Fingerprint(copts))
}

// RestoreAccumulator reconstructs an accumulator from a snapshot written
// by Snapshot. opts must fingerprint-match the options the snapshot was
// taken under (ErrBadInput otherwise); unreadable bytes return
// ErrCorruptCheckpoint or ErrCheckpointVersion-wrapped errors, never a
// panic. The restored accumulator continues the stream bit-for-bit.
func RestoreAccumulator(r io.Reader, opts Options) (acc *Accumulator, err error) {
	defer guard("fdx: RestoreAccumulator", &err)
	st, fingerprint, err := checkpoint.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return accumulatorFromState(st, fingerprint, opts)
}

// SaveCheckpoint durably writes the accumulator's snapshot to path: temp
// file, fsync, atomic rename, directory fsync. A crash at any point leaves
// either the previous checkpoint or the new one, never a torn mix; any
// failure wraps ErrCorruptCheckpoint and leaves the previous checkpoint
// untouched. After a successful save, Reset the companion WAL — its
// records are now covered by the snapshot (leaving them is safe: restore
// skips records the snapshot already includes).
func (a *Accumulator) SaveCheckpoint(path string) (err error) {
	defer guard("fdx: SaveCheckpoint", &err)
	copts := a.inner.Options()
	// The checkpoint package stays telemetry-free; spans and byte counters
	// are wired here at the API boundary from the sizes it reports.
	sp := copts.Obs.StartStage("checkpoint-save")
	defer sp.End()
	n, err := checkpoint.Save(path, a.inner.State(), checkpoint.Fingerprint(copts))
	if err != nil {
		return err
	}
	sp.Attr("bytes", n)
	copts.Obs.Count(obs.MCheckpointSaves, 1)
	copts.Obs.Count(obs.MCheckpointBytes, uint64(n))
	return nil
}

// LoadCheckpoint restores an accumulator from the checkpoint at path,
// replaying any batch records in the WAL at path+WALSuffix and truncating
// a torn tail record (the one unsynced batch a kill can lose) in place.
// Errors are typed: a missing snapshot matches fs.ErrNotExist (wrapped in
// ErrBadInput), mismatched options ErrBadInput, unreadable or
// inconsistent bytes ErrCorruptCheckpoint, an incompatible format version
// ErrCheckpointVersion. Arbitrary bytes never panic.
func LoadCheckpoint(path string, opts Options) (acc *Accumulator, err error) {
	defer guard("fdx: LoadCheckpoint", &err)
	h := coreOptions(opts).Obs
	lsp := h.StartStage("checkpoint-load")
	st, fingerprint, err := checkpoint.Load(path)
	lsp.End()
	if err != nil {
		return nil, err
	}
	acc, err = accumulatorFromState(st, fingerprint, opts)
	if err != nil {
		return nil, err
	}
	rsp := h.StartStage("wal-replay")
	defer rsp.End()
	applied, torn, err := checkpoint.ReplayWAL(path+WALSuffix, func(d *core.BatchDelta) error {
		switch {
		case d.Seq <= acc.inner.Batches():
			// Already covered by the snapshot (the WAL was not reset after
			// the save, or the crash hit between save and reset).
			return nil
		case d.Seq == acc.inner.Batches()+1:
			return acc.inner.ApplyDelta(d)
		default:
			return fdxerr.Corrupt("checkpoint: wal skips from batch %d to %d", acc.inner.Batches(), d.Seq)
		}
	})
	rsp.Attr("records", applied)
	h.Count(obs.MWALReplayed, uint64(applied))
	if torn {
		// The tail record was torn mid-append and truncated: the stream
		// resumes one batch before where the dead writer got to. Surfaced
		// as a counter so operators see the (bounded, by-design) loss.
		rsp.Attr("torn_tail", 1)
		h.Count(obs.MWALTornTail, 1)
	}
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// accumulatorFromState validates a decoded snapshot against the caller's
// options and wraps it in the public accumulator type.
func accumulatorFromState(st *core.AccumulatorState, fingerprint uint64, opts Options) (*Accumulator, error) {
	copts := coreOptions(opts)
	if want := checkpoint.Fingerprint(copts); fingerprint != want {
		return nil, fdxerr.BadInput(
			"fdx: checkpoint was taken under different options (fingerprint %016x, these options give %016x); Seed, MaxRows, NumericTolerance and TextSimilarity must match the original stream",
			fingerprint, want)
	}
	inner, err := core.NewAccumulatorFromState(st, copts)
	if err != nil {
		// The snapshot passed its checksums but describes an impossible
		// accumulator: corrupt bytes, not a caller mistake.
		return nil, fdxerr.Corrupt("fdx: checkpoint state rejected: %v", err)
	}
	return &Accumulator{inner: inner, names: append([]string(nil), st.Names...)}, nil
}

// WAL is the append-only batch log pairing with SaveCheckpoint: AddLogged
// absorbs a batch and fsyncs its statistics delta to the log, so a kill
// between checkpoints loses at most the one batch torn mid-append.
// LoadCheckpoint replays the log automatically. A WAL is single-writer
// and not safe for concurrent use.
type WAL struct {
	inner *checkpoint.WAL
}

// OpenWAL opens (creating if absent) the write-ahead log at path — by
// convention the checkpoint path plus WALSuffix.
func OpenWAL(path string) (w *WAL, err error) {
	defer guard("fdx: OpenWAL", &err)
	inner, err := checkpoint.OpenWAL(path)
	if err != nil {
		return nil, err
	}
	return &WAL{inner: inner}, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.inner.Path() }

// Reset truncates the log after a successful SaveCheckpoint, whose
// snapshot now covers every logged record.
func (w *WAL) Reset() (err error) {
	defer guard("fdx: WAL.Reset", &err)
	return w.inner.Reset()
}

// Close closes the log file.
func (w *WAL) Close() error { return w.inner.Close() }

// AddLogged absorbs one batch like Add and appends its statistics delta to
// the WAL with an fsync before returning. If the append fails the batch
// IS absorbed in memory but is not durable: the caller should
// SaveCheckpoint (which captures it) or treat the stream position as the
// previous batch.
func (a *Accumulator) AddLogged(rel *Relation, w *WAL) (err error) {
	defer guard("fdx: AddLogged", &err)
	d, err := a.inner.Absorb(rel)
	if err != nil {
		return err
	}
	return a.logDelta(d, w)
}
