package fdx_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"fdx"
)

// batchedBaseline absorbs the relation sequentially in fixed-size batches
// and discovers — the single-shard reference every sharded run must match
// bit-for-bit.
func batchedBaseline(t *testing.T, rel *fdx.Relation, opts fdx.Options, batchRows int) *fdx.Result {
	t.Helper()
	acc := fdx.NewAccumulator(rel.AttrNames(), opts)
	for lo := 0; lo < rel.NumRows(); lo += batchRows {
		hi := lo + batchRows
		if hi > rel.NumRows() {
			hi = rel.NumRows()
		}
		if err := acc.Add(rel.Slice(lo, hi)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedDiscoverDeterministicSweep is the library-level crash-free
// equivalence sweep: splitting the batch grid across shards ∈ {1,2,4,7}
// and transform workers ∈ {1,4}, building each shard with AddAt on its
// span of global batch indices, and tree-merging with MergeShards must
// reproduce the sequential result exactly — same FD list element-wise and
// bit-identical B. The per-batch transform seed depends only on the global
// batch index, so shard boundaries cannot leak into the statistics.
func TestShardedDiscoverDeterministicSweep(t *testing.T) {
	rel := noisyAddressRelation(rand.New(rand.NewSource(11)), 400, 0.03)
	const batchRows = 50
	totalBatches := (rel.NumRows() + batchRows - 1) / batchRows

	for _, workers := range []int{1, 4} {
		opts := fdx.Options{Seed: 7, Workers: workers}
		want := batchedBaseline(t, rel, opts, batchRows)
		for _, shards := range []int{1, 2, 4, 7} {
			accs := make([]*fdx.Accumulator, 0, shards)
			for _, span := range fdx.ShardSpans(totalBatches, shards) {
				acc := fdx.NewAccumulator(rel.AttrNames(), opts)
				for g := span.Lo; g < span.Hi; g++ {
					lo, hi := g*batchRows, (g+1)*batchRows
					if hi > rel.NumRows() {
						hi = rel.NumRows()
					}
					if err := acc.AddAt(rel.Slice(lo, hi), g); err != nil {
						t.Fatal(err)
					}
				}
				accs = append(accs, acc)
			}
			merged, err := fdx.MergeShards(accs, workers)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: MergeShards: %v", shards, workers, err)
			}
			got, err := merged.Discover()
			if err != nil {
				t.Fatalf("shards=%d workers=%d: Discover: %v", shards, workers, err)
			}
			assertIdentical(t, want, got)
		}
	}
}

// fuzzRecipient builds the live accumulator FuzzMergeSnapshot merges into:
// one absorbed batch, so compatibility checks have real state to defend.
func fuzzRecipient() (*fdx.Accumulator, *fdx.Relation) {
	rel := noisyAddressRelation(rand.New(rand.NewSource(3)), 120, 0.05)
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{})
	if err := acc.AddAt(rel.Slice(0, 40), 0); err != nil {
		panic(err)
	}
	return acc, rel
}

// FuzzMergeSnapshot feeds arbitrary bytes to Accumulator.MergeSnapshot.
// The contract under test: the call never panics; it either applies a
// valid compatible snapshot or returns an error from the checkpoint/shard
// taxonomy; and a rejected (or duplicate) snapshot leaves the recipient
// bit-identical — corrupt shards must never poison merged state. Run
// longer campaigns with:
//
//	go test -fuzz FuzzMergeSnapshot -fuzztime 30s .
func FuzzMergeSnapshot(f *testing.F) {
	// Corpus: a valid disjoint shard snapshot plus structured corruptions
	// of it, so the campaign starts at the format's cliff edges.
	donorRel := noisyAddressRelation(rand.New(rand.NewSource(3)), 120, 0.05)
	shard := fdx.NewAccumulator(donorRel.AttrNames(), fdx.Options{})
	if err := shard.AddAt(donorRel.Slice(40, 80), 1); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := shard.Snapshot(&valid); err != nil {
		f.Fatal(err)
	}
	seed := valid.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // torn write
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40 // bit rot
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all"))
	f.Add(seed[:8]) // header only

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		acc, rel := fuzzRecipient()
		var before bytes.Buffer
		if err := acc.Snapshot(&before); err != nil {
			t.Fatal(err)
		}
		applied, err := acc.MergeSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, fdx.ErrCorruptCheckpoint) &&
				!errors.Is(err, fdx.ErrCheckpointVersion) &&
				!errors.Is(err, fdx.ErrShardMismatch) &&
				!errors.Is(err, fdx.ErrBadInput) {
				t.Fatalf("error outside the taxonomy: %v", err)
			}
		}
		if err != nil || !applied {
			var after bytes.Buffer
			if serr := acc.Snapshot(&after); serr != nil {
				t.Fatalf("snapshot after rejected merge: %v", serr)
			}
			if !bytes.Equal(before.Bytes(), after.Bytes()) {
				t.Fatal("rejected merge mutated the recipient")
			}
		}
		// The recipient stays usable either way: the next global batch
		// still absorbs.
		if aerr := acc.AddAt(rel.Slice(80, 120), acc.NextGlobal()); aerr != nil {
			t.Fatalf("recipient unusable after merge attempt: %v", aerr)
		}
	})
}
