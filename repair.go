package fdx

import (
	"fdx/internal/core"
	"fdx/internal/fdxerr"
	"fdx/internal/violations"
)

// Violation is a cell that disagrees with the dominant right-hand-side
// value of its determinant group under a discovered FD.
type Violation struct {
	// FD is the violated dependency.
	FD FD
	// Row is the violating tuple index.
	Row int
	// Observed is the cell's current value ("" when missing).
	Observed string
	// Suggested is the majority value of the tuple's determinant group.
	Suggested string
	// Support is the fraction of the group agreeing with Suggested.
	Support float64
}

// fdToCore resolves a name-based FD against the relation's schema.
func fdToCore(fd FD, rel *Relation) (core.FD, error) {
	out := core.FD{Score: fd.Score}
	rhs := rel.ColumnIndex(fd.RHS)
	if rhs < 0 {
		return out, fdxerr.BadInput("fdx: unknown attribute %q", fd.RHS)
	}
	out.RHS = rhs
	for _, l := range fd.LHS {
		i := rel.ColumnIndex(l)
		if i < 0 {
			return out, fdxerr.BadInput("fdx: unknown attribute %q", l)
		}
		out.LHS = append(out.LHS, i)
	}
	out.Normalize()
	return out, nil
}

// FindViolations locates every cell violating one of the FDs in the
// relation, with a majority-vote repair suggestion per cell. Rows whose
// determinant cells are missing belong to no group and are skipped.
func FindViolations(rel *Relation, fds []FD) ([]Violation, error) {
	var out []Violation
	names := rel.AttrNames()
	for _, fd := range fds {
		cf, err := fdToCore(fd, rel)
		if err != nil {
			return nil, err
		}
		for _, v := range violations.Find(rel, cf) {
			out = append(out, Violation{
				FD:        fdFromCore(v.FD, names),
				Row:       v.Row,
				Observed:  v.Observed,
				Suggested: v.Suggested,
				Support:   v.Support,
			})
		}
	}
	return out, nil
}

// Repair applies every suggestion with support at least minSupport to a
// copy of the relation, returning the repaired copy and the number of
// changed cells. The input relation is not modified.
func Repair(rel *Relation, fds []FD, minSupport float64) (*Relation, int, error) {
	var cfds []core.FD
	for _, fd := range fds {
		cf, err := fdToCore(fd, rel)
		if err != nil {
			return nil, 0, err
		}
		cfds = append(cfds, cf)
	}
	vs := violations.FindAll(rel, cfds)
	fixed, n := violations.Repair(rel, vs, minSupport)
	return fixed, n, nil
}

// ErrorRate returns the fraction of rows violating at least one FD — a
// one-number data-quality profile of the relation under the discovered
// dependencies.
func ErrorRate(rel *Relation, fds []FD) (float64, error) {
	var cfds []core.FD
	for _, fd := range fds {
		cf, err := fdToCore(fd, rel)
		if err != nil {
			return 0, err
		}
		cfds = append(cfds, cf)
	}
	return violations.ErrorRate(rel, cfds), nil
}
