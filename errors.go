package fdx

import "fdx/internal/fdxerr"

// The typed failure taxonomy of the discovery pipeline. Every error
// returned by Discover, DiscoverContext, and the Accumulator wraps exactly
// one of these sentinels, so callers can classify failures with errors.Is
// instead of parsing message strings:
//
//	res, err := fdx.DiscoverContext(ctx, rel, opts)
//	switch {
//	case errors.Is(err, fdx.ErrBadInput):
//		// malformed relation or options: fix the input, don't retry
//	case errors.Is(err, fdx.ErrNotConverged):
//		// only with Options.RequireConvergence: relax it or add data
//	case errors.Is(err, context.DeadlineExceeded):
//		// cancelled: also matches errors.Is(err, fdx.ErrCancelled)
//	case errors.Is(err, fdx.ErrInternal):
//		// recovered internal panic: a bug in fdx, please report
//	}
//
// Numerical failures (ErrSingularCovariance, ErrNonPositivePivot) are only
// returned after the regularization fallback ladder is exhausted; a run
// that recovered via the ladder succeeds and records what happened in
// Result.Diagnostics instead.
var (
	// ErrBadInput marks malformed caller input: duplicate attribute
	// names, mismatched schemas or dimensions, an unknown ordering method.
	ErrBadInput = fdxerr.ErrBadInput
	// ErrSingularCovariance marks a covariance estimate whose precision
	// could not be recovered even with maximal fallback shrinkage.
	ErrSingularCovariance = fdxerr.ErrSingularCovariance
	// ErrNonPositivePivot marks a factorization that hit a non-positive
	// pivot on every rung of the fallback ladder.
	ErrNonPositivePivot = fdxerr.ErrNonPositivePivot
	// ErrNotConverged marks an iterative solve that exhausted its budget
	// under Options.RequireConvergence.
	ErrNotConverged = fdxerr.ErrNotConverged
	// ErrCancelled marks work abandoned on context cancellation; the
	// error also matches the context's own sentinel.
	ErrCancelled = fdxerr.ErrCancelled
	// ErrInternal marks an internal invariant panic recovered at the
	// public API boundary.
	ErrInternal = fdxerr.ErrInternal
	// ErrCorruptCheckpoint marks a checkpoint snapshot or WAL that failed
	// validation on restore (bad magic, CRC mismatch, impossible
	// dimensions, mid-log torn record) or could not be durably written
	// (short write, failed fsync or rename). The in-memory accumulator is
	// still good; the on-disk checkpoint must not be trusted.
	ErrCorruptCheckpoint = fdxerr.ErrCorruptCheckpoint
	// ErrCheckpointVersion marks a checkpoint written by an incompatible
	// format version: the bytes are intact but this build cannot interpret
	// them.
	ErrCheckpointVersion = fdxerr.ErrCheckpointVersion
	// ErrShardMismatch marks two shard states that cannot be merged: their
	// options fingerprints or attribute schemas differ, or their batch
	// coverage partially overlaps (the same batch absorbed by both sides).
	// Both states are individually intact; the merge request is wrong.
	ErrShardMismatch = fdxerr.ErrShardMismatch
)

// Fallback records one degradation step the pipeline took instead of
// failing: the stage that failed ("glasso", "factorize", "spd-repair"),
// the diagonal shrinkage ε applied on the retry, and the reason.
type Fallback struct {
	Stage   string
	Epsilon float64
	Reason  string
}

// Diagnostics reports how a discovery run degraded. A fully healthy run
// has GlassoConverged true and every slice empty; anything else means the
// result is valid but was obtained through graceful degradation.
type Diagnostics struct {
	// GlassoSweeps is the number of outer sweeps of the accepted
	// Graphical Lasso solve.
	GlassoSweeps int
	// GlassoConverged reports whether that solve met its tolerance within
	// its iteration budget. False means the estimate is the best iterate
	// after the full fallback ladder still failed to converge. For a
	// screened (block-diagonal) solve every block must converge.
	GlassoConverged bool
	// GlassoBlocks is the number of connected components the covariance
	// screening pass split the accepted solve into (1 = screening found
	// nothing and the solve ran dense).
	GlassoBlocks int
	// Fallbacks lists the regularization fallbacks applied, in order.
	Fallbacks []Fallback
	// SanitizedColumns names the attributes whose covariance statistics
	// were non-finite (NaN/±Inf) and were quarantined before structure
	// learning; dependencies involving them may be missing.
	SanitizedColumns []string
}

// Degraded reports whether the run deviated from the healthy path in any
// recorded way.
func (d *Diagnostics) Degraded() bool {
	return !d.GlassoConverged || len(d.Fallbacks) > 0 || len(d.SanitizedColumns) > 0
}

// guard converts a panic escaping the discovery internals into an
// ErrInternal-wrapped error at the public API boundary, so one poisoned
// input cannot take down a whole serving process. Deferred by every
// exported entry point that runs the pipeline.
func guard(stage string, err *error) {
	if r := recover(); r != nil {
		*err = fdxerr.Recovered(stage, r)
	}
}
