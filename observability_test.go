package fdx_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fdx"
)

// TestDiscoverTelemetryCoverage runs a full discovery with both sinks
// attached and checks the span tree covers every pipeline stage, the
// stage timings account for the run's wall time, the registry saw the
// pipeline's counters, and the trace exports as valid JSON.
func TestDiscoverTelemetryCoverage(t *testing.T) {
	rel := noisyAddressRelation(rand.New(rand.NewSource(3)), 1200, 0.02)
	tr := fdx.NewTracer()
	reg := fdx.NewMetrics()
	res, err := fdx.Discover(rel, fdx.Options{Seed: 7, Tracer: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) == 0 {
		t.Fatal("no FDs found")
	}

	for _, stage := range []string{
		"discover", "transform", "covariance", "prepare",
		"ladder-rung", "glasso", "glasso-sweep", "ordering", "udu", "generate",
	} {
		if len(tr.Find(stage)) == 0 {
			t.Errorf("no %q span in the trace", stage)
		}
	}
	for _, sp := range tr.Spans() {
		if !sp.Ended() {
			t.Errorf("span %q was never ended", sp.Name())
		}
	}

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "discover" {
		t.Fatalf("roots = %v, want one discover span", roots)
	}
	if len(res.StageTimings) == 0 {
		t.Fatal("Result.StageTimings is empty")
	}
	var sum time.Duration
	for _, st := range res.StageTimings {
		if st.Count <= 0 || st.Duration < 0 {
			t.Errorf("stage %q has count %d duration %v", st.Stage, st.Count, st.Duration)
		}
		sum += st.Duration
	}
	// The stages are strictly sequential children of the root, so their
	// durations can never exceed it; they must also account for nearly all
	// of it (the lower bound is loose enough for -race scheduling gaps).
	total := roots[0].Duration()
	if sum > total {
		t.Errorf("stage timings sum %v exceeds the run's %v", sum, total)
	}
	if sum < total*7/10 {
		t.Errorf("stage timings sum %v accounts for <70%% of the run's %v", sum, total)
	}

	if c := reg.Counter("fdx_glasso_sweeps_total").Value(); c == 0 {
		t.Error("glasso sweep counter never incremented")
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fdx_glasso_sweeps_total", "fdx_transform_pairs_total", "fdx_stage_transform_seconds"} {
		if !strings.Contains(prom.String(), name) {
			t.Errorf("prometheus export is missing %s:\n%s", name, prom.String())
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) < 5 {
		t.Errorf("trace JSON has only %d events", len(doc.TraceEvents))
	}
}

// TestAccumulatorTelemetry checks the streaming path: each absorbed batch
// is its own trace root, the rows counter tracks absorption, and the
// derived result carries stage timings from its discover span.
func TestAccumulatorTelemetry(t *testing.T) {
	rel := noisyAddressRelation(rand.New(rand.NewSource(5)), 300, 0.01)
	tr := fdx.NewTracer()
	reg := fdx.NewMetrics()
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{Seed: 7, Tracer: tr, Metrics: reg})
	for b := 0; b < 3; b++ {
		if err := acc.Add(rel.Slice(b*100, (b+1)*100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tr.Find("absorb-batch")); got != 3 {
		t.Errorf("found %d absorb-batch spans, want 3", got)
	}
	if got := reg.Counter("fdx_rows_absorbed_total").Value(); got != 300 {
		t.Errorf("rows absorbed counter = %d, want 300", got)
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageTimings) == 0 {
		t.Error("accumulator result has no stage timings")
	}
	if got := len(tr.Find("discover")); got != 1 {
		t.Errorf("found %d discover spans, want 1", got)
	}
	if got := len(tr.Find("covariance")); got != 1 {
		t.Errorf("found %d covariance spans, want 1", got)
	}
	if got := reg.Counter("fdx_discover_runs_total").Value(); got != 1 {
		t.Errorf("discover runs counter = %d, want 1", got)
	}
}
