package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// kernelMarker in a function's doc comment exempts that function from
// floatcmp: it declares a numerical kernel whose exact float comparisons
// (sparsity skips like `if v == 0 { continue }`, sentinel checks) are
// deliberate and analyzed for correctness.
const kernelMarker = "fdx:numeric-kernel"

// FloatCmp flags == and != between floating-point operands. Exact equality
// on float64 is almost never what numerical code means — Graphical Lasso
// iterates and Cholesky/UDUᵀ pivots differ across architectures and
// optimization levels at the last ulp, so exact comparisons silently change
// discovery results. Compare with a tolerance, or annotate the enclosing
// function with "fdx:numeric-kernel" when exactness is the point.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands outside annotated numeric kernels",
	Run:  runFloatCmp,
	// Determinism tests assert bit-exact reproducibility; exact comparison
	// is their purpose, not a bug.
	SkipTestFiles: true,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, be.X) && !isFloat(pass.Info, be.Y) {
				return true
			}
			if strings.Contains(enclosingFuncDoc(pass.Files, be.Pos()), kernelMarker) {
				return true
			}
			pass.ReportRangef(be, be.OpPos, "floating-point %s comparison; use a tolerance (e.g. math.Abs(a-b) <= eps) or mark the function fdx:numeric-kernel", be.Op)
			return true
		})
	}
}

// isFloat reports whether the expression has floating-point or complex type
// (including named types whose underlying type is a float).
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
