package analysis

import (
	"go/types"
	"sort"
	"strings"
)

// DetSource is the interprocedural nondeterminism-taint analyzer: code on
// the result path — anything transitively reachable from an exported
// function of the boundary packages (fdx, internal/core, internal/glasso,
// internal/checkpoint), i.e. anything that can feed Result or Accumulator
// state — must not draw from a nondeterminism source. Sources are
// wall-clock reads (time.Now/Since/Until), the global math/rand state
// (rand.Int, rand.Float64, rand.Shuffle, ... — anything seeded by the
// runtime rather than the caller), and scheduler-shaped values
// (runtime.NumCPU, runtime.GOMAXPROCS).
//
// Sanctioned escapes, mirroring the pipeline's documented determinism
// story:
//
//   - the seeded-RNG constructors rand.New/rand.NewSource and every method
//     on an explicit *rand.Rand — the caller controls the seed, so results
//     are reproducible (Options.Seed);
//   - internal/par, the fixed-order-reduce fan-out whose chunk boundaries
//     depend only on the problem size — worker counts may come from the
//     scheduler precisely because par guarantees they cannot change
//     results;
//   - internal/obs, the passive telemetry layer, which timestamps spans
//     but is proven (obs_overhead_test.go) never to change results.
//
// Individual sites with a reviewed justification (Result's wall-clock
// timing metadata) carry //fdx:lint-ignore detsource <reason> comments.
// Map-iteration-order nondeterminism is maporder's intraprocedural job and
// is not duplicated here.
var DetSource = &Analyzer{
	Name:      "detsource",
	Doc:       "flags nondeterminism sources (wall clock, global rand, scheduler shape) reachable on the result path",
	RunModule: runDetSource,
}

// detSanctionedPkgSuffixes are module packages whose use of the sources is
// part of their contract (see the analyzer doc).
var detSanctionedPkgSuffixes = []string{"internal/par", "internal/obs", "internal/obs/flight"}

func runDetSource(mpass *ModulePass) {
	graph := mpass.Graph
	roots := boundaryExported(mpass)
	onResultPath := graph.Reachable(roots)

	var nodes []*Node
	for n := range onResultPath {
		if n.External() || detSanctionedNode(n) {
			continue
		}
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })

	for _, n := range nodes {
		for _, e := range n.Calls {
			if e.Call == nil || e.Callee.Func == nil {
				continue
			}
			src := nondeterminismSource(e.Callee.Func)
			if src == "" {
				continue
			}
			path := graph.PathFrom(roots, n)
			where := shortID(n.ID)
			if len(path) > 1 {
				where = renderPath(path)
			}
			mpass.ReportRangef(e.Call, e.Site,
				"%s is a nondeterminism source on the result path (%s); plumb a seeded RNG / fixed value, or justify with //fdx:lint-ignore detsource",
				src, where)
		}
	}
}

// detSanctionedNode reports whether the node lives in a package whose use
// of nondeterminism sources is contractually safe.
func detSanctionedNode(n *Node) bool {
	if n.Pkg == nil {
		return false
	}
	for _, suffix := range detSanctionedPkgSuffixes {
		if n.Pkg.ImportPath == suffix || strings.HasSuffix(n.Pkg.ImportPath, "/"+suffix) {
			return true
		}
	}
	return false
}

// nondeterminismSource classifies fn, returning a human-readable source
// name ("time.Now()", "global math/rand (rand.Shuffle)") or "" when fn is
// not a source. Methods on *rand.Rand are explicitly sanctioned: a Rand
// instance is always constructed from a caller-controlled seed.
func nondeterminismSource(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "" // methods: *rand.Rand, time.Time arithmetic, ... are fine
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + "()"
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return "" // seeded constructors — the sanctioned entry points
		}
		return "global math/rand (rand." + fn.Name() + ")"
	case "runtime":
		switch fn.Name() {
		case "NumCPU", "GOMAXPROCS":
			return "runtime." + fn.Name() + "()"
		}
	}
	return ""
}
