// Package analysis is a small static-analysis framework for the fdx module,
// built entirely on the Go standard library (go/parser, go/ast, go/types,
// go/importer) so the repo keeps its zero-dependency invariant.
//
// The FDX pipeline (transform → Graphical Lasso → UDUᵀ → FD generation) is
// only trustworthy if it is deterministic and numerically safe, and the
// classic ways Go code silently loses both properties are statically
// detectable: float64 ==, map iteration feeding ordered output, goroutine
// capture bugs, undocumented panics, and unvalidated matrix dimensions.
// Each Analyzer in this package targets one of those failure modes.
//
// Diagnostics can be suppressed with a justification comment:
//
//	//fdx:lint-ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A suppression
// without a reason is itself reported. Functions whose doc comment contains
// the marker "fdx:numeric-kernel" are exempt from floatcmp: they are
// numerical kernels whose exact float comparisons (sparsity skips, sentinel
// checks) are deliberate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is a single named check run over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-line description shown by `fdxlint -list`.
	Doc string
	// Run inspects the package in pass and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (may be partially filled if the
	// package had type errors).
	Pkg *types.Package
	// Info holds the type information for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		MapOrder,
		GoroutineCapture,
		NakedPanic,
		DimCheck,
		SpanLeak,
	}
}

// Run applies every analyzer to every package, filters suppressed findings,
// and returns the surviving diagnostics sorted by position. Suppressions
// lacking a reason are reported under the pseudo-analyzer "lint-ignore".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for _, d := range sup.malformed {
			diags = append(diags, d)
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !sup.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// enclosingFuncDoc returns the doc comment text of the innermost function
// declaration containing pos, or "" when pos is not inside a declared
// function or the function has no doc comment.
func enclosingFuncDoc(files []*ast.File, pos token.Pos) string {
	if fd := enclosingFuncDecl(files, pos); fd != nil && fd.Doc != nil {
		return fd.Doc.Text()
	}
	return ""
}

// enclosingFuncDecl returns the function declaration containing pos, if any.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			return fd
		}
	}
	return nil
}
