// Package analysis is a small static-analysis framework for the fdx module,
// built entirely on the Go standard library (go/parser, go/ast, go/types,
// go/importer) so the repo keeps its zero-dependency invariant.
//
// The FDX pipeline (transform → Graphical Lasso → UDUᵀ → FD generation) is
// only trustworthy if it is deterministic and numerically safe, and the
// classic ways Go code silently loses both properties are statically
// detectable: float64 ==, map iteration feeding ordered output, goroutine
// capture bugs, undocumented panics, and unvalidated matrix dimensions.
// Each Analyzer in this package targets one of those failure modes.
//
// Diagnostics can be suppressed with a justification comment:
//
//	//fdx:lint-ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A suppression
// without a reason is itself reported. Functions whose doc comment contains
// the marker "fdx:numeric-kernel" are exempt from floatcmp: they are
// numerical kernels whose exact float comparisons (sparsity skips, sentinel
// checks) are deliberate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// StartLine/EndLine bound the flagged node's line span when the finding
	// was reported against a node (ReportRangef); suppression comments
	// anywhere in the span — or on the line above its start — cover the
	// finding. Zero values fall back to Pos.Line.
	StartLine int
	EndLine   int
}

// span returns the effective [start, end] line range of the finding.
func (d Diagnostic) span() (start, end int) {
	start, end = d.Pos.Line, d.Pos.Line
	if d.StartLine > 0 && d.StartLine < start {
		start = d.StartLine
	}
	if d.EndLine > end {
		end = d.EndLine
	}
	return start, end
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is a single named check. Intraprocedural analyzers set Run and
// see one package at a time; interprocedural analyzers set RunModule and
// see every loaded package plus the call graph at once. Exactly one of the
// two must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-line description shown by `fdxlint -list`.
	Doc string
	// Run inspects the package in pass and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded package set with call-graph
	// context. Set instead of Run for interprocedural analyzers.
	RunModule func(mpass *ModulePass)
	// SkipTestFiles drops the analyzer's findings located in _test.go files
	// (loaded by the -tests mode). Set for checks whose flagged constructs
	// are idiomatic in tests: exact float assertions in determinism tests,
	// panics in example code.
	SkipTestFiles bool
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (may be partially filled if the
	// package had type errors).
	Pkg *types.Package
	// Info holds the type information for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportRangef records a diagnostic at pos carrying node's full line span,
// so a suppression comment above (or anywhere inside) a multi-line flagged
// expression covers it even when pos sits on a later line.
func (p *Pass) ReportRangef(node ast.Node, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, rangeDiag(p.Fset, p.Analyzer.Name, node, pos, format, args...))
}

func rangeDiag(fset *token.FileSet, analyzer string, node ast.Node, pos token.Pos, format string, args ...any) Diagnostic {
	d := Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
	if node != nil {
		d.StartLine = fset.Position(node.Pos()).Line
		d.EndLine = fset.Position(node.End()).Line
	}
	return d
}

// ModulePass carries the whole loaded package set, plus the shared call
// graph, through one interprocedural analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	// Fset is the file set shared by every loaded package.
	Fset *token.FileSet
	// Packages are the loaded packages in deterministic (import path) order.
	Packages []*Package
	// Graph is the module call graph, built once and shared by every
	// interprocedural analyzer in the run.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportRangef records a diagnostic at pos carrying node's line span (see
// Pass.ReportRangef).
func (p *ModulePass) ReportRangef(node ast.Node, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, rangeDiag(p.Fset, p.Analyzer.Name, node, pos, format, args...))
}

// All returns the full analyzer suite in deterministic order: the
// intraprocedural analyzers first, then the interprocedural ones that
// need the module call graph.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		MapOrder,
		GoroutineCapture,
		NakedPanic,
		DimCheck,
		SpanLeak,
		ErrWrap,
		CtxFlow,
		DetSource,
		HotAlloc,
		ObsNames,
	}
}

// Run applies every analyzer to every package, filters suppressed findings,
// and returns the surviving diagnostics sorted by position. Suppressions
// lacking a reason are reported under the pseudo-analyzer "lint-ignore".
// Interprocedural analyzers (RunModule) see the whole package set at once,
// over a call graph built once per Run; suppressions apply to their
// findings the same way (they are keyed by file and line, so one global set
// covers both kinds).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := &suppressionSet{}
	for _, pkg := range pkgs {
		collectSuppressions(sup, pkg.Fset, pkg.Files)
	}
	diags = append(diags, sup.malformed...)

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}

	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		mpass := &ModulePass{
			Analyzer: a,
			Packages: pkgs,
			Graph:    graph,
			diags:    &raw,
		}
		if len(pkgs) > 0 {
			mpass.Fset = pkgs[0].Fset
		}
		a.RunModule(mpass)
	}

	skipInTests := map[string]bool{}
	for _, a := range analyzers {
		if a.SkipTestFiles {
			skipInTests[a.Name] = true
		}
	}
	for _, d := range raw {
		if skipInTests[d.Analyzer] && strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		if !sup.suppresses(d) {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// enclosingFuncDoc returns the doc comment text of the innermost function
// declaration containing pos, or "" when pos is not inside a declared
// function or the function has no doc comment.
func enclosingFuncDoc(files []*ast.File, pos token.Pos) string {
	if fd := enclosingFuncDecl(files, pos); fd != nil && fd.Doc != nil {
		return fd.Doc.Text()
	}
	return ""
}

// enclosingFuncDecl returns the function declaration containing pos, if any.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			return fd
		}
	}
	return nil
}
