package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// DimCheck flags linalg-style kernels — functions that element-access two
// or more dimensioned operands (matrices with rows/cols fields, numeric
// slices) — when nothing on the path validates that those dimensions agree.
// An out-of-shape multiply or triangular solve does not always crash: with
// row-major storage it can silently read the wrong stride and hand the
// Graphical Lasso a plausible-looking but corrupt matrix. A kernel is
// considered guarded when it compares operand dimensions (rows/cols/Dims/
// len) in a condition, directly or through locals derived from them, or
// calls a CheckDims-style validator.
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc:  "flags multi-operand matrix/vector kernels that never validate operand dimensions",
	Run:  runDimCheck,
	// Test helpers build fixed-shape fixtures; the contract the analyzer
	// protects is the library API's, not the tests'.
	SkipTestFiles: true,
}

func runDimCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkKernelDims(pass, fd)
		}
	}
}

func checkKernelDims(pass *Pass, fd *ast.FuncDecl) {
	params := dimensionedParams(pass.Info, fd)
	if len(params) < 2 {
		return
	}
	accessed := map[types.Object]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			// m.At(i,j), m.Set(...), m.Row(i), m.Add(...) on a matrix param.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if obj := paramObject(pass.Info, sel.X, params); obj != nil && isElementMethod(sel.Sel.Name) {
					accessed[obj] = params[obj]
				}
			}
		case *ast.IndexExpr:
			// v[i] on a slice param, or m.data[i] on a matrix param.
			if obj := paramObject(pass.Info, e.X, params); obj != nil {
				accessed[obj] = params[obj]
			}
			if sel, ok := e.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "data" {
				if obj := paramObject(pass.Info, sel.X, params); obj != nil {
					accessed[obj] = params[obj]
				}
			}
		case *ast.RangeStmt:
			// for i, v := range m.data
			if sel, ok := e.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "data" {
				if obj := paramObject(pass.Info, sel.X, params); obj != nil {
					accessed[obj] = params[obj]
				}
			}
		}
		return true
	})
	if len(accessed) < 2 {
		return
	}
	if hasDimGuard(pass, fd, params) {
		return
	}
	names := make([]string, 0, len(accessed))
	for _, name := range accessed {
		names = append(names, name)
	}
	sort.Strings(names)
	pass.Reportf(fd.Name.Pos(), "kernel %s element-accesses %s without validating their dimensions; compare rows/cols/len (or call a CheckDims helper) before touching elements", fd.Name.Name, strings.Join(names, ", "))
}

// dimensionedParams returns the objects of the function's matrix and
// numeric-slice parameters (receiver included), keyed to their names.
func dimensionedParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]string {
	params := map[types.Object]string{}
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if isMatrixType(obj.Type()) || isNumericSlice(obj.Type()) {
					params[obj] = name.Name
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return params
}

// isMatrixType reports whether t is a pointer to a struct carrying integer
// rows and cols fields — the shape of linalg.Dense and equivalents.
func isMatrixType(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := p.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var rows, cols bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b, ok := f.Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		switch f.Name() {
		case "rows":
			rows = true
		case "cols":
			cols = true
		}
	}
	return rows && cols
}

func isNumericSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isElementMethod(name string) bool {
	switch name {
	case "At", "Set", "Add", "Row":
		return true
	}
	return false
}

// paramObject resolves e to one of the dimensioned parameter objects, or nil.
func paramObject(info *types.Info, e ast.Expr, params map[types.Object]string) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objectOf(info, id)
	if obj == nil {
		return nil
	}
	if _, ok := params[obj]; !ok {
		return nil
	}
	return obj
}

// hasDimGuard reports whether the function compares operand dimensions in
// any condition. Dimension information flows from selectors rows/cols/
// Rows()/Cols()/Dims() and len() on a dimensioned param into locals; a
// condition referencing either the source expressions or a tainted local
// counts, as does a call to a *CheckDims* helper.
func hasDimGuard(pass *Pass, fd *ast.FuncDecl, params map[types.Object]string) bool {
	dimVars := map[types.Object]bool{}
	// First sweep: taint locals assigned from dimension expressions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		tainted := false
		for _, rhs := range as.Rhs {
			if mentionsDimExpr(pass, rhs, params, dimVars) {
				tainted = true
			}
		}
		if !tainted {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					dimVars[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil {
					dimVars[obj] = true
				}
			}
		}
		return true
	})
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch e := n.(type) {
		case *ast.IfStmt:
			if mentionsDimExpr(pass, e.Cond, params, dimVars) {
				guarded = true
				return false
			}
		case *ast.CallExpr:
			if calleeName(e).Contains("CheckDims") {
				for _, arg := range e.Args {
					if paramObject(pass.Info, arg, params) != nil {
						guarded = true
						return false
					}
				}
			}
		}
		return true
	})
	return guarded
}

type nameMatcher string

func (n nameMatcher) Contains(sub string) bool { return strings.Contains(string(n), sub) }

func calleeName(call *ast.CallExpr) nameMatcher {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return nameMatcher(f.Name)
	case *ast.SelectorExpr:
		return nameMatcher(f.Sel.Name)
	}
	return ""
}

// mentionsDimExpr reports whether e contains a dimension expression over one
// of the params (m.rows, m.Cols(), m.Dims(), len(v)) or a tainted local.
func mentionsDimExpr(pass *Pass, e ast.Expr, params map[types.Object]string, dimVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			switch x.Sel.Name {
			case "rows", "cols", "Rows", "Cols", "Dims":
				if paramObject(pass.Info, x.X, params) != nil {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "len" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) == 1 {
					if paramObject(pass.Info, x.Args[0], params) != nil {
						found = true
						return false
					}
				}
			}
		case *ast.Ident:
			if obj := objectOf(pass.Info, x); obj != nil && dimVars[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
