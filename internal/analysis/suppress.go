package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreMarker introduces a suppression comment:
//
//	//fdx:lint-ignore <analyzer|all> <reason>
//
// The suppression applies to diagnostics on the comment's own line (trailing
// comment) or on the line immediately below it (leading comment).
const ignoreMarker = "fdx:lint-ignore"

type suppression struct {
	analyzer string // analyzer name or "all"
	file     string
	line     int // line the suppression comment sits on
}

type suppressionSet struct {
	items     []suppression
	malformed []Diagnostic
}

// collectSuppressions gathers every fdx:lint-ignore comment in the files
// into set. Markers with no analyzer name or no reason are reported as
// malformed under the "lint-ignore" pseudo-analyzer: an unexplained
// suppression is exactly the kind of silent exception this toolchain
// exists to prevent.
func collectSuppressions(set *suppressionSet, fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint-ignore",
						Message:  "suppression is missing an analyzer name and a reason (//fdx:lint-ignore <analyzer> <reason>)",
					})
					continue
				}
				if len(fields) == 1 {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint-ignore",
						Message:  "suppression of " + fields[0] + " is missing a reason (//fdx:lint-ignore <analyzer> <reason>)",
					})
					continue
				}
				set.items = append(set.items, suppression{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
}

// suppresses reports whether d is covered by a suppression comment within
// the flagged node's line span, or on the line directly above its start.
// Findings reported without a node span degrade to the single Pos line, so
// the historic "same line or line above" behavior still holds for them.
func (s *suppressionSet) suppresses(d Diagnostic) bool {
	start, end := d.span()
	for _, it := range s.items {
		if it.file != d.Pos.Filename {
			continue
		}
		if it.analyzer != "all" && it.analyzer != d.Analyzer {
			continue
		}
		if it.line >= start-1 && it.line <= end {
			return true
		}
	}
	return false
}
