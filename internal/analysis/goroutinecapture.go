package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture flags two concurrency patterns that corrupt parallel
// kernels like the attribute-block transform and the stratified covariance:
//
//   - a `go func` literal that captures an enclosing loop variable. Go 1.22
//     made loop variables per-iteration, but the capture still hides the
//     goroutine's true inputs; pass the value as a parameter so the
//     semantics never depend on the language version.
//   - WaitGroup.Add called inside the spawned goroutine, which races with
//     the corresponding Wait: Wait can return before the goroutine has run
//     Add, dropping work silently.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "flags loop-variable capture and WaitGroup.Add placement errors in go statements",
	Run:  runGoroutineCapture,
}

func runGoroutineCapture(pass *Pass) {
	for _, f := range pass.Files {
		ast.Walk(gcVisitor{pass: pass, loopVars: map[types.Object]string{}}, f)
	}
}

type gcVisitor struct {
	pass     *Pass
	loopVars map[types.Object]string
}

func (v gcVisitor) Visit(n ast.Node) ast.Visitor {
	switch st := n.(type) {
	case *ast.ForStmt:
		if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			vars := v.extend()
			for _, lhs := range init.Lhs {
				vars.addLoopVar(lhs)
			}
			return vars
		}
	case *ast.RangeStmt:
		if st.Tok == token.DEFINE {
			vars := v.extend()
			vars.addLoopVar(st.Key)
			vars.addLoopVar(st.Value)
			return vars
		}
	case *ast.GoStmt:
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			v.checkGoFunc(fl)
		}
	}
	return v
}

func (v gcVisitor) extend() gcVisitor {
	vars := make(map[types.Object]string, len(v.loopVars)+2)
	for o, name := range v.loopVars {
		vars[o] = name
	}
	return gcVisitor{pass: v.pass, loopVars: vars}
}

func (v gcVisitor) addLoopVar(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := v.pass.Info.Defs[id]; obj != nil {
		v.loopVars[obj] = id.Name
	}
}

func (v gcVisitor) checkGoFunc(fl *ast.FuncLit) {
	reported := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			obj := v.pass.Info.Uses[e]
			if obj == nil || reported[obj] {
				return true
			}
			if name, ok := v.loopVars[obj]; ok {
				reported[obj] = true
				v.pass.Reportf(e.Pos(), "goroutine captures loop variable %s; pass it as a parameter (go func(%s ...) { ... }(%s))", name, name, name)
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && isWaitGroup(v.pass.Info, sel.X) {
				v.pass.Reportf(e.Pos(), "WaitGroup.Add inside the goroutine races with Wait; call Add before the go statement")
			}
		}
		return true
	})
}

func isWaitGroup(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	s := tv.Type.String()
	return s == "sync.WaitGroup" || s == "*sync.WaitGroup"
}
