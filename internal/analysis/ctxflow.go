package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the pipeline's cancellation contract along the call
// graph. Three rules:
//
//  1. No re-rooting: a function that receives a context.Context must not
//     call context.Background() or context.TODO() — doing so detaches its
//     callees from the caller's deadline, which is exactly how a cancelled
//     Discover keeps burning CPU.
//  2. No dropping: a function holding a ctx that calls the context-free
//     variant of an API with a *Context sibling (core.Discover when
//     core.DiscoverContext exists) silently severs propagation; call the
//     sibling and pass the ctx.
//  3. Cancellation liveness: in functions transitively reachable from the
//     pipeline's context entry points (any declared function whose name
//     ends in "Context" and takes a ctx), a loop that does real work —
//     calls into module code or nests another loop — must contain a
//     cancellation check: ctx.Err()/ctx.Done() directly, or a call that
//     hands the ctx to a callee that provably checks (a bottom-up summary
//     fact, so a loop whose body calls solveFrom is covered by solveFrom's
//     own per-sweep check).
//
// Leaf kernels that do not take a context are exempt by design: the
// contract is that their *callers* check at the call-granularity the
// public documentation promises (transform worker loops, glasso sweeps,
// ladder rungs, ordering search).
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "enforces context propagation and per-loop cancellation checks on the pipeline's call graph",
	RunModule: runCtxFlow,
}

func runCtxFlow(mpass *ModulePass) {
	graph := mpass.Graph

	// Bottom-up fact: does the function check cancellation on some path —
	// ctx.Err()/ctx.Done() in its own body, or ctx handed to a module
	// callee that checks? Mutual recursion iterates to fixpoint inside the
	// SCC (monotone boolean: at most len(scc) rounds).
	checksCancel := map[*Node]bool{}
	graph.BottomUp(func(scc []*Node) {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if checksCancel[n] || n.Decl == nil || n.Decl.Body == nil {
					continue
				}
				if nodeChecksCancel(n, checksCancel, graph) {
					checksCancel[n] = true
					changed = true
				}
			}
		}
	})

	// Roots: the pipeline's context entry points. Test declarations are not
	// entry points (see boundaryExported).
	var roots []*Node
	for _, n := range graph.ModuleNodes() {
		if strings.HasSuffix(n.Decl.Name.Name, "Context") && ctxParamObj(n) != nil && !inTestFile(mpass, n) {
			roots = append(roots, n)
		}
	}
	onPipeline := graph.Reachable(roots)

	for _, n := range graph.ModuleNodes() {
		if n.Decl.Body == nil {
			continue
		}
		ctxObj := ctxParamObj(n)
		if ctxObj == nil {
			continue
		}
		checkNoReroot(mpass, n)
		checkNoDrop(mpass, n)
		if onPipeline[n] {
			checkLoopCancellation(mpass, n, checksCancel)
		}
	}
}

// nodeChecksCancel reports whether n's body contains a direct cancellation
// check or passes its ctx to a callee already known to check.
func nodeChecksCancel(n *Node, facts map[*Node]bool, graph *CallGraph) bool {
	if containsCtxCheck(n.Pkg.Info, n.Decl.Body) {
		return true
	}
	for _, e := range n.Calls {
		if e.Call == nil || e.Callee.External() || !facts[e.Callee] {
			continue
		}
		if exprHasContextArg(n.Pkg.Info, e.Call) {
			return true
		}
	}
	return false
}

// containsCtxCheck reports whether the subtree calls Err() or Done() on a
// context-typed receiver (selects over Done() count through the Done call).
func containsCtxCheck(info *types.Info, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkNoReroot flags context.Background()/TODO() calls inside a function
// that already holds a ctx parameter.
func checkNoReroot(mpass *ModulePass, n *Node) {
	for _, e := range n.Calls {
		if e.Call == nil || e.Callee.Func == nil {
			continue
		}
		fn := e.Callee.Func
		if fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			continue
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			mpass.ReportRangef(e.Call, e.Site,
				"%s re-roots the context inside %s, which already receives a ctx; thread the parameter instead",
				"context."+fn.Name(), shortID(n.ID))
		}
	}
}

// checkNoDrop flags calls from a ctx-holding function to the context-free
// variant of an API whose *Context sibling exists in the same package.
func checkNoDrop(mpass *ModulePass, n *Node) {
	for _, e := range n.Calls {
		if e.Call == nil || e.Callee.Func == nil || e.Kind == EdgeRef {
			continue
		}
		fn := e.Callee.Func
		if sigHasContext(fn) || strings.HasSuffix(fn.Name(), "Context") {
			continue
		}
		sibling := siblingContextID(e.Callee)
		if sibling == "" {
			continue
		}
		if mpass.Graph.Lookup(sibling) == nil {
			continue
		}
		// FContext delegating to its own plain F is the sibling pair's
		// intended shape, not a drop.
		if n.ID == sibling {
			continue
		}
		mpass.ReportRangef(e.Call, e.Site,
			"%s drops the ctx: %s exists; call it and pass the context",
			shortID(e.Callee.ID), shortID(sibling))
	}
}

// siblingContextID derives the would-be ID of the ctx-taking sibling of a
// context-free function: ".F" → ".FContext" with the same receiver shape.
func siblingContextID(n *Node) string {
	i := strings.LastIndex(n.ID, ".")
	if i < 0 {
		return ""
	}
	return n.ID + "Context"
}

// checkLoopCancellation flags working loops on the pipeline that can spin
// past a cancelled context.
func checkLoopCancellation(mpass *ModulePass, n *Node, checksCancel map[*Node]bool) {
	info := n.Pkg.Info
	// Pre-index call edges by position so loop spans can locate the module
	// calls they contain.
	var flagged []ast.Node
	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		var body *ast.BlockStmt
		switch st := node.(type) {
		case *ast.ForStmt:
			body = st.Body
		case *ast.RangeStmt:
			body = st.Body
		default:
			return true
		}
		// A loop that contains its own check — or whose body hands the ctx
		// to a checking callee — is satisfied, and so are its inner loops.
		if containsCtxCheck(info, body) || loopCallsChecker(n, body, checksCancel) {
			return false
		}
		if loopDoesWork(n, body) {
			flagged = append(flagged, node)
			return false // the outermost offending loop is the finding
		}
		return true
	}
	ast.Inspect(n.Decl.Body, visit)
	for _, loop := range flagged {
		mpass.ReportRangef(loop, loop.Pos(),
			"loop on the pipeline (reachable from a *Context entry point) never checks cancellation; test ctx.Err() per iteration or call a ctx-checking callee")
	}
}

// loopCallsChecker reports whether some call inside the loop body passes a
// context to a module callee that checks cancellation.
func loopCallsChecker(n *Node, body *ast.BlockStmt, checksCancel map[*Node]bool) bool {
	for _, e := range n.Calls {
		if e.Call == nil || e.Site < body.Pos() || e.Site > body.End() {
			continue
		}
		if checksCancel[e.Callee] && exprHasContextArg(n.Pkg.Info, e.Call) {
			return true
		}
	}
	return false
}

// loopDoesWork reports whether the loop body is more than local glue: it
// calls into module code (per the call graph) or nests another loop.
func loopDoesWork(n *Node, body *ast.BlockStmt) bool {
	for _, e := range n.Calls {
		if e.Call == nil || e.Callee.External() {
			continue
		}
		if e.Site >= body.Pos() && e.Site <= body.End() {
			return true
		}
	}
	nested := false
	ast.Inspect(body, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			nested = true
		}
		return !nested
	})
	return nested
}
