// Package maporder is a fixture for the maporder analyzer.
package maporder

import "sort"

// Keys appends map keys in iteration order and never sorts them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want:maporder
		out = append(out, k)
	}
	return out
}

// SortedKeys appends map keys but sorts them afterwards: not a finding.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total accumulates a float over the map; the iteration order changes the
// low bits of the sum.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want:maporder
		sum += v
	}
	return sum
}

// Count is commutative aggregation: not a finding.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
