// Package hotalloc exercises the hotalloc analyzer: fdx:zero-alloc
// functions must be transitively free of allocating constructs; unmarked
// helpers may allocate, and reviewed suppressions are honored.
package hotalloc

// Dot is a clean zero-alloc kernel.
//
// fdx:zero-alloc
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy is clean and may call another clean marked kernel.
//
// fdx:zero-alloc
func Axpy(a float64, x, y []float64) float64 {
	for i := range x {
		y[i] += a * x[i]
	}
	return Dot(x, y)
}

// BadMake allocates directly.
//
// fdx:zero-alloc
func BadMake(n int) []float64 {
	buf := make([]float64, n) // want:hotalloc
	return buf
}

// BadTransitive calls a helper that allocates; the finding lands on the
// call site with the offending chain.
//
// fdx:zero-alloc
func BadTransitive(n int) []float64 {
	return scratch(n) // want:hotalloc
}

func scratch(n int) []float64 {
	return make([]float64, n)
}

// unmarked may allocate freely: no marker, no findings.
func unmarked(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Justified carries a reviewed exemption.
//
// fdx:zero-alloc
func Justified(n int) []float64 {
	//fdx:lint-ignore hotalloc fixture: one-time warmup allocation outside the steady state
	return make([]float64, n)
}

// BadBoxing boxes a concrete int into an interface parameter.
//
// fdx:zero-alloc
func BadBoxing(v int) {
	sink(v) // want:hotalloc
}

func sink(v any) { _ = v }

// BadClosure returns a closure that captures its parameter.
//
// fdx:zero-alloc
func BadClosure(n int) func() int {
	return func() int { return n } // want:hotalloc
}

// BadConcat concatenates strings on the hot path.
//
// fdx:zero-alloc
func BadConcat(a, b string) string {
	return a + b // want:hotalloc
}
