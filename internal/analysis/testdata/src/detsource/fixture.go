// Package detsource exercises the detsource analyzer: nondeterminism
// sources reachable from the exported boundary are flagged; seeded RNGs,
// unreachable helpers, and justified suppressions are not.
//
// fdx:lint-boundary — this fixture package stands in for an exported
// pipeline boundary.
package detsource

import (
	"math/rand"
	"runtime"
	"time"
)

// Solve is on the result path; helper's sources are reached through it.
func Solve(n int) float64 {
	return helper(n)
}

func helper(n int) float64 {
	t := time.Now() // want:detsource
	_ = t
	return rand.Float64() * float64(n) // want:detsource
}

// SeededSolve is clean: the RNG is constructed from a caller-controlled
// seed, and *rand.Rand methods are sanctioned.
func SeededSolve(seed int64, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() * float64(n)
}

// WorkerCount reads scheduler shape with a reviewed justification.
func WorkerCount() int {
	//fdx:lint-ignore detsource fixture: worker count feeds fixed-order chunking only, results are count-invariant
	return runtime.GOMAXPROCS(0)
}

// offPath is never reachable from an exported function, so its wall-clock
// read is not on the result path.
func offPath() time.Time {
	return time.Now()
}
