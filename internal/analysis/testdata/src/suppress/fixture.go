// Package suppress is a fixture for the suppression machinery.
package suppress

// InlineSuppressed carries a justified trailing suppression.
func InlineSuppressed(a, b float64) bool {
	return a == b //fdx:lint-ignore floatcmp fixture: equality is the point here
}

// LeadingSuppressed carries a justified suppression on the line above.
func LeadingSuppressed(a, b float64) bool {
	//fdx:lint-ignore floatcmp fixture: equality is the point here
	return a == b
}

// Wildcard suppresses every analyzer on the next line.
func Wildcard(a, b float64) bool {
	//fdx:lint-ignore all fixture: everything on the next line is intentional
	return a != b
}

// MultiLineSuppressed has the suppression above a comparison whose flagged
// operator sits two lines further down: the node's full line span, not the
// operator's line, decides coverage.
func MultiLineSuppressed(a, b, c float64) bool {
	//fdx:lint-ignore floatcmp fixture: the whole expression is one finding
	return (a +
		b +
		c) == c
}

// MissingReason has a suppression with no justification: the marker itself
// is reported and the finding it meant to cover survives.
func MissingReason(a, b float64) bool {
	//fdx:lint-ignore floatcmp
	return a == b
}

// WrongAnalyzer names a different analyzer, so the finding survives.
func WrongAnalyzer(a, b float64) bool {
	//fdx:lint-ignore maporder fixture: names the wrong analyzer
	return a == b
}
