// Package nakedpanic is a fixture for the nakedpanic analyzer.
package nakedpanic

// Checked rejects negative input without documenting how.
func Checked(n int) int {
	if n < 0 {
		panic("negative input") // want:nakedpanic
	}
	return n
}

// MustChecked is the documented variant. Panics if n is negative.
func MustChecked(n int) int {
	if n < 0 {
		panic("negative input")
	}
	return n
}
