// Package ctxflow exercises the ctxflow analyzer: context re-rooting,
// dropped-context calls, and unchecked working loops reachable from
// *Context entry points are flagged; checked loops, glue loops, and
// justified suppressions are not.
package ctxflow

import "context"

var sink int

func work(i int) { sink += i }

// RunContext is a pipeline entry point whose working loop never checks
// cancellation: the seeded violation.
func RunContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ { // want:ctxflow
		work(i)
	}
	return nil
}

// StepContext is clean: the working loop checks ctx.Err() every iteration,
// and the trailing glue loop (no module calls) needs no check.
func StepContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(i)
	}
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	sink = len(out)
	return nil
}

// LoopViaCalleeContext is clean interprocedurally: step's own ctx.Err()
// check covers the loop because the ctx is passed down.
func LoopViaCalleeContext(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		step(ctx)
	}
}

func step(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	work(0)
}

// RerootContext detaches its callees from the caller's deadline.
func RerootContext(ctx context.Context) {
	detached := context.Background() // want:ctxflow
	step(detached)
	if ctx.Err() != nil {
		return
	}
}

// Solve is the context-free variant of SolveContext.
func Solve(n int) int {
	work(n)
	return sink
}

// SolveContext is the cancellable variant.
func SolveContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return Solve(n)
}

// DropContext holds a ctx but calls the context-free Solve, severing
// propagation.
func DropContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return Solve(n) // want:ctxflow
}

// JustifiedContext re-roots with a reviewed reason.
func JustifiedContext(ctx context.Context) {
	//fdx:lint-ignore ctxflow fixture: detached audit log write must survive caller cancellation
	bg := context.Background()
	step(bg)
	if ctx.Err() != nil {
		return
	}
}
