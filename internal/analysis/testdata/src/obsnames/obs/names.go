// Package obs is a miniature metric-name registry standing in for
// internal/obs.
//
// fdx:lint-metric-names — this fixture package is the names registry.
package obs

const (
	// MUsed counts something real: documented and referenced by the fixture.
	MUsed = "fdx_used_total"
	// MUnused is documented but nothing ever records it.
	MUnused = "fdx_unused_total" // want:obsnames
	MUndoc  = "fdx_undoc_total"  // want:obsnames
)

// notMetric is unexported and not a metric name: exempt from both checks.
const notMetric = "fdx_internal_scratch"

// OtherConst has a non-metric value: exempt.
const OtherConst = "plain_string"

// Registry is the miniature metrics registry.
type Registry struct{}

// Counter registers a counter series by name.
func (r *Registry) Counter(name string) int { _ = name; return 0 }

// Labeled attaches labels to a metric name.
func Labeled(name string, kv ...string) string { _ = kv; return name }

// use keeps the unexported constant referenced within the package.
var _ = notMetric
