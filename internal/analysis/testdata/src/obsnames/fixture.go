// Package obsnames exercises the obsnames analyzer: raw "fdx_..." literals
// at obs registration sites must be flagged; named constants, non-obs
// calls, and non-metric strings must not.
package obsnames

import (
	"strings"

	"obsnames/obs"
)

// Record registers series the sanctioned way and the flagged way.
func Record(r *obs.Registry) {
	r.Counter(obs.MUsed)  // clean: named constant
	r.Counter(obs.MUndoc) // clean here (the constant's missing doc is flagged at its declaration)

	r.Counter("fdx_raw_total")                   // want:obsnames
	_ = obs.Labeled("fdx_other_total", "k", "v") // want:obsnames
	_ = obs.Labeled(obs.MUsed, "tenant", "acme") // clean: named constant with labels
}

// NotObs shows fdx_ literals outside obs calls are fine: asserting wire
// format, log messages, and local helpers are all legitimate.
func NotObs() bool {
	note("fdx_fine_total")
	return strings.Contains("fdx_used_total 3", "fdx_used_total")
}

func note(string) {}
