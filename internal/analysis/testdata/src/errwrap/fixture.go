// Package errwrap exercises the errwrap analyzer: bare error roots that
// escape the exported API must be flagged; taxonomy-rooted errors, errors
// confined to unexported code, and justified suppressions must not.
//
// fdx:lint-boundary — this fixture package stands in for an exported
// pipeline boundary.
package errwrap

import (
	"errors"
	"fmt"

	"errwrap/fdxerr"
)

// Exported returns a naked errors.New straight across the boundary.
func Exported(x int) error {
	if x < 0 {
		return errors.New("negative") // want:errwrap
	}
	return nil
}

// ExportedErrorf returns an un-%w'd fmt.Errorf across the boundary.
func ExportedErrorf(x int) error {
	if x < 0 {
		return fmt.Errorf("bad x: %d", x) // want:errwrap
	}
	return nil
}

// ExportedWrapped is clean: the chain is rooted in the taxonomy.
func ExportedWrapped(x int) error {
	if x < 0 {
		return fdxerr.BadInput("x = %d", x)
	}
	return nil
}

// ExportedSentinel is clean: %w wraps a taxonomy sentinel.
func ExportedSentinel(x int) error {
	if x < 0 {
		return fmt.Errorf("x = %d: %w", x, fdxerr.ErrBadInput)
	}
	return nil
}

// ExportedViaHelper leaks helper's bare error through two hops — the
// interprocedural case. The finding lands on the construction site inside
// deepHelper, not here.
func ExportedViaHelper() error {
	return helper()
}

func helper() error {
	if err := deepHelper(); err != nil {
		return fmt.Errorf("helper: %w", err)
	}
	return nil
}

func deepHelper() error {
	return errors.New("deep failure") // want:errwrap
}

// ExportedRewrapped is clean even though lower() is bare: the boundary
// return adds a taxonomy root to the chain before it escapes.
func ExportedRewrapped() error {
	if err := lower(); err != nil {
		return fmt.Errorf("%w: %w", fdxerr.ErrBadInput, err)
	}
	return nil
}

func lower() error {
	return errors.New("lower detail")
}

// ExportedJustified carries a reviewed suppression.
func ExportedJustified() error {
	//fdx:lint-ignore errwrap fixture: sentinel defined by an external spec, callers match by message
	return errors.New("externally specified")
}

// unexportedOnly never escapes the exported API; its bare error is not
// flagged.
func unexportedOnly() error {
	return errors.New("internal scratch")
}

var _ = unexportedOnly
