// Package fdxerr is the fixture's miniature error taxonomy, mirroring
// fdx/internal/fdxerr: sentinels plus wrapping helpers.
package fdxerr

import (
	"errors"
	"fmt"
)

// ErrBadInput is the fixture taxonomy's malformed-input sentinel.
var ErrBadInput = errors.New("bad input")

// BadInput wraps ErrBadInput with a formatted message.
func BadInput(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrBadInput)...)
}
