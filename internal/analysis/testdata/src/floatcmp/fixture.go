// Package floatcmp is a fixture for the floatcmp analyzer.
package floatcmp

// EqualWeights compares computed floats directly.
func EqualWeights(a, b float64) bool {
	return a == b // want:floatcmp
}

// Converged compares float32 operands for inequality.
func Converged(prev, cur float32) bool {
	return prev != cur // want:floatcmp
}

// CountMatches compares integers: not a finding.
func CountMatches(a, b int) bool {
	return a == b
}

// WithinTolerance compares floats through a tolerance: not a finding.
func WithinTolerance(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// SparsitySkip is exempt. (fdx:numeric-kernel: the exact zero is a
// sparsity sentinel, never a computed float.)
func SparsitySkip(v float64) bool {
	return v == 0
}
