// Package goroutinecapture is a fixture for the goroutinecapture analyzer.
package goroutinecapture

import "sync"

// Spawn launches one goroutine per item with both classic mistakes.
func Spawn(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		go func() {
			wg.Add(1) // want:goroutinecapture
			defer wg.Done()
			use(it) // want:goroutinecapture
		}()
	}
	wg.Wait()
}

// SpawnFixed passes the loop variable as a parameter and calls Add before
// the go statement: not a finding.
func SpawnFixed(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			use(it)
		}(it)
	}
	wg.Wait()
}

func use(int) {}
