// Package callgraph is the construction fixture for the call-graph tests:
// direct calls, concrete-receiver method calls, function-value references,
// dynamic call sites, closures attributed to their enclosing declaration,
// and recursion cycles (self and mutual) for the SCC order.
package callgraph

// Counter carries methods called through a concrete receiver.
type Counter struct{ n int }

func (c *Counter) Inc()    { c.n++ }
func (c Counter) Get() int { return c.n }

// Top exercises every edge kind from one body.
func Top(c *Counter) int {
	c.Inc()         // method call, pointer receiver
	helper(c)       // direct call
	f := indirect   // function value → Ref edge
	f()             // dynamic site
	apply(indirect) // Ref edge as an argument
	return c.Get()  // method call, value receiver
}

func helper(c *Counter) {
	c.Inc()
	if c.Get() < 10 {
		helper(c) // self recursion → singleton SCC with a self loop
	}
}

func indirect() {}

func apply(f func()) { f() } // dynamic site on a parameter

// even/odd form a two-node SCC.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// Closures attributes the literal's call to the enclosing declaration.
func Closures() {
	fn := func() { helper(&Counter{}) }
	fn()
}

var _ = even
