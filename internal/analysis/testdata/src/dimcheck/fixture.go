// Package dimcheck is a fixture for the dimcheck analyzer.
package dimcheck

type matrix struct {
	rows, cols int
	data       []float64
}

func (m *matrix) At(i, j int) float64     { return m.data[i*m.cols+j] }
func (m *matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// MulVec multiplies without ever validating operand shapes.
func MulVec(m *matrix, x []float64) []float64 { // want:dimcheck
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecChecked validates shapes before touching elements: not a finding.
func MulVecChecked(m *matrix, x []float64) []float64 {
	if m.cols != len(x) {
		return nil
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

// AddTo validates through a CheckDims helper: not a finding.
func AddTo(dst, src []float64) {
	CheckDims(dst, src)
	for i := range dst {
		dst[i] += src[i]
	}
}

// CheckDims verifies the operands have equal length.
// Panics if they differ.
func CheckDims(a, b []float64) {
	if len(a) != len(b) {
		panic("dimension mismatch")
	}
}
