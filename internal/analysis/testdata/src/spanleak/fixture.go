// Package spanleak is a fixture for the spanleak analyzer. It declares a
// local miniature of the obs API so the fixture type-checks on its own.
package spanleak

// Span is a live trace span; every started one must be ended.
type Span struct{ ended bool }

// End closes the span.
func (s *Span) End() { s.ended = true }

// Child starts a nested span.
func (s *Span) Child(name string) *Span { _ = name; return &Span{} }

// Tracer hands out root spans.
type Tracer struct{}

// StartSpan starts a root span.
func (t *Tracer) StartSpan(name string) *Span { _ = name; return &Span{} }

// Hooks mirrors the obs.Hooks start verbs.
type Hooks struct{ T *Tracer }

// Start starts a span.
func (h Hooks) Start(name string) *Span { return h.T.StartSpan(name) }

// StartStage starts a stage span.
func (h Hooks) StartStage(name string) *Span { return h.T.StartSpan(name) }

// Job.Start returns a Status with no End method: not a span.
type Job struct{}

// Status has no End method.
type Status struct{}

// Start begins the job.
func (j *Job) Start(name string) *Status { _ = name; return &Status{} }

// DroppedResult discards the span outright.
func DroppedResult(t *Tracer) {
	t.StartSpan("work") // want:spanleak
}

// BlankAssign hides the drop behind the blank identifier.
func BlankAssign(h Hooks) {
	_ = h.Start("work") // want:spanleak
}

// NeverEnded starts and tracks a span but never ends it.
func NeverEnded(h Hooks) {
	sp := h.StartStage("work") // want:spanleak
	sp.Child("inner").End()
}

// DeferredStart defers the start call itself, discarding the span.
func DeferredStart(t *Tracer) {
	defer t.StartSpan("work") // want:spanleak
}

// ProperDefer is the canonical clean pattern.
func ProperDefer(h Hooks) {
	sp := h.Start("work")
	defer sp.End()
}

// EndInClosure ends the span inside a deferred closure: clean.
func EndInClosure(h Hooks) {
	sp := h.StartStage("work")
	defer func() {
		sp.Ended()
		sp.End()
	}()
}

// Ended reports whether the span was closed.
func (s *Span) Ended() bool { return s.ended }

// ReturnTransfer hands the span to the caller: clean.
func ReturnTransfer(h Hooks) *Span {
	return h.Start("work")
}

// NamedReturnTransfer tracks then returns: clean.
func NamedReturnTransfer(h Hooks) *Span {
	sp := h.Start("work")
	sp.Child("inner").End()
	return sp
}

// NotASpan starts something without an End method: not a finding.
func NotASpan(j *Job) {
	j.Start("work")
	_ = j.Start("other")
}

// ExplicitEndOnEveryPath ends the span on both branches: clean.
func ExplicitEndOnEveryPath(h Hooks, fail bool) error {
	sp := h.StartStage("work")
	if fail {
		sp.End()
		return errNope
	}
	sp.End()
	return nil
}

type nopeError struct{}

func (nopeError) Error() string { return "nope" }

var errNope error = nopeError{}
