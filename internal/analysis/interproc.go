package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared plumbing for the interprocedural analyzers: which packages form
// the module's exported error boundary, which functions carry a
// context.Context, and which doc-comment markers sanction exceptions.

// boundaryDirective marks a package (any file-level comment) as an exported
// error/determinism boundary, in addition to the built-in list below. The
// analyzer fixtures under testdata use it; production packages are named
// explicitly so the contract cannot be dropped by deleting a comment.
const boundaryDirective = "fdx:lint-boundary"

// defaultBoundaryPaths are the packages whose exported functions form the
// pipeline's API surface: every error escaping them must be matchable to
// the fdxerr taxonomy, and everything reachable from them is on the
// deterministic result path.
var defaultBoundaryPaths = map[string]bool{
	"fdx":                     true,
	"fdx/internal/core":       true,
	"fdx/internal/glasso":     true,
	"fdx/internal/checkpoint": true,
}

// isBoundaryPackage reports whether pkg's exported functions are a
// contract boundary.
func isBoundaryPackage(pkg *Package) bool {
	if defaultBoundaryPaths[pkg.ImportPath] {
		return true
	}
	return packageHasDirective(pkg, boundaryDirective)
}

// packageHasDirective reports whether any comment in the package contains
// the marker.
func packageHasDirective(pkg *Package, marker string) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			if strings.Contains(cg.Text(), marker) {
				return true
			}
		}
	}
	return false
}

// boundaryExported returns the module nodes that are exported functions or
// methods of boundary packages, sorted deterministically (ModuleNodes
// order). Functions declared in _test.go files never qualify: tests are not
// API surface, so TestXxx/BenchmarkXxx and exported test helpers do not root
// the escape or taint analyses even when -tests loads them.
func boundaryExported(mpass *ModulePass) []*Node {
	var out []*Node
	for _, n := range mpass.Graph.ModuleNodes() {
		if n.Decl == nil || !n.Decl.Name.IsExported() || inTestFile(mpass, n) {
			continue
		}
		if isBoundaryPackage(n.Pkg) {
			out = append(out, n)
		}
	}
	return out
}

// inTestFile reports whether the node is declared in a _test.go file.
func inTestFile(mpass *ModulePass, n *Node) bool {
	return n.Decl != nil && strings.HasSuffix(mpass.Fset.Position(n.Decl.Pos()).Filename, "_test.go")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxParamObj returns the object of n's first context.Context parameter, or
// nil when the function does not take a context.
func ctxParamObj(n *Node) types.Object {
	if n.Decl == nil || n.Decl.Type.Params == nil || n.Pkg == nil {
		return nil
	}
	for _, field := range n.Decl.Type.Params.List {
		for _, name := range field.Names {
			obj := n.Pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// sigHasContext reports whether fn's signature takes a context.Context.
func sigHasContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// docHasMarker reports whether the node's doc comment contains marker.
func docHasMarker(n *Node, marker string) bool {
	return n.Decl != nil && n.Decl.Doc != nil && strings.Contains(n.Decl.Doc.Text(), marker)
}

// shortID strips the module path prefix from a node ID for readable
// diagnostics: "fdx/internal/glasso.SolveContext" → "glasso.SolveContext".
func shortID(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		// Keep everything after the last slash; method IDs like
		// "(*fdx/internal/linalg.Dense).At" keep their receiver shape.
		if strings.HasPrefix(id, "(") {
			return "(" + strings.TrimPrefix(id[i+1:], "(")
		}
		return id[i+1:]
	}
	return id
}

// renderPath renders a call path for diagnostics.
func renderPath(path []string) string {
	short := make([]string, len(path))
	for i, id := range path {
		short[i] = shortID(id)
	}
	return strings.Join(short, " → ")
}

// isTaxonomyPackage reports whether p is the fdxerr taxonomy package (or a
// fixture's miniature stand-in, any package whose path ends in "fdxerr").
func isTaxonomyPackage(p *types.Package) bool {
	if p == nil {
		return false
	}
	return p.Path() == "fdxerr" || strings.HasSuffix(p.Path(), "/fdxerr")
}

// exprHasContextArg reports whether any argument of call has static type
// context.Context according to info.
func exprHasContextArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}
