package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// zeroAllocMarker in a function's doc comment declares the function part of
// a zero-allocation steady state: it, and everything it calls, must be free
// of allocating constructs. The runtime complement is the
// testing.AllocsPerRun gates in kernels_test.go / parallel_test.go /
// incremental_test.go; this analyzer is the static one, so a regression is
// caught at lint time with the exact construct named, not as an opaque
// "got 3 allocs" bench failure.
const zeroAllocMarker = "fdx:zero-alloc"

// HotAlloc verifies fdx:zero-alloc-marked functions transitively. Flagged
// constructs: make and new, append (may grow), slice/map/pointer composite
// literals, string concatenation and string<->[]byte conversions, closures
// that capture variables, and interface boxing at call arguments (the
// fmt-style hidden allocation). Calls are followed bottom-up through the
// call graph: a marked function calling a helper that allocates is flagged
// at the call site with the offending chain. Dynamic calls (function
// values, interface methods) cannot be proven allocation-free and are
// flagged conservatively — zero-alloc kernels are leaves by design.
//
// External (stdlib) callees outside a known-allocating set (fmt, strings,
// strconv, errors, sort, bytes) are trusted: the marked kernels call only
// math and intrinsics, and the runtime gates back the assumption.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "verifies fdx:zero-alloc functions are transitively free of allocating constructs",
	RunModule: runHotAlloc,
}

// allocFact summarizes one function for its callers: the first allocating
// construct on any path through it, or nil when provably clean.
type allocFact struct {
	// what describes the construct ("make", "growing append", ...).
	what string
	// where is the construct's position, for the diagnostic chain.
	where token.Position
	// via names the call chain from the summarized function to the
	// construct ("" when the construct is the function's own).
	via string
}

// allocExternalPkgs are stdlib packages whose calls count as allocating.
var allocExternalPkgs = map[string]bool{
	"fmt": true, "strings": true, "strconv": true,
	"errors": true, "sort": true, "bytes": true,
}

func runHotAlloc(mpass *ModulePass) {
	graph := mpass.Graph
	facts := map[*Node]*allocFact{}

	graph.BottomUp(func(scc []*Node) {
		for _, n := range scc {
			if n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			facts[n] = summarizeAllocs(mpass, n, facts)
		}
	})

	for _, n := range graph.ModuleNodes() {
		if !docHasMarker(n, zeroAllocMarker) || n.Decl.Body == nil {
			continue
		}
		reportAllocs(mpass, n, facts)
	}
}

// summarizeAllocs computes the function's own first allocating construct;
// callee facts are folded in lazily at report time so the summary stays
// cheap (one scan per function) and the chain names the path actually
// reported.
func summarizeAllocs(mpass *ModulePass, n *Node, facts map[*Node]*allocFact) *allocFact {
	sites := allocSites(n, 1)
	if len(sites) > 0 {
		return &allocFact{what: sites[0].what, where: mpass.Fset.Position(sites[0].pos)}
	}
	if len(n.Dynamic) > 0 {
		return &allocFact{what: "dynamic call (cannot be proven allocation-free)", where: mpass.Fset.Position(n.Dynamic[0])}
	}
	for _, e := range n.Calls {
		if e.Call == nil {
			continue
		}
		if f := calleeAllocFact(e.Callee, facts); f != nil {
			via := shortID(e.Callee.ID)
			if f.via != "" {
				via += " → " + f.via
			}
			return &allocFact{what: f.what, where: f.where, via: via}
		}
	}
	return nil
}

// calleeAllocFact resolves the fact for a callee: module callees use their
// computed summary; external callees allocate iff they belong to the
// known-allocating stdlib set.
func calleeAllocFact(callee *Node, facts map[*Node]*allocFact) *allocFact {
	if !callee.External() {
		return facts[callee]
	}
	if callee.Func != nil && callee.Func.Pkg() != nil && allocExternalPkgs[callee.Func.Pkg().Path()] {
		return &allocFact{what: "call into allocating stdlib package " + callee.Func.Pkg().Path()}
	}
	return nil
}

// reportAllocs emits every violation inside one marked function: its own
// allocating constructs, its dynamic calls, and each call edge whose callee
// chain allocates.
func reportAllocs(mpass *ModulePass, n *Node, facts map[*Node]*allocFact) {
	name := shortID(n.ID)
	for _, s := range allocSites(n, 0) {
		mpass.ReportRangef(s.node, s.pos, "%s in fdx:zero-alloc function %s", s.what, name)
	}
	for _, pos := range n.Dynamic {
		mpass.Reportf(pos, "dynamic call in fdx:zero-alloc function %s cannot be proven allocation-free", name)
	}
	for _, e := range n.Calls {
		if e.Call == nil {
			continue
		}
		f := calleeAllocFact(e.Callee, facts)
		if f == nil {
			continue
		}
		chain := shortID(e.Callee.ID)
		if f.via != "" {
			chain += " → " + f.via
		}
		// Base name only: diagnostics (and the lint baseline keyed on their
		// messages) must not embed checkout-specific absolute paths.
		detail := f.what
		if f.where.IsValid() {
			detail = fmt.Sprintf("%s at %s:%d", f.what, filepath.Base(f.where.Filename), f.where.Line)
		}
		mpass.ReportRangef(e.Call, e.Site, "fdx:zero-alloc function %s calls %s, which allocates (%s)", name, chain, detail)
	}
}

type allocSite struct {
	pos  token.Pos
	node ast.Node
	what string
}

// allocSites scans the function body for allocating constructs, returning
// up to limit sites (0 = all) in source order.
func allocSites(n *Node, limit int) []allocSite {
	info := n.Pkg.Info
	var sites []allocSite
	add := func(node ast.Node, pos token.Pos, what string) {
		sites = append(sites, allocSite{pos: pos, node: node, what: what})
	}
	full := func() bool { return limit > 0 && len(sites) >= limit }

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if full() {
			return false
		}
		switch e := node.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						add(e, e.Pos(), "make")
					case "new":
						add(e, e.Pos(), "new")
					case "append":
						add(e, e.Pos(), "growing append")
					}
					return true
				}
			}
			if conv, ok := stringByteConversion(info, e); ok {
				add(e, e.Pos(), conv)
				return true
			}
			boxingSites(info, e, add)
		case *ast.CompositeLit:
			t := typeOf(info, e)
			if t == nil {
				return true
			}
			switch types.Unalias(t).Underlying().(type) {
			case *types.Slice:
				add(e, e.Pos(), "slice literal")
			case *types.Map:
				add(e, e.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e, e.Pos(), "&composite literal (escaping pointer)")
				}
			}
		case *ast.FuncLit:
			if capturesVariables(info, e) {
				add(e, e.Pos(), "closure capturing variables")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(info, e.X) {
				add(e, e.OpPos, "string concatenation")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(info, e.Lhs[0]) {
				add(e, e.TokPos, "string concatenation")
			}
		}
		return true
	})
	return sites
}

// stringByteConversion detects string([]byte) / []byte(string) / []rune
// conversions, which copy.
func stringByteConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	dst := types.Unalias(tv.Type).Underlying()
	src := typeOf(info, call.Args[0])
	if src == nil {
		return "", false
	}
	srcU := types.Unalias(src).Underlying()
	dstStr := isStringType(dst)
	srcStr := isStringType(srcU)
	dstSlice := isByteOrRuneSlice(dst)
	srcSlice := isByteOrRuneSlice(srcU)
	if (dstStr && srcSlice) || (dstSlice && srcStr) {
		return "string/[]byte conversion (copies)", true
	}
	return "", false
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxingSites reports call arguments where a concrete value meets an
// interface parameter — the hidden allocation behind fmt-style APIs.
func boxingSites(info *types.Info, call *ast.CallExpr, add func(ast.Node, token.Pos, string)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			last, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = last.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || types.IsInterface(types.Unalias(at).Underlying()) {
			continue
		}
		if b, ok := types.Unalias(at).Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		add(arg, arg.Pos(), "interface boxing of "+at.String())
	}
}

// capturesVariables reports whether the literal's body references variables
// declared outside it (a capturing closure allocates its environment).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if captured {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.IsField() {
			return true
		}
		// Package-level vars are not captured; anything declared before the
		// literal but used inside it is.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
