package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map when the loop body builds ordered
// output — appending to a slice, writing slice elements, sending on a
// channel, building a string, or printing. Go randomizes map iteration
// order per run, so such loops are the classic source of nondeterministic
// FD lists, tableaux, and orderings. Commutative aggregation (counting,
// summing, filling another map or set) is order-insensitive and not
// flagged, and an appended slice that is subsequently passed to a
// sort/slices call in the same function is considered fixed up.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range over maps in code that builds ordered output (FD lists, tableaux, orderings)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMap(pass.Info, rng.X) {
				return true
			}
			sink, target := orderedSink(pass, rng.Body)
			if sink == "" {
				return true
			}
			if target != nil && sortedAfter(pass, f, rng, target) {
				return true
			}
			pass.Reportf(rng.For, "map iteration order is nondeterministic but this loop %s; iterate over sorted keys or sort the result", sink)
			return true
		})
	}
}

func isMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// orderedSink scans the loop body for a statement whose effect depends on
// iteration order. It returns a description of the first sink found and,
// for slice appends/writes, the object of the slice variable (so the caller
// can look for a later sort).
func orderedSink(pass *Pass, body *ast.BlockStmt) (sink string, target types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) and s[i] = v with s a slice; also
			// order-dependent string building via s += ...
			for i, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, call) && i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						sink, target = "appends to "+id.Name, objectOf(pass.Info, id)
					} else {
						sink = "appends to a slice"
					}
					return false
				}
			}
			for _, lhs := range st.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && isSlice(pass.Info, ix.X) {
					if id, ok := ix.X.(*ast.Ident); ok {
						sink, target = "writes elements of "+id.Name, objectOf(pass.Info, id)
					} else {
						sink = "writes slice elements"
					}
					return false
				}
			}
			if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 && isString(pass.Info, st.Lhs[0]) {
				sink = "concatenates a string"
				return false
			}
			// Float accumulation: addition is not associative, so the
			// iteration order changes the result in the last ulps — enough
			// to flip exact tie-breaks downstream.
			if (st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN) && len(st.Lhs) == 1 && isFloat(pass.Info, st.Lhs[0]) {
				sink = "accumulates a float (addition order changes the low bits)"
				return false
			}
		case *ast.SendStmt:
			sink = "sends on a channel"
			return false
		case *ast.CallExpr:
			if name, ok := printLikeCall(pass.Info, st); ok {
				sink = "calls " + name
				return false
			}
		}
		return true
	})
	return sink, target
}

// sortedAfter reports whether target is passed, after the range statement
// and within the same enclosing function (or file scope when the loop is
// not inside a declared function), to a call that canonicalizes its order:
// anything in package sort or slices, or a helper whose name mentions Sort
// (e.g. core.SortFDs).
func sortedAfter(pass *Pass, f *ast.File, rng *ast.RangeStmt, target types.Object) bool {
	var scope ast.Node = f
	if fd := enclosingFuncDecl(pass.Files, rng.Pos()); fd != nil {
		scope = fd
	}
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return true
		}
		if !isSortingCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && objectOf(pass.Info, id) == target {
				found = true
			}
		}
		return true
	})
	return found
}

func isSortingCall(call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(f.Name, "Sort")
	case *ast.SelectorExpr:
		if pkg, ok := f.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
			return true
		}
		return strings.Contains(f.Sel.Name, "Sort")
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Slice)
	return ok
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// printLikeCall matches fmt print/sprint functions and Write* methods on
// string/byte builders — sinks whose output order is the iteration order.
func printLikeCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
		return "fmt." + sel.Sel.Name, true
	}
	if len(sel.Sel.Name) >= 5 && sel.Sel.Name[:5] == "Write" {
		tv, ok := info.Types[sel.X]
		if ok && tv.Type != nil {
			s := tv.Type.String()
			if s == "*strings.Builder" || s == "strings.Builder" || s == "*bytes.Buffer" || s == "bytes.Buffer" {
				return tv.Type.String() + "." + sel.Sel.Name, true
			}
		}
	}
	return "", false
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
