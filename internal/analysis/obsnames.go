package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ObsNames is the metric-name hygiene analyzer. The observability layer's
// contract is that internal/obs/names.go is the single registry of metric
// names: dashboards, the flight recorder, and the Prometheus endpoint all
// key on those strings, so a name that exists only as a scattered literal
// (or a constant nothing records) silently breaks the telemetry story.
// Two checks enforce it:
//
//  1. Every exported metric-name constant (a top-level string constant
//     whose value starts with "fdx_") must carry a doc comment saying what
//     the series measures, and must be referenced somewhere outside its
//     declaring file — an unreferenced name is a metric nothing records,
//     i.e. a dashboard that will silently stay empty.
//  2. Outside the obs package family, metric names passed to obs
//     registration calls (Registry.Counter/Gauge/Histogram, Labeled,
//     Hooks.Count, ...) must be the named constants, not raw "fdx_..."
//     literals that can drift from names.go.
//
// Test files are exempt from check 2 (SkipTestFiles): asserting the wire
// format with the literal string is exactly what a telemetry test should
// do. Fixtures mark their miniature names package with the
// fdx:lint-metric-names directive; in production the package is
// internal/obs itself.
var ObsNames = &Analyzer{
	Name:          "obsnames",
	Doc:           "checks metric names: names.go constants documented and recorded, no raw fdx_ literals at obs call sites",
	RunModule:     runObsNames,
	SkipTestFiles: true,
}

// obsNamesDirective marks a fixture package as the metric-name registry.
const obsNamesDirective = "fdx:lint-metric-names"

// namesPackage locates the metric-name registry package.
func namesPackage(mpass *ModulePass) *Package {
	for _, pkg := range mpass.Packages {
		if pkg.ImportPath == "fdx/internal/obs" ||
			strings.HasSuffix(pkg.ImportPath, "/internal/obs") ||
			packageHasDirective(pkg, obsNamesDirective) {
			return pkg
		}
	}
	return nil
}

// metricConst is one exported "fdx_..." string constant of the names
// package.
type metricConst struct {
	file   string // declaring file (uses there don't count as references)
	hasDoc bool
	used   bool
	pos    token.Pos
}

func runObsNames(mpass *ModulePass) {
	names := namesPackage(mpass)
	if names == nil {
		return
	}

	consts := map[string]*metricConst{}
	for _, f := range names.Files {
		file := mpass.Fset.Position(f.Pos()).Filename
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				name := vs.Names[0]
				if !name.IsExported() || !isMetricLit(vs.Values[0]) {
					continue
				}
				consts[name.Name] = &metricConst{
					file:   file,
					hasDoc: vs.Doc != nil || (len(gd.Specs) == 1 && gd.Doc != nil),
					pos:    name.Pos(),
				}
			}
		}
	}
	if len(consts) == 0 && names.ImportPath != "fdx/internal/obs" {
		return // a directive-less near-miss (some other */internal/obs)
	}

	// Pass over every package: mark constant references, and flag raw
	// literals fed to obs registration calls from outside the obs family.
	for _, pkg := range mpass.Packages {
		for ident, obj := range pkg.Info.Uses {
			c, ok := obj.(*types.Const)
			if !ok || c.Pkg() == nil || c.Pkg().Path() != names.ImportPath {
				continue
			}
			mc := consts[c.Name()]
			if mc == nil {
				continue
			}
			if mpass.Fset.Position(ident.Pos()).Filename != mc.file {
				mc.used = true
			}
		}
		if pkg.ImportPath == names.ImportPath ||
			strings.HasPrefix(pkg.ImportPath, names.ImportPath+"/") {
			continue // the obs family itself may spell names out
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != names.ImportPath {
					return true
				}
				for _, arg := range call.Args {
					if lit, val := metricLit(arg); lit != nil {
						mpass.ReportRangef(call, lit.Pos(),
							"raw metric name %q passed to %s.%s: use (or add) the named constant in %s",
							val, fn.Pkg().Name(), fn.Name(), names.ImportPath)
					}
				}
				return true
			})
		}
	}

	for _, name := range sortedConstNames(consts) {
		mc := consts[name]
		if !mc.hasDoc {
			mpass.Reportf(mc.pos,
				"metric name constant %s has no doc comment saying what the series measures", name)
		}
		if !mc.used {
			mpass.Reportf(mc.pos,
				"metric name constant %s is never referenced outside its declaring file: nothing records the series", name)
		}
	}
}

// metricLit returns arg as a string literal beginning with "fdx_", with its
// unquoted value, or (nil, "").
func metricLit(arg ast.Expr) (*ast.BasicLit, string) {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil, ""
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.HasPrefix(val, "fdx_") {
		return nil, ""
	}
	return lit, val
}

// isMetricLit reports whether expr is a "fdx_..." string literal.
func isMetricLit(expr ast.Expr) bool {
	lit, _ := metricLit(expr)
	return lit != nil
}

// sortedConstNames returns the constant names in declaration-independent
// (alphabetical) order so findings are deterministic.
func sortedConstNames(consts map[string]*metricConst) []string {
	names := make([]string, 0, len(consts))
	for n := range consts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
