package analysis

import (
	"fmt"
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "pkg/file.go", Line: 12, Column: 3},
		Analyzer: "floatcmp",
		Message:  "floating-point == comparison",
	}
	want := "pkg/file.go:12:3: [floatcmp] floating-point == comparison"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{
		"floatcmp", "maporder", "goroutinecapture", "nakedpanic", "dimcheck", "spanleak",
		"errwrap", "ctxflow", "detsource", "hotalloc", "obsnames",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
	}
}

// fixtureLine returns the 1-based line whose trimmed content equals needle,
// so the suppression tests track edits to the fixture.
func fixtureLine(t *testing.T, path, needle string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == needle {
			return i + 1
		}
	}
	t.Fatalf("%s: line %q not found", path, needle)
	return 0
}

func TestSuppressions(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp})

	path := filepath.Join("testdata", "src", "suppress", "fixture.go")
	missing := fixtureLine(t, path, "//fdx:lint-ignore floatcmp")
	wrong := fixtureLine(t, path, "//fdx:lint-ignore maporder fixture: names the wrong analyzer")
	want := map[string][]string{
		key(path, missing):   {"lint-ignore"},
		key(path, missing+1): {"floatcmp"},
		key(path, wrong+1):   {"floatcmp"},
	}
	got := byLine(diags)
	for k, names := range want {
		if len(got[k]) != len(names) || got[k][0] != names[0] {
			t.Errorf("%s: want %v, got %v", k, names, got[k])
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (justified suppressions must filter their findings): %v", len(diags), diags)
	}
}

func key(path string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(path), line)
}

// TestSuppressionCoversMultiLineSpan is the regression test for suppression
// comments over multi-line flagged expressions: floatcmp reports at the
// operator position, which can sit lines below the expression start, and the
// suppression above the first line must still cover it.
func TestSuppressionCoversMultiLineSpan(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp})

	path := filepath.Join("testdata", "src", "suppress", "fixture.go")
	op := fixtureLine(t, path, "c) == c")
	for _, d := range diags {
		if d.Pos.Line == op {
			t.Errorf("multi-line comparison still flagged at line %d despite span suppression: %v", op, d)
		}
	}
}

func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load shells out to the source importer")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pkg := range pkgs {
		if pkg.ImportPath == "fdx/internal/analysis" {
			found = true
		}
		if strings.Contains(pkg.Dir, "testdata") {
			t.Errorf("LoadModule descended into testdata: %s", pkg.Dir)
		}
	}
	if !found {
		t.Error("LoadModule did not load fdx/internal/analysis")
	}
}

// TestLoadDirTestsMode checks test-file loading: in-package _test.go files
// merge into the base package; an external (package p_test) file becomes a
// second package with a "_test"-suffixed import path.
func TestLoadDirTestsMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("base.go", "package p\n\nfunc F() int { return 1 }\n")
	write("in_test.go", "package p\n\nfunc helper() int { return F() }\n\nvar _ = helper\n")
	write("ext_test.go", "package p_test\n\nfunc G() int { return 2 }\n\nvar _ = G\n")

	fset := token.NewFileSet()
	loaded, err := loadDir(fset, importer.ForCompiler(fset, "source", nil), dir, "p", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d packages, want 2 (base+in-package tests, external tests)", len(loaded))
	}
	if got := len(loaded[0].Files); loaded[0].ImportPath != "p" || got != 2 {
		t.Errorf("base package = %s with %d files, want p with 2", loaded[0].ImportPath, got)
	}
	if got := len(loaded[1].Files); loaded[1].ImportPath != "p_test" || got != 1 {
		t.Errorf("external test package = %s with %d files, want p_test with 1", loaded[1].ImportPath, got)
	}
	for _, pkg := range loaded {
		if len(pkg.TypeErrors) != 0 {
			t.Errorf("%s: unexpected type errors: %v", pkg.ImportPath, pkg.TypeErrors)
		}
	}

	// Without tests, the _test.go files stay invisible.
	fset2 := token.NewFileSet()
	plain, err := loadDir(fset2, importer.ForCompiler(fset2, "source", nil), dir, "p", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || len(plain[0].Files) != 1 {
		t.Errorf("tests=false loaded %d packages / %d files, want 1/1", len(plain), len(plain[0].Files))
	}
}

// TestLoadDirHonorsBuildConstraints writes a package whose two files carry
// mutually exclusive build constraints — as the per-architecture SIMD
// kernel pairs in internal/linalg do — and checks that exactly one is
// loaded, so the pair never produces redeclaration type errors.
func TestLoadDirHonorsBuildConstraints(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("yes.go", "//go:build "+runtime.GOARCH+"\n\npackage p\n\nfunc impl() int { return 1 }\n")
	write("no.go", "//go:build !"+runtime.GOARCH+"\n\npackage p\n\nfunc impl() int { return 2 }\n")
	write("common.go", "package p\n\nvar _ = impl\n")

	pkg, err := LoadDir(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("LoadDir returned no package")
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors from a constraint-split package: %v", pkg.TypeErrors)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (the matching half plus common.go)", len(pkg.Files))
	}
}
