package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrWrap enforces the typed-error contract interprocedurally: every error
// that can escape an exported function of a boundary package (fdx,
// internal/core, internal/glasso, internal/checkpoint) must be
// errors.Is-matchable to the internal/fdxerr taxonomy. It flags the
// *construction sites* that break the contract — `errors.New(...)` and
// `fmt.Errorf` without a %w verb — when the value they produce can reach a
// boundary return, including through any chain of unexported helpers: the
// analyzer computes, bottom-up over the call graph, which callees' error
// results each function passes through its own returns, then propagates
// "escapes the exported API" top-down from the boundary.
//
// Errors that merely pass through from outside the module (an os.Open
// failure wrapped with %w) are not flagged: their own sentinel chains stay
// matchable and they are not this module's to classify. Wrapping a bare
// error with %w does not launder it — the chain still has no taxonomy
// root — so `fmt.Errorf("stage: %w", errors.New("x"))` flags the
// errors.New.
var ErrWrap = &Analyzer{
	Name:      "errwrap",
	Doc:       "flags errors escaping exported boundaries that cannot errors.Is-match the fdxerr taxonomy",
	RunModule: runErrWrap,
}

// errOrigin classifies where an error expression's chain can be rooted.
type errOrigin struct {
	// taxonomy is set when the chain provably contains a fdxerr sentinel.
	taxonomy bool
	// bares are construction sites of taxonomy-free roots (errors.New,
	// fmt.Errorf without %w) feeding the expression.
	bares []bareSite
	// callees are module functions whose error result feeds the expression.
	callees []string
}

type bareSite struct {
	pos  token.Pos
	node ast.Node
	what string
}

// errwrapSummary is the per-function fact: what its returned errors are
// made of.
type errwrapSummary struct {
	bares   []bareSite
	callees []string
}

func runErrWrap(mpass *ModulePass) {
	// Package-level error variables: a `var errX = errors.New(...)` in the
	// module is a bare root wherever it is returned; one initialized from a
	// fdxerr sentinel (the public re-exports in errors.go) is taxonomy.
	pkgVarOrigin := map[string]errOrigin{}
	for _, pkg := range mpass.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil || !isErrorType(obj.Type()) {
							continue
						}
						ec := &errwrapClassifier{pkg: pkg, pkgVars: pkgVarOrigin}
						pkgVarOrigin[objKey(obj)] = ec.classify(vs.Values[i])
					}
				}
			}
		}
	}

	// Bottom-up local summaries. The facts do not feed each other across
	// functions (escape is propagated separately below), so a single pass
	// in any order suffices; BottomUp keeps the iteration deterministic.
	summaries := map[*Node]*errwrapSummary{}
	mpass.Graph.BottomUp(func(scc []*Node) {
		for _, n := range scc {
			if n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			summaries[n] = summarizeErrwrap(n, pkgVarOrigin)
		}
	})

	// Top-down escape propagation: the error returns of an exported
	// boundary function escape; so do the error returns of every module
	// function whose result a escaping function passes through.
	escapes := map[*Node]bool{}
	queue := boundaryExported(mpass)
	for _, n := range queue {
		escapes[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		sum := summaries[n]
		if sum == nil {
			continue
		}
		for _, id := range sum.callees {
			callee := mpass.Graph.Lookup(id)
			if callee == nil || callee.External() || escapes[callee] {
				continue
			}
			escapes[callee] = true
			queue = append(queue, callee)
		}
	}

	// Report every bare construction site inside the escape set, each once,
	// in deterministic order.
	var nodes []*Node
	for n := range escapes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	seen := map[token.Pos]bool{}
	for _, n := range nodes {
		sum := summaries[n]
		if sum == nil {
			continue
		}
		for _, b := range sum.bares {
			if seen[b.pos] {
				continue
			}
			seen[b.pos] = true
			mpass.ReportRangef(b.node, b.pos,
				"%s escapes the exported API of %s without a fdxerr taxonomy root; wrap a sentinel (e.g. fdxerr.BadInput or fmt.Errorf(\"...: %%w\", fdxerr.Err...))",
				b.what, shortID(n.ID))
		}
	}
}

// summarizeErrwrap scans one function body: which bare constructions and
// which callees' error results can reach its returns.
func summarizeErrwrap(n *Node, pkgVars map[string]errOrigin) *errwrapSummary {
	ec := &errwrapClassifier{pkg: n.Pkg, pkgVars: pkgVars, vars: map[types.Object]errOrigin{}}

	// First pass: local error-variable origins, in source order. A forward
	// pass is an approximation (a loop can make flow circular), but error
	// values in this codebase are assigned then returned.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					ec.assign(lhs, st.Rhs[i])
				}
			} else if len(st.Rhs) == 1 {
				// v, err := f() — the callee's error feeds every lhs; only
				// error-typed ones keep it.
				for _, lhs := range st.Lhs {
					ec.assign(lhs, st.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, name := range st.Names {
					ec.assign(name, st.Values[i])
				}
			}
		}
		return true
	})

	sum := &errwrapSummary{}
	merge := func(o errOrigin) {
		if o.taxonomy {
			return
		}
		sum.bares = append(sum.bares, o.bares...)
		sum.callees = append(sum.callees, o.callees...)
	}

	// Second pass: returns. Named error results make a bare `return`
	// carry whatever was assigned to them.
	var namedErrObjs []types.Object
	if n.Decl.Type.Results != nil {
		for _, field := range n.Decl.Type.Results.List {
			for _, name := range field.Names {
				obj := n.Pkg.Info.Defs[name]
				if obj != nil && isErrorType(obj.Type()) {
					namedErrObjs = append(namedErrObjs, obj)
				}
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, obj := range namedErrObjs {
				merge(ec.vars[obj])
			}
			return true
		}
		for _, res := range ret.Results {
			if tv, ok := n.Pkg.Info.Types[res]; ok && !isErrorType(tv.Type) {
				continue
			}
			merge(ec.classify(res))
		}
		return true
	})
	return sum
}

// errwrapClassifier resolves the origin of error expressions within one
// package's type info.
type errwrapClassifier struct {
	pkg     *Package
	pkgVars map[string]errOrigin
	vars    map[types.Object]errOrigin
}

func (ec *errwrapClassifier) assign(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := ec.pkg.Info.Defs[id]
	if obj == nil {
		obj = ec.pkg.Info.Uses[id]
	}
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	o := ec.classify(rhs)
	prev := ec.vars[obj]
	// Re-assignment accumulates: any path's origin can be the returned one.
	prev.taxonomy = prev.taxonomy || o.taxonomy
	prev.bares = append(prev.bares, o.bares...)
	prev.callees = append(prev.callees, o.callees...)
	ec.vars[obj] = prev
}

// classify determines the origin of one error-producing expression.
func (ec *errwrapClassifier) classify(e ast.Expr) errOrigin {
	info := ec.pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if isTaxonomyPackage(obj.Pkg()) {
				return errOrigin{taxonomy: true}
			}
			if o, ok := ec.vars[obj]; ok {
				return o
			}
			if o, ok := ec.pkgVars[objKey(obj)]; ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			if isTaxonomyPackage(obj.Pkg()) {
				return errOrigin{taxonomy: true}
			}
			if o, ok := ec.pkgVars[objKey(obj)]; ok {
				return o
			}
		}
	case *ast.CallExpr:
		return ec.classifyCall(e)
	}
	return errOrigin{}
}

// classifyCall handles the error-producing calls: constructors, wrappers,
// taxonomy helpers, and ordinary callees.
func (ec *errwrapClassifier) classifyCall(call *ast.CallExpr) errOrigin {
	fn := calleeFunc(ec.pkg.Info, call)
	if fn == nil {
		return errOrigin{}
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case isTaxonomyPackage(fn.Pkg()):
		// fdxerr.BadInput(...), fdxerr.Cancelled(...), sentinels' methods.
		return errOrigin{taxonomy: true}
	case pkgPath == "errors" && fn.Name() == "New":
		return errOrigin{bares: []bareSite{{pos: call.Pos(), node: call, what: "errors.New"}}}
	case pkgPath == "fmt" && fn.Name() == "Errorf":
		return ec.classifyErrorf(call)
	case pkgPath == "errors" && fn.Name() == "Join":
		o := errOrigin{}
		for _, arg := range call.Args {
			ao := ec.classify(arg)
			o.taxonomy = o.taxonomy || ao.taxonomy
			o.bares = append(o.bares, ao.bares...)
			o.callees = append(o.callees, ao.callees...)
		}
		return o
	case pkgPath == "context":
		// ctx.Err() passthroughs are handled below as methods; the context
		// constructors do not produce errors.
		return errOrigin{}
	}
	// (context.Context).Err returning raw context.Canceled is not taxonomy-
	// matchable — it must go through fdxerr.Cancelled. Treat it as a bare
	// root so `return ctx.Err()` at a boundary is flagged.
	if fn.Name() == "Err" && fn.Type().(*types.Signature).Recv() != nil &&
		isContextType(fn.Type().(*types.Signature).Recv().Type()) {
		return errOrigin{bares: []bareSite{{pos: call.Pos(), node: call, what: "raw ctx.Err()"}}}
	}
	// A module callee: its summary is folded in by the escape propagation;
	// an external callee's error passes through unclassified.
	return errOrigin{callees: []string{funcID(fn)}}
}

// classifyErrorf resolves fmt.Errorf: without %w it creates a fresh bare
// root; with %w verbs it inherits the origins of the wrapped operands.
func (ec *errwrapClassifier) classifyErrorf(call *ast.CallExpr) errOrigin {
	if len(call.Args) == 0 {
		return errOrigin{}
	}
	format, ok := stringConstant(ec.pkg.Info, call.Args[0])
	if !ok {
		// Dynamic format string: assume the author knows; treat as opaque.
		return errOrigin{}
	}
	if !strings.Contains(format, "%w") {
		return errOrigin{bares: []bareSite{{pos: call.Pos(), node: call, what: "fmt.Errorf without %w"}}}
	}
	o := errOrigin{}
	for _, arg := range call.Args[1:] {
		if tv, ok := ec.pkg.Info.Types[arg]; ok && !isErrorType(tv.Type) {
			continue
		}
		ao := ec.classify(arg)
		o.taxonomy = o.taxonomy || ao.taxonomy
		o.bares = append(o.bares, ao.bares...)
		o.callees = append(o.callees, ao.callees...)
	}
	return o
}

// stringConstant returns the compile-time string value of e, if any.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorType reports whether t is the built-in error interface (or a named
// interface embedding it — errors in this module are plain `error`).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error"
}

// objKey is a cross-package-stable identity for a package-level object.
func objKey(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
