package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the static call graph the interprocedural analyzers
// (errwrap, ctxflow, detsource, hotalloc) share. The graph is deliberately
// simple — it answers "which declared functions can this function invoke?"
// — but it is built to be *sound for the module's own code* under three
// resolution rules:
//
//   - Direct calls (pkg.F(...), F(...)) resolve through go/types object use.
//   - Method calls resolve by the receiver's static type when that type is
//     concrete; calls through interface values are recorded as dynamic
//     sites, which analyzers treat conservatively.
//   - A declared function referenced in non-call position (passed as a
//     value, assigned to a variable or field) gets a Ref edge from the
//     referencing function: it may be invoked by whoever receives it, so
//     reachability and bottom-up facts must assume it runs.
//
// Function literals are attributed to their enclosing declared function:
// the closure's calls become the enclosing function's edges. That matches
// how the repo uses closures (worker bodies handed to internal/par, defers)
// and keeps every fact attached to a declared, doc-commentable function.
//
// Nodes are keyed by types.Func.FullName() — a package-path-qualified name
// such as "fdx/internal/glasso.SolveContext" or
// "(*fdx/internal/linalg.Dense).At" — because each package is type-checked
// with its own importer view: the *types.Func for a callee seen from the
// caller's package is a different object than the one from the callee's own
// check, but the full name is identical. The ID is the identity.

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	// Nodes maps the stable function ID (types.Func.FullName()) to its
	// node. Both module functions (with Decl set) and external callees
	// (stdlib, with Decl nil) appear.
	Nodes map[string]*Node

	fset *token.FileSet
}

// Node is one function in the call graph.
type Node struct {
	// ID is the stable package-path-qualified name.
	ID string
	// Func is the defining *types.Func when the function belongs to a
	// loaded package; for external callees it is whatever object the
	// caller's type info resolved (sufficient for signatures).
	Func *types.Func
	// Decl is the declaration, nil for functions outside the loaded set.
	Decl *ast.FuncDecl
	// Pkg is the loaded package declaring the function, nil for externals.
	Pkg *Package
	// Calls are the outgoing edges in source order.
	Calls []*Edge
	// Callers are the incoming edges.
	Callers []*Edge
	// Dynamic records call sites through function values or interface
	// methods that could not be resolved to a declared function.
	Dynamic []token.Pos
}

// External reports whether the node's body is outside the loaded packages
// (stdlib or unexported-by-load); such nodes have no outgoing edges.
func (n *Node) External() bool { return n.Decl == nil }

// EdgeKind classifies how a call edge was established.
type EdgeKind int

const (
	// EdgeCall is a direct function or package-qualified call.
	EdgeCall EdgeKind = iota
	// EdgeMethod is a method call resolved via a concrete receiver type.
	EdgeMethod
	// EdgeRef is a reference to the function in non-call position — the
	// function escapes as a value and may be invoked by the receiver.
	EdgeRef
)

// Edge is one caller→callee connection.
type Edge struct {
	Caller, Callee *Node
	// Site is the call or reference position.
	Site token.Pos
	// Call is the call expression for EdgeCall/EdgeMethod edges, nil for
	// EdgeRef.
	Call *ast.CallExpr
	Kind EdgeKind
}

// funcID returns the stable node key for fn.
func funcID(fn *types.Func) string { return fn.FullName() }

// BuildCallGraph constructs the graph over every declared function in pkgs.
// All packages must share one token.FileSet (LoadModule and LoadTree
// guarantee this).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[string]*Node{}}
	if len(pkgs) > 0 {
		g.fset = pkgs[0].Fset
	}
	// First pass: register every declared function so cross-package edges
	// land on the declaring node regardless of package check order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type error left the decl unresolved
				}
				id := funcID(fn)
				n := g.Nodes[id]
				if n == nil {
					n = &Node{ID: id}
					g.Nodes[id] = n
				}
				// A declaration always wins over a placeholder created for
				// an external reference to the same function.
				n.Func, n.Decl, n.Pkg = fn, fd, pkg
			}
		}
	}
	// Second pass: extract edges from every body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.extractEdges(g.Nodes[funcID(fn)], pkg, fd.Body)
			}
		}
	}
	return g
}

// node returns (creating if needed) the node for fn as resolved from a
// caller's package.
func (g *CallGraph) node(fn *types.Func) *Node {
	id := funcID(fn)
	n := g.Nodes[id]
	if n == nil {
		n = &Node{ID: id, Func: fn}
		g.Nodes[id] = n
	}
	return n
}

// extractEdges walks one function body (closures included) and records
// call, method, ref, and dynamic edges on caller.
func (g *CallGraph) extractEdges(caller *Node, pkg *Package, body ast.Node) {
	// funPositions marks expressions in call-operator position (and the Sel
	// ident inside them) so the ref scan below does not double-count the
	// callee of a direct call as an escaping function value.
	funPositions := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		funPositions[fun] = true
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			funPositions[sel.Sel] = true
		}
		if callee := calleeFunc(pkg.Info, call); callee != nil {
			kind := EdgeCall
			if callee.Type().(*types.Signature).Recv() != nil {
				kind = EdgeMethod
			}
			g.addEdge(caller, g.node(callee), call.Pos(), call, kind)
			return true
		}
		// Conversions (T(x)) and builtin calls are not dynamic sites.
		if isTypeConversion(pkg.Info, call) || isBuiltinCall(pkg.Info, call) {
			return true
		}
		caller.Dynamic = append(caller.Dynamic, call.Pos())
		return true
	})
	// Ref edges: declared functions used as values.
	ast.Inspect(body, func(n ast.Node) bool {
		var fn *types.Func
		var expr ast.Expr
		switch e := n.(type) {
		case *ast.Ident:
			expr = e
			fn, _ = pkg.Info.Uses[e].(*types.Func)
		case *ast.SelectorExpr:
			expr = e
			fn, _ = pkg.Info.Uses[e.Sel].(*types.Func)
		default:
			return true
		}
		if fn == nil || funPositions[expr] {
			return true
		}
		g.addEdge(caller, g.node(fn), expr.Pos(), nil, EdgeRef)
		return false
	})
}

// addEdge appends a caller→callee edge, deduplicating exact repeats of the
// same site (the ref scan can visit a selector and its Sel ident).
func (g *CallGraph) addEdge(caller, callee *Node, site token.Pos, call *ast.CallExpr, kind EdgeKind) {
	for _, e := range caller.Calls {
		if e.Callee == callee && e.Site == site {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Call: call, Kind: kind}
	caller.Calls = append(caller.Calls, e)
	callee.Callers = append(callee.Callers, e)
}

// calleeFunc resolves the declared function a call invokes, or nil when the
// call is through a function value or an interface method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if !ok {
			// Package-qualified call: pkg.F(...).
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				return fn
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		// Interface dispatch cannot be resolved statically; report it as
		// dynamic so analyzers stay conservative.
		if types.IsInterface(sel.Recv()) {
			return nil
		}
		return fn
	}
	return nil
}

func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// Lookup returns the node with the given ID, or nil.
func (g *CallGraph) Lookup(id string) *Node { return g.Nodes[id] }

// ModuleNodes returns every node with a body in the loaded packages, sorted
// by ID for deterministic iteration.
func (g *CallGraph) ModuleNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if !n.External() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reachable returns the set of nodes reachable from roots along Calls edges
// (Ref edges included: a function handed out as a value must be assumed to
// run). The roots themselves are included.
func (g *CallGraph) Reachable(roots []*Node) map[*Node]bool {
	seen := map[*Node]bool{}
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Calls {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// PathFrom reconstructs one call path from any root to target within the
// reachable set, for diagnostics ("reachable via A → B → C"). It returns
// node IDs from a root to the target, or nil when target is not reachable.
func (g *CallGraph) PathFrom(roots []*Node, target *Node) []string {
	parent := map[*Node]*Node{}
	seen := map[*Node]bool{}
	var queue []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	// Breadth-first with callees visited in source order keeps the chosen
	// path deterministic.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == target {
			var path []string
			for m := n; m != nil; m = parent[m] {
				path = append([]string{m.ID}, path...)
			}
			return path
		}
		for _, e := range n.Calls {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				parent[e.Callee] = n
				queue = append(queue, e.Callee)
			}
		}
	}
	return nil
}

// BottomUp invokes visit once per strongly connected component in
// dependency order: every SCC a component calls into is visited before the
// component itself. Analyzers compute per-function summary facts in the
// callback; mutual recursion arrives as one multi-node SCC whose facts must
// be iterated to fixpoint inside the callback (a boolean-monotone fact
// needs at most len(scc) passes).
func (g *CallGraph) BottomUp(visit func(scc []*Node)) {
	for _, scc := range g.SCCs() {
		visit(scc)
	}
}

// SCCs returns the strongly connected components in bottom-up (callee
// before caller) order, computed with Tarjan's algorithm. Iteration is
// deterministic: nodes are seeded in ID order.
func (g *CallGraph) SCCs() [][]*Node {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	states := map[*Node]*state{}
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		st := &state{index: next, lowlink: next}
		next++
		states[v] = st
		stack = append(stack, v)
		st.onStack = true
		for _, e := range v.Calls {
			w := e.Callee
			ws, seen := states[w]
			if !seen {
				strongconnect(w)
				if states[w].lowlink < st.lowlink {
					st.lowlink = states[w].lowlink
				}
			} else if ws.onStack && ws.index < st.lowlink {
				st.lowlink = ws.index
			}
		}
		if st.lowlink == st.index {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}

	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, seen := states[g.Nodes[id]]; !seen {
			strongconnect(g.Nodes[id])
		}
	}
	return sccs
}
