package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedPanic flags panic calls in library (non-main) packages whose
// enclosing function does not document the panic. A panic that guards an
// invariant — negative matrix dimensions, mismatched operand shapes — is
// legitimate, but only as a documented contract: the function's doc comment
// must say "Panics if ...", turning the crash into an API guarantee rather
// than a surprise that takes down a whole discovery run.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "flags panic in library code not wrapped in a documented invariant helper",
	Run:  runNakedPanic,
	// Panics in tests and example code are idiomatic failure reporting.
	SkipTestFiles: true,
}

func runNakedPanic(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			doc := enclosingFuncDoc(pass.Files, call.Pos())
			if strings.Contains(strings.ToLower(doc), "panic") {
				return true
			}
			pass.Reportf(call.Pos(), "undocumented panic in library code; return an error, or document the invariant (\"Panics if ...\") in the function's doc comment")
			return true
		})
	}
}
