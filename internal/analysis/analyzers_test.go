package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one fixture package from testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	return pkg
}

// expectations parses "// want:<analyzer>[,<analyzer>...]" comments out of
// the fixture and returns the expected diagnostics keyed by
// "<base-file>:<line>".
func expectations(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, name := range strings.Split(strings.TrimPrefix(text, "want:"), ",") {
					want[key] = append(want[key], strings.TrimSpace(name))
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want: annotations", pkg.ImportPath)
	}
	return want
}

// byLine groups diagnostics by "<base-file>:<line>" → analyzer names.
func byLine(diags []Diagnostic) map[string][]string {
	got := map[string][]string{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Analyzer)
	}
	return got
}

// testAnalyzerFixture runs a single analyzer over its fixture package and
// compares the findings against the fixture's want: annotations. The
// unannotated functions double as the clean-pass cases: a diagnostic on any
// of them fails the comparison.
func testAnalyzerFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	want := expectations(t, pkg)
	got := byLine(diags)
	for key, names := range want {
		if fmt.Sprint(got[key]) != fmt.Sprint(names) {
			t.Errorf("%s: want %v, got %v", key, names, got[key])
		}
	}
	for key, names := range got {
		if len(want[key]) == 0 {
			t.Errorf("%s: unexpected diagnostics %v", key, names)
		}
	}
}

func TestFloatCmp(t *testing.T)         { testAnalyzerFixture(t, "floatcmp", FloatCmp) }
func TestMapOrder(t *testing.T)         { testAnalyzerFixture(t, "maporder", MapOrder) }
func TestGoroutineCapture(t *testing.T) { testAnalyzerFixture(t, "goroutinecapture", GoroutineCapture) }
func TestNakedPanic(t *testing.T)       { testAnalyzerFixture(t, "nakedpanic", NakedPanic) }
func TestDimCheck(t *testing.T)         { testAnalyzerFixture(t, "dimcheck", DimCheck) }
func TestSpanLeak(t *testing.T)         { testAnalyzerFixture(t, "spanleak", SpanLeak) }
