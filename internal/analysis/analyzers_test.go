package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads one fixture package from testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	return pkg
}

// expectations parses "// want:<analyzer>[,<analyzer>...]" comments out of
// the fixture and returns the expected diagnostics keyed by
// "<base-file>:<line>".
func expectations(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	want := fileExpectations(pkg)
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want: annotations", pkg.ImportPath)
	}
	return want
}

// fileExpectations is expectations without the must-have-annotations check,
// for the packages of a multi-package fixture tree (a taxonomy subpackage
// legitimately has none).
func fileExpectations(pkg *Package) map[string][]string {
	want := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, name := range strings.Split(strings.TrimPrefix(text, "want:"), ",") {
					want[key] = append(want[key], strings.TrimSpace(name))
				}
			}
		}
	}
	return want
}

// byLine groups diagnostics by "<base-file>:<line>" → analyzer names.
func byLine(diags []Diagnostic) map[string][]string {
	got := map[string][]string{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Analyzer)
	}
	return got
}

// sortedKeys returns m's keys in ascending order, so comparison output and
// merge order are deterministic.
func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// compareDiags checks got against the fixture's want: annotations; the
// unannotated lines double as the clean-pass cases — a diagnostic on any of
// them fails the comparison.
func compareDiags(t *testing.T, want, got map[string][]string) {
	t.Helper()
	for _, key := range sortedKeys(want) {
		if fmt.Sprint(got[key]) != fmt.Sprint(want[key]) {
			t.Errorf("%s: want %v, got %v", key, want[key], got[key])
		}
	}
	for _, key := range sortedKeys(got) {
		if len(want[key]) == 0 {
			t.Errorf("%s: unexpected diagnostics %v", key, got[key])
		}
	}
}

// testAnalyzerFixture runs a single analyzer over its fixture package and
// compares the findings against the fixture's want: annotations. Module
// (RunModule) analyzers work too: Run builds the call graph over the single
// fixture package.
func testAnalyzerFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	compareDiags(t, expectations(t, pkg), byLine(diags))
}

// testTreeAnalyzerFixture loads a multi-package fixture tree (the root
// package plus its subpackages) and runs one module analyzer over all of it.
// want: annotations are read from every loaded package.
func testTreeAnalyzerFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	pkgs, err := LoadTree(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("loading fixture tree %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture tree %s has no packages", name)
	}
	want := map[string][]string{}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.ImportPath, terr)
		}
		exp := fileExpectations(pkg)
		for _, key := range sortedKeys(exp) {
			want[key] = append(want[key], exp[key]...)
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture tree %s has no want: annotations", name)
	}
	diags := Run(pkgs, []*Analyzer{a})
	compareDiags(t, want, byLine(diags))
}

func TestFloatCmp(t *testing.T)         { testAnalyzerFixture(t, "floatcmp", FloatCmp) }
func TestMapOrder(t *testing.T)         { testAnalyzerFixture(t, "maporder", MapOrder) }
func TestGoroutineCapture(t *testing.T) { testAnalyzerFixture(t, "goroutinecapture", GoroutineCapture) }
func TestNakedPanic(t *testing.T)       { testAnalyzerFixture(t, "nakedpanic", NakedPanic) }
func TestDimCheck(t *testing.T)         { testAnalyzerFixture(t, "dimcheck", DimCheck) }
func TestSpanLeak(t *testing.T)         { testAnalyzerFixture(t, "spanleak", SpanLeak) }
func TestErrWrap(t *testing.T)          { testTreeAnalyzerFixture(t, "errwrap", ErrWrap) }
func TestCtxFlow(t *testing.T)          { testAnalyzerFixture(t, "ctxflow", CtxFlow) }
func TestDetSource(t *testing.T)        { testAnalyzerFixture(t, "detsource", DetSource) }
func TestHotAlloc(t *testing.T)         { testAnalyzerFixture(t, "hotalloc", HotAlloc) }
func TestObsNames(t *testing.T)         { testTreeAnalyzerFixture(t, "obsnames", ObsNames) }
