package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func buildFixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkg := loadCallgraphFixture(t)
	return BuildCallGraph([]*Package{pkg})
}

func loadCallgraphFixture(t *testing.T) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "callgraph"), "callgraph")
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("callgraph fixture: type error: %v", terr)
	}
	return pkg
}

// edgeKinds collects caller→callee edge kinds for assertions.
func edgeKinds(n *Node) map[string][]EdgeKind {
	out := map[string][]EdgeKind{}
	for _, e := range n.Calls {
		out[e.Callee.ID] = append(out[e.Callee.ID], e.Kind)
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	g := buildFixtureGraph(t)
	top := g.Lookup("callgraph.Top")
	if top == nil {
		t.Fatal("callgraph.Top not in graph")
	}
	kinds := edgeKinds(top)

	if got := kinds["(*callgraph.Counter).Inc"]; len(got) != 1 || got[0] != EdgeMethod {
		t.Errorf("Top → (*Counter).Inc edges = %v, want one EdgeMethod", got)
	}
	if got := kinds["(callgraph.Counter).Get"]; len(got) != 1 || got[0] != EdgeMethod {
		t.Errorf("Top → (Counter).Get edges = %v, want one EdgeMethod", got)
	}
	if got := kinds["callgraph.helper"]; len(got) != 1 || got[0] != EdgeCall {
		t.Errorf("Top → helper edges = %v, want one EdgeCall", got)
	}
	if got := kinds["callgraph.apply"]; len(got) != 1 || got[0] != EdgeCall {
		t.Errorf("Top → apply edges = %v, want one EdgeCall", got)
	}
	// indirect is referenced twice as a value (assignment, argument), never
	// called directly from Top.
	refs := kinds["callgraph.indirect"]
	if len(refs) != 2 || refs[0] != EdgeRef || refs[1] != EdgeRef {
		t.Errorf("Top → indirect edges = %v, want two EdgeRef", refs)
	}
	// f() is a call through a function value: a dynamic site, not an edge.
	if len(top.Dynamic) != 1 {
		t.Errorf("Top has %d dynamic sites, want 1 (the f() call)", len(top.Dynamic))
	}

	// apply's parameter call is dynamic too.
	apply := g.Lookup("callgraph.apply")
	if apply == nil || len(apply.Dynamic) != 1 {
		t.Fatalf("apply should carry one dynamic site, got %+v", apply)
	}
}

func TestCallGraphClosureAttribution(t *testing.T) {
	g := buildFixtureGraph(t)
	closures := g.Lookup("callgraph.Closures")
	if closures == nil {
		t.Fatal("callgraph.Closures not in graph")
	}
	// The literal's call to helper belongs to the enclosing declaration, and
	// invoking the literal through fn() is a dynamic site of the same.
	if got := edgeKinds(closures)["callgraph.helper"]; len(got) != 1 || got[0] != EdgeCall {
		t.Errorf("Closures → helper edges = %v, want one EdgeCall (closure attribution)", got)
	}
	if len(closures.Dynamic) != 1 {
		t.Errorf("Closures has %d dynamic sites, want 1 (the fn() call)", len(closures.Dynamic))
	}
}

func TestCallGraphReachable(t *testing.T) {
	g := buildFixtureGraph(t)
	top := g.Lookup("callgraph.Top")
	reach := g.Reachable([]*Node{top})

	for _, id := range []string{
		"callgraph.Top", "callgraph.helper", "callgraph.apply",
		"callgraph.indirect", // Ref edges count: the value may be invoked
		"(*callgraph.Counter).Inc", "(callgraph.Counter).Get",
	} {
		if !reach[g.Lookup(id)] {
			t.Errorf("%s not reachable from Top", id)
		}
	}
	for _, id := range []string{"callgraph.even", "callgraph.odd", "callgraph.Closures"} {
		if reach[g.Lookup(id)] {
			t.Errorf("%s unexpectedly reachable from Top", id)
		}
	}

	if path := g.PathFrom([]*Node{top}, g.Lookup("callgraph.helper")); len(path) != 2 ||
		path[0] != "callgraph.Top" || path[1] != "callgraph.helper" {
		t.Errorf("PathFrom(Top, helper) = %v, want [callgraph.Top callgraph.helper]", path)
	}
	if path := g.PathFrom([]*Node{top}, g.Lookup("callgraph.even")); path != nil {
		t.Errorf("PathFrom(Top, even) = %v, want nil", path)
	}
}

func TestCallGraphSCCOrder(t *testing.T) {
	g := buildFixtureGraph(t)

	sccOf := map[string]int{}
	var sccs [][]*Node
	g.BottomUp(func(scc []*Node) {
		for _, n := range scc {
			sccOf[n.ID] = len(sccs)
		}
		sccs = append(sccs, scc)
	})

	// even/odd are one two-node component; helper is a singleton despite its
	// self loop.
	if sccOf["callgraph.even"] != sccOf["callgraph.odd"] {
		t.Errorf("even (scc %d) and odd (scc %d) should share a component",
			sccOf["callgraph.even"], sccOf["callgraph.odd"])
	}
	if i := sccOf["callgraph.helper"]; len(sccs[i]) != 1 {
		t.Errorf("helper's SCC has %d nodes, want 1", len(sccs[i]))
	}

	// Bottom-up order: every callee's component is visited before its caller's.
	for _, n := range g.ModuleNodes() {
		for _, e := range n.Calls {
			if sccOf[e.Callee.ID] > sccOf[n.ID] && sccOf[e.Callee.ID] != sccOf[n.ID] {
				t.Errorf("callee %s (scc %d) visited after caller %s (scc %d)",
					e.Callee.ID, sccOf[e.Callee.ID], n.ID, sccOf[n.ID])
			}
		}
	}
}

// TestCallGraphCrossPackageIdentity checks that the node for a function seen
// from two different type-check views (its own declaration and a sibling's
// import) is a single node: IDs, not object pointers, are the identity.
func TestCallGraphCrossPackageIdentity(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("testdata", "src", "errwrap"), "errwrap")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(pkgs)
	n := g.Lookup("errwrap/fdxerr.BadInput")
	if n == nil {
		t.Fatal("errwrap/fdxerr.BadInput not in graph")
	}
	if n.External() {
		t.Error("BadInput resolved as external despite being declared in the tree")
	}
	if len(n.Callers) == 0 {
		t.Error("BadInput has no callers; the cross-package edge was lost")
	}
}

// TestLoadDirPartialOnTypeError checks the loader contract the analyzers
// rely on: a package with type errors still comes back with files and
// whatever type information the checker recovered, so analysis degrades
// instead of failing.
func TestLoadDirPartialOnTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc f() int { return undefinedIdent }\n\nfunc g() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "broken")
	if err != nil {
		t.Fatalf("LoadDir failed outright on a type error: %v", err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Error("expected recorded type errors")
	}
	if len(pkg.Files) != 1 || pkg.Types == nil {
		t.Errorf("partial package not preserved: files=%d types=%v", len(pkg.Files), pkg.Types)
	}
	// The call graph must still build over the partial view.
	g := BuildCallGraph([]*Package{pkg})
	if g.Lookup("broken.g") == nil {
		t.Error("declared function missing from graph built over a partial package")
	}
}
