package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Dir is the absolute directory holding the package sources.
	Dir string
	// ImportPath is the package's import path within the module.
	ImportPath string
	Fset       *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, object definitions/uses, and
	// selections for Files.
	Info *types.Info
	// TypeErrors holds any type-checking errors; analysis proceeds on the
	// partial information the checker could recover.
	TypeErrors []error
}

// LoadModule locates the Go module rooted at or above dir, then parses and
// type-checks every package beneath the module root (skipping testdata,
// vendor, and hidden directories). Packages come back sorted by import path
// so downstream output is deterministic.
func LoadModule(dir string) ([]*Package, error) {
	return loadModule(dir, false)
}

// LoadModuleTests is LoadModule with the test-file blind spot closed: each
// directory's _test.go files are loaded and type-checked too. In-package
// test files merge into their package's file set; external test packages
// (package foo_test) come back as separate packages whose import path
// carries a "_test" suffix.
func LoadModuleTests(dir string) ([]*Package, error) {
	return loadModule(dir, true)
}

func loadModule(dir string, tests bool) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	// One shared source importer caches transitively loaded dependencies
	// (stdlib and module-local alike) across all package checks.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := loadDir(fset, imp, d, ip, tests)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", ip, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. It is the entry point the analyzer unit tests use to load
// fixture packages from testdata.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	loaded, err := loadDir(fset, importer.ForCompiler(fset, "source", nil), dir, importPath, false)
	if err != nil || len(loaded) == 0 {
		return nil, err
	}
	return loaded[0], nil
}

// LoadTree parses and type-checks a directory tree as a self-contained set
// of packages: the root directory becomes the package importPrefix, and
// each subdirectory sub becomes importPrefix/sub, importable from its
// siblings. Imports outside the tree (the standard library) resolve through
// the source importer. The interprocedural analyzer fixtures use this to
// model multi-package contracts — a fixture package plus its own miniature
// taxonomy package — without needing a go.mod.
func LoadTree(root, importPrefix string) ([]*Package, error) {
	fset := token.NewFileSet()
	tl := &treeLoader{
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		root:     root,
		prefix:   importPrefix,
		loaded:   map[string]*Package{},
	}
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() && hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		ip := importPrefix
		if rel != "." {
			ip = importPrefix + "/" + filepath.ToSlash(rel)
		}
		pkg, err := tl.load(ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// treeLoader resolves imports within a LoadTree root, memoizing packages so
// sibling imports share one type-checked instance (and one *types.Func
// identity).
type treeLoader struct {
	fset     *token.FileSet
	fallback types.Importer
	root     string
	prefix   string
	loaded   map[string]*Package
}

// Import implements types.Importer for in-tree paths.
func (tl *treeLoader) Import(path string) (*types.Package, error) {
	if path == tl.prefix || strings.HasPrefix(path, tl.prefix+"/") {
		pkg, err := tl.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no package at %s", path)
		}
		return pkg.Types, nil
	}
	return tl.fallback.Import(path)
}

func (tl *treeLoader) load(importPath string) (*Package, error) {
	if pkg, ok := tl.loaded[importPath]; ok {
		return pkg, nil
	}
	tl.loaded[importPath] = nil // break import cycles
	dir := tl.root
	if importPath != tl.prefix {
		dir = filepath.Join(tl.root, filepath.FromSlash(strings.TrimPrefix(importPath, tl.prefix+"/")))
	}
	loaded, err := loadDir(tl.fset, tl, dir, importPath, false)
	if err != nil || len(loaded) == 0 {
		return nil, err
	}
	tl.loaded[importPath] = loaded[0]
	return loaded[0], nil
}

// loadDir parses and type-checks the package in one directory. With tests
// set, _test.go files are included: in-package test files join the base
// package's file list, and an external test package (package foo_test)
// becomes a second returned Package with import path importPath+"_test".
func loadDir(fset *token.FileSet, imp types.Importer, dir, importPath string, tests bool) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, inTest, extTest []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !tests {
			continue
		}
		// Honor GOOS/GOARCH file-name suffixes and //go:build constraints the
		// same way the compiler does, so per-architecture pairs (kernels_amd64.go
		// / kernels_noasm.go) never type-check into the same package.
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if isIgnored(f) {
			continue
		}
		switch {
		case !isTest:
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	var pkgs []*Package
	if len(files)+len(inTest) > 0 {
		pkgs = append(pkgs, checkPackage(fset, imp, dir, importPath, append(files, inTest...)))
	}
	if len(extTest) > 0 {
		pkgs = append(pkgs, checkPackage(fset, imp, dir, importPath+"_test", extTest))
	}
	return pkgs, nil
}

// checkPackage type-checks one file set into a Package, collecting type
// errors rather than failing: analyzers run on the partial view the checker
// could recover.
func checkPackage(fset *token.FileSet, imp types.Importer, dir, importPath string, files []*ast.File) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Info:       info,
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check records errors through conf.Error and still returns as much of
	// the package as it could type; analyzers run on that partial view.
	pkg.Types, _ = conf.Check(importPath, fset, files, info)
	return pkg
}

// isIgnored reports whether the file carries a "//go:build ignore"
// constraint (scratch programs that are not part of the package).
func isIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// findModule walks upward from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return abs, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: go.mod in %s has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
		abs = parent
	}
}
