package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Dir is the absolute directory holding the package sources.
	Dir string
	// ImportPath is the package's import path within the module.
	ImportPath string
	Fset       *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, object definitions/uses, and
	// selections for Files.
	Info *types.Info
	// TypeErrors holds any type-checking errors; analysis proceeds on the
	// partial information the checker could recover.
	TypeErrors []error
}

// LoadModule locates the Go module rooted at or above dir, then parses and
// type-checks every package beneath the module root (skipping testdata,
// vendor, and hidden directories). Packages come back sorted by import path
// so downstream output is deterministic.
func LoadModule(dir string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	// One shared source importer caches transitively loaded dependencies
	// (stdlib and module-local alike) across all package checks.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loadDir(fset, imp, d, ip)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", ip, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. It is the entry point the analyzer unit tests use to load
// fixture packages from testdata.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	return loadDir(fset, importer.ForCompiler(fset, "source", nil), dir, importPath)
}

func loadDir(fset *token.FileSet, imp types.Importer, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor GOOS/GOARCH file-name suffixes and //go:build constraints the
		// same way the compiler does, so per-architecture pairs (kernels_amd64.go
		// / kernels_noasm.go) never type-check into the same package.
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if isIgnored(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Info:       info,
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check records errors through conf.Error and still returns as much of
	// the package as it could type; analyzers run on that partial view.
	pkg.Types, _ = conf.Check(importPath, fset, files, info)
	return pkg, nil
}

// isIgnored reports whether the file carries a "//go:build ignore"
// constraint (scratch programs that are not part of the package).
func isIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// findModule walks upward from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return abs, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: go.mod in %s has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
		abs = parent
	}
}
