package analysis

import (
	"go/ast"
	"go/types"
)

// SpanLeak flags trace spans that are started but never ended. A span that
// never reaches End() stays open forever: the trace export marks it
// unfinished, its duration is wrong, and its stage histogram never
// observes the sample — exactly the silent telemetry rot the obs package's
// nil-safe API otherwise makes easy to miss.
//
// A "start" is a call to a method named StartSpan, Start, StartStage, or
// Child whose result type has a niladic End() method. The analyzer
// reports:
//
//   - a start call whose result is discarded (expression statement, defer,
//     go, or assignment to _), and
//   - a start call assigned to a local variable on which End() is never
//     called anywhere in the enclosing function (including inside deferred
//     closures).
//
// Returning the span transfers ownership to the caller and is not a leak.
// The check is per-function and object-based, so one End() call satisfies
// every start assigned to the same variable; conditional paths that skip
// End() are beyond its reach.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "flags trace spans that are started but never ended",
	Run:  runSpanLeak,
}

// spanStartMethods are the method names that hand out live spans.
var spanStartMethods = map[string]bool{
	"StartSpan":  true,
	"Start":      true,
	"StartStage": true,
	"Child":      true,
}

func runSpanLeak(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanLeaks(pass, fn.Body)
		}
	}
}

// checkSpanLeaks scans one function body. Closures are scanned as part of
// their enclosing function, so a span started outside a closure and ended
// inside it (the deferred-cleanup idiom) resolves correctly.
func checkSpanLeaks(pass *Pass, body *ast.BlockStmt) {
	// tracked maps a span-holding local to the position of its start call;
	// ended and returned record the ways the obligation can be met.
	tracked := map[types.Object]ast.Node{}
	ended := map[types.Object]bool{}
	returned := map[types.Object]bool{}

	trackAssign := func(lhs, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isSpanStart(pass, call) {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			// A field or index target escapes the function's view; treat it
			// as an ownership transfer.
			return
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span from %s is discarded; every started span must be ended", startName(call))
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			tracked[obj] = call
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "span from %s is discarded; assign it and call End()", startName(call))
			}
		case *ast.DeferStmt:
			if isSpanStart(pass, st.Call) {
				pass.Reportf(st.Call.Pos(), "deferred %s discards its span; start it now and defer End() instead", startName(st.Call))
			}
		case *ast.GoStmt:
			if isSpanStart(pass, st.Call) {
				pass.Reportf(st.Call.Pos(), "go %s discards its span; every started span must be ended", startName(st.Call))
			}
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, rhs := range st.Rhs {
					trackAssign(st.Lhs[i], rhs)
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, rhs := range st.Values {
					trackAssign(st.Names[i], rhs)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if id, ok := res.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "End" || len(st.Args) != 0 {
				break
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					ended[obj] = true
				}
			}
		}
		return true
	})

	for obj, call := range tracked {
		if !ended[obj] && !returned[obj] {
			pass.Reportf(call.Pos(), "span assigned to %s is never ended; call %s.End() (or return it)", obj.Name(), obj.Name())
		}
	}
}

// isSpanStart reports whether call is a span-producing method call: the
// method name is one of the start verbs and the single result type carries
// a niladic End() method.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spanStartMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return hasEndMethod(tv.Type)
}

// hasEndMethod reports whether t's method set includes End() with no
// parameters and no results.
func hasEndMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "End" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return true
		}
	}
	return false
}

// startName renders the start call for diagnostics, e.g. "obs.StartStage".
func startName(call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
