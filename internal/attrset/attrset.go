// Package attrset provides compact bitsets over attribute indices, used by
// the lattice-search FD discovery baselines (TANE, PYRO, RFI). Sets support
// relations with any number of attributes.
package attrset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bitset over attribute indices. The zero value is the empty set.
// Sets are value types; operations return new sets and never mutate their
// receivers unless documented.
type Set struct {
	words []uint64
}

// New returns the set containing the given attributes.
func New(attrs ...int) Set {
	var s Set
	for _, a := range attrs {
		s = s.With(a)
	}
	return s
}

// FromSlice is an alias of New for a slice argument.
func FromSlice(attrs []int) Set { return New(attrs...) }

// Full returns the set {0, …, n−1}.
func Full(n int) Set {
	var s Set
	for i := 0; i < n; i++ {
		s = s.With(i)
	}
	return s
}

func (s Set) clone(minWords int) Set {
	w := len(s.words)
	if minWords > w {
		w = minWords
	}
	out := make([]uint64, w)
	copy(out, s.words)
	return Set{words: out}
}

// With returns s ∪ {a}.
func (s Set) With(a int) Set {
	out := s.clone(a/64 + 1)
	out.words[a/64] |= 1 << (a % 64)
	return out
}

// Without returns s \ {a}.
func (s Set) Without(a int) Set {
	if !s.Has(a) {
		return s.clone(0)
	}
	out := s.clone(0)
	out.words[a/64] &^= 1 << (a % 64)
	return out
}

// Has reports whether a ∈ s.
func (s Set) Has(a int) bool {
	w := a / 64
	return w < len(s.words) && s.words[w]&(1<<(a%64)) != 0
}

// Len returns |s|.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := s.clone(len(t.words))
	for i, w := range t.words {
		out.words[i] |= w
	}
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return Set{words: out}
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	out := s.clone(0)
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] &^= t.words[i]
		}
	}
	return Set{words: out.words}
}

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool { return s.SubsetOf(t) && t.SubsetOf(s) }

// Members returns the attribute indices in ascending order.
func (s Set) Members() []int {
	var out []int
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// Key returns a canonical string usable as a map key.
func (s Set) Key() string {
	// Trim trailing zero words so logically-equal sets share keys.
	last := len(s.words)
	for last > 0 && s.words[last-1] == 0 {
		last--
	}
	var b strings.Builder
	for i := 0; i < last; i++ {
		b.WriteString(strconv.FormatUint(s.words[i], 16))
		b.WriteByte('.')
	}
	return b.String()
}

// String renders the members, e.g. "{0,3,5}".
func (s Set) String() string {
	ms := s.Members()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = strconv.Itoa(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
