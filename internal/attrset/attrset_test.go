package attrset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(1, 65, 3)
	if s.Len() != 3 || !s.Has(65) || s.Has(2) {
		t.Errorf("set = %v", s)
	}
	s2 := s.Without(65)
	if s2.Has(65) || s2.Len() != 2 {
		t.Errorf("Without = %v", s2)
	}
	if !s.Has(65) {
		t.Error("Without mutated its receiver")
	}
	if s.Without(99).Len() != 3 {
		t.Error("Without of absent member changed size")
	}
}

func TestEmptyAndFull(t *testing.T) {
	var e Set
	if !e.IsEmpty() || e.Len() != 0 {
		t.Error("zero value should be empty")
	}
	f := Full(70)
	if f.Len() != 70 || !f.Has(69) || f.Has(70) {
		t.Errorf("Full(70) wrong: %d", f.Len())
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	gen := func(rng *rand.Rand) Set {
		var s Set
		for i := 0; i < rng.Intn(10); i++ {
			s = s.With(rng.Intn(130))
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		i := a.Intersect(b)
		if !i.SubsetOf(a) || !i.SubsetOf(b) {
			return false
		}
		// |A∪B| + |A∩B| = |A| + |B|
		if u.Len()+i.Len() != a.Len()+b.Len() {
			return false
		}
		// A \ B disjoint from B, union with A∩B gives A.
		d := a.Minus(b)
		if !d.Intersect(b).IsEmpty() {
			return false
		}
		if !d.Union(i).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMembersRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		want := map[int]bool{}
		for i := 0; i < rng.Intn(20); i++ {
			a := rng.Intn(200)
			s = s.With(a)
			want[a] = true
		}
		ms := s.Members()
		if len(ms) != len(want) {
			return false
		}
		for i := 1; i < len(ms); i++ {
			if ms[i-1] >= ms[i] {
				return false
			}
		}
		return FromSlice(ms).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := New(3)
	b := New(3, 100).Without(100) // same logical set, longer word slice
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if New(1).Key() == New(2).Key() {
		t.Error("distinct sets share a key")
	}
}

func TestString(t *testing.T) {
	if got := New(5, 1).String(); got != "{1,5}" {
		t.Errorf("String = %q", got)
	}
	var e Set
	if e.String() != "{}" {
		t.Errorf("empty String = %q", e.String())
	}
}

func TestSubsetEdgeCases(t *testing.T) {
	var e Set
	if !e.SubsetOf(New(1)) || !e.SubsetOf(e) {
		t.Error("empty set subset rules")
	}
	if New(100).SubsetOf(New(1)) {
		t.Error("wide set wrongly subset of narrow set")
	}
	if !New(1).Equal(New(1)) || New(1).Equal(New(2)) {
		t.Error("Equal wrong")
	}
}
