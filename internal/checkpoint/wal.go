package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"fdx/internal/core"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

// WAL is an append-only log of batch deltas complementing the snapshot: a
// snapshot captures state up to batch m, the WAL holds every batch after
// m, and each append is fsynced, so a crash loses at most the one record
// torn mid-write. A WAL is single-writer; it is not safe for concurrent
// use.
type WAL struct {
	f    *os.File
	path string
}

// OpenWAL opens (creating if absent) the WAL at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fdxerr.Corrupt("checkpoint: open wal: %v", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fdxerr.Corrupt("checkpoint: seek wal: %v", err)
	}
	return &WAL{f: f, path: path}, nil
}

// Path returns the WAL's file path.
func (w *WAL) Path() string { return w.path }

// Append logs one batch delta and fsyncs, returning the record's framed
// size (for telemetry). On error the record may be torn on disk; a later
// replay truncates it, so the failed batch is the one at risk, never
// earlier ones.
func (w *WAL) Append(d *core.BatchDelta) (int, error) {
	payload, err := encodeDelta(d)
	if err != nil {
		return 0, err
	}
	var header enc
	header.u32(uint32(len(payload)))
	crc := frameCRC(header.buf, payload)
	frame := make([]byte, 0, len(header.buf)+len(payload)+4)
	frame = append(frame, header.buf...)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc)
	if err := writeFull(w.f, frame); err != nil {
		return 0, err
	}
	return len(frame), syncFile(w.f)
}

// Reset truncates the WAL after a successful snapshot. Skipping a Reset is
// safe — replay ignores records already covered by the snapshot — it only
// lets the file grow.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fdxerr.Corrupt("checkpoint: truncate wal: %v", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fdxerr.Corrupt("checkpoint: seek wal: %v", err)
	}
	return syncFile(w.f)
}

// Close closes the WAL file.
func (w *WAL) Close() error {
	if err := w.f.Close(); err != nil {
		return fdxerr.Corrupt("checkpoint: close wal: %v", err)
	}
	return nil
}

// ReplayWAL reads the WAL at path, calling apply for each complete record
// in order, and truncates a torn tail record in place so later appends
// continue after the last good one; torn reports whether such a tail was
// found (callers surface it — a torn tail is the one unsynced batch a kill
// can lose, and hiding the truncation would make a resumed stream look
// further along than it is). A missing file replays zero records.
// Mid-log corruption (a bad record with valid data after it) wraps
// ErrCorruptCheckpoint; an apply error is returned as-is.
func ReplayWAL(path string, apply func(*core.BatchDelta) error) (applied int, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fdxerr.Corrupt("checkpoint: open wal: %v", err)
	}
	defer f.Close()
	data, err := io.ReadAll(flipReader{f})
	if err != nil {
		return 0, false, fdxerr.Corrupt("checkpoint: read wal: %v", err)
	}

	off := 0
	for off < len(data) {
		rem := data[off:]
		if len(rem) < 8 {
			torn = true
			break
		}
		n := binary.LittleEndian.Uint32(rem)
		total := 4 + int64(n) + 4
		if int64(n) > maxSectionLen || total > int64(len(rem)) {
			// The record claims more bytes than exist: a tail torn while
			// (or before) its payload was being written.
			torn = true
			break
		}
		frame := rem[:4+n]
		want := binary.LittleEndian.Uint32(rem[4+n:])
		if frameCRC(frame[:4], frame[4:]) != want {
			if int(total) == len(rem) {
				// Full-length final record with a bad sum: torn mid-write
				// with stale bytes beyond the tear.
				torn = true
				break
			}
			return applied, torn, fdxerr.Corrupt("checkpoint: wal record at offset %d fails its checksum with %d live bytes after it", off, len(rem)-int(total))
		}
		d, derr := decodeDelta(frame[4:])
		if derr != nil {
			return applied, torn, fmt.Errorf("checkpoint: wal record at offset %d: %w", off, derr)
		}
		if aerr := apply(d); aerr != nil {
			return applied, torn, aerr
		}
		applied++
		off += int(total)
	}
	if torn {
		if err := f.Truncate(int64(off)); err != nil {
			return applied, torn, fdxerr.Corrupt("checkpoint: truncate torn wal tail: %v", err)
		}
		if err := syncFile(f); err != nil {
			return applied, torn, err
		}
	}
	return applied, torn, nil
}

// encodeDelta serializes a batch delta as a WAL record payload: seq, rows,
// k, global, then the per-stratum sums and outer-product sums. The global
// field postdates the original layout; decodeDelta discriminates the two
// by payload length, so logs written before sharding still replay.
func encodeDelta(d *core.BatchDelta) ([]byte, error) {
	if d == nil {
		return nil, fdxerr.BadInput("checkpoint: nil batch delta")
	}
	k := len(d.Sums)
	if k > maxAttrs {
		return nil, fdxerr.BadInput("checkpoint: delta has %d strata, format limit %d", k, maxAttrs)
	}
	if d.Global < 0 {
		return nil, fdxerr.BadInput("checkpoint: delta has negative global index %d", d.Global)
	}
	var e enc
	e.u64(uint64(d.Seq))
	e.u64(uint64(d.Rows))
	e.u32(uint32(k))
	e.u64(uint64(d.Global))
	for _, stratum := range d.Sums {
		if len(stratum) != k {
			return nil, fdxerr.BadInput("checkpoint: delta stratum has %d sums, want %d", len(stratum), k)
		}
		for _, v := range stratum {
			e.f64(v)
		}
	}
	if len(d.Outer) != k {
		return nil, fdxerr.BadInput("checkpoint: delta has %d outer strata, want %d", len(d.Outer), k)
	}
	for _, m := range d.Outer {
		if r, c := m.Dims(); r != k || c != k {
			return nil, fdxerr.BadInput("checkpoint: delta outer is %dx%d, want %dx%d", r, c, k, k)
		}
		for _, v := range m.Data() {
			e.f64(v)
		}
	}
	return e.buf, nil
}

// decodeDelta parses a WAL record payload. Structural failures wrap
// ErrCorruptCheckpoint: the payload already passed its CRC, so a
// malformed layout means the bytes never came from encodeDelta.
func decodeDelta(payload []byte) (*core.BatchDelta, error) {
	d := dec{payload}
	seq, ok1 := d.u64()
	rows, ok2 := d.u64()
	k32, ok3 := d.u32()
	if !ok1 || !ok2 || !ok3 {
		return nil, fdxerr.Corrupt("checkpoint: wal record too short")
	}
	if k32 > maxAttrs || seq > 1<<62 || rows > 1<<62 {
		return nil, fdxerr.Corrupt("checkpoint: wal record fields out of range")
	}
	k := int(k32)
	// Two layouts share the header: the original body is exactly the sums
	// and outer floats; the sharded layout prefixes a u64 global index.
	// The 8-byte difference discriminates them for any k. Records without
	// the field predate sharding, where the global index was always the
	// 0-based batch position Seq-1.
	global := seq - 1
	switch len(d.buf) {
	case 8 * (k*k + k*k*k):
	case 8 + 8*(k*k+k*k*k):
		g, _ := d.u64()
		if g > 1<<62 {
			return nil, fdxerr.Corrupt("checkpoint: wal record global index out of range")
		}
		global = g
	default:
		return nil, fdxerr.Corrupt("checkpoint: wal record body is %d bytes, want %d", len(d.buf), 8+8*(k*k+k*k*k))
	}
	out := &core.BatchDelta{
		Seq:    int(seq),
		Global: int(global),
		Rows:   int(rows),
		Sums:   make([][]float64, k),
		Outer:  make([]*linalg.Dense, k),
	}
	for s := 0; s < k; s++ {
		out.Sums[s] = make([]float64, k)
		for p := 0; p < k; p++ {
			out.Sums[s][p], _ = d.f64()
		}
	}
	for s := 0; s < k; s++ {
		data := make([]float64, k*k)
		for i := range data {
			data[i], _ = d.f64()
		}
		out.Outer[s] = linalg.NewDenseData(k, k, data)
	}
	return out, nil
}
