// Package checkpoint implements the durable on-disk state of incremental
// discovery: a versioned, self-validating snapshot of the Accumulator's
// sufficient statistics plus an append-only batch WAL, so a killed
// streaming process resumes losing at most the one unsynced tail batch.
//
// # Snapshot format (version 1)
//
// A snapshot is a 16-byte prologue followed by framed sections:
//
//	offset  size  field
//	0       8     magic "FDXCKPT1"
//	8       4     format version, little-endian uint32
//	12      4     reserved flags (zero)
//
//	section frame (repeated):
//	0       4     section ID, little-endian uint32
//	4       8     payload length, little-endian uint64
//	12      n     payload
//	12+n    4     CRC32C over ID + length + payload
//
// Sections appear in any order after meta; readers skip unknown IDs (still
// CRC-checked) so minor format additions stay readable, and the stream
// ends with the zero-length end section. The versioning recipe: a new
// optional field gets a new section ID (old readers skip it); a change old
// readers would misinterpret bumps the version, which they reject with
// ErrCheckpointVersion.
//
// # WAL format
//
// The WAL is a sequence of records, each fsynced on append:
//
//	0    4    payload length, little-endian uint32
//	4    n    payload (one encoded core.BatchDelta)
//	4+n  4    CRC32C over length + payload
//
// A record that runs past end-of-file, or whose CRC fails with no bytes
// after it, is a torn tail from a crash mid-append: replay stops there and
// truncates the file. A CRC failure with valid bytes after it cannot come
// from a torn append and is reported as ErrCorruptCheckpoint.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"

	"fdx/internal/faults"
	"fdx/internal/fdxerr"
)

const (
	// magic identifies a snapshot file; the trailing byte doubles as a
	// human-readable format generation.
	magic = "FDXCKPT1"
	// version is the snapshot format version this build reads and writes.
	version = 1

	// Section IDs of the version-1 snapshot.
	secEnd    = 0 // zero-length terminator
	secMeta   = 1 // fingerprint, counters, attribute names
	secCounts = 2 // per-stratum observation counts
	secSums   = 3 // per-stratum sum vectors
	secOuter  = 4 // per-stratum outer-product sums
	secRanges = 5 // batch-coverage intervals (absent = [0, batches))

	// maxSectionLen bounds a section (and WAL record) payload so a
	// corrupted length field cannot demand an absurd allocation.
	maxSectionLen = 1 << 27
	// maxAttrs bounds the attribute count a snapshot may claim: the cubic
	// outer-product section of a larger schema would exceed maxSectionLen
	// (8·k³ bytes), so the bound keeps everything we write readable.
	maxAttrs = 256
)

// castagnoli is the CRC32C table used for every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// enc is a little-endian append-only payload builder.
type enc struct{ buf []byte }

func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// dec is a little-endian payload reader; every getter reports whether the
// payload still had enough bytes.
type dec struct{ buf []byte }

func (d *dec) u32() (uint32, bool) {
	if len(d.buf) < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v, true
}

func (d *dec) u64() (uint64, bool) {
	if len(d.buf) < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v, true
}

func (d *dec) f64() (float64, bool) {
	v, ok := d.u64()
	return math.Float64frombits(v), ok
}

func (d *dec) str() (string, bool) {
	n, ok := d.u32()
	if !ok || uint64(n) > uint64(len(d.buf)) {
		return "", false
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, true
}

// frameCRC checksums a section or WAL record frame (header + payload).
func frameCRC(header, payload []byte) uint32 {
	c := crc32.Update(0, castagnoli, header)
	return crc32.Update(c, castagnoli, payload)
}

// writeSection frames and writes one snapshot section.
func writeSection(w io.Writer, id uint32, payload []byte) error {
	var h enc
	h.u32(id)
	h.u64(uint64(len(payload)))
	crc := frameCRC(h.buf, payload)
	if err := writeFull(w, h.buf); err != nil {
		return err
	}
	if err := writeFull(w, payload); err != nil {
		return err
	}
	var tail enc
	tail.u32(crc)
	return writeFull(w, tail.buf)
}

// readSection reads and validates one section frame.
func readSection(r io.Reader) (id uint32, payload []byte, err error) {
	header := make([]byte, 12)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, fdxerr.Corrupt("checkpoint: truncated section header (%v)", err)
	}
	id = binary.LittleEndian.Uint32(header)
	n := binary.LittleEndian.Uint64(header[4:])
	if n > maxSectionLen {
		return 0, nil, fdxerr.Corrupt("checkpoint: section %d claims %d bytes (max %d)", id, n, maxSectionLen)
	}
	// CopyN into a buffer grows with the bytes actually present, so a lying
	// length on a truncated file cannot force a huge allocation.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return 0, nil, fdxerr.Corrupt("checkpoint: truncated section %d payload (%v)", id, err)
	}
	payload = buf.Bytes()
	tail := make([]byte, 4)
	if _, err := io.ReadFull(r, tail); err != nil {
		return 0, nil, fdxerr.Corrupt("checkpoint: truncated section %d checksum (%v)", id, err)
	}
	if got, want := frameCRC(header, payload), binary.LittleEndian.Uint32(tail); got != want {
		return 0, nil, fdxerr.Corrupt("checkpoint: section %d checksum mismatch (%08x != %08x)", id, got, want)
	}
	return id, payload, nil
}

// writeFull writes b completely, surfacing short writes (including the
// armed ShortWrite fault) as ErrCorruptCheckpoint-wrapped errors.
func writeFull(w io.Writer, b []byte) error {
	if len(b) > 0 && faults.Fire(faults.ShortWrite) {
		n, _ := w.Write(b[:len(b)/2])
		return fdxerr.Corrupt("checkpoint: short write: %d of %d bytes (injected)", n, len(b))
	}
	n, err := w.Write(b)
	if err != nil {
		return fdxerr.Corrupt("checkpoint: write: %v", err)
	}
	if n != len(b) {
		return fdxerr.Corrupt("checkpoint: short write: %d of %d bytes", n, len(b))
	}
	return nil
}

// flipReader corrupts one bit of the first byte it reads whenever the
// ReadBitFlip fault fires, exercising the CRC validation on restore.
type flipReader struct{ r io.Reader }

func (fr flipReader) Read(p []byte) (int, error) {
	n, err := fr.r.Read(p)
	if n > 0 && faults.Fire(faults.ReadBitFlip) {
		p[0] ^= 0x40
	}
	return n, err
}
