package checkpoint

import (
	"encoding/binary"
	"io"

	"fdx/internal/core"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

// WriteSnapshot encodes the accumulator state to w in the version-1
// snapshot format. fingerprint identifies the options the state was
// accumulated under; restore refuses a snapshot whose fingerprint differs
// from the caller's options.
func WriteSnapshot(w io.Writer, st *core.AccumulatorState, fingerprint uint64) error {
	if st == nil {
		return fdxerr.BadInput("checkpoint: nil accumulator state")
	}
	k := len(st.Names)
	if k > maxAttrs {
		return fdxerr.BadInput("checkpoint: %d attributes exceed the format limit %d", k, maxAttrs)
	}
	var prologue enc
	prologue.buf = append(prologue.buf, magic...)
	prologue.u32(version)
	prologue.u32(0) // reserved flags
	if err := writeFull(w, prologue.buf); err != nil {
		return err
	}

	var meta enc
	meta.u64(fingerprint)
	meta.u64(uint64(st.Rows))
	meta.u64(uint64(st.Batches))
	meta.u32(uint32(k))
	for _, n := range st.Names {
		meta.str(n)
	}
	if err := writeSection(w, secMeta, meta.buf); err != nil {
		return err
	}

	var counts enc
	for _, c := range st.Count {
		counts.u64(uint64(c))
	}
	if err := writeSection(w, secCounts, counts.buf); err != nil {
		return err
	}

	var sums enc
	for _, stratum := range st.Sums {
		for _, v := range stratum {
			sums.f64(v)
		}
	}
	if err := writeSection(w, secSums, sums.buf); err != nil {
		return err
	}

	var outer enc
	for _, m := range st.Outer {
		for _, v := range m.Data() {
			outer.f64(v)
		}
	}
	if err := writeSection(w, secOuter, outer.buf); err != nil {
		return err
	}

	// The coverage section is written only when it differs from the
	// sequential default [0, batches), so unsharded snapshots stay
	// byte-identical to what pre-sharding builds wrote (and readable by
	// them — readers skip unknown sections).
	if !sequentialRanges(st.Ranges, st.Batches) {
		var ranges enc
		ranges.u32(uint32(len(st.Ranges)))
		for _, r := range st.Ranges {
			ranges.u64(uint64(r.Lo))
			ranges.u64(uint64(r.Hi))
		}
		if err := writeSection(w, secRanges, ranges.buf); err != nil {
			return err
		}
	}

	return writeSection(w, secEnd, nil)
}

// sequentialRanges reports whether the coverage is the sequential default
// a rangeless snapshot restores to: empty at zero batches, or the single
// interval [0, batches).
func sequentialRanges(rs []core.BatchRange, batches int) bool {
	if len(rs) == 0 {
		return batches == 0
	}
	return len(rs) == 1 && rs[0].Lo == 0 && rs[0].Hi == batches
}

// ReadSnapshot decodes a snapshot from r, returning the accumulator state
// and the options fingerprint it was written under. Failures wrap
// ErrCorruptCheckpoint (bad magic, CRC mismatch, inconsistent dimensions)
// or ErrCheckpointVersion (intact bytes from an incompatible version).
func ReadSnapshot(r io.Reader) (*core.AccumulatorState, uint64, error) {
	fr := flipReader{r}
	prologue := make([]byte, 16)
	if _, err := io.ReadFull(fr, prologue); err != nil {
		return nil, 0, fdxerr.Corrupt("checkpoint: truncated prologue (%v)", err)
	}
	if string(prologue[:8]) != magic {
		return nil, 0, fdxerr.Corrupt("checkpoint: bad magic %q", prologue[:8])
	}
	if v := binary.LittleEndian.Uint32(prologue[8:]); v != version {
		return nil, 0, fdxerr.Version("checkpoint: format version %d, this build reads %d", v, version)
	}
	if flags := binary.LittleEndian.Uint32(prologue[12:]); flags != 0 {
		// Reserved for future revisions; a flag this build does not know
		// could change the meaning of everything that follows.
		return nil, 0, fdxerr.Version("checkpoint: unknown format flags %#x", flags)
	}

	var (
		st          *core.AccumulatorState
		fingerprint uint64
		seen        = map[uint32]bool{}
	)
	for {
		id, payload, err := readSection(fr)
		if err != nil {
			return nil, 0, err
		}
		if id == secEnd {
			if len(payload) != 0 {
				return nil, 0, fdxerr.Corrupt("checkpoint: end section carries %d bytes", len(payload))
			}
			break
		}
		if seen[id] {
			return nil, 0, fdxerr.Corrupt("checkpoint: duplicate section %d", id)
		}
		seen[id] = true
		switch id {
		case secMeta:
			st, fingerprint, err = decodeMeta(payload)
		case secCounts:
			err = decodeCounts(st, payload)
		case secSums:
			err = decodeSums(st, payload)
		case secOuter:
			err = decodeOuter(st, payload)
		case secRanges:
			err = decodeRanges(st, payload)
		default:
			// Unknown section from a newer minor revision: checksummed
			// above, skipped here.
		}
		if err != nil {
			return nil, 0, err
		}
	}
	if st == nil {
		return nil, 0, fdxerr.Corrupt("checkpoint: missing meta section")
	}
	if !seen[secCounts] || !seen[secSums] || !seen[secOuter] {
		return nil, 0, fdxerr.Corrupt("checkpoint: missing state sections")
	}
	return st, fingerprint, nil
}

// decodeMeta parses the meta section and allocates the state skeleton the
// remaining sections fill in.
func decodeMeta(payload []byte) (*core.AccumulatorState, uint64, error) {
	d := dec{payload}
	fingerprint, ok1 := d.u64()
	rows, ok2 := d.u64()
	batches, ok3 := d.u64()
	k, ok4 := d.u32()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return nil, 0, fdxerr.Corrupt("checkpoint: meta section too short")
	}
	if k > maxAttrs {
		return nil, 0, fdxerr.Corrupt("checkpoint: meta claims %d attributes (max %d)", k, maxAttrs)
	}
	if rows > 1<<62 || batches > 1<<62 {
		return nil, 0, fdxerr.Corrupt("checkpoint: meta counters out of range")
	}
	st := &core.AccumulatorState{
		Names:   make([]string, k),
		Rows:    int(rows),
		Batches: int(batches),
	}
	for i := range st.Names {
		name, ok := d.str()
		if !ok {
			return nil, 0, fdxerr.Corrupt("checkpoint: meta section truncated at attribute %d", i)
		}
		st.Names[i] = name
	}
	if len(d.buf) != 0 {
		return nil, 0, fdxerr.Corrupt("checkpoint: meta section has %d trailing bytes", len(d.buf))
	}
	return st, fingerprint, nil
}

func decodeCounts(st *core.AccumulatorState, payload []byte) error {
	if st == nil {
		return fdxerr.Corrupt("checkpoint: counts section before meta")
	}
	k := len(st.Names)
	if len(payload) != 8*k {
		return fdxerr.Corrupt("checkpoint: counts section is %d bytes, want %d", len(payload), 8*k)
	}
	d := dec{payload}
	st.Count = make([]int, k)
	for s := 0; s < k; s++ {
		c, _ := d.u64()
		if c > 1<<62 {
			return fdxerr.Corrupt("checkpoint: stratum %d count out of range", s)
		}
		st.Count[s] = int(c)
	}
	return nil
}

func decodeSums(st *core.AccumulatorState, payload []byte) error {
	if st == nil {
		return fdxerr.Corrupt("checkpoint: sums section before meta")
	}
	k := len(st.Names)
	if len(payload) != 8*k*k {
		return fdxerr.Corrupt("checkpoint: sums section is %d bytes, want %d", len(payload), 8*k*k)
	}
	d := dec{payload}
	st.Sums = make([][]float64, k)
	for s := 0; s < k; s++ {
		st.Sums[s] = make([]float64, k)
		for p := 0; p < k; p++ {
			st.Sums[s][p], _ = d.f64()
		}
	}
	return nil
}

// decodeRanges parses the optional batch-coverage section. A snapshot
// without one restores with nil Ranges, which the core defaults to the
// sequential coverage [0, batches) — the only coverage pre-sharding
// writers could have had.
func decodeRanges(st *core.AccumulatorState, payload []byte) error {
	if st == nil {
		return fdxerr.Corrupt("checkpoint: ranges section before meta")
	}
	d := dec{payload}
	n, ok := d.u32()
	if !ok {
		return fdxerr.Corrupt("checkpoint: ranges section too short")
	}
	if uint64(n) > uint64(st.Batches) {
		// Coalesced disjoint intervals over b batches can never number
		// more than b.
		return fdxerr.Corrupt("checkpoint: ranges section claims %d intervals for %d batches", n, st.Batches)
	}
	st.Ranges = make([]core.BatchRange, n)
	for i := range st.Ranges {
		lo, ok1 := d.u64()
		hi, ok2 := d.u64()
		if !ok1 || !ok2 {
			return fdxerr.Corrupt("checkpoint: ranges section truncated at interval %d", i)
		}
		if lo > 1<<62 || hi > 1<<62 {
			return fdxerr.Corrupt("checkpoint: ranges interval %d out of range", i)
		}
		st.Ranges[i] = core.BatchRange{Lo: int(lo), Hi: int(hi)}
	}
	if len(d.buf) != 0 {
		return fdxerr.Corrupt("checkpoint: ranges section has %d trailing bytes", len(d.buf))
	}
	return nil
}

func decodeOuter(st *core.AccumulatorState, payload []byte) error {
	if st == nil {
		return fdxerr.Corrupt("checkpoint: outer section before meta")
	}
	k := len(st.Names)
	if len(payload) != 8*k*k*k {
		return fdxerr.Corrupt("checkpoint: outer section is %d bytes, want %d", len(payload), 8*k*k*k)
	}
	d := dec{payload}
	st.Outer = make([]*linalg.Dense, k)
	for s := 0; s < k; s++ {
		data := make([]float64, k*k)
		for i := range data {
			data[i], _ = d.f64()
		}
		st.Outer[s] = linalg.NewDenseData(k, k, data)
	}
	return nil
}
