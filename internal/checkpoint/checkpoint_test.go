package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
)

// testAccumulator builds an accumulator with a few absorbed batches and
// returns it with the deltas it absorbed.
func testAccumulator(t *testing.T, batches int) (*core.Accumulator, []*core.BatchDelta) {
	t.Helper()
	opts := core.Options{Seed: 3}
	acc := core.NewAccumulator([]string{"zip", "city", "state"}, opts)
	rng := rand.New(rand.NewSource(17))
	var deltas []*core.BatchDelta
	for b := 0; b < batches; b++ {
		rel := dataset.New("batch", "zip", "city", "state")
		for i := 0; i < 40; i++ {
			c := rng.Intn(3)
			rel.AppendRow([]string{fmt.Sprint(50000 + c), []string{"madison", "austin", "provo"}[c], []string{"wi", "tx", "ut"}[c]})
		}
		d, err := acc.Absorb(rel)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
	}
	return acc, deltas
}

// assertStateEqual compares two accumulator states bit-for-bit.
func assertStateEqual(t *testing.T, got, want *core.AccumulatorState) {
	t.Helper()
	if got.Rows != want.Rows || got.Batches != want.Batches {
		t.Fatalf("counters: got rows=%d batches=%d, want rows=%d batches=%d", got.Rows, got.Batches, want.Rows, want.Batches)
	}
	for s := range want.Names {
		if got.Names[s] != want.Names[s] || got.Count[s] != want.Count[s] {
			t.Fatalf("stratum %d meta differs", s)
		}
		for p := range want.Sums[s] {
			if got.Sums[s][p] != want.Sums[s][p] {
				t.Fatalf("sums[%d][%d]: %v != %v", s, p, got.Sums[s][p], want.Sums[s][p])
			}
		}
		gd, wd := got.Outer[s].Data(), want.Outer[s].Data()
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("outer[%d] element %d: %v != %v", s, i, gd[i], wd[i])
			}
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	acc, _ := testAccumulator(t, 3)
	fp := Fingerprint(acc.Options())
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, acc.State(), fp); err != nil {
		t.Fatal(err)
	}
	st, gotFP, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Errorf("fingerprint %016x, want %016x", gotFP, fp)
	}
	assertStateEqual(t, st, acc.State())
}

func TestSnapshotEveryTruncationFailsTyped(t *testing.T) {
	acc, _ := testAccumulator(t, 2)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, acc.State(), 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		_, _, err := ReadSnapshot(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
		if !errors.Is(err, fdxerr.ErrCorruptCheckpoint) && !errors.Is(err, fdxerr.ErrCheckpointVersion) {
			t.Fatalf("truncation at %d: error outside taxonomy: %v", cut, err)
		}
	}
}

func TestSnapshotEveryByteFlipFailsTypedOrRoundtrips(t *testing.T) {
	acc, _ := testAccumulator(t, 2)
	want := acc.State()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, want, 7); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for pos := 0; pos < len(clean); pos++ {
		data := append([]byte(nil), clean...)
		data[pos] ^= 0x10
		st, fp, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, fdxerr.ErrCorruptCheckpoint) && !errors.Is(err, fdxerr.ErrCheckpointVersion) {
				t.Fatalf("flip at %d: error outside taxonomy: %v", pos, err)
			}
			continue
		}
		// CRC32C cannot miss a single-bit flip inside a covered frame; an
		// accepted read can only mean the flip landed somewhere harmless,
		// which this format has none of.
		t.Fatalf("flip at %d accepted (fp %x, rows %d)", pos, fp, st.Rows)
	}
}

func TestSnapshotVersionMismatch(t *testing.T) {
	acc, _ := testAccumulator(t, 1)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, acc.State(), 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 99 // version field
	_, _, err := ReadSnapshot(bytes.NewReader(data))
	if !errors.Is(err, fdxerr.ErrCheckpointVersion) {
		t.Fatalf("want ErrCheckpointVersion, got %v", err)
	}
}

func TestSnapshotUnknownSectionSkipped(t *testing.T) {
	// A newer minor revision may add sections; this reader must skip them.
	acc, _ := testAccumulator(t, 2)
	want := acc.State()
	var buf bytes.Buffer
	var prologue enc
	prologue.buf = append(prologue.buf, magic...)
	prologue.u32(version)
	prologue.u32(0)
	buf.Write(prologue.buf)
	var meta enc
	meta.u64(11)
	meta.u64(uint64(want.Rows))
	meta.u64(uint64(want.Batches))
	meta.u32(uint32(len(want.Names)))
	for _, n := range want.Names {
		meta.str(n)
	}
	writeSection(&buf, secMeta, meta.buf)
	writeSection(&buf, 0xBEEF, []byte("future payload")) // unknown, skippable
	var counts enc
	for _, c := range want.Count {
		counts.u64(uint64(c))
	}
	writeSection(&buf, secCounts, counts.buf)
	var sums enc
	for _, stratum := range want.Sums {
		for _, v := range stratum {
			sums.f64(v)
		}
	}
	writeSection(&buf, secSums, sums.buf)
	var outer enc
	for _, m := range want.Outer {
		for _, v := range m.Data() {
			outer.f64(v)
		}
	}
	writeSection(&buf, secOuter, outer.buf)
	writeSection(&buf, secEnd, nil)

	st, fp, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fp != 11 {
		t.Errorf("fingerprint %d, want 11", fp)
	}
	assertStateEqual(t, st, want)
}

func TestSaveLoadDurableRoundtrip(t *testing.T) {
	acc, _ := testAccumulator(t, 3)
	path := filepath.Join(t.TempDir(), "state.fdx")
	fp := Fingerprint(acc.Options())
	if _, err := Save(path, acc.State(), fp); err != nil {
		t.Fatal(err)
	}
	st, gotFP, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Errorf("fingerprint mismatch")
	}
	assertStateEqual(t, st, acc.State())
	// Overwrite with newer state: previous bytes must be fully replaced.
	acc2, _ := testAccumulator(t, 5)
	if _, err := Save(path, acc2.State(), fp); err != nil {
		t.Fatal(err)
	}
	st2, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertStateEqual(t, st2, acc2.State())
	// No temp litter left behind.
	matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp-*"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}

func TestLoadMissingFileMatchesNotExist(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "nope.fdx"))
	if !errors.Is(err, os.ErrNotExist) || !errors.Is(err, fdxerr.ErrBadInput) {
		t.Fatalf("want fs.ErrNotExist wrapped in ErrBadInput, got %v", err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	acc, deltas := testAccumulator(t, 4)
	path := filepath.Join(t.TempDir(), "state.fdx.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if _, err := w.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := core.NewAccumulator(acc.State().Names, acc.Options())
	n, _, err := ReplayWAL(path, replayed.ApplyDelta)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(deltas) {
		t.Fatalf("replayed %d records, want %d", n, len(deltas))
	}
	assertStateEqual(t, replayed.State(), acc.State())
}

func TestWALTornTailTruncatedAtEveryCut(t *testing.T) {
	_, deltas := testAccumulator(t, 3)
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	w, err := OpenWAL(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if _, err := w.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	clean, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	recordLen := len(clean) / len(deltas)
	for cut := 0; cut <= len(clean); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []*core.BatchDelta
		n, torn, err := ReplayWAL(path, func(d *core.BatchDelta) error {
			got = append(got, d)
			return nil
		})
		if err != nil {
			t.Fatalf("cut at %d: replay failed: %v", cut, err)
		}
		if want := cut / recordLen; n != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, n, want)
		}
		if want := cut%recordLen != 0; torn != want {
			t.Fatalf("cut at %d: torn=%v, want %v", cut, torn, want)
		}
		for i, d := range got {
			if d.Seq != deltas[i].Seq || d.Rows != deltas[i].Rows {
				t.Fatalf("cut at %d: record %d mismatch", cut, i)
			}
		}
		// The torn tail must be physically truncated so appends continue
		// after the last good record.
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(n * recordLen); info.Size() != want {
			t.Fatalf("cut at %d: file is %d bytes after replay, want %d", cut, info.Size(), want)
		}
	}
}

func TestWALMidLogCorruptionIsTyped(t *testing.T) {
	_, deltas := testAccumulator(t, 3)
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	w, err := OpenWAL(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if _, err := w.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	clean, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST record: valid records follow, so this is
	// corruption, not a torn tail.
	data := append([]byte(nil), clean...)
	data[10] ^= 0x01
	path := filepath.Join(dir, "bad.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayWAL(path, func(*core.BatchDelta) error { return nil })
	if !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
}

func TestWALResetEmptiesLog(t *testing.T) {
	_, deltas := testAccumulator(t, 2)
	path := filepath.Join(t.TempDir(), "w.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(deltas[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(deltas[1]); err != nil {
		t.Fatal(err)
	}
	n, _, err := ReplayWAL(path, func(d *core.BatchDelta) error {
		if d.Seq != deltas[1].Seq {
			return fmt.Errorf("unexpected seq %d", d.Seq)
		}
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("replay after reset: n=%d err=%v", n, err)
	}
}

func TestFingerprintSeparatesOptions(t *testing.T) {
	base := core.Options{Seed: 1}
	same := Fingerprint(base)
	if Fingerprint(core.Options{Seed: 1}) != same {
		t.Error("fingerprint not deterministic")
	}
	for name, o := range map[string]core.Options{
		"seed":    {Seed: 2},
		"maxrows": {Seed: 1, Transform: core.TransformOptions{MaxRows: 100}},
		"numtol":  {Seed: 1, Transform: core.TransformOptions{NumericTol: 0.1}},
		"textsim": {Seed: 1, Transform: core.TransformOptions{TextSimilarity: true}},
	} {
		if Fingerprint(o) == same {
			t.Errorf("%s change does not alter the fingerprint", name)
		}
	}
	// Discovery-time options must NOT change the fingerprint: a resumed
	// stream may pick a different lambda or ordering.
	if Fingerprint(core.Options{Seed: 1, Lambda: 0.01, Ordering: "amd", Threshold: 0.3}) != same {
		t.Error("discovery-time options leak into the fingerprint")
	}
}

// --- fault injection -------------------------------------------------------

func TestFaultShortWriteSaveFailsTypedAndKeepsOld(t *testing.T) {
	defer faults.Reset()
	acc, _ := testAccumulator(t, 2)
	path := filepath.Join(t.TempDir(), "state.fdx")
	if _, err := Save(path, acc.State(), 1); err != nil {
		t.Fatal(err)
	}
	old, _ := os.ReadFile(path)
	faults.Arm(faults.ShortWrite, faults.Config{Times: 1})
	acc2, _ := testAccumulator(t, 4)
	_, err := Save(path, acc2.State(), 1)
	if !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
	now, _ := os.ReadFile(path)
	if !bytes.Equal(old, now) {
		t.Error("failed save altered the previous checkpoint")
	}
	matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp-*"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}

func TestFaultFsyncErrorSaveFailsTyped(t *testing.T) {
	defer faults.Reset()
	acc, _ := testAccumulator(t, 2)
	path := filepath.Join(t.TempDir(), "state.fdx")
	faults.Arm(faults.FsyncError, faults.Config{Times: 1})
	if _, err := Save(path, acc.State(), 1); !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
}

func TestFaultRenameFailSaveFailsTypedAndCleansTemp(t *testing.T) {
	defer faults.Reset()
	acc, _ := testAccumulator(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.fdx")
	faults.Arm(faults.RenameFail, faults.Config{Times: 1})
	if _, err := Save(path, acc.State(), 1); !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("snapshot appeared despite failed rename")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}

func TestFaultReadBitFlipLoadFailsTyped(t *testing.T) {
	defer faults.Reset()
	acc, _ := testAccumulator(t, 2)
	path := filepath.Join(t.TempDir(), "state.fdx")
	if _, err := Save(path, acc.State(), 1); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.ReadBitFlip, faults.Config{Times: 1})
	if _, _, err := Load(path); !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
	// Disarmed again, the same file loads fine: the flip was on read.
	if _, _, err := Load(path); err != nil {
		t.Fatalf("clean reload failed: %v", err)
	}
}

func TestFaultShortWriteWALAppendFailsTyped(t *testing.T) {
	defer faults.Reset()
	_, deltas := testAccumulator(t, 2)
	path := filepath.Join(t.TempDir(), "w.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(deltas[0]); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.ShortWrite, faults.Config{Times: 1})
	if _, err := w.Append(deltas[1]); !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
	// The torn second record must not poison the first on replay, and the
	// truncation must be reported.
	n, torn, err := ReplayWAL(path, func(*core.BatchDelta) error { return nil })
	if err != nil || n != 1 || !torn {
		t.Fatalf("replay after torn append: n=%d torn=%v err=%v", n, torn, err)
	}
}

func TestFaultReadBitFlipWALReplayFailsTypedOrTruncates(t *testing.T) {
	defer faults.Reset()
	_, deltas := testAccumulator(t, 2)
	path := filepath.Join(t.TempDir(), "w.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if _, err := w.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	faults.Arm(faults.ReadBitFlip, faults.Config{Times: 1})
	n, _, err := ReplayWAL(path, func(*core.BatchDelta) error { return nil })
	// The flip lands in the first read chunk: either the damaged record is
	// detected as mid-log corruption (typed error) or, if it hit the final
	// record's bytes, the tail is dropped. Never a silent full replay.
	if err != nil {
		if !errors.Is(err, fdxerr.ErrCorruptCheckpoint) {
			t.Fatalf("error outside taxonomy: %v", err)
		}
	} else if n == len(deltas) {
		t.Fatalf("bit flip went unnoticed: all %d records replayed", n)
	}
}
