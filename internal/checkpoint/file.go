package checkpoint

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"fdx/internal/core"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
)

// WALSuffix is appended to a snapshot path to name its companion WAL.
const WALSuffix = ".wal"

// Save durably writes a snapshot to path: encode into a temp file in the
// same directory, fsync it, atomically rename over path, and fsync the
// directory so the rename itself survives a crash. It returns the
// snapshot's encoded size (for telemetry). Any failure leaves the
// previous snapshot at path untouched and wraps ErrCorruptCheckpoint.
func Save(path string, st *core.AccumulatorState, fingerprint uint64) (written int64, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fdxerr.Corrupt("checkpoint: create temp snapshot: %v", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	cw := &countWriter{w: tmp}
	w := bufio.NewWriter(cw)
	if err = WriteSnapshot(w, st, fingerprint); err != nil {
		return 0, err
	}
	if ferr := w.Flush(); ferr != nil {
		return 0, fdxerr.Corrupt("checkpoint: flush snapshot: %v", ferr)
	}
	if err = syncFile(tmp); err != nil {
		return 0, err
	}
	if cerr := tmp.Close(); cerr != nil {
		return 0, fdxerr.Corrupt("checkpoint: close temp snapshot: %v", cerr)
	}
	if faults.Fire(faults.RenameFail) {
		os.Remove(tmpName)
		return 0, fdxerr.Corrupt("checkpoint: rename %s: injected failure", tmpName)
	}
	if rerr := os.Rename(tmpName, path); rerr != nil {
		os.Remove(tmpName)
		return 0, fdxerr.Corrupt("checkpoint: rename snapshot: %v", rerr)
	}
	return cw.n, syncDir(dir)
}

// countWriter counts the bytes flowing to the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads the snapshot at path. A missing file returns an error
// matching os.IsNotExist (and fs.ErrNotExist) wrapped in ErrBadInput, so
// callers can distinguish "no checkpoint yet" from corruption.
func Load(path string) (*core.AccumulatorState, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w: %w", err, fdxerr.ErrBadInput)
	}
	defer f.Close()
	st, fingerprint, err := ReadSnapshot(bufio.NewReader(f))
	if err != nil {
		return nil, 0, fmt.Errorf("%w (snapshot %s)", err, path)
	}
	return st, fingerprint, nil
}

// Fingerprint hashes the options that determine what an accumulator's
// sufficient statistics mean: the transform seed and the pair-transform
// knobs. A resumed stream must use matching values or its batches would be
// transformed differently than the checkpointed history; discovery-time
// options (Lambda, Threshold, Ordering, …) are free to change across a
// resume and are deliberately not covered.
func Fingerprint(o core.Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fdx-ckpt-v1|seed=%d|maxrows=%d|numtol=%g|textsim=%t",
		o.Seed, o.Transform.MaxRows, o.Transform.NumericTol, o.Transform.TextSimilarity)
	return h.Sum64()
}

// syncFile fsyncs f, surfacing failures (including the armed FsyncError
// fault) as ErrCorruptCheckpoint-wrapped errors.
func syncFile(f *os.File) error {
	if faults.Fire(faults.FsyncError) {
		return fdxerr.Corrupt("checkpoint: fsync %s: injected failure", f.Name())
	}
	if err := f.Sync(); err != nil {
		return fdxerr.Corrupt("checkpoint: fsync %s: %v", f.Name(), err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fdxerr.Corrupt("checkpoint: open dir %s: %v", dir, err)
	}
	defer d.Close()
	return syncFile(d)
}
