// Package glasso implements sparse inverse covariance estimation with the
// Graphical Lasso (Friedman, Hastie, Tibshirani 2008): block coordinate
// descent over the columns of the covariance estimate, with an inner
// L1-penalized regression solved by coordinate descent.
//
// FDX uses the resulting sparse precision matrix Θ as the undirected
// structure estimate of its tuple-pair model (paper §4.2); the penalty λ is
// the "sparsity" hyper-parameter swept in paper Table 8.
package glasso

import (
	"context"
	"fmt"
	"math"

	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
	"fdx/internal/obs"
)

// Options configures the Graphical Lasso solver.
type Options struct {
	// Lambda is the L1 penalty on off-diagonal precision entries.
	Lambda float64
	// MaxIter bounds the number of outer sweeps (default 100).
	MaxIter int
	// Tol is the convergence threshold on the mean absolute change of the
	// covariance estimate per sweep (default 1e-5).
	Tol float64
	// InnerMaxIter bounds the lasso coordinate descent iterations per
	// column (default 200).
	InnerMaxIter int
	// InnerTol is the lasso convergence threshold (default 1e-6).
	InnerTol float64
	// Workers is the number of goroutines for the screened-block fan-out
	// in Solve/SolveBlocks and the regularization-path fan-out in Path
	// (0 or 1 = serial). Blocks are independent problems over disjoint
	// state, so results are bit-for-bit identical at any worker count.
	// The per-column sweep itself is always serial: profiling showed the
	// column fan-out losing to one core at every p (sub-microsecond tasks
	// under channel dispatch), so worker routing at block granularity is
	// the only parallel path — more workers is never slower.
	Workers int
	// NoScreen disables the covariance-thresholding screening pass and
	// solves the whole matrix as one dense block. Screening is exact
	// (see screen.go), so this is a reference/debug escape hatch, not an
	// accuracy knob.
	NoScreen bool
	// Obs carries the optional telemetry sinks: a "glasso" stage span
	// wrapping the solve, one "glasso.block" span per screened block
	// with one "glasso-sweep" span per outer sweep beneath it, and the
	// fdx_glasso_blocks / fdx_glasso_screened_ratio gauges.
	Obs obs.Hooks
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.InnerMaxIter == 0 {
		o.InnerMaxIter = 200
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-6
	}
}

// Result holds the two estimates produced by the solver.
type Result struct {
	// Covariance is the regularized covariance estimate W ≈ Θ⁻¹.
	Covariance *linalg.Dense
	// Precision is the sparse inverse covariance Θ.
	Precision *linalg.Dense
	// Iterations is the number of outer sweeps performed.
	Iterations int
	// Converged reports whether the solver met its tolerance within
	// MaxIter sweeps; for a screened solve it is the AND across blocks
	// (worst case wins). A false value is not an error: the estimates are
	// the best available iterate, but callers that need a trustworthy Θ
	// should check (FDX surfaces it in its diagnostics and lets its
	// fallback ladder retry with more shrinkage).
	Converged bool
	// Diagnostics lists per-block outcomes when the solve was assembled
	// from screened blocks (one entry per connected component; a single
	// entry when screening found one component). Iterations above is the
	// worst-case block sweep count.
	Diagnostics []BlockDiag
}

// Solve runs the Graphical Lasso on the symmetric covariance estimate s.
func Solve(s *linalg.Dense, opts Options) (*Result, error) {
	return SolveContext(context.Background(), s, opts)
}

// SolveContext is Solve with cancellation: the context is checked once per
// outer sweep and a wrapped ctx.Err() is returned promptly on expiry. The
// solve always routes through the covariance-thresholding screen in
// blocks.go — exact Witten/Mazumder block screening — so the returned
// dense Result is the block-diagonal assembly (exact zeros off-block)
// whenever the thresholded graph disconnects, and bit-identical to the
// historical dense solver whenever it does not.
func SolveContext(ctx context.Context, s *linalg.Dense, opts Options) (*Result, error) {
	br, err := SolveBlocksContext(ctx, s, opts)
	if err != nil {
		return nil, err
	}
	return br.Dense(), nil
}

// solveFrom runs the block coordinate descent starting from the covariance
// estimate w (consumed and returned inside the Result). Scratch comes from
// the workspace pool and every sweep runs serially and allocation-free;
// parallelism lives one level up, across screened blocks (see blocks.go).
func solveFrom(ctx context.Context, s, w *linalg.Dense, opts Options) (*Result, error) {
	opts.defaults()
	k, _ := s.Dims()

	ws := getWorkspace(k)
	defer putWorkspace(ws)
	ws.s, ws.w = s, w

	iters := 0
	converged := false
	for sweep := 0; sweep < opts.MaxIter; sweep++ {
		if err := ctx.Err(); err != nil {
			return nil, fdxerr.Cancelled(err)
		}
		ssp := opts.Obs.Start("glasso-sweep")
		faults.Sleep(faults.SlowStage)
		iters = sweep + 1
		delta := ws.runSweep(opts.Lambda, opts.InnerMaxIter, opts.InnerTol)
		ssp.End()
		opts.Obs.Count(obs.MGlassoSweeps, 1)
		// Fault injection: pretend the tolerance was never met, exhausting
		// MaxIter (silent-non-convergence regression test).
		if delta/float64(k*k) < opts.Tol && !faults.Fire(faults.GlassoNoConverge) {
			converged = true
			break
		}
	}

	theta, err := precisionFrom(w, ws.betas)
	if err != nil {
		return nil, err
	}
	return &Result{Covariance: w, Precision: theta, Iterations: iters, Converged: converged}, nil
}

// precisionFrom recovers Θ from the final W and per-column lasso
// coefficients using the standard partitioned-inverse identities:
// θ_jj = 1/(w_jj − w12ᵀβ_j), θ_{−j,j} = −β_j·θ_jj.
func precisionFrom(w *linalg.Dense, betas [][]float64) (*linalg.Dense, error) {
	k, _ := w.Dims()
	theta := linalg.NewDense(k, k)
	for j := 0; j < k; j++ {
		dot := 0.0
		for a := 0; a < k; a++ {
			if a == j {
				continue
			}
			dot += w.At(a, j) * betas[j][a]
		}
		den := w.At(j, j) - dot
		if den <= 0 {
			return nil, fmt.Errorf("glasso: recovering precision: non-positive partial variance for column %d: %w", j, fdxerr.ErrSingularCovariance)
		}
		tjj := 1 / den
		theta.Set(j, j, tjj)
		for a := 0; a < k; a++ {
			if a == j {
				continue
			}
			theta.Set(a, j, -betas[j][a]*tjj)
		}
	}
	theta.Symmetrize()
	return theta, nil
}

// lassoCD solves min_β ½βᵀQβ − bᵀβ + λ‖β‖₁ by cyclic coordinate descent,
// updating beta in place. Q must be symmetric with positive diagonal.
// grad is caller-provided scratch of len(b) — lassoCD allocates nothing.
// Panics if Q is not p×p or beta/grad are not length p.
// (fdx:numeric-kernel: the exactly-unchanged-coordinate test only skips a
// no-op gradient update; the soft threshold emits exact zeros by design.)
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in parallel_test.go.
func lassoCD(q *linalg.Dense, b []float64, lambda float64, beta []float64, maxIter int, tol float64, grad []float64) {
	p := len(b)
	if r, c := q.Dims(); r != p || c != p || len(beta) != p || len(grad) != p {
		panic("glasso: lassoCD operand shapes disagree")
	}
	// grad[i] = (Qβ)_i maintained incrementally.
	for i := 0; i < p; i++ {
		grad[i] = linalg.Dot(q.Row(i), beta)
	}
	for it := 0; it < maxIter; it++ {
		maxChange := 0.0
		for i := 0; i < p; i++ {
			qii := q.At(i, i)
			if qii <= 0 {
				continue
			}
			// Residual gradient excluding β_i's own contribution.
			r := b[i] - (grad[i] - qii*beta[i])
			newBeta := softThreshold(r, lambda) / qii
			d := newBeta - beta[i]
			if d != 0 {
				beta[i] = newBeta
				// Symmetric Q: row i doubles as column i.
				linalg.Axpy(d, q.Row(i), grad)
				if a := math.Abs(d); a > maxChange {
					maxChange = a
				}
			}
		}
		if maxChange < tol {
			return
		}
	}
}

// softThreshold is the lasso shrinkage operator.
//
// fdx:zero-alloc
func softThreshold(x, lambda float64) float64 {
	switch {
	case x > lambda:
		return x - lambda
	case x < -lambda:
		return x + lambda
	default:
		return 0
	}
}
