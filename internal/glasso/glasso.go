// Package glasso implements sparse inverse covariance estimation with the
// Graphical Lasso (Friedman, Hastie, Tibshirani 2008): block coordinate
// descent over the columns of the covariance estimate, with an inner
// L1-penalized regression solved by coordinate descent.
//
// FDX uses the resulting sparse precision matrix Θ as the undirected
// structure estimate of its tuple-pair model (paper §4.2); the penalty λ is
// the "sparsity" hyper-parameter swept in paper Table 8.
package glasso

import (
	"context"
	"fmt"
	"math"

	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
	"fdx/internal/obs"
)

// Options configures the Graphical Lasso solver.
type Options struct {
	// Lambda is the L1 penalty on off-diagonal precision entries.
	Lambda float64
	// MaxIter bounds the number of outer sweeps (default 100).
	MaxIter int
	// Tol is the convergence threshold on the mean absolute change of the
	// covariance estimate per sweep (default 1e-5).
	Tol float64
	// InnerMaxIter bounds the lasso coordinate descent iterations per
	// column (default 200).
	InnerMaxIter int
	// InnerTol is the lasso convergence threshold (default 1e-6).
	InnerTol float64
	// Obs carries the optional telemetry sinks: a "glasso" stage span
	// wrapping the solve and one "glasso-sweep" span per outer sweep.
	Obs obs.Hooks
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.InnerMaxIter == 0 {
		o.InnerMaxIter = 200
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-6
	}
}

// Result holds the two estimates produced by the solver.
type Result struct {
	// Covariance is the regularized covariance estimate W ≈ Θ⁻¹.
	Covariance *linalg.Dense
	// Precision is the sparse inverse covariance Θ.
	Precision *linalg.Dense
	// Iterations is the number of outer sweeps performed.
	Iterations int
	// Converged reports whether the solver met its tolerance within
	// MaxIter sweeps. A false value is not an error: the estimates are the
	// best available iterate, but callers that need a trustworthy Θ should
	// check (FDX surfaces it in Result.Diagnostics and lets its fallback
	// ladder retry with more shrinkage).
	Converged bool
}

// Solve runs the Graphical Lasso on the symmetric covariance estimate s.
func Solve(s *linalg.Dense, opts Options) (*Result, error) {
	return SolveContext(context.Background(), s, opts)
}

// SolveContext is Solve with cancellation: the context is checked once per
// outer sweep and a wrapped ctx.Err() is returned promptly on expiry.
func SolveContext(ctx context.Context, s *linalg.Dense, opts Options) (res *Result, err error) {
	opts.defaults()
	sp := opts.Obs.StartStage("glasso")
	defer func() {
		if res != nil {
			sp.Attr("sweeps", res.Iterations)
			sp.Attr("converged", res.Converged)
		}
		sp.End()
	}()
	opts.Obs = opts.Obs.Under(sp)
	k, cols := s.Dims()
	if k != cols {
		return nil, fdxerr.BadInput("glasso: covariance must be square, got %dx%d", k, cols)
	}
	if !s.IsSymmetric(1e-8) {
		return nil, fdxerr.BadInput("glasso: covariance must be symmetric")
	}
	if k == 0 {
		return &Result{Covariance: linalg.NewDense(0, 0), Precision: linalg.NewDense(0, 0), Converged: true}, nil
	}
	if k == 1 {
		w := s.At(0, 0) + opts.Lambda
		if w <= 0 {
			return nil, fdxerr.BadInput("glasso: non-positive variance %g", w)
		}
		return &Result{
			Covariance: linalg.NewDenseData(1, 1, []float64{w}),
			Precision:  linalg.NewDenseData(1, 1, []float64{1 / w}),
			Iterations: 0,
			Converged:  true,
		}, nil
	}

	// W = S + λI is the initial covariance estimate.
	w := s.Clone()
	w.Symmetrize()
	for i := 0; i < k; i++ {
		w.Add(i, i, opts.Lambda)
	}
	return solveFrom(ctx, s, w, opts)
}

// solveFrom runs the block coordinate descent starting from the covariance
// estimate w (consumed and returned inside the Result).
func solveFrom(ctx context.Context, s, w *linalg.Dense, opts Options) (*Result, error) {
	opts.defaults()
	k, _ := s.Dims()

	// betas[j] holds the lasso coefficients for column j (length k, entry j
	// unused), warm-started across sweeps.
	betas := make([][]float64, k)
	for j := range betas {
		betas[j] = make([]float64, k)
	}

	w11 := linalg.NewDense(k-1, k-1)
	s12 := make([]float64, k-1)
	beta := make([]float64, k-1)

	iters := 0
	converged := false
	for sweep := 0; sweep < opts.MaxIter; sweep++ {
		if err := ctx.Err(); err != nil {
			return nil, fdxerr.Cancelled(err)
		}
		ssp := opts.Obs.Start("glasso-sweep")
		faults.Sleep(faults.SlowStage)
		iters = sweep + 1
		delta := 0.0
		for j := 0; j < k; j++ {
			// Extract W11 (drop row/col j) and s12 = S[−j, j].
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				s12[ai] = s.At(a, j)
				for b, bi := 0, 0; b < k; b++ {
					if b == j {
						continue
					}
					w11.Set(ai, bi, w.At(a, b))
					bi++
				}
				ai++
			}
			// Warm start from the previous sweep's solution.
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				beta[ai] = betas[j][a]
				ai++
			}
			lassoCD(w11, s12, opts.Lambda, beta, opts.InnerMaxIter, opts.InnerTol)
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				betas[j][a] = beta[ai]
				ai++
			}
			// w12 = W11·β; write it back into row/column j of W.
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				v := 0.0
				row := w11.Row(ai)
				for bi := 0; bi < k-1; bi++ {
					v += row[bi] * beta[bi]
				}
				delta += math.Abs(w.At(a, j) - v)
				w.Set(a, j, v)
				w.Set(j, a, v)
				ai++
			}
		}
		ssp.End()
		opts.Obs.Count(obs.MGlassoSweeps, 1)
		// Fault injection: pretend the tolerance was never met, exhausting
		// MaxIter (silent-non-convergence regression test).
		if delta/float64(k*k) < opts.Tol && !faults.Fire(faults.GlassoNoConverge) {
			converged = true
			break
		}
	}

	theta, err := precisionFrom(w, betas)
	if err != nil {
		return nil, err
	}
	return &Result{Covariance: w, Precision: theta, Iterations: iters, Converged: converged}, nil
}

// precisionFrom recovers Θ from the final W and per-column lasso
// coefficients using the standard partitioned-inverse identities:
// θ_jj = 1/(w_jj − w12ᵀβ_j), θ_{−j,j} = −β_j·θ_jj.
func precisionFrom(w *linalg.Dense, betas [][]float64) (*linalg.Dense, error) {
	k, _ := w.Dims()
	theta := linalg.NewDense(k, k)
	for j := 0; j < k; j++ {
		dot := 0.0
		for a := 0; a < k; a++ {
			if a == j {
				continue
			}
			dot += w.At(a, j) * betas[j][a]
		}
		den := w.At(j, j) - dot
		if den <= 0 {
			return nil, fmt.Errorf("glasso: recovering precision: non-positive partial variance for column %d: %w", j, fdxerr.ErrSingularCovariance)
		}
		tjj := 1 / den
		theta.Set(j, j, tjj)
		for a := 0; a < k; a++ {
			if a == j {
				continue
			}
			theta.Set(a, j, -betas[j][a]*tjj)
		}
	}
	theta.Symmetrize()
	return theta, nil
}

// lassoCD solves min_β ½βᵀQβ − bᵀβ + λ‖β‖₁ by cyclic coordinate descent,
// updating beta in place. Q must be symmetric with positive diagonal.
// (fdx:numeric-kernel: the exactly-unchanged-coordinate test only skips a
// no-op gradient update; the soft threshold emits exact zeros by design.)
func lassoCD(q *linalg.Dense, b []float64, lambda float64, beta []float64, maxIter int, tol float64) {
	p := len(b)
	// grad[i] = (Qβ)_i maintained incrementally.
	grad := make([]float64, p)
	for i := 0; i < p; i++ {
		row := q.Row(i)
		v := 0.0
		for j, bj := range beta {
			v += row[j] * bj
		}
		grad[i] = v
	}
	for it := 0; it < maxIter; it++ {
		maxChange := 0.0
		for i := 0; i < p; i++ {
			qii := q.At(i, i)
			if qii <= 0 {
				continue
			}
			// Residual gradient excluding β_i's own contribution.
			r := b[i] - (grad[i] - qii*beta[i])
			newBeta := softThreshold(r, lambda) / qii
			d := newBeta - beta[i]
			if d != 0 {
				beta[i] = newBeta
				col := q.Row(i) // symmetric: row i == column i
				for j := 0; j < p; j++ {
					grad[j] += col[j] * d
				}
				if a := math.Abs(d); a > maxChange {
					maxChange = a
				}
			}
		}
		if maxChange < tol {
			return
		}
	}
}

func softThreshold(x, lambda float64) float64 {
	switch {
	case x > lambda:
		return x - lambda
	case x < -lambda:
		return x + lambda
	default:
		return 0
	}
}
