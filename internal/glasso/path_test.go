package glasso

import (
	"math/rand"
	"testing"

	"fdx/internal/linalg"
)

func TestPathMatchesIndividualSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randomSPD(rng, 6)
	lambdas := []float64{0, 0.05, 0.2, 0.01}
	path, err := Path(s, lambdas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != len(lambdas) {
		t.Fatalf("path length %d", len(path))
	}
	for i, pr := range path {
		if pr.Lambda != lambdas[i] {
			t.Fatalf("result order scrambled: %v", pr.Lambda)
		}
		solo, err := Solve(s, Options{Lambda: pr.Lambda})
		if err != nil {
			t.Fatal(err)
		}
		if d := linalg.MaxAbsDiff(pr.Result.Precision, solo.Precision); d > 5e-3 {
			t.Errorf("lambda %v: warm-started precision differs by %v", pr.Lambda, d)
		}
	}
}

func TestPathSparsityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := randomSPD(rng, 8)
	lambdas := []float64{0.01, 0.1, 1, 10}
	path, err := Path(s, lambdas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nnz := func(m *linalg.Dense) int {
		k, _ := m.Dims()
		n := 0
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j && m.At(i, j) != 0 {
					n++
				}
			}
		}
		return n
	}
	for i := 1; i < len(path); i++ {
		if nnz(path[i].Result.Precision) > nnz(path[i-1].Result.Precision) {
			t.Errorf("sparsity not monotone along increasing lambda: %d then %d",
				nnz(path[i-1].Result.Precision), nnz(path[i].Result.Precision))
		}
	}
}

func TestPathEmptyAndSingle(t *testing.T) {
	s := linalg.NewDenseData(1, 1, []float64{2})
	path, err := Path(s, []float64{0.5}, Options{})
	if err != nil || len(path) != 1 {
		t.Fatal(err)
	}
	if path[0].Result.Covariance.At(0, 0) != 2.5 {
		t.Errorf("1x1 path wrong: %v", path[0].Result.Covariance.At(0, 0))
	}
	if _, err := Path(s, nil, Options{}); err != nil {
		t.Errorf("empty lambda list: %v", err)
	}
}
