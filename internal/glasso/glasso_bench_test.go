package glasso

import (
	"math/rand"
	"testing"
)

func benchSolve(b *testing.B, k int, lambda float64) {
	rng := rand.New(rand.NewSource(1))
	s := randomSPD(rng, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(s, Options{Lambda: lambda}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve16(b *testing.B)  { benchSolve(b, 16, 0.05) }
func BenchmarkSolve48(b *testing.B)  { benchSolve(b, 48, 0.05) }
func BenchmarkSolve128(b *testing.B) { benchSolve(b, 128, 0.05) }

func BenchmarkPath(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomSPD(rng, 32)
	lambdas := []float64{0, 0.002, 0.004, 0.006, 0.008, 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Path(s, lambdas, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
