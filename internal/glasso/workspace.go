package glasso

import (
	"sync"

	"fdx/internal/linalg"
	"fdx/internal/par"
)

// colChunk is the number of rows per parallel task in the per-column
// extract and update phases of the sweep. It is a constant — never a
// function of the worker count — so chunk boundaries, and therefore the
// fold order of the per-chunk delta partials, are identical at any
// parallelism. That invariant is what keeps the solver bit-for-bit
// deterministic across Options.Workers settings.
const colChunk = 32

// workspace holds every scratch buffer of one Graphical Lasso solve.
// Instances are recycled through wsPool, so the steady state of repeated
// solves at a fixed dimension allocates nothing inside the sweep. The
// chunk closures are built once per dimension change and reused for every
// column of every sweep; per-column state reaches them through the j
// field (published to workers by the channel send inside par.For).
type workspace struct {
	k int

	w11  *linalg.Dense // W with row/column j dropped
	s12  []float64     // S[−j, j]
	beta []float64     // active column's lasso coefficients
	grad []float64     // lassoCD gradient scratch

	betasData []float64   // backing array for betas
	betas     [][]float64 // per-column warm-started coefficients, entry j unused

	partials []float64 // per-chunk delta partials, folded in chunk order

	// Per-column state read by the chunk closures.
	s, w *linalg.Dense
	j    int

	extractFn func(lo, hi int)
	updateFn  func(lo, hi int)
}

var wsPool = sync.Pool{New: func() any { return &workspace{} }}

// getWorkspace returns a workspace sized for a k×k solve with the warm-
// start coefficients zeroed.
func getWorkspace(k int) *workspace {
	ws := wsPool.Get().(*workspace)
	if ws.k != k {
		ws.resize(k)
	}
	for i := range ws.betasData {
		ws.betasData[i] = 0
	}
	return ws
}

func putWorkspace(ws *workspace) {
	ws.s, ws.w = nil, nil
	wsPool.Put(ws)
}

func (ws *workspace) resize(k int) {
	ws.k = k
	ws.w11 = linalg.NewDense(k-1, k-1)
	ws.s12 = make([]float64, k-1)
	ws.beta = make([]float64, k-1)
	ws.grad = make([]float64, k-1)
	ws.betasData = make([]float64, k*k)
	ws.betas = make([][]float64, k)
	for j := range ws.betas {
		ws.betas[j] = ws.betasData[j*k : (j+1)*k]
	}
	ws.partials = make([]float64, (k-1+colChunk-1)/colChunk)
	ws.extractFn = ws.extractChunk
	ws.updateFn = ws.updateChunk
}

// extractChunk fills rows [lo, hi) of W11 and s12 for the active column
// j: row ai of W11 is row a = ai (+1 past j) of W with column j dropped.
func (ws *workspace) extractChunk(lo, hi int) {
	j := ws.j
	for ai := lo; ai < hi; ai++ {
		a := ai
		if ai >= j {
			a = ai + 1
		}
		ws.s12[ai] = ws.s.At(a, j)
		wrow := ws.w.Row(a)
		drow := ws.w11.Row(ai)
		copy(drow[:j], wrow[:j])
		copy(drow[j:], wrow[j+1:])
	}
}

// updateChunk computes rows [lo, hi) of w12 = W11·β, writes them back
// into row/column j of W, and records the chunk's absolute-change partial
// in partials[lo/colChunk]. Each W element is owned by exactly one chunk
// and each chunk's reduction runs serially, so the caller's in-order fold
// of partials reproduces the serial delta bit-for-bit.
func (ws *workspace) updateChunk(lo, hi int) {
	j := ws.j
	d := 0.0
	for ai := lo; ai < hi; ai++ {
		v := linalg.Dot(ws.w11.Row(ai), ws.beta)
		a := ai
		if ai >= j {
			a = ai + 1
		}
		diff := ws.w.At(a, j) - v
		if diff < 0 {
			diff = -diff
		}
		d += diff
		ws.w.Set(a, j, v)
		ws.w.Set(j, a, v)
	}
	ws.partials[lo/colChunk] = d
}

// runSweep performs one full block-coordinate-descent sweep over the k
// columns of W, returning the total absolute change. The per-column
// extract and update phases fan out across the pool (nil = serial); the
// inner lasso remains serial, as coordinate descent is order-dependent.
// The sweep allocates nothing: all scratch lives in the workspace.
func (ws *workspace) runSweep(pool *par.Pool, lambda float64, innerMaxIter int, innerTol float64) float64 {
	delta := 0.0
	for j := 0; j < ws.k; j++ {
		delta += ws.runColumn(pool, j, lambda, innerMaxIter, innerTol)
	}
	return delta
}

// runColumn performs the block update for column j: extract W11 and s12,
// solve the lasso subproblem warm-started from the previous sweep, write
// w12 = W11·β back into W, and return the column's absolute change.
func (ws *workspace) runColumn(pool *par.Pool, j int, lambda float64, innerMaxIter int, innerTol float64) float64 {
	k := ws.k
	ws.j = j
	pool.For(k-1, colChunk, ws.extractFn)
	// Warm start from this column's previous solution.
	copy(ws.beta[:j], ws.betas[j][:j])
	copy(ws.beta[j:], ws.betas[j][j+1:])
	lassoCD(ws.w11, ws.s12, lambda, ws.beta, innerMaxIter, innerTol, ws.grad)
	copy(ws.betas[j][:j], ws.beta[:j])
	copy(ws.betas[j][j+1:], ws.beta[j:])
	pool.For(k-1, colChunk, ws.updateFn)
	// Fold the per-chunk partials in fixed chunk order.
	delta := 0.0
	for c := 0; c*colChunk < k-1; c++ {
		delta += ws.partials[c]
	}
	return delta
}
