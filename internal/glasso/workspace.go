package glasso

import (
	"sync"

	"fdx/internal/linalg"
)

// workspace holds every scratch buffer of one Graphical Lasso solve.
// Instances are recycled through wsPool, so the steady state of repeated
// solves at a fixed dimension allocates nothing inside the sweep.
//
// The sweep is deliberately serial: per-column tasks are sub-microsecond
// at realistic block sizes and the old chunked fan-out lost to one core
// at every measured p (dispatch overhead dominated). Parallelism lives
// one level up, across independent screened blocks (blocks.go), where
// task granularity is whole solves and scaling is real.
type workspace struct {
	k int

	w11  *linalg.Dense // W with row/column j dropped
	s12  []float64     // S[−j, j]
	beta []float64     // active column's lasso coefficients
	grad []float64     // lassoCD gradient scratch

	betasData []float64   // backing array for betas
	betas     [][]float64 // per-column warm-started coefficients, entry j unused

	// Solve inputs, published per solve by solveFrom.
	s, w *linalg.Dense
}

var wsPool = sync.Pool{New: func() any { return &workspace{} }}

// getWorkspace returns a workspace sized for a k×k solve with the warm-
// start coefficients zeroed.
func getWorkspace(k int) *workspace {
	ws := wsPool.Get().(*workspace)
	if ws.k != k {
		ws.resize(k)
	}
	for i := range ws.betasData {
		ws.betasData[i] = 0
	}
	return ws
}

func putWorkspace(ws *workspace) {
	ws.s, ws.w = nil, nil
	wsPool.Put(ws)
}

func (ws *workspace) resize(k int) {
	ws.k = k
	ws.w11 = linalg.NewDense(k-1, k-1)
	ws.s12 = make([]float64, k-1)
	ws.beta = make([]float64, k-1)
	ws.grad = make([]float64, k-1)
	ws.betasData = make([]float64, k*k)
	ws.betas = make([][]float64, k)
	for j := range ws.betas {
		ws.betas[j] = ws.betasData[j*k : (j+1)*k]
	}
}

// runSweep performs one full block-coordinate-descent sweep over the k
// columns of W, returning the total absolute change. The sweep allocates
// nothing: all scratch lives in the workspace.
func (ws *workspace) runSweep(lambda float64, innerMaxIter int, innerTol float64) float64 {
	delta := 0.0
	for j := 0; j < ws.k; j++ {
		delta += ws.runColumn(j, lambda, innerMaxIter, innerTol)
	}
	return delta
}

// runColumn performs the block update for column j: extract W11 and s12,
// solve the lasso subproblem warm-started from the previous sweep, write
// w12 = W11·β back into W, and return the column's absolute change.
func (ws *workspace) runColumn(j int, lambda float64, innerMaxIter int, innerTol float64) float64 {
	k := ws.k
	// Extract W11 (W with row/column j dropped) and s12 = S[−j, j]:
	// row ai of W11 is row a = ai (+1 past j) of W with column j dropped.
	for ai := 0; ai < k-1; ai++ {
		a := ai
		if ai >= j {
			a = ai + 1
		}
		ws.s12[ai] = ws.s.At(a, j)
		wrow := ws.w.Row(a)
		drow := ws.w11.Row(ai)
		copy(drow[:j], wrow[:j])
		copy(drow[j:], wrow[j+1:])
	}
	// Warm start from this column's previous solution.
	copy(ws.beta[:j], ws.betas[j][:j])
	copy(ws.beta[j:], ws.betas[j][j+1:])
	lassoCD(ws.w11, ws.s12, lambda, ws.beta, innerMaxIter, innerTol, ws.grad)
	copy(ws.betas[j][:j], ws.beta[:j])
	copy(ws.betas[j][j+1:], ws.beta[j:])
	// Write back w12 = W11·β into row/column j of W, accumulating the
	// absolute change in the fixed ascending order the old chunked fold
	// reproduced.
	delta := 0.0
	for ai := 0; ai < k-1; ai++ {
		v := linalg.Dot(ws.w11.Row(ai), ws.beta)
		a := ai
		if ai >= j {
			a = ai + 1
		}
		diff := ws.w.At(a, j) - v
		if diff < 0 {
			diff = -diff
		}
		delta += diff
		ws.w.Set(a, j, v)
		ws.w.Set(j, a, v)
	}
	return delta
}
