package glasso

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

// chainBlockCov builds a symmetric positive definite matrix with planted
// block structure: within each block, unit diagonal and a 0.4 chain
// (tridiagonal) keeping the block connected at any λ < 0.4; cross-block
// entries are a constant 0.01 — real nonzero noise that screens out at
// any λ > 0.01.
func chainBlockCov(sizes []int) *linalg.Dense {
	k := 0
	for _, n := range sizes {
		k += n
	}
	s := linalg.NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				s.Set(i, j, 0.01)
			}
		}
		s.Set(i, i, 1)
	}
	off := 0
	for _, n := range sizes {
		for i := 0; i < n-1; i++ {
			s.Set(off+i, off+i+1, 0.4)
			s.Set(off+i+1, off+i, 0.4)
		}
		off += n
	}
	return s
}

const screenLambda = 0.1

func TestSolveBlocksFindsPlantedBlocks(t *testing.T) {
	sizes := []int{4, 1, 5, 3}
	br, err := SolveBlocks(chainBlockCov(sizes), Options{Lambda: screenLambda})
	if err != nil {
		t.Fatal(err)
	}
	if br.Part.NumBlocks() != len(sizes) {
		t.Fatalf("NumBlocks = %d, want %d", br.Part.NumBlocks(), len(sizes))
	}
	off := 0
	for c, n := range sizes {
		blk := br.Part.Block(c)
		if len(blk) != n || blk[0] != off {
			t.Fatalf("block %d = %v, want %d vertices from %d", c, blk, n, off)
		}
		off += n
	}
	if !br.Converged() {
		t.Error("healthy blocked solve not converged")
	}
}

// TestSolveBlocksEqualsIndependentSolves pins the decomposition contract:
// each screened block's solution is bit-identical to solving that block's
// gathered submatrix as its own standalone glasso problem.
func TestSolveBlocksEqualsIndependentSolves(t *testing.T) {
	s := chainBlockCov([]int{6, 4, 7})
	opts := Options{Lambda: screenLambda}
	br, err := SolveBlocks(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < br.Part.NumBlocks(); c++ {
		idx := br.Part.Block(c)
		sub := linalg.NewDense(len(idx), len(idx))
		linalg.GatherSym(sub, s, idx)
		ind, err := Solve(sub, opts)
		if err != nil {
			t.Fatalf("independent solve of block %d: %v", c, err)
		}
		assertBitIdentical(t, "precision", ind.Precision, br.Blocks[c].Precision)
		assertBitIdentical(t, "covariance", ind.Covariance, br.Blocks[c].Covariance)
	}
}

// TestSolveBlocksBitIdenticalAcrossWorkers extends the determinism
// contract to the screened path: blocks are independent problems over
// disjoint state, so W and Θ are bit-for-bit equal at any worker count.
func TestSolveBlocksBitIdenticalAcrossWorkers(t *testing.T) {
	s := chainBlockCov([]int{9, 1, 6, 5, 2})
	var ref *Result
	for _, workers := range []int{1, 4, 8} {
		br, err := SolveBlocks(s, Options{Lambda: screenLambda, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res := br.Dense()
		if ref == nil {
			ref = res
			continue
		}
		assertBitIdentical(t, "precision", ref.Precision, res.Precision)
		assertBitIdentical(t, "covariance", ref.Covariance, res.Covariance)
		if res.Iterations != ref.Iterations || res.Converged != ref.Converged {
			t.Fatalf("workers=%d: iterations/converged drifted", workers)
		}
	}
}

// TestSingleComponentMatchesNoScreen pins the screened path to the
// historical dense solver: when screening finds one giant component, the
// block is solved directly on the original backing (no gather), so the
// result is bit-identical to the NoScreen reference.
func TestSingleComponentMatchesNoScreen(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := spdCovariance(rng, 24)
	opts := Options{Lambda: 0.01} // small λ: one giant component
	screened, err := SolveBlocks(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if screened.Part.NumBlocks() != 1 {
		t.Fatalf("expected one component, got %d", screened.Part.NumBlocks())
	}
	noScreen := opts
	noScreen.NoScreen = true
	dense, err := SolveBlocks(s, noScreen)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "precision", dense.Dense().Precision, screened.Dense().Precision)
	assertBitIdentical(t, "covariance", dense.Dense().Covariance, screened.Dense().Covariance)
}

// TestMultiComponentAgreesWithNoScreenWithinTolerance checks the
// screening theorem numerically: on a disconnectable matrix the screened
// and dense solutions agree to solver tolerance, and the screened
// assembly has exact zeros across blocks where the dense solve only has
// small values.
func TestMultiComponentAgreesWithNoScreenWithinTolerance(t *testing.T) {
	s := chainBlockCov([]int{5, 4, 3})
	opts := Options{Lambda: screenLambda}
	screened, err := SolveBlocks(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if screened.Part.NumBlocks() != 3 {
		t.Fatalf("expected 3 components, got %d", screened.Part.NumBlocks())
	}
	noScreen := opts
	noScreen.NoScreen = true
	dense, err := SolveBlocks(s, noScreen)
	if err != nil {
		t.Fatal(err)
	}
	theta := screened.DensePrecision()
	thetaDense := dense.Dense().Precision
	k, _ := s.Dims()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if screened.Part.Comp(i) != screened.Part.Comp(j) {
				if theta.At(i, j) != 0 {
					t.Fatalf("screened Θ[%d,%d] = %v, want exact 0 across blocks", i, j, theta.At(i, j))
				}
				continue
			}
			if d := math.Abs(theta.At(i, j) - thetaDense.At(i, j)); d > 1e-3 {
				t.Fatalf("Θ[%d,%d]: screened %v vs dense %v (|Δ|=%g)", i, j, theta.At(i, j), thetaDense.At(i, j), d)
			}
		}
	}
}

// TestBlockedConvergenceAggregation arms forced non-convergence and
// checks worst-case-wins aggregation: the one multi-variable block gets
// stuck while the singleton blocks (closed form, never iterating) stay
// converged, and the aggregate reports the failure with the losing block
// identifiable in Diagnostics.
func TestFaultBlockedConvergenceAggregation(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.GlassoNoConverge, faults.Config{})
	// One 3-variable block plus two singletons: only the real block runs
	// sweeps, so the armed fault pins exactly that block.
	s := chainBlockCov([]int{3, 1, 1})
	opts := Options{Lambda: screenLambda, Workers: 1, MaxIter: 7}
	br, err := SolveBlocks(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if br.Converged() {
		t.Fatal("worst-case aggregation: one stuck block must mark the solve non-converged")
	}
	if br.Iterations() != 7 {
		t.Fatalf("Iterations() = %d, want the stuck block's full budget 7", br.Iterations())
	}
	if br.TotalSweeps() != 7 {
		t.Fatalf("TotalSweeps() = %d, want 7 (singletons iterate zero times)", br.TotalSweeps())
	}
	diags := br.Diagnostics()
	if len(diags) != 3 {
		t.Fatalf("Diagnostics: %d blocks, want 3", len(diags))
	}
	for c, d := range diags {
		wantConverged := len(d.Vertices) == 1
		if d.Converged != wantConverged {
			t.Errorf("block %d (%d vars): Converged = %t, want %t", c, len(d.Vertices), d.Converged, wantConverged)
		}
	}
	res := br.Dense()
	if res.Converged || len(res.Diagnostics) != 3 {
		t.Fatalf("Dense(): Converged=%t Diagnostics=%d, want false/3", res.Converged, len(res.Diagnostics))
	}
}

// TestSolveBlocksErrorNamesBlock checks deterministic error selection:
// a failing block surfaces typed, wrapped with its block index.
func TestSolveBlocksErrorNamesBlock(t *testing.T) {
	// Vertices {0,1} form a healthy pair; vertex 2 is a singleton with
	// negative variance, unsolvable in closed form.
	s := linalg.NewDenseData(3, 3, []float64{
		1, 0.5, 0,
		0.5, 1, 0,
		0, 0, -1,
	})
	_, err := SolveBlocks(s, Options{Lambda: 0.1})
	if !errors.Is(err, fdxerr.ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	if !strings.Contains(err.Error(), "screened block 1") {
		t.Fatalf("err = %q, want the failing block named", err)
	}
}

func TestBlockedResultDenseEmpty(t *testing.T) {
	br, err := SolveBlocks(linalg.NewDense(0, 0), Options{Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res := br.Dense()
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("empty solve: Converged=%t Iterations=%d", res.Converged, res.Iterations)
	}
}
