package glasso

import (
	"math/rand"
	"testing"

	"fdx/internal/linalg"
)

// spdCovariance builds a well-conditioned random covariance estimate.
func spdCovariance(rng *rand.Rand, k int) *linalg.Dense {
	g := linalg.NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	s := linalg.Mul(g, g.Transpose())
	s.Scale(1 / float64(k))
	for i := 0; i < k; i++ {
		s.Add(i, i, 0.5)
	}
	s.Symmetrize()
	return s
}

func assertBitIdentical(t *testing.T, name string, want, got *linalg.Dense) {
	t.Helper()
	wr, wc := want.Dims()
	gr, gc := got.Dims()
	if wr != gr || wc != gc {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, wr, wc, gr, gc)
	}
	for i, v := range want.Data() {
		if v != got.Data()[i] {
			t.Fatalf("%s: element %d differs bit-for-bit: %v vs %v", name, i, v, got.Data()[i])
		}
	}
}

// TestSolveBitIdenticalAcrossWorkers checks the headline determinism
// contract: W and Θ are bit-for-bit equal at every worker count.
func TestSolveBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := spdCovariance(rng, 37) // odd size: exercises chunk remainders
	base, err := Solve(s, Options{Lambda: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		res, err := Solve(s, Options{Lambda: 0.1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Iterations != base.Iterations || res.Converged != base.Converged {
			t.Fatalf("workers=%d: iterations/converged differ: %d/%v vs %d/%v",
				workers, res.Iterations, res.Converged, base.Iterations, base.Converged)
		}
		assertBitIdentical(t, "covariance", base.Covariance, res.Covariance)
		assertBitIdentical(t, "precision", base.Precision, res.Precision)
	}
}

// TestPathBitIdenticalAcrossWorkers checks the same contract for the
// regularization-path fan-out.
func TestPathBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := spdCovariance(rng, 20)
	lambdas := []float64{0.05, 0.2, 0.1, 0.4}
	base, err := Path(s, lambdas, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		got, err := Path(s, lambdas, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range base {
			if base[i].Lambda != got[i].Lambda {
				t.Fatalf("workers=%d: lambda order differs at %d", workers, i)
			}
			assertBitIdentical(t, "path precision", base[i].Result.Precision, got[i].Result.Precision)
		}
	}
}

// TestSweepZeroAllocSteadyState is the zero-allocation gate on the glasso
// hot loop: once the workspace pool is warm, a full serial sweep —
// extract, lassoCD, write-back — performs zero heap allocations.
func TestSweepZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	k := 24
	s := spdCovariance(rng, k)
	w := s.Clone()
	for i := 0; i < k; i++ {
		w.Add(i, i, 0.1)
	}
	ws := getWorkspace(k)
	defer putWorkspace(ws)
	ws.s, ws.w = s, w
	ws.runSweep(0.1, 200, 1e-6) // warm up
	allocs := testing.AllocsPerRun(10, func() {
		ws.runSweep(0.1, 200, 1e-6)
	})
	if allocs > 0 {
		t.Errorf("glasso sweep steady state allocates %.1f times per op, want 0", allocs)
	}
}

// TestLassoCDZeroAlloc gates the inner solver specifically.
func TestLassoCDZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	q := spdCovariance(rng, 16)
	b := make([]float64, 16)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	beta := make([]float64, 16)
	grad := make([]float64, 16)
	allocs := testing.AllocsPerRun(10, func() {
		for i := range beta {
			beta[i] = 0
		}
		lassoCD(q, b, 0.1, beta, 200, 1e-6, grad)
	})
	if allocs > 0 {
		t.Errorf("lassoCD allocates %.1f times per op, want 0", allocs)
	}
}

// TestSolveWorkspaceReuse checks solves of different sizes interleave
// safely through the workspace pool.
func TestSolveWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, k := range []int{5, 12, 5, 33, 12} {
		s := spdCovariance(rng, k)
		res, err := Solve(s, Options{Lambda: 0.1})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Θ must be the inverse structure of W: Θ·W ≈ I on the diagonal.
		prod := linalg.Mul(res.Precision, res.Covariance)
		for i := 0; i < k; i++ {
			if d := prod.At(i, i) - 1; d > 0.05 || d < -0.05 {
				t.Fatalf("k=%d: (ΘW)[%d][%d] = %v, want ≈1", k, i, i, prod.At(i, i))
			}
		}
	}
}

func BenchmarkSolveWorkers1(b *testing.B) { benchSolveWorkers(b, 64, 1) }
func BenchmarkSolveWorkers8(b *testing.B) { benchSolveWorkers(b, 64, 8) }

func benchSolveWorkers(b *testing.B, k, workers int) {
	rng := rand.New(rand.NewSource(46))
	s := spdCovariance(rng, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(s, Options{Lambda: 0.1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}
