package glasso

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fdx/internal/linalg"
)

func randomSPD(rng *rand.Rand, n int) *linalg.Dense {
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	spd := linalg.Mul(a, a.Transpose())
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, err := Solve(linalg.NewDense(2, 3), Options{}); err == nil {
		t.Error("accepted non-square input")
	}
	asym := linalg.NewDenseData(2, 2, []float64{1, 0.5, 0, 1})
	if _, err := Solve(asym, Options{}); err == nil {
		t.Error("accepted asymmetric input")
	}
}

func TestSolveTrivialSizes(t *testing.T) {
	r, err := Solve(linalg.NewDense(0, 0), Options{})
	if err != nil || r.Precision.Rows() != 0 {
		t.Fatalf("0x0 case: %v", err)
	}
	one := linalg.NewDenseData(1, 1, []float64{4})
	r, err = Solve(one, Options{Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Covariance.At(0, 0) != 5 || math.Abs(r.Precision.At(0, 0)-0.2) > 1e-12 {
		t.Errorf("1x1 case: W=%v Θ=%v", r.Covariance.At(0, 0), r.Precision.At(0, 0))
	}
}

func TestZeroLambdaRecoversInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := randomSPD(rng, n)
		res, err := Solve(s, Options{Lambda: 0, MaxIter: 400, Tol: 1e-10})
		if err != nil {
			return false
		}
		inv, err := linalg.InverseSPD(s)
		if err != nil {
			return false
		}
		return linalg.MaxAbsDiff(res.Precision, inv) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPrecisionSymmetricPositiveDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		s := randomSPD(rng, n)
		res, err := Solve(s, Options{Lambda: 0.1})
		if err != nil {
			return false
		}
		if !res.Precision.IsSymmetric(1e-8) {
			return false
		}
		for i := 0; i < n; i++ {
			if res.Precision.At(i, i) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLargeLambdaGivesDiagonalPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSPD(rng, 5)
	res, err := Solve(s, Options{Lambda: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j && res.Precision.At(i, j) != 0 {
				t.Fatalf("Θ[%d,%d] = %v, want 0 at huge λ", i, j, res.Precision.At(i, j))
			}
		}
	}
}

func TestRecoversBlockStructure(t *testing.T) {
	// True precision: two independent blocks {0,1} and {2,3}. The glasso
	// estimate at moderate λ should keep cross-block entries at zero and
	// within-block entries non-zero.
	theta := linalg.NewDenseData(4, 4, []float64{
		2, 0.9, 0, 0,
		0.9, 2, 0, 0,
		0, 0, 2, -0.9,
		0, 0, -0.9, 2,
	})
	sigma, err := linalg.InverseSPD(theta)
	if err != nil {
		t.Fatal(err)
	}
	// Sample from N(0, Σ) and estimate the covariance.
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	n := 4000
	data := linalg.NewDense(n, 4)
	z := make([]float64, 4)
	for i := 0; i < n; i++ {
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		x := linalg.MulVec(l, z)
		copy(data.Row(i), x)
	}
	// Empirical covariance (normalizing by n).
	s := linalg.NewDense(4, 4)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				s.Add(a, b, row[a]*row[b])
			}
		}
	}
	s.Scale(1 / float64(n))
	s.Symmetrize()

	res, err := Solve(s, Options{Lambda: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Precision
	if p.At(0, 1) == 0 || p.At(2, 3) == 0 {
		t.Errorf("within-block entries zeroed out: %v %v", p.At(0, 1), p.At(2, 3))
	}
	for _, ij := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if v := math.Abs(p.At(ij[0], ij[1])); v > 0.05 {
			t.Errorf("cross-block Θ[%d,%d] = %v, want ≈0", ij[0], ij[1], v)
		}
	}
}

func TestCovariancePrecisionConsistency(t *testing.T) {
	// W·Θ ≈ I at convergence (they are mutual inverses for glasso).
	rng := rand.New(rand.NewSource(13))
	s := randomSPD(rng, 6)
	res, err := Solve(s, Options{Lambda: 0.05, MaxIter: 500, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	prod := linalg.Mul(res.Covariance, res.Precision)
	if d := linalg.MaxAbsDiff(prod, linalg.Identity(6)); d > 1e-2 {
		t.Errorf("W·Θ deviates from I by %v", d)
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ x, l, want float64 }{
		{3, 1, 2}, {-3, 1, -2}, {0.5, 1, 0}, {-0.5, 1, 0}, {1, 1, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.x, c.l); got != c.want {
			t.Errorf("softThreshold(%v, %v) = %v, want %v", c.x, c.l, got, c.want)
		}
	}
}

func TestLassoCDSolvesQuadratic(t *testing.T) {
	// With λ=0 lasso CD solves Qβ = b.
	rng := rand.New(rand.NewSource(17))
	q := randomSPD(rng, 5)
	want := make([]float64, 5)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := linalg.MulVec(q, want)
	beta := make([]float64, 5)
	lassoCD(q, b, 0, beta, 5000, 1e-12, make([]float64, 5))
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-6 {
			t.Fatalf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
}

func TestLassoCDShrinksToZero(t *testing.T) {
	q := linalg.Identity(3)
	b := []float64{0.5, -0.5, 2}
	beta := make([]float64, 3)
	lassoCD(q, b, 1, beta, 100, 1e-12, make([]float64, 3))
	if beta[0] != 0 || beta[1] != 0 {
		t.Errorf("small coefficients not zeroed: %v", beta)
	}
	if math.Abs(beta[2]-1) > 1e-9 {
		t.Errorf("beta[2] = %v, want 1", beta[2])
	}
}
