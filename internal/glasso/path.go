package glasso

import (
	"context"
	"sort"

	"fdx/internal/linalg"
	"fdx/internal/par"
)

// PathResult is the solution at one penalty of a regularization path.
type PathResult struct {
	Lambda float64
	Result *Result
}

// Path solves the Graphical Lasso for a sequence of penalties. The
// largest penalty — whose sparse solution converges fastest — is solved
// first as the anchor; every remaining penalty warm-starts from the
// anchor's covariance estimate. Because the anchor is the shared warm
// start (rather than each solve chaining off its neighbor), the remaining
// solves are independent and fan out across opts.Workers goroutines, and
// the result at every penalty is identical at any worker count. Results
// are returned in the caller's original order. The sparsity sweep of the
// paper's Table 8 is a Path call.
func Path(s *linalg.Dense, lambdas []float64, opts Options) ([]PathResult, error) {
	type indexed struct {
		lambda float64
		pos    int
	}
	order := make([]indexed, len(lambdas))
	for i, l := range lambdas {
		order[i] = indexed{lambda: l, pos: i}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].lambda > order[j].lambda })

	out := make([]PathResult, len(lambdas))
	if len(order) == 0 {
		return out, nil
	}

	anchorOpts := opts
	anchorOpts.Lambda = order[0].lambda
	anchor, err := Solve(s, anchorOpts)
	if err != nil {
		return nil, err
	}
	out[order[0].pos] = PathResult{Lambda: order[0].lambda, Result: anchor}

	rest := order[1:]
	if len(rest) == 0 {
		return out, nil
	}
	workers := opts.Workers
	if workers > len(rest) {
		workers = len(rest)
	}
	pool := par.New(workers)
	errs := make([]error, len(rest))
	pool.For(len(rest), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := opts
			o.Lambda = rest[i].lambda
			// Parallelism is spent on the penalty fan-out here; the
			// block-level fan-out inside each solve stays serial so the
			// two levels do not multiply.
			o.Workers = 1
			res, err := solveWarm(s, anchor.Covariance, o)
			if err != nil {
				errs[i] = err
				continue
			}
			out[rest[i].pos] = PathResult{Lambda: rest[i].lambda, Result: res}
		}
	})
	pool.Close()
	// Report the first failure in penalty order, independent of scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// solveWarm is Solve with an initial covariance estimate. The initial W is
// re-centred so its diagonal matches S+λI (the glasso invariant), keeping
// the warm start feasible. The warm matrix w0 is cloned, never mutated,
// so one anchor estimate can seed many concurrent solves.
func solveWarm(s, w0 *linalg.Dense, opts Options) (*Result, error) {
	opts.defaults()
	k, _ := s.Dims()
	if k <= 1 || w0 == nil {
		return Solve(s, opts)
	}
	r0, c0 := w0.Dims()
	if r0 != k || c0 != k {
		return Solve(s, opts)
	}
	w := w0.Clone()
	for i := 0; i < k; i++ {
		w.Set(i, i, s.At(i, i)+opts.Lambda)
	}
	return solveFrom(context.Background(), s, w, opts)
}
