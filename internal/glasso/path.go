package glasso

import (
	"context"
	"sort"

	"fdx/internal/linalg"
)

// PathResult is the solution at one penalty of a regularization path.
type PathResult struct {
	Lambda float64
	Result *Result
}

// Path solves the Graphical Lasso for a sequence of penalties, warm-
// starting each solve from the previous solution's covariance estimate.
// Lambdas are solved in descending order (sparse solutions first converge
// fastest and make good warm starts); results are returned in the caller's
// original order. The sparsity sweep of the paper's Table 8 is a Path call.
func Path(s *linalg.Dense, lambdas []float64, opts Options) ([]PathResult, error) {
	type indexed struct {
		lambda float64
		pos    int
	}
	order := make([]indexed, len(lambdas))
	for i, l := range lambdas {
		order[i] = indexed{lambda: l, pos: i}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].lambda > order[j].lambda })

	out := make([]PathResult, len(lambdas))
	var warm *linalg.Dense
	for _, item := range order {
		o := opts
		o.Lambda = item.lambda
		var (
			res *Result
			err error
		)
		if warm != nil {
			res, err = solveWarm(s, warm, o)
		} else {
			res, err = Solve(s, o)
		}
		if err != nil {
			return nil, err
		}
		warm = res.Covariance
		out[item.pos] = PathResult{Lambda: item.lambda, Result: res}
	}
	return out, nil
}

// solveWarm is Solve with an initial covariance estimate. The initial W is
// re-centred so its diagonal matches S+λI (the glasso invariant), keeping
// the warm start feasible.
func solveWarm(s, w0 *linalg.Dense, opts Options) (*Result, error) {
	opts.defaults()
	k, _ := s.Dims()
	if k <= 1 || w0 == nil {
		return Solve(s, opts)
	}
	r0, c0 := w0.Dims()
	if r0 != k || c0 != k {
		return Solve(s, opts)
	}
	w := w0.Clone()
	for i := 0; i < k; i++ {
		w.Set(i, i, s.At(i, i)+opts.Lambda)
	}
	return solveFrom(context.Background(), s, w, opts)
}
