package glasso

import "fdx/internal/linalg"

// Covariance-thresholding screening (Witten et al. 2011; Mazumder &
// Hastie 2012): the graphical-lasso solution at penalty λ is block
// diagonal with respect to the connected components of the graph
//
//	i ~ j  ⇔  |S_ij| > λ  (i ≠ j, strict inequality)
//
// on the empirical covariance S. Entries with |S_ij| exactly equal to λ
// are screened out: the soft-threshold operator maps them to zero, so
// they cannot create an edge in any solution. Solving each component as
// an independent glasso problem and assembling the solutions
// block-diagonally is therefore exact — not an approximation — which is
// what lets the blocked solver in blocks.go stand in for the dense one.
//
// The screening pass itself is a single O(k²) scan plus near-linear
// union-find, negligible next to one O(k³) glasso sweep.

// Partition is the connected-component decomposition of a screened
// covariance matrix. Component vertex lists are stored back to back in
// index (CSR style); components are numbered in ascending order of their
// smallest member and each component's vertices are sorted ascending, so
// the partition — and everything scheduled from it — is a pure function
// of S and λ, independent of worker count.
type Partition struct {
	k      int
	index  []int // concatenated component vertex lists
	starts []int // component c occupies index[starts[c]:starts[c+1]]
	comp   []int // vertex → component id

	// union-find scratch, retained so ScreenInto can rescreen without
	// allocating.
	parent []int
	rank   []int
}

// NumBlocks returns the number of connected components.
func (p *Partition) NumBlocks() int { return len(p.starts) - 1 }

// Block returns component c's vertex list, sorted ascending. The slice
// aliases the partition's storage; callers must not modify it.
func (p *Partition) Block(c int) []int { return p.index[p.starts[c]:p.starts[c+1]] }

// Comp returns the component id of vertex v.
func (p *Partition) Comp(v int) int { return p.comp[v] }

// K returns the number of vertices (the matrix dimension screened).
func (p *Partition) K() int { return p.k }

// ScreenedRatio reports the fraction of matrix entries the partition
// proves zero: 1 − Σ_c |C_c|² / k². A single giant component gives 0
// (screening found nothing); many small blocks approach 1.
func (p *Partition) ScreenedRatio() float64 {
	if p.k == 0 {
		return 0
	}
	inBlock := 0
	for c := 0; c < p.NumBlocks(); c++ {
		n := p.starts[c+1] - p.starts[c]
		inBlock += n * n
	}
	return 1 - float64(inBlock)/float64(p.k*p.k)
}

// Screen computes the connected-component partition of s thresholded at
// lambda. s must be square; only off-diagonal magnitudes are consulted,
// and both triangles are scanned so an asymmetric input (within the
// solver's symmetry tolerance) unions the same pairs regardless of which
// triangle carries the larger magnitude.
func Screen(s *linalg.Dense, lambda float64) *Partition {
	p := &Partition{}
	ScreenInto(p, s, lambda)
	return p
}

// ScreenInto is Screen reusing p's storage; it only allocates when the
// matrix dimension grows past p's previous capacity. Panics if s is not
// square.
func ScreenInto(p *Partition, s *linalg.Dense, lambda float64) {
	k, c := s.Dims()
	if k != c {
		panic("glasso: ScreenInto requires a square matrix")
	}
	p.size(k)
	screenScan(p.parent, p.rank, s, lambda)
	n := buildPartition(p.comp, p.index, p.starts, p.parent)
	p.starts = p.starts[:n+1]
}

// size (re)shapes the partition's storage for a k-vertex screen,
// allocating only when k outgrows the retained capacity.
func (p *Partition) size(k int) {
	p.k = k
	if cap(p.parent) < k || cap(p.starts) < k+1 {
		p.parent = make([]int, k)
		p.rank = make([]int, k)
		p.comp = make([]int, k)
		p.index = make([]int, k)
		p.starts = make([]int, k+1)
	}
	p.parent = p.parent[:k]
	p.rank = p.rank[:k]
	p.comp = p.comp[:k]
	p.index = p.index[:k]
	p.starts = p.starts[:k+1]
}

// trivialPartition configures p as the single-component partition over k
// vertices (every variable in one block) — the Options.NoScreen path,
// which routes the dense reference solve through the same block
// machinery so both paths share one arithmetic.
func trivialPartition(p *Partition, k int) {
	p.size(k)
	for v := 0; v < k; v++ {
		p.comp[v] = 0
		p.index[v] = v
	}
	if k == 0 {
		p.starts = p.starts[:1]
		p.starts[0] = 0
		return
	}
	p.starts = p.starts[:2]
	p.starts[0], p.starts[1] = 0, k
}

// screenScan runs union-find over the thresholded graph: parent and rank
// must have length k — the dimension of s — and on return parent holds a
// forest in which two vertices share a root iff they are connected
// through entries with |S_ij| > lambda. Scanning full rows visits each
// pair twice, which is harmless (union is idempotent) and keeps the
// kernel branch-simple. Panics if the scratch lengths disagree with s.
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in screen_test.go.
func screenScan(parent, rank []int, s *linalg.Dense, lambda float64) {
	k := len(parent)
	if r, c := s.Dims(); len(rank) != k || r != k || c != k {
		panic("glasso: screenScan scratch lengths disagree with the matrix dimension")
	}
	for i := range parent {
		parent[i] = i
		rank[i] = 0
	}
	for i := 0; i < k; i++ {
		row := s.Row(i)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			v := row[j]
			if v > lambda || -v > lambda {
				union(parent, rank, i, j)
			}
		}
	}
}

// findRoot follows parent pointers with path halving (iterative, no
// recursion, no allocation).
func findRoot(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// union merges the components of a and b by rank. Panics if rank is
// shorter than parent.
func union(parent, rank []int, a, b int) {
	if len(rank) < len(parent) {
		panic("glasso: union rank scratch shorter than parent")
	}
	ra, rb := findRoot(parent, a), findRoot(parent, b)
	if ra == rb {
		return
	}
	if rank[ra] < rank[rb] {
		ra, rb = rb, ra
	}
	parent[rb] = ra
	if rank[ra] == rank[rb] {
		rank[ra]++
	}
}

// buildPartition flattens a union-find forest into the canonical CSR
// layout: comp[v] gets a component id assigned in ascending order of each
// component's smallest vertex, index holds the concatenated vertex lists
// (ascending within each component because vertices are filled in one
// ascending scan), and starts — pre-sized to len(parent)+1 by the caller —
// receives the component offsets. Returns the component count n; only
// starts[:n+1] is meaningful.
//
// comp and rank-free scratch tricks keep the kernel allocation-free; it
// needs no storage beyond its arguments. Panics if comp or index differ
// in length from parent, or starts is not one element longer.
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in screen_test.go.
func buildPartition(comp, index, starts []int, parent []int) int {
	k := len(parent)
	if len(comp) != k || len(index) != k || len(starts) != k+1 {
		panic("glasso: buildPartition scratch lengths disagree with parent")
	}
	// Pass 1: assign component ids in order of smallest member and count
	// sizes. comp[root] temporarily holds the id for roots already seen
	// (offset by +1 so zero means unseen).
	for v := range comp {
		comp[v] = 0
	}
	n := 0
	for v := 0; v < k; v++ {
		r := findRoot(parent, v)
		if comp[r] == 0 {
			n++
			comp[r] = n
		}
	}
	// Pass 2: component sizes into starts (starts[id] = |C_id| 1-based).
	for c := 0; c <= n; c++ {
		starts[c] = 0
	}
	for v := 0; v < k; v++ {
		starts[comp[findRoot(parent, v)]]++
	}
	// Prefix-sum sizes into offsets.
	for c := 1; c <= n; c++ {
		starts[c] += starts[c-1]
	}
	// Fully compress the forest so parent[v] is v's root from here on.
	for v := 0; v < k; v++ {
		parent[v] = findRoot(parent, v)
	}
	// Pass 3: fill vertex lists, using starts[id] as a moving cursor.
	// Vertices are visited ascending and ids were assigned by smallest
	// member, so each list comes out ascending. Final 0-based ids are
	// staged in index's mirror order implicitly; comp[root] must keep
	// its marker until every member of that root's component has been
	// resolved (v may itself be a root), so final ids are written into
	// comp in a second sweep off the compressed parents.
	for v := 0; v < k; v++ {
		index[starts[comp[parent[v]]-1]] = v
		starts[comp[parent[v]]-1]++
	}
	for v := 0; v < k; v++ {
		if parent[v] != v {
			comp[v] = comp[parent[v]] - 1
		}
	}
	for v := 0; v < k; v++ {
		if parent[v] == v {
			comp[v]--
		}
	}
	// starts[c] now holds end offsets shifted left by one slot; restore
	// the canonical [0, ends...] form by shifting right.
	for c := n; c > 0; c-- {
		starts[c] = starts[c-1]
	}
	starts[0] = 0
	return n
}
