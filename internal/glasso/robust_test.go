package glasso

import (
	"context"
	"errors"
	"testing"

	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

func testCov() *linalg.Dense {
	return linalg.NewDenseData(3, 3, []float64{
		1, 0.8, 0.3,
		0.8, 1, 0.5,
		0.3, 0.5, 1,
	})
}

func TestSolveReportsConverged(t *testing.T) {
	res, err := Solve(testCov(), Options{Lambda: 0.01})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged {
		t.Errorf("healthy solve not converged after %d sweeps", res.Iterations)
	}
}

func TestSolveReportsNonConvergenceOnTinyBudget(t *testing.T) {
	res, err := Solve(testCov(), Options{MaxIter: 1, Tol: 1e-12})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Converged {
		t.Error("one sweep at tol 1e-12 reported converged")
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
}

func TestFaultSolveForcedNonConvergence(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.GlassoNoConverge, faults.Config{})
	res, err := Solve(testCov(), Options{Lambda: 0.01})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Converged {
		t.Error("forced non-convergence reported converged")
	}
	opts := Options{}
	opts.defaults()
	if res.Iterations != opts.MaxIter {
		t.Errorf("Iterations = %d, want full budget %d", res.Iterations, opts.MaxIter)
	}
}

func TestFaultSolveContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveContext(ctx, testCov(), Options{})
	if !errors.Is(err, fdxerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled and context.Canceled", err)
	}
}

func TestSolveBadInputTyped(t *testing.T) {
	rect := linalg.NewDense(2, 3)
	if _, err := Solve(rect, Options{}); !errors.Is(err, fdxerr.ErrBadInput) {
		t.Errorf("non-square: err = %v, want ErrBadInput", err)
	}
	asym := linalg.NewDenseData(2, 2, []float64{1, 0.5, -0.5, 1})
	if _, err := Solve(asym, Options{}); !errors.Is(err, fdxerr.ErrBadInput) {
		t.Errorf("asymmetric: err = %v, want ErrBadInput", err)
	}
	neg := linalg.NewDenseData(1, 1, []float64{-1})
	if _, err := Solve(neg, Options{}); !errors.Is(err, fdxerr.ErrBadInput) {
		t.Errorf("negative variance: err = %v, want ErrBadInput", err)
	}
}
