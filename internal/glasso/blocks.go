package glasso

import (
	"context"
	"fmt"

	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
	"fdx/internal/obs"
	"fdx/internal/par"
)

// BlockDiag records one screened block's solve outcome. It is the
// per-block entry behind Result.Diagnostics: worst-case convergence wins
// at the aggregate level, and this keeps the losing block identifiable.
type BlockDiag struct {
	// Vertices holds the block's variable indices in the full matrix,
	// sorted ascending. The slice aliases the screening partition's
	// storage; callers must treat it as read-only.
	Vertices []int
	// Iterations is the block's outer sweep count (0 for singleton
	// blocks, which are solved in closed form).
	Iterations int
	// Converged reports whether this block met the sweep tolerance
	// within MaxIter.
	Converged bool
}

// BlockedResult is the screened solver's native output: the component
// partition plus one independent glasso Result per component, in
// partition order. Callers that can consume blocks directly (core's
// per-block factorization) avoid ever densifying Θ; Dense() assembles
// the classical full-matrix Result with exact zeros off-block.
type BlockedResult struct {
	// Part is the screening partition the blocks were solved under.
	Part *Partition
	// Blocks holds one Result per component, indexed like Part's
	// components (ascending smallest member). Singleton components get
	// 1×1 closed-form results.
	Blocks []*Result
}

// Iterations returns the worst-case (maximum) sweep count across blocks —
// the quantity comparable to a dense solve's Iterations, since blocks run
// independently.
func (br *BlockedResult) Iterations() int {
	m := 0
	for _, b := range br.Blocks {
		if b.Iterations > m {
			m = b.Iterations
		}
	}
	return m
}

// Converged reports whether every block converged: worst case wins, so a
// single stuck block marks the whole solve non-converged exactly like the
// dense solver would.
func (br *BlockedResult) Converged() bool {
	for _, b := range br.Blocks {
		if !b.Converged {
			return false
		}
	}
	return true
}

// Diagnostics returns the per-block outcome list in partition order.
func (br *BlockedResult) Diagnostics() []BlockDiag {
	d := make([]BlockDiag, len(br.Blocks))
	for c, b := range br.Blocks {
		d[c] = BlockDiag{Vertices: br.Part.Block(c), Iterations: b.Iterations, Converged: b.Converged}
	}
	return d
}

// TotalSweeps returns the sum of sweep counts across blocks — the work
// actually performed, as opposed to the wall-clock-comparable Iterations.
func (br *BlockedResult) TotalSweeps() int {
	t := 0
	for _, b := range br.Blocks {
		t += b.Iterations
	}
	return t
}

// DensePrecision assembles the full k×k precision matrix Θ: block
// solutions scattered into place, exact zeros everywhere off-block (the
// screening theorem guarantees those entries are zero in the true
// solution, so no arithmetic is involved in producing them).
func (br *BlockedResult) DensePrecision() *linalg.Dense {
	theta := linalg.NewDense(br.Part.K(), br.Part.K())
	for c, b := range br.Blocks {
		linalg.ScatterSym(theta, b.Precision, br.Part.Block(c))
	}
	return theta
}

// DenseCovariance assembles the full k×k covariance estimate W, exact
// zeros off-block (Θ block-diagonal ⇒ W = Θ⁻¹ block-diagonal).
func (br *BlockedResult) DenseCovariance() *linalg.Dense {
	w := linalg.NewDense(br.Part.K(), br.Part.K())
	for c, b := range br.Blocks {
		linalg.ScatterSym(w, b.Covariance, br.Part.Block(c))
	}
	return w
}

// Dense assembles the classical full-matrix Result. With a single
// component the block's Result is returned directly (no copy) — that
// path is bit-identical to the historical dense solver, because a
// whole-matrix block is solved on the original backing without a gather.
func (br *BlockedResult) Dense() *Result {
	if br.Part.K() == 0 {
		return &Result{Covariance: linalg.NewDense(0, 0), Precision: linalg.NewDense(0, 0), Converged: true}
	}
	diags := br.Diagnostics()
	if br.Part.NumBlocks() == 1 {
		r := br.Blocks[0]
		r.Diagnostics = diags
		return r
	}
	return &Result{
		Covariance:  br.DenseCovariance(),
		Precision:   br.DensePrecision(),
		Iterations:  br.Iterations(),
		Converged:   br.Converged(),
		Diagnostics: diags,
	}
}

// SolveBlocks is SolveBlocksContext with a background context.
func SolveBlocks(s *linalg.Dense, opts Options) (*BlockedResult, error) {
	return SolveBlocksContext(context.Background(), s, opts)
}

// SolveBlocksContext runs the screened Graphical Lasso: threshold |S_ij|
// at λ, split S into the connected components of the surviving graph, and
// solve each component as an independent glasso problem. The
// decomposition is exact (Witten/Mazumder block screening), not an
// approximation. Components fan out across a deterministic internal/par
// pool sized by opts.Workers; every block is an independent problem
// touching disjoint state, so results are bit-for-bit identical at any
// worker count. With opts.NoScreen the whole matrix becomes one block —
// the dense reference path — sharing the same arithmetic.
func SolveBlocksContext(ctx context.Context, s *linalg.Dense, opts Options) (res *BlockedResult, err error) {
	opts.defaults()
	sp := opts.Obs.StartStage("glasso")
	defer func() {
		if res != nil {
			sp.Attr("sweeps", res.Iterations())
			sp.Attr("converged", res.Converged())
			sp.Attr("blocks", res.Part.NumBlocks())
		}
		sp.End()
	}()
	opts.Obs = opts.Obs.Under(sp)
	k, cols := s.Dims()
	if k != cols {
		return nil, fdxerr.BadInput("glasso: covariance must be square, got %dx%d", k, cols)
	}
	if !s.IsSymmetric(1e-8) {
		return nil, fdxerr.BadInput("glasso: covariance must be symmetric")
	}

	part := &Partition{}
	if opts.NoScreen {
		trivialPartition(part, k)
	} else {
		ScreenInto(part, s, opts.Lambda)
	}
	n := part.NumBlocks()
	opts.Obs.SetGauge(obs.MGlassoBlocks, float64(n))
	opts.Obs.SetGauge(obs.MGlassoScreenedRatio, part.ScreenedRatio())

	blocks := make([]*Result, n)
	errs := make([]error, n)
	blockOpts := opts
	blockOpts.Workers = 0 // parallelism lives at block granularity only

	pool := par.New(opts.Workers)
	defer pool.Close()
	pool.For(n, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			idx := part.Block(c)
			bsp := opts.Obs.Start("glasso.block")
			bsp.Attr("block", c)
			bsp.Attr("size", len(idx))
			bo := blockOpts
			bo.Obs = opts.Obs.Under(bsp)
			r, berr := solveBlock(ctx, s, idx, bo)
			if berr != nil {
				errs[c] = berr
			} else {
				blocks[c] = r
				bsp.Attr("sweeps", r.Iterations)
				bsp.Attr("converged", r.Converged)
			}
			bsp.End()
		}
	})
	// Deterministic error selection: lowest block index wins regardless
	// of scheduling. A cancelled ctx reports as itself rather than as
	// whichever block happened to observe it first.
	for c, berr := range errs {
		if berr == nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fdxerr.Cancelled(cerr)
		}
		if n == 1 {
			return nil, berr
		}
		return nil, fmt.Errorf("glasso: screened block %d (%d vars): %w", c, len(part.Block(c)), berr)
	}
	return &BlockedResult{Part: part, Blocks: blocks}, nil
}

// solveBlock solves one component. Singletons are closed-form; a block
// spanning the whole matrix is solved directly on s (no gather), which
// keeps the single-component path bit-identical to the historical dense
// solver; every other block is gathered into a compact submatrix first.
func solveBlock(ctx context.Context, s *linalg.Dense, idx []int, opts Options) (*Result, error) {
	b := len(idx)
	if b == 1 {
		v := idx[0]
		w := s.At(v, v) + opts.Lambda
		if w <= 0 {
			return nil, fdxerr.BadInput("glasso: non-positive variance %g", w)
		}
		return &Result{
			Covariance: linalg.NewDenseData(1, 1, []float64{w}),
			Precision:  linalg.NewDenseData(1, 1, []float64{1 / w}),
			Iterations: 0,
			Converged:  true,
		}, nil
	}
	sub := s
	if k, _ := s.Dims(); b != k {
		sub = linalg.NewDense(b, b)
		linalg.GatherSym(sub, s, idx)
	}
	// W = S_block + λI is the initial covariance estimate.
	w := sub.Clone()
	w.Symmetrize()
	//fdx:lint-ignore ctxflow O(b) diagonal shift before the cancellable solve; bounded glue
	for i := 0; i < b; i++ {
		w.Add(i, i, opts.Lambda)
	}
	return solveFrom(ctx, sub, w, opts)
}
