package glasso

import (
	"math"
	"math/rand"
	"testing"

	"fdx/internal/linalg"
)

// edgeMatrix builds a k×k symmetric matrix with unit diagonal and the
// given off-diagonal entries set to weight on both triangles.
func edgeMatrix(k int, weight float64, edges [][2]int) *linalg.Dense {
	s := linalg.NewDense(k, k)
	for i := 0; i < k; i++ {
		s.Set(i, i, 1)
	}
	for _, e := range edges {
		s.Set(e[0], e[1], weight)
		s.Set(e[1], e[0], weight)
	}
	return s
}

// checkPartition validates the structural invariants every Partition must
// satisfy: blocks are disjoint, cover all k vertices, each block is
// sorted ascending, comp agrees with block membership, and components are
// numbered in ascending order of their smallest member.
func checkPartition(t *testing.T, p *Partition, k int) {
	t.Helper()
	if p.K() != k {
		t.Fatalf("K() = %d, want %d", p.K(), k)
	}
	seen := make([]bool, k)
	prevSmallest := -1
	for c := 0; c < p.NumBlocks(); c++ {
		blk := p.Block(c)
		if len(blk) == 0 {
			t.Fatalf("block %d is empty", c)
		}
		if blk[0] <= prevSmallest {
			t.Fatalf("block %d smallest member %d not ascending after %d", c, blk[0], prevSmallest)
		}
		prevSmallest = blk[0]
		for i, v := range blk {
			if i > 0 && v <= blk[i-1] {
				t.Fatalf("block %d not sorted ascending: %v", c, blk)
			}
			if seen[v] {
				t.Fatalf("vertex %d appears in two blocks", v)
			}
			seen[v] = true
			if p.Comp(v) != c {
				t.Fatalf("Comp(%d) = %d, want %d", v, p.Comp(v), c)
			}
		}
	}
	for v := 0; v < k; v++ {
		if !seen[v] {
			t.Fatalf("vertex %d not covered by any block", v)
		}
	}
}

// referencePartition computes the connected components of the thresholded
// graph by BFS — the obviously-correct oracle the union-find kernel is
// judged against.
func referencePartition(s *linalg.Dense, lambda float64) [][]int {
	k, _ := s.Dims()
	comp := make([]int, k)
	for i := range comp {
		comp[i] = -1
	}
	var blocks [][]int
	for v := 0; v < k; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := len(blocks)
		queue := []int{v}
		comp[v] = id
		var members []int
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			members = append(members, x)
			for j := 0; j < k; j++ {
				if j == x || comp[j] >= 0 {
					continue
				}
				if math.Abs(s.At(x, j)) > lambda || math.Abs(s.At(j, x)) > lambda {
					comp[j] = id
					queue = append(queue, j)
				}
			}
		}
		// BFS emits members out of order; the canonical form is ascending.
		for i := 1; i < len(members); i++ {
			for j := i; j > 0 && members[j] < members[j-1]; j-- {
				members[j], members[j-1] = members[j-1], members[j]
			}
		}
		blocks = append(blocks, members)
	}
	return blocks
}

func assertPartitionEquals(t *testing.T, p *Partition, want [][]int) {
	t.Helper()
	if p.NumBlocks() != len(want) {
		t.Fatalf("NumBlocks = %d, want %d", p.NumBlocks(), len(want))
	}
	for c := range want {
		got := p.Block(c)
		if len(got) != len(want[c]) {
			t.Fatalf("block %d = %v, want %v", c, got, want[c])
		}
		for i := range got {
			if got[i] != want[c][i] {
				t.Fatalf("block %d = %v, want %v", c, got, want[c])
			}
		}
	}
}

func TestScreenRing(t *testing.T) {
	// A ring is the adversarial case for rank heuristics: every union
	// joins two existing chains until the last edge closes the loop.
	k := 8
	var edges [][2]int
	for v := 0; v < k; v++ {
		edges = append(edges, [2]int{v, (v + 1) % k})
	}
	p := Screen(edgeMatrix(k, 0.5, edges), 0.2)
	checkPartition(t, p, k)
	if p.NumBlocks() != 1 {
		t.Fatalf("ring split into %d blocks", p.NumBlocks())
	}
	if p.ScreenedRatio() != 0 {
		t.Errorf("single giant component: ScreenedRatio = %v, want 0", p.ScreenedRatio())
	}
}

func TestScreenStar(t *testing.T) {
	// A star joins everything through one hub — maximal fan-in on a
	// single root.
	k := 9
	var edges [][2]int
	for v := 1; v < k; v++ {
		edges = append(edges, [2]int{0, v})
	}
	p := Screen(edgeMatrix(k, 0.5, edges), 0.2)
	checkPartition(t, p, k)
	if p.NumBlocks() != 1 {
		t.Fatalf("star split into %d blocks", p.NumBlocks())
	}
}

func TestScreenIsolatedSingletons(t *testing.T) {
	// One real pair amid isolated vertices: components must come out in
	// ascending order of smallest member with the singletons intact.
	p := Screen(edgeMatrix(6, 0.5, [][2]int{{1, 4}}), 0.2)
	checkPartition(t, p, 6)
	assertPartitionEquals(t, p, [][]int{{0}, {1, 4}, {2}, {3}, {5}})
}

func TestScreenAllSingletons(t *testing.T) {
	// λ above every off-diagonal magnitude: k singletons, the maximally
	// screened outcome.
	k := 7
	rng := rand.New(rand.NewSource(3))
	s := spdCovariance(rng, k)
	p := Screen(s, 1e6)
	checkPartition(t, p, k)
	if p.NumBlocks() != k {
		t.Fatalf("NumBlocks = %d, want %d singletons", p.NumBlocks(), k)
	}
	want := 1 - 1/float64(k)
	if math.Abs(p.ScreenedRatio()-want) > 1e-15 {
		t.Errorf("ScreenedRatio = %v, want %v", p.ScreenedRatio(), want)
	}
}

func TestScreenBoundaryEntryIsExcluded(t *testing.T) {
	// |S_ij| == λ exactly: the soft-threshold maps it to zero, so it must
	// NOT create an edge; strictly above must.
	const lambda = 0.25
	at := edgeMatrix(2, lambda, [][2]int{{0, 1}})
	if p := Screen(at, lambda); p.NumBlocks() != 2 {
		t.Fatalf("|S|==λ created an edge: %d blocks, want 2", p.NumBlocks())
	}
	above := edgeMatrix(2, lambda+1e-15, [][2]int{{0, 1}})
	if p := Screen(above, lambda); p.NumBlocks() != 1 {
		t.Fatalf("|S|>λ screened out: %d blocks, want 1", p.NumBlocks())
	}
	// Negative entries count by magnitude.
	neg := edgeMatrix(2, -lambda-1e-15, [][2]int{{0, 1}})
	if p := Screen(neg, lambda); p.NumBlocks() != 1 {
		t.Fatalf("negative |S|>λ screened out: %d blocks, want 1", p.NumBlocks())
	}
}

func TestScreenLambdaZero(t *testing.T) {
	// λ=0: any nonzero off-diagonal connects; exact zeros do not (the
	// threshold is strict even at zero).
	s := edgeMatrix(4, 0.01, [][2]int{{0, 2}})
	p := Screen(s, 0)
	checkPartition(t, p, 4)
	assertPartitionEquals(t, p, [][]int{{0, 2}, {1}, {3}})
}

func TestScreenZeroAndOneVertex(t *testing.T) {
	if p := Screen(linalg.NewDense(0, 0), 0.1); p.NumBlocks() != 0 || p.ScreenedRatio() != 0 {
		t.Fatalf("k=0: NumBlocks=%d ratio=%v", p.NumBlocks(), p.ScreenedRatio())
	}
	if p := Screen(linalg.NewDenseData(1, 1, []float64{2}), 0.1); p.NumBlocks() != 1 {
		t.Fatalf("k=1: NumBlocks=%d, want 1", p.NumBlocks())
	}
}

func TestScreenMatchesReferenceBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(40)
		s := linalg.NewDense(k, k)
		for i := 0; i < k; i++ {
			s.Set(i, i, 1)
			for j := i + 1; j < k; j++ {
				// Sparse signal: most entries far below λ, some above.
				v := 0.0
				if rng.Float64() < 0.08 {
					v = 0.3 + rng.Float64()
				} else {
					v = rng.Float64() * 0.1
				}
				if rng.Intn(2) == 0 {
					v = -v
				}
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
		p := Screen(s, 0.2)
		checkPartition(t, p, k)
		assertPartitionEquals(t, p, referencePartition(s, 0.2))
	}
}

// TestScreenIntoReuseZeroAlloc is the runtime half of the zero-allocation
// contract on the screening kernels: once the partition's scratch is
// sized, rescreening allocates nothing.
func TestScreenIntoReuseZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := spdCovariance(rng, 48)
	p := Screen(s, 0.1)
	if allocs := testing.AllocsPerRun(20, func() { ScreenInto(p, s, 0.1) }); allocs != 0 {
		t.Errorf("ScreenInto (warm): %v allocs/op, want 0", allocs)
	}
	// Shrinking reuses the scratch too.
	small := spdCovariance(rng, 12)
	ScreenInto(p, small, 0.1)
	if allocs := testing.AllocsPerRun(20, func() { ScreenInto(p, small, 0.1) }); allocs != 0 {
		t.Errorf("ScreenInto (shrunk): %v allocs/op, want 0", allocs)
	}
	checkPartition(t, p, 12)
}

// FuzzScreen checks two invariants on arbitrary symmetric inputs: the
// partition always satisfies its structural contract and matches the BFS
// oracle, and symmetric perturbations too small to move any entry across
// the λ threshold leave the partition identical — screening is stable
// under sub-tolerance noise.
func FuzzScreen(f *testing.F) {
	f.Add(int64(1), uint8(8), 0.2)
	f.Add(int64(42), uint8(1), 0.0)
	f.Add(int64(7), uint8(30), 0.5)
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, lambda float64) {
		if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 || lambda > 10 {
			t.Skip()
		}
		k := int(kRaw%32) + 1
		rng := rand.New(rand.NewSource(seed))
		s := linalg.NewDense(k, k)
		const margin = 1e-3
		for i := 0; i < k; i++ {
			s.Set(i, i, 1+rng.Float64())
			for j := i + 1; j < k; j++ {
				v := (rng.Float64()*2 - 1) * 2 * (lambda + 0.1)
				// Keep every magnitude at least margin away from λ so the
				// perturbation below cannot flip an edge.
				if math.Abs(math.Abs(v)-lambda) < margin {
					v = lambda + margin*2
				}
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
		p := Screen(s, lambda)
		checkPartition(t, p, k)
		want := referencePartition(s, lambda)
		assertPartitionEquals(t, p, want)

		// Symmetric perturbation far below the margin: same partition.
		pert := s.Clone()
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				d := (rng.Float64()*2 - 1) * margin / 4
				pert.Set(i, j, pert.At(i, j)+d)
				pert.Set(j, i, pert.At(i, j))
			}
		}
		p2 := Screen(pert, lambda)
		assertPartitionEquals(t, p2, want)
	})
}
