package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// traceEvent is one Chrome trace-event ("X" = complete event). Times are
// microseconds relative to the tracer epoch, per the trace-event spec.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object container format, which viewers prefer
// over the bare array form.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON exports the trace in Chrome trace-event JSON: load the file
// in https://ui.perfetto.dev or chrome://tracing. Each span becomes a
// complete ("ph":"X") event; spans still running are emitted with their
// elapsed duration and an "unfinished" arg. Events are sorted by start
// time and the track set via SetTrack maps to the tid lane.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	now := time.Now()
	traceID := t.TraceID()
	var events []traceEvent
	for _, s := range t.Spans() {
		s.mu.Lock()
		ev := traceEvent{
			Name: s.name,
			Cat:  "fdx",
			Ph:   "X",
			Ts:   float64(s.start.Sub(t.epoch)) / float64(time.Microsecond),
			Pid:  1,
		}
		if s.ended {
			ev.Dur = float64(s.end.Sub(s.start)) / float64(time.Microsecond)
		} else {
			ev.Dur = float64(now.Sub(s.start)) / float64(time.Microsecond)
		}
		args := map[string]any{}
		for _, a := range s.attrs {
			args[a.Key] = a.Value
		}
		if !s.ended {
			args["unfinished"] = true
		}
		if s.mem && s.ended {
			args["alloc_bytes"] = s.allocEnd - s.allocStart
		}
		// Chrome trace JSON has no native trace-context fields, so the W3C
		// identity rides in args where Perfetto's query UI can still slice
		// on it. Explicit attrs win over the synthesized values.
		if _, set := args["trace_id"]; !set {
			args["trace_id"] = traceID
		}
		if s.id != "" {
			if _, set := args["span_id"]; !set {
				args["span_id"] = s.id
			}
		}
		if s.remote {
			args["remote"] = true
		}
		s.mu.Unlock()
		ev.Tid = s.effectiveTrack()
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
