package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent collection of named counters, gauges, and
// fixed-bucket histograms. Metrics are created on first use (Counter /
// Gauge / Histogram are get-or-create) and live for the registry's
// lifetime. Names share one namespace: requesting an existing name as a
// different kind returns a detached metric that records nothing, so
// instrumentation never panics on a naming clash.
//
// A Registry is an expvar.Var (String returns a JSON snapshot) and
// exports Prometheus text format via WritePrometheus. A nil *Registry is
// a valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed. Nil
// registries and kind clashes return a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.taken(name) {
		return &Counter{}
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed. Nil registries
// and kind clashes return a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.taken(name) {
		return &Gauge{}
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram with the default latency
// buckets, creating it if needed. Nil registries and kind clashes return
// a detached histogram.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds
// (ascending; +Inf is implicit; nil means DefBuckets). Bounds are fixed
// at creation — a later call with different bounds returns the original.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if r.taken(name) {
		return newHistogram(bounds)
	}
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// taken reports whether name is registered under any kind.
// Callers hold r.mu.
func (r *Registry) taken(name string) bool {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	return c || g || h
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
// A nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64, safe for concurrent use. A nil *Gauge is
// a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (atomic via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency buckets (seconds), spanning 100µs
// to ~100s geometrically — wide enough for both a glasso sweep and a
// full-relation transform.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket histogram of float64 observations, safe
// for concurrent use. Bucket counts are per-bucket (non-cumulative)
// internally; exports produce the cumulative form Prometheus expects.
// A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds; final +Inf bucket implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	n      atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds (excluding +Inf) and the cumulative
// count at each bound, Prometheus-style.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.bounds))
	var run uint64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// WritePrometheus writes every metric in Prometheus text exposition
// format (version 0.0.4), names sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var names []string
	for k := range counters {
		names = append(names, k)
	}
	for k := range gauges {
		names = append(names, k)
	}
	for k := range hists {
		names = append(names, k)
	}
	// Sort by (family, full name) so every labeled series of one family —
	// rows_total{tenant="a"}, rows_total{tenant="b"} — forms one group
	// under a single # TYPE line, as the text format requires.
	sort.Slice(names, func(i, j int) bool {
		bi, bj := baseName(names[i]), baseName(names[j])
		if bi != bj {
			return bi < bj
		}
		return names[i] < names[j]
	})

	var sb strings.Builder
	prevBase := ""
	typeLine := func(name, kind string) {
		if b := baseName(name); b != prevBase {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", b, kind)
			prevBase = b
		}
	}
	for _, name := range names {
		switch {
		case counters[name] != nil:
			typeLine(name, "counter")
			fmt.Fprintf(&sb, "%s %d\n", name, counters[name].Value())
		case gauges[name] != nil:
			typeLine(name, "gauge")
			fmt.Fprintf(&sb, "%s %s\n", name, promFloat(gauges[name].Value()))
		case hists[name] != nil:
			h := hists[name]
			typeLine(name, "histogram")
			base, labels := splitLabels(name)
			bounds, cum := h.Buckets()
			for i, b := range bounds {
				fmt.Fprintf(&sb, "%s_bucket{%sle=%q} %d\n", base, labels, promFloat(b), cum[i])
			}
			fmt.Fprintf(&sb, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, h.Count())
			fmt.Fprintf(&sb, "%s_sum%s %s\n", base, braced(labels), promFloat(h.Sum()))
			fmt.Fprintf(&sb, "%s_count%s %d\n", base, braced(labels), h.Count())
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// splitLabels separates a Labeled metric name into its family name and a
// `k="v",` prefix ready to precede further labels inside braces. Unlabeled
// names return an empty prefix.
func splitLabels(name string) (base, labelPrefix string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// braced re-wraps a splitLabels prefix as a standalone label block
// ("" stays "").
func braced(labelPrefix string) string {
	if labelPrefix == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labelPrefix, ",") + "}"
}

// promFloat formats a float the way Prometheus clients do.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histSnapshot is the JSON shape of one histogram in String().
type histSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"` // cumulative, parallel to Bounds
}

// String returns a JSON snapshot of the registry, making it an
// expvar.Var (`expvar.Publish("fdx", registry)` exposes it at
// /debug/vars). Keys are sorted by encoding/json.
func (r *Registry) String() string {
	if r == nil {
		return "{}"
	}
	snap := struct {
		Counters   map[string]uint64       `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]histSnapshot `json:"histograms"`
	}{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histSnapshot{},
	}
	r.mu.Lock()
	for k, v := range r.counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range r.gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range r.hists {
		bounds, cum := v.Buckets()
		snap.Histograms[k] = histSnapshot{Count: v.Count(), Sum: v.Sum(), Bounds: bounds, Buckets: cum}
	}
	r.mu.Unlock()
	b, err := json.Marshal(snap)
	if err != nil {
		return "{}"
	}
	return string(b)
}
