package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSinksAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatalf("nil tracer StartSpan = %v, want nil", sp)
	}
	// Every span method must be callable on nil.
	sp.Attr("k", 1)
	sp.SetTrack(3)
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span Duration = %v, want 0", d)
	}
	//fdx:lint-ignore spanleak asserts the nil span's Child is nil; there is no span to end
	if c := sp.Child("y"); c != nil {
		t.Errorf("nil span Child = %v, want nil", c)
	}
	if st := sp.StageTimings(); st != nil {
		t.Errorf("nil span StageTimings = %v, want nil", st)
	}
	tr.SetMemSampling(true)
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer Spans = %v, want nil", got)
	}

	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if s := reg.String(); s != "{}" {
		t.Errorf("nil registry String = %q, want {}", s)
	}

	var h Hooks
	if h.Enabled() {
		t.Error("zero Hooks reports Enabled")
	}
	sp = h.Start("x")
	if sp != nil {
		t.Fatalf("zero Hooks Start = %v, want nil", sp)
	}
	h.StartStage("y").End()
	h.Count("c", 2)
	h.SetGauge("g", 3)
}

func TestSpanTreeAndFind(t *testing.T) {
	tr := New()
	root := tr.StartSpan("run")
	a := root.Child("stage")
	a.End()
	b := root.Child("stage")
	c := b.Child("inner")
	c.End()
	b.End()
	root.End()

	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("Roots = %d, want 1", got)
	}
	if got := len(tr.Find("stage")); got != 2 {
		t.Errorf("Find(stage) = %d spans, want 2", got)
	}
	if got := len(tr.Spans()); got != 4 {
		t.Errorf("Spans = %d, want 4", got)
	}
	if c.Parent() != b {
		t.Error("inner span has wrong parent")
	}
	if !root.Ended() {
		t.Error("root not ended")
	}
	if root.Duration() <= 0 {
		t.Error("root duration not positive")
	}
	// End is idempotent: the first end time sticks.
	d := a.Duration()
	time.Sleep(2 * time.Millisecond)
	a.End()
	if got := a.Duration(); got != d {
		t.Errorf("second End changed duration: %v -> %v", d, got)
	}
}

func TestStageTimingsAggregates(t *testing.T) {
	tr := New()
	root := tr.StartSpan("run")
	for i := 0; i < 3; i++ {
		root.Child("sweep").End()
	}
	root.Child("order").End()
	root.End()

	st := root.StageTimings()
	if len(st) != 2 {
		t.Fatalf("StageTimings = %v, want 2 groups", st)
	}
	if st[0].Stage != "sweep" || st[0].Count != 3 {
		t.Errorf("first group = %+v, want sweep ×3", st[0])
	}
	if st[1].Stage != "order" || st[1].Count != 1 {
		t.Errorf("second group = %+v, want order ×1", st[1])
	}
}

func TestWriteJSONIsValidTrace(t *testing.T) {
	tr := New()
	root := tr.StartSpan("run")
	root.Attr("rows", 100)
	w := root.Child("worker")
	w.SetTrack(2)
	w.End()
	root.End()
	//fdx:lint-ignore spanleak deliberately left open to exercise WriteJSON on an in-flight trace
	open := tr.StartSpan("unfinished")
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(f.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = i
	}
	if got := f.TraceEvents[byName["worker"]].Tid; got != 2 {
		t.Errorf("worker tid = %d, want 2", got)
	}
	if got := f.TraceEvents[byName["run"]].Args["rows"]; got != float64(100) {
		t.Errorf("run args rows = %v, want 100", got)
	}
	if got := f.TraceEvents[byName["unfinished"]].Args["unfinished"]; got != true {
		t.Errorf("open span not marked unfinished: %v", got)
	}
	for i := 1; i < len(f.TraceEvents); i++ {
		if f.TraceEvents[i].Ts < f.TraceEvents[i-1].Ts {
			t.Error("events not sorted by ts")
		}
	}

	// A nil tracer still writes a loadable empty trace.
	buf.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil trace JSON does not parse: %v", err)
	}
}

func TestMemSampling(t *testing.T) {
	tr := New()
	tr.SetMemSampling(true)
	sp := tr.StartSpan("alloc")
	sink := make([]byte, 1<<20)
	_ = sink
	sp.End()
	delta, ok := sp.AllocDelta()
	if !ok {
		t.Fatal("AllocDelta not sampled with mem sampling on")
	}
	if delta < 1<<20 {
		t.Errorf("AllocDelta = %d, want >= 1MiB", delta)
	}
	tr.SetMemSampling(false)
	sp2 := tr.StartSpan("noalloc")
	sp2.End()
	if _, ok := sp2.AllocDelta(); ok {
		t.Error("AllocDelta sampled with mem sampling off")
	}
}

func TestSummaryTree(t *testing.T) {
	tr := New()
	root := tr.StartSpan("run")
	for i := 0; i < 5; i++ {
		root.Child("sweep").End()
	}
	one := root.Child("order")
	one.Attr("method", "heuristic")
	one.End()
	root.End()

	s := tr.Summary()
	for _, want := range []string{"run", "sweep ×5", "order", "method=heuristic"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := reg.Gauge("g").Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := reg.Histogram("h").Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestRegistryKindClashReturnsDetached(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("name").Add(7)
	g := reg.Gauge("name") // same name, different kind
	g.Set(99)              // must not corrupt anything
	h := reg.Histogram("name")
	h.Observe(1)
	if got := reg.Counter("name").Value(); got != 7 {
		t.Errorf("original counter = %d, want 7", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "# TYPE name"); got != 1 {
		t.Errorf("clashing name exported %d times, want 1:\n%s", got, buf.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=0.1 catches 0.05 and 0.1; le=1 adds 0.5; le=10 adds 5; +Inf adds 50.
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Errorf("sum = %v, want 55.65", h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MRowsAbsorbed).Add(123)
	reg.Gauge("fdx_progress_ratio").Set(0.5)
	reg.HistogramBuckets(StageHist("glasso"), []float64{0.01, 0.1}).Observe(0.05)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fdx_rows_absorbed_total counter",
		"fdx_rows_absorbed_total 123",
		"# TYPE fdx_progress_ratio gauge",
		"fdx_progress_ratio 0.5",
		"# TYPE fdx_stage_glasso_seconds histogram",
		`fdx_stage_glasso_seconds_bucket{le="0.01"} 0`,
		`fdx_stage_glasso_seconds_bucket{le="0.1"} 1`,
		`fdx_stage_glasso_seconds_bucket{le="+Inf"} 1`,
		"fdx_stage_glasso_seconds_sum 0.05",
		"fdx_stage_glasso_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two writes are identical.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Error("WritePrometheus output not deterministic")
	}
}

func TestRegistryStringIsJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MGlassoSweeps).Add(31)
	reg.Gauge("g").Set(2.5)
	reg.Histogram(StageHist("udu")).Observe(0.002)

	var snap struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count uint64 `json:"count"`
		}
	}
	if err := json.Unmarshal([]byte(reg.String()), &snap); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if snap.Counters[MGlassoSweeps] != 31 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Histograms[StageHist("udu")].Count != 1 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
}

func TestHooksStageWithMetricsOnly(t *testing.T) {
	reg := NewRegistry()
	h := Hooks{Metrics: reg}
	sp := h.StartStage("transform")
	if sp == nil {
		t.Fatal("metrics-only StartStage returned nil span")
	}
	time.Sleep(time.Millisecond)
	sp.End()
	hist := reg.Histogram(StageHist("transform"))
	if hist.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", hist.Count())
	}
	if hist.Sum() <= 0 {
		t.Errorf("stage histogram sum = %v, want > 0", hist.Sum())
	}
	// Detached spans must not create trace children.
	//fdx:lint-ignore spanleak asserts the detached span's Child is nil; there is no span to end
	if c := sp.Child("x"); c != nil {
		t.Errorf("detached span Child = %v, want nil", c)
	}
}

func TestHooksUnderNests(t *testing.T) {
	tr := New()
	h := Hooks{Tracer: tr}
	root := h.Start("run")
	child := h.Under(root).Start("stage")
	child.End()
	root.End()
	if child.Parent() != root {
		t.Error("Under did not nest child under root")
	}
	// Under(nil) keeps starting roots.
	other := h.Under(nil).Start("other")
	other.End()
	if other.Parent() != nil {
		t.Error("Under(nil) should leave hooks rooted on the tracer")
	}
}

func TestStageHistName(t *testing.T) {
	if got := StageHist("ladder-rung"); got != "fdx_stage_ladder_rung_seconds" {
		t.Errorf("StageHist = %q", got)
	}
}
