package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary renders the trace as an indented stage tree. Same-named
// siblings collapse into one line with a ×N count and total/mean/max
// durations, so a 60-sweep glasso fit reads as one line, not sixty:
//
//	discover                 41.2ms
//	  transform              12.1ms
//	    worker ×4            11.8ms total
//	      block ×12          11.0ms total (mean 916µs, max 2.1ms)
//	  covariance              1.3ms
//	  fit                    26.0ms
//	    ladder-rung           26.0ms
//	      glasso             24.2ms
//	        glasso-sweep ×31 23.9ms total (mean 771µs, max 1.2ms)
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	summarizeLevel(&sb, t.Roots(), 0)
	return sb.String()
}

// summarizeLevel groups same-named spans at one tree level and renders
// each group, then recurses into the pooled children of each group.
func summarizeLevel(sb *strings.Builder, spans []*Span, depth int) {
	var (
		order  []string
		groups = map[string][]*Span{}
	)
	for _, s := range spans {
		name := s.Name()
		if _, ok := groups[name]; !ok {
			order = append(order, name)
		}
		groups[name] = append(groups[name], s)
	}
	for _, name := range order {
		group := groups[name]
		writeGroupLine(sb, name, group, depth)
		var kids []*Span
		for _, s := range group {
			kids = append(kids, s.Children()...)
		}
		if len(kids) > 0 {
			summarizeLevel(sb, kids, depth+1)
		}
	}
}

// writeGroupLine renders one summary line for a group of same-named
// sibling spans.
func writeGroupLine(sb *strings.Builder, name string, group []*Span, depth int) {
	indent := strings.Repeat("  ", depth)
	if len(group) == 1 {
		s := group[0]
		fmt.Fprintf(sb, "%s%-*s %10s", indent, 24-2*depth, name, fmtDur(s.Duration()))
		if alloc, ok := s.AllocDelta(); ok {
			fmt.Fprintf(sb, "  %s alloc", fmtBytes(alloc))
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			var parts []string
			for _, a := range attrs {
				parts = append(parts, fmt.Sprintf("%s=%v", a.Key, a.Value))
			}
			fmt.Fprintf(sb, "  [%s]", strings.Join(parts, " "))
		}
		sb.WriteByte('\n')
		return
	}
	var (
		total, max time.Duration
		alloc      uint64
		hasAlloc   bool
	)
	for _, s := range group {
		d := s.Duration()
		total += d
		if d > max {
			max = d
		}
		if a, ok := s.AllocDelta(); ok {
			alloc += a
			hasAlloc = true
		}
	}
	mean := total / time.Duration(len(group))
	label := fmt.Sprintf("%s ×%d", name, len(group))
	fmt.Fprintf(sb, "%s%-*s %10s total (mean %s, max %s)",
		indent, 24-2*depth, label, fmtDur(total), fmtDur(mean), fmtDur(max))
	if hasAlloc {
		fmt.Fprintf(sb, "  %s alloc", fmtBytes(alloc))
	}
	sb.WriteByte('\n')
}

// fmtDur rounds a duration to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(100 * time.Nanosecond).String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n uint64) string {
	units := []string{"B", "KiB", "MiB", "GiB"}
	v := float64(n)
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%d%s", n, units[0])
	}
	return fmt.Sprintf("%.1f%s", v, units[i])
}

// SortStageTimings orders stage timings for report output: descending
// duration, ties broken by name.
func SortStageTimings(ts []StageTiming) {
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].Duration != ts[j].Duration {
			return ts[i].Duration > ts[j].Duration
		}
		return ts[i].Stage < ts[j].Stage
	})
}
