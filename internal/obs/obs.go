// Package obs is the runtime telemetry layer of the FDX pipeline: nestable
// tracing spans with per-span wall time and allocation accounting, and a
// concurrent metrics registry of counters, gauges, and fixed-bucket
// histograms. Spans export as Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing) and as a human-readable stage-summary
// tree; metrics export in Prometheus text format and as an expvar.Var.
//
// The package is stdlib-only and built so that absent sinks cost nothing:
// every method is safe on a nil receiver, so instrumented code calls
// straight through without guards and a pipeline run with no Tracer or
// Registry attached pays only a nil check per instrumentation site
// (verified by `make bench-obs`).
//
// Naming note: this package observes the *runtime* behaviour of discovery
// (where a run spends its time, how often it degrades). It is distinct
// from internal/metrics, which implements the paper's §5.1 *evaluation*
// scores (precision/recall/F1 of discovered FDs against ground truth).
package obs

import "time"

// Hooks bundles the optional telemetry sinks threaded through the
// pipeline. The zero value disables all instrumentation; the struct is
// copied freely as it descends through pipeline layers.
type Hooks struct {
	// Tracer receives root spans for operations that begin a new trace
	// tree (a Discover run, an absorbed batch); nil disables tracing
	// unless Span is set.
	Tracer *Tracer
	// Span, when non-nil, is the parent under which Start nests new
	// spans; it takes precedence over Tracer.
	Span *Span
	// Metrics receives counters, gauges, and per-stage latency
	// histograms; nil disables metric collection.
	Metrics *Registry
	// Labels, when set, are appended (key, value alternating) to every
	// metric name recorded through these hooks via Labeled — how a
	// multi-tenant host splits one pipeline's counters and stage
	// histograms per tenant without threading names everywhere.
	Labels []string
}

// metricName applies the hooks' label set to a metric name.
func (h Hooks) metricName(name string) string {
	if len(h.Labels) == 0 {
		return name
	}
	return Labeled(name, h.Labels...)
}

// Enabled reports whether any sink is attached.
func (h Hooks) Enabled() bool { return h.Tracer != nil || h.Span != nil || h.Metrics != nil }

// Start opens a span named name: a child of h.Span when set, otherwise a
// root span on h.Tracer. With neither sink it returns nil, on which every
// Span method is a no-op.
func (h Hooks) Start(name string) *Span {
	if h.Span != nil {
		return h.Span.Child(name)
	}
	return h.Tracer.StartSpan(name)
}

// StartStage is Start plus latency accounting: when the returned span
// ends, its duration is recorded in the registry histogram named
// StageHist(name). When only a metrics registry is attached, a detached
// timing-only span (not part of any trace) is returned so the histogram
// is still fed.
func (h Hooks) StartStage(name string) *Span {
	sp := h.Start(name)
	if h.Metrics == nil {
		return sp
	}
	hist := h.Metrics.Histogram(h.metricName(StageHist(name)))
	if sp == nil {
		sp = &Span{name: name, start: time.Now()}
	}
	sp.hist = hist
	return sp
}

// Under returns a copy of h whose future Start calls nest under sp.
// A nil sp (tracing disabled) leaves h unchanged.
func (h Hooks) Under(sp *Span) Hooks {
	if sp != nil {
		h.Span = sp
	}
	return h
}

// Count adds delta to the named counter; a no-op without a registry.
func (h Hooks) Count(name string, delta uint64) {
	if h.Metrics == nil {
		return
	}
	h.Metrics.Counter(h.metricName(name)).Add(delta)
}

// SetGauge sets the named gauge; a no-op without a registry.
func (h Hooks) SetGauge(name string, v float64) {
	if h.Metrics == nil {
		return
	}
	h.Metrics.Gauge(h.metricName(name)).Set(v)
}
