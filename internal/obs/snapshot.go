package obs

import (
	"fmt"
	"math"
	"sort"
)

// SeriesKind says how a sampled series' Raw value is interpreted (and how
// the flight recorder delta-encodes it).
type SeriesKind uint8

const (
	// KindCounter marks a monotonically non-decreasing series; Raw is the
	// count itself. Deltas are encoded as the difference.
	KindCounter SeriesKind = 1
	// KindGauge marks a free-moving series; Raw is math.Float64bits of the
	// value. Deltas are encoded as the XOR with the previous bits.
	KindGauge SeriesKind = 2
)

// Series is one named time-series value in a registry snapshot: the unit
// the flight recorder samples, encodes, and decodes.
type Series struct {
	Name string
	Kind SeriesKind
	Raw  uint64
}

// GaugeBits converts a float64 to the Raw representation of a KindGauge
// series (the inverse of Series.Number for gauges).
func GaugeBits(v float64) uint64 { return math.Float64bits(v) }

// Number returns the series value as a float64 regardless of kind.
func (s Series) Number() float64 {
	if s.Kind == KindGauge {
		return math.Float64frombits(s.Raw)
	}
	return float64(s.Raw)
}

// Snapshot returns every metric in the registry as a flat, name-sorted
// series list. Counters appear as themselves; gauges as float bits;
// histograms expand Prometheus-style into <base>_count, <base>_sum, and a
// cumulative <base>_bucket{le="..."} series per bound (labels on the
// histogram name are preserved on each derived series). The deterministic
// order makes consecutive snapshots of an unchanged registry structurally
// identical, which is what the flight recorder's delta encoding needs.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make([]Series, 0, len(counters)+len(gauges)+4*len(hists))
	for name, c := range counters {
		out = append(out, Series{Name: name, Kind: KindCounter, Raw: c.Value()})
	}
	for name, g := range gauges {
		out = append(out, Series{Name: name, Kind: KindGauge, Raw: math.Float64bits(g.Value())})
	}
	for name, h := range hists {
		base, labels := splitLabels(name)
		bounds, cum := h.Buckets()
		for i, b := range bounds {
			out = append(out, Series{
				Name: fmt.Sprintf("%s_bucket{%sle=%q}", base, labels, promFloat(b)),
				Kind: KindCounter,
				Raw:  cum[i],
			})
		}
		out = append(out, Series{Name: base + "_count" + braced(labels), Kind: KindCounter, Raw: h.Count()})
		out = append(out, Series{Name: base + "_sum" + braced(labels), Kind: KindGauge, Raw: math.Float64bits(h.Sum())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistogramQuantile estimates the q-quantile (0 < q <= 1) of a histogram
// from its upper bounds and cumulative bucket counts (as returned by
// Histogram.Buckets), with total the full observation count including the
// implicit +Inf bucket. The estimate interpolates linearly within the
// bucket containing the quantile rank, Prometheus histogram_quantile
// style; ranks that land in the +Inf bucket clamp to the largest finite
// bound.
func HistogramQuantile(bounds []float64, cumulative []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 || len(bounds) != len(cumulative) {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var prev uint64
	lower := 0.0
	for i, b := range bounds {
		if float64(cumulative[i]) >= rank {
			in := cumulative[i] - prev
			if in == 0 {
				return b
			}
			frac := (rank - float64(prev)) / float64(in)
			return lower + frac*(b-lower)
		}
		prev = cumulative[i]
		lower = b
	}
	return bounds[len(bounds)-1]
}

// SumBuckets folds another histogram's cumulative counts into acc
// (allocating acc on first use), so per-tenant series can be aggregated
// into one distribution before taking quantiles. The bounds must match;
// mismatched inputs return acc unchanged.
func SumBuckets(acc []uint64, cumulative []uint64) []uint64 {
	if acc == nil {
		return append([]uint64(nil), cumulative...)
	}
	if len(acc) != len(cumulative) {
		return acc
	}
	for i := range acc {
		acc[i] += cumulative[i]
	}
	return acc
}

// ServeBuckets are the request-latency bucket bounds (seconds) used by the
// fdxd service histograms: 250µs to ~65s in powers of two. The tighter
// geometric spacing keeps HistogramQuantile's p99 estimate within one
// doubling of the truth, so benchmark and dashboard quantiles can be read
// from the histograms instead of being re-timed client-side.
var ServeBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064,
	0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64,
}
