package obs

import "strings"

// Canonical metric names recorded by the instrumented pipeline. Keeping
// them in one place makes dashboards and tests typo-proof.
const (
	// MRowsAbsorbed counts relation rows absorbed by the accumulator.
	MRowsAbsorbed = "fdx_rows_absorbed_total"
	// MBatchesAbsorbed counts accumulator batches absorbed.
	MBatchesAbsorbed = "fdx_batches_absorbed_total"
	// MTransformPairs counts pair-transform sample cells (rows × attrs).
	MTransformPairs = "fdx_transform_pairs_total"
	// MGlassoSweeps counts graphical-lasso coordinate-descent sweeps.
	MGlassoSweeps = "fdx_glasso_sweeps_total"
	// MFallbacks counts regularization-ladder escalations.
	MFallbacks = "fdx_fallback_escalations_total"
	// MSanitizedColumns counts NaN/Inf covariance columns sanitized.
	MSanitizedColumns = "fdx_sanitized_columns_total"
	// MFDsGenerated counts functional dependencies emitted.
	MFDsGenerated = "fdx_fds_generated_total"
	// MDiscoverRuns counts model fits (Discover calls reaching the solver).
	MDiscoverRuns = "fdx_discover_runs_total"
	// MCheckpointSaves counts durable checkpoint snapshots written.
	MCheckpointSaves = "fdx_checkpoint_saves_total"
	// MCheckpointBytes counts bytes written into checkpoint snapshots.
	MCheckpointBytes = "fdx_checkpoint_bytes_total"
	// MWALRecords counts write-ahead-log records appended.
	MWALRecords = "fdx_wal_records_total"
	// MWALBytes counts write-ahead-log bytes appended.
	MWALBytes = "fdx_wal_bytes_total"
	// MWALReplayed counts WAL records re-applied during restore.
	MWALReplayed = "fdx_wal_replayed_records_total"
)

// StageHist returns the latency-histogram name for a pipeline stage,
// e.g. StageHist("glasso") == "fdx_stage_glasso_seconds". Hyphens in
// stage names become underscores to stay Prometheus-legal.
func StageHist(stage string) string {
	return "fdx_stage_" + strings.ReplaceAll(stage, "-", "_") + "_seconds"
}
