package obs

import "strings"

// Canonical metric names recorded by the instrumented pipeline. Keeping
// them in one place makes dashboards and tests typo-proof.
const (
	// MRowsAbsorbed counts relation rows absorbed by the accumulator.
	MRowsAbsorbed = "fdx_rows_absorbed_total"
	// MBatchesAbsorbed counts accumulator batches absorbed.
	MBatchesAbsorbed = "fdx_batches_absorbed_total"
	// MTransformPairs counts pair-transform sample cells (rows × attrs).
	MTransformPairs = "fdx_transform_pairs_total"
	// MGlassoSweeps counts graphical-lasso coordinate-descent sweeps.
	MGlassoSweeps = "fdx_glasso_sweeps_total"
	// MGlassoBlocks gauges the connected-component count the covariance
	// screening pass found for the latest glasso solve (1 = screening
	// disconnected nothing and the solve ran dense).
	MGlassoBlocks = "fdx_glasso_blocks"
	// MGlassoScreenedRatio gauges the fraction of precision entries the
	// latest screening pass proved zero without arithmetic
	// (1 − Σ|block|²/k²; 0 means a single giant component).
	MGlassoScreenedRatio = "fdx_glasso_screened_ratio"
	// MFallbacks counts regularization-ladder escalations.
	MFallbacks = "fdx_fallback_escalations_total"
	// MSanitizedColumns counts NaN/Inf covariance columns sanitized.
	MSanitizedColumns = "fdx_sanitized_columns_total"
	// MFDsGenerated counts functional dependencies emitted.
	MFDsGenerated = "fdx_fds_generated_total"
	// MDiscoverRuns counts model fits (Discover calls reaching the solver).
	MDiscoverRuns = "fdx_discover_runs_total"
	// MCheckpointSaves counts durable checkpoint snapshots written.
	MCheckpointSaves = "fdx_checkpoint_saves_total"
	// MCheckpointBytes counts bytes written into checkpoint snapshots.
	MCheckpointBytes = "fdx_checkpoint_bytes_total"
	// MWALRecords counts write-ahead-log records appended.
	MWALRecords = "fdx_wal_records_total"
	// MWALBytes counts write-ahead-log bytes appended.
	MWALBytes = "fdx_wal_bytes_total"
	// MWALReplayed counts WAL records re-applied during restore.
	MWALReplayed = "fdx_wal_replayed_records_total"
	// MWALTornTail counts torn WAL tail records truncated during restore —
	// the one unsynced batch a kill can lose. Non-zero after a load means
	// the stream resumed one batch earlier than the dead process got to.
	MWALTornTail = "fdx_wal_torn_tail_total"
	// MShardMerges counts shard states merged into an accumulator
	// (Accumulator.Merge / MergeSnapshot, duplicates excluded).
	MShardMerges = "fdx_shard_merges_total"
	// MShardShipRetries counts shard-shipping requests the client retried
	// after a retryable failure (timeout, 429/503, connection error).
	MShardShipRetries = "fdx_shard_ship_retries_total"
	// MShardRestarts counts shard workers restarted by the stream
	// supervisor after a retryable failure (labeled per shard).
	MShardRestarts = "fdx_shard_restarts_total"
	// MShardStalls counts shard workers killed by the supervisor's stall
	// watchdog (no checkpoint progress within the stall timeout).
	MShardStalls = "fdx_shard_stalls_total"
	// MShardShipped counts shard snapshots successfully shipped to a
	// remote fdxd session in `fdx stream -ship` mode.
	MShardShipped = "fdx_shard_shipped_total"

	// Service (fdxd / internal/serve) metric names. Per-tenant series
	// attach a tenant label via Labeled.
	//
	// MServeSessions gauges live accumulator sessions.
	MServeSessions = "fdx_serve_sessions"
	// MServeRows counts rows absorbed through the ingest endpoint.
	MServeRows = "fdx_serve_rows_total"
	// MServeBatches counts ingest batches absorbed (duplicates excluded).
	MServeBatches = "fdx_serve_batches_total"
	// MServeDiscovers counts discover jobs completed.
	MServeDiscovers = "fdx_serve_discover_total"
	// MServeShed counts requests rejected by admission control, by reason
	// label (rate_limited, quota_exceeded, queue_full, draining).
	MServeShed = "fdx_serve_shed_total"
	// MServeQueueDepth gauges the discover queue's current depth.
	MServeQueueDepth = "fdx_serve_queue_depth"
	// MServeDrainSeconds gauges the duration of the last graceful drain.
	MServeDrainSeconds = "fdx_serve_drain_seconds"
	// MServeIngestSeconds is the ingest-request latency histogram.
	MServeIngestSeconds = "fdx_serve_ingest_seconds"
	// MServeDiscoverSeconds is the discover-job latency histogram
	// (queue wait included).
	MServeDiscoverSeconds = "fdx_serve_discover_seconds"
	// MServeShardsMerged counts shard snapshots merged into a session
	// (duplicate deliveries excluded).
	MServeShardsMerged = "fdx_serve_shards_merged_total"
	// MServeShardDuplicates counts duplicate shard deliveries acknowledged
	// without re-merging (seq at or below the session's high-water mark, or
	// coverage already contained).
	MServeShardDuplicates = "fdx_serve_shard_duplicates_total"
	// MServeShardBatches gauges a merger session's covered batch count —
	// the lag indicator: shards yet to arrive are the gap between this and
	// the stream's total batch grid, which only the clients know.
	MServeShardBatches = "fdx_serve_shard_batches"
)

// Labeled attaches Prometheus-style labels to a metric name:
// Labeled("fdx_serve_rows_total", "tenant", "acme") is
// `fdx_serve_rows_total{tenant="acme"}`. The registry treats the result as
// an ordinary opaque name; WritePrometheus recognizes the brace syntax and
// groups labeled series under one # TYPE line per base name. kv alternates
// key, value; a trailing odd key is ignored. Label values are escaped per
// the Prometheus text format (backslash, quote, newline).
func Labeled(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		v := kv[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		sb.WriteString(v)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// baseName strips a Labeled name's label block, returning the metric
// family name Prometheus type lines must use.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// StageHist returns the latency-histogram name for a pipeline stage,
// e.g. StageHist("glasso") == "fdx_stage_glasso_seconds". Hyphens in
// stage names become underscores to stay Prometheus-legal.
func StageHist(stage string) string {
	return "fdx_stage_" + strings.ReplaceAll(stage, "-", "_") + "_seconds"
}
