package flight

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fdx/internal/obs"
)

// fill seeds a registry with a representative mix of series.
func fill(m *obs.Registry, rows uint64, depth float64) {
	m.Counter(obs.MRowsAbsorbed).Add(rows)
	m.Counter(obs.Labeled(obs.MServeRows, "tenant", "acme")).Add(rows * 2)
	m.Gauge(obs.MServeQueueDepth).Set(depth)
	m.Histogram(obs.StageHist("transform")).Observe(0.003)
}

func TestFlightRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewRegistry()
	fill(m, 10, 1)
	r, err := Start(Options{Dir: dir, Interval: time.Hour, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	fill(m, 5, 3)
	r.SampleNow()
	fill(m, 7, 0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	samples, err := DecodeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Start's immediate sample + SampleNow + Close's final sample.
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	wantRows := []float64{10, 15, 22}
	for i, s := range samples {
		if got, ok := s.Number(obs.MRowsAbsorbed); !ok || got != wantRows[i] {
			t.Errorf("sample %d rows = %v (ok=%v), want %v", i, got, ok, wantRows[i])
		}
	}
	if got, _ := samples[2].Number(obs.Labeled(obs.MServeRows, "tenant", "acme")); got != 44 {
		t.Errorf("labeled counter = %v, want 44", got)
	}
	if got, _ := samples[1].Number(obs.MServeQueueDepth); got != 3 {
		t.Errorf("gauge at sample 1 = %v, want 3", got)
	}
	if got, _ := samples[2].Number(obs.StageHist("transform") + "_count"); got != 3 {
		t.Errorf("hist count = %v, want 3", got)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Time.Before(samples[i-1].Time) {
			t.Errorf("sample %d time %v before %v", i, samples[i].Time, samples[i-1].Time)
		}
	}
	// Runtime series ride along by default.
	if _, ok := samples[0].Number("go_goroutines"); !ok {
		t.Error("go_goroutines missing from sample")
	}
	if _, ok := samples[0].Number("go_alloc_bytes_total"); !ok {
		t.Error("go_alloc_bytes_total missing from sample")
	}
}

// TestFlightDeltaCompression checks the FTDC property that makes the
// recorder affordable: steady-state samples of an idle registry are tiny
// relative to the schema chunk.
func TestFlightDeltaCompression(t *testing.T) {
	m := obs.NewRegistry()
	fill(m, 100, 2)
	series := m.Snapshot()

	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	schema := e.encode(nil, now, series)
	delta := e.encode(nil, now.Add(time.Second), series)
	if len(delta) >= len(schema)/4 {
		t.Errorf("idle delta chunk %dB vs schema %dB: delta encoding not engaging", len(delta), len(schema))
	}

	all := append(append([]byte(magic), schema...), delta...)
	samples, err := Decode(all)
	if err != nil || len(samples) != 2 {
		t.Fatalf("decode: %d samples, err %v", len(samples), err)
	}
	for i, s := range samples {
		if len(s.Series) != len(series) {
			t.Fatalf("sample %d has %d series, want %d", i, len(s.Series), len(series))
		}
		for j, sr := range s.Series {
			if sr != series[j] {
				t.Errorf("sample %d series %d = %+v, want %+v", i, j, sr, series[j])
			}
		}
	}
}

// TestFlightKillAtEveryByte is the chunk-boundary crash test: a capture
// truncated at every possible byte — the on-disk state a kill -9 can
// leave — must decode every complete chunk and report the torn remainder
// as clean truncation, never corruption, never a panic. Mirrors the
// checkpoint suite's kill-at-every-byte test.
func TestFlightKillAtEveryByte(t *testing.T) {
	m := obs.NewRegistry()
	fill(m, 1, 1)
	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	data := []byte(magic)
	boundaries := []int{len(data)} // decodable sample count changes here
	for i := 0; i < 5; i++ {
		fill(m, uint64(i+1), float64(i))
		data = e.encode(data, now.Add(time.Duration(i)*time.Second), m.Snapshot())
		boundaries = append(boundaries, len(data))
	}

	complete := func(n int) int {
		c := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= n {
				c = i
			}
		}
		return c
	}
	for cut := 0; cut <= len(data); cut++ {
		samples, err := Decode(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if want := complete(cut); len(samples) != want {
			t.Fatalf("cut %d: %d samples, want %d", cut, len(samples), want)
		}
	}
}

// TestFlightCorruptDetected flips one byte inside each fully-present
// chunk and requires a typed ErrCorrupt (CRC catches it), with the
// preceding healthy samples still returned.
func TestFlightCorruptDetected(t *testing.T) {
	m := obs.NewRegistry()
	fill(m, 3, 1)
	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	data := []byte(magic)
	data = e.encode(data, now, m.Snapshot())
	firstEnd := len(data)
	fill(m, 4, 2)
	data = e.encode(data, now.Add(time.Second), m.Snapshot())

	corrupt := append([]byte(nil), data...)
	corrupt[firstEnd+3] ^= 0xff // inside the second chunk
	samples, err := Decode(corrupt)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(samples) != 1 {
		t.Errorf("%d healthy samples returned, want 1", len(samples))
	}

	// Bad magic is corruption too, except a torn prefix of the magic.
	if _, err := Decode([]byte("NOTMAGIC-and-more")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	if s, err := Decode([]byte(magic[:3])); err != nil || len(s) != 0 {
		t.Errorf("torn magic prefix: samples=%d err=%v, want clean empty", len(s), err)
	}
	if s, err := Decode(nil); err != nil || len(s) != 0 {
		t.Errorf("empty capture: samples=%d err=%v, want clean empty", len(s), err)
	}
}

// TestFlightRebaseline: a counter moving backwards (registry swap) and a
// series-set change must both force a fresh schema chunk, keeping deltas
// honest.
func TestFlightRebaseline(t *testing.T) {
	m1 := obs.NewRegistry()
	m1.Counter("a_total").Add(100)
	m2 := obs.NewRegistry()
	m2.Counter("a_total").Add(10) // decreased vs m1

	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	data := []byte(magic)
	data = e.encode(data, now, m1.Snapshot())
	data = e.encode(data, now.Add(time.Second), m2.Snapshot())
	m2.Gauge("b").Set(1) // series set change
	data = e.encode(data, now.Add(2*time.Second), m2.Snapshot())

	samples, err := Decode(data)
	if err != nil || len(samples) != 3 {
		t.Fatalf("decode: %d samples err=%v", len(samples), err)
	}
	if v, _ := samples[1].Number("a_total"); v != 10 {
		t.Errorf("after counter decrease: a_total = %v, want 10", v)
	}
	if len(samples[2].Series) != 2 {
		t.Errorf("after series add: %d series, want 2", len(samples[2].Series))
	}
}

func TestFlightRingRotation(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		m.Counter(obs.Labeled("fdx_pad_total", "i", string(rune('a'+i)))).Add(uint64(i))
	}
	r, err := Start(Options{Dir: dir, Interval: time.Hour, Metrics: m,
		MaxFileBytes: 2048, MaxFiles: 3, NoRuntime: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Counter("fdx_rows_total").Add(1)
		r.SampleNow()
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 3 {
		t.Errorf("ring holds %d files, want <= 3", len(files))
	}
	// Every surviving file decodes standalone (schema chunk leads each).
	total := 0
	for _, f := range files {
		s, err := DecodeFile(f)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
		}
		total += len(s)
	}
	if total == 0 {
		t.Fatal("no samples survived rotation")
	}
	// The newest sample reflects the final counter value.
	samples, err := DecodeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := samples[len(samples)-1].Number("fdx_rows_total"); !ok || v != 50 {
		t.Errorf("last sample fdx_rows_total = %v (ok=%v), want 50", v, ok)
	}
}

// TestFlightSuccessorRun: a restarted recorder must not clobber its dead
// predecessor's capture — postmortems depend on it.
func TestFlightSuccessorRun(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewRegistry()
	m.Counter("fdx_runs_total").Add(1)
	r1, err := Start(Options{Dir: dir, Interval: time.Hour, Metrics: m, NoRuntime: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	m.Counter("fdx_runs_total").Add(1)
	r2, err := Start(Options{Dir: dir, Interval: time.Hour, Metrics: m, NoRuntime: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("%d capture files, want 2 (one per run)", len(files))
	}
	first, err := DecodeFile(files[0])
	if err != nil || len(first) == 0 {
		t.Fatalf("predecessor capture unreadable: %d samples err=%v", len(first), err)
	}
	if v, _ := first[len(first)-1].Number("fdx_runs_total"); v != 1 {
		t.Errorf("predecessor's last sample = %v, want 1", v)
	}
}

func TestFlightUnknownChunkSkipped(t *testing.T) {
	m := obs.NewRegistry()
	m.Counter("a_total").Add(1)
	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	data := []byte(magic)
	data = e.encode(data, now, m.Snapshot())
	data = appendChunk(data, 0x7f, []byte("future extension"))
	m.Counter("a_total").Add(1)
	data = e.encode(data, now.Add(time.Second), m.Snapshot())

	samples, err := Decode(data)
	if err != nil || len(samples) != 2 {
		t.Fatalf("decode with unknown chunk: %d samples err=%v, want 2 and nil", len(samples), err)
	}
}

func TestFlightDeltaBeforeSchemaCorrupt(t *testing.T) {
	var e encoder
	m := obs.NewRegistry()
	m.Counter("a_total").Add(1)
	now := time.UnixMicro(1_700_000_000_000_000)
	e.encode([]byte(magic), now, m.Snapshot()) // prime the encoder's schema
	delta := e.encode(nil, now.Add(time.Second), m.Snapshot())
	if _, err := Decode(append([]byte(magic), delta...)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("delta before schema: err = %v, want ErrCorrupt", err)
	}
}

// TestFlightDirFromEnv mirrors how the chaos suites point built binaries
// at a shared capture dir: verify Start handles a nested, not-yet-created
// path.
func TestFlightDirFromEnv(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "flight")
	r, err := Start(Options{Dir: dir, Interval: time.Hour, NoRuntime: false})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", r.Dir(), dir)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
	samples, err := DecodeDir(dir)
	if err != nil || len(samples) == 0 {
		t.Fatalf("runtime-only capture: %d samples err=%v", len(samples), err)
	}
}
