package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Decode parses one capture file's bytes into samples. A torn final
// chunk — fewer bytes on disk than the frame declares, the signature of a
// crash mid-write — is truncated silently: the samples before it are
// returned with a nil error. Structural damage inside fully-present bytes
// (bad magic, CRC mismatch, malformed varints) returns the samples
// decoded so far alongside an error wrapping ErrCorrupt. Decode never
// panics, whatever the input (fuzzed by FuzzFlightDecode).
func Decode(data []byte) ([]Sample, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < len(magic) {
		// A crash can tear the very first write; a prefix of the magic is a
		// torn header, anything else is damage.
		if string(data) == magic[:len(data)] {
			return nil, nil
		}
		return nil, corruptf("bad magic")
	}
	if string(data[:len(magic)]) != magic {
		return nil, corruptf("bad magic")
	}

	var (
		dec     decoder
		samples []Sample
		off     = len(magic)
	)
	for off < len(data) {
		frameStart := off
		kind := data[off]
		off++
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 {
			// Distinguish a varint truncated by EOF (torn tail) from one
			// that is malformed within available bytes (corrupt).
			if n == 0 && len(data)-off < binary.MaxVarintLen64 {
				return samples, nil
			}
			return samples, corruptf("bad chunk length at offset %d", off)
		}
		off += n
		if plen > maxChunkBytes {
			return samples, corruptf("chunk length %d exceeds limit", plen)
		}
		if uint64(len(data)-off) < plen+4 {
			return samples, nil // torn tail: frame declared but not fully on disk
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		want := binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
		if got := crc32.Checksum(data[frameStart:off-4], castagnoli); got != want {
			return samples, corruptf("crc mismatch at offset %d", frameStart)
		}
		s, ok, err := dec.chunk(kind, payload)
		if err != nil {
			return samples, err
		}
		if ok {
			samples = append(samples, s)
		}
	}
	return samples, nil
}

// DecodeFile reads and decodes one capture file.
func DecodeFile(path string) ([]Sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	samples, derr := Decode(data)
	if derr != nil {
		return samples, fmt.Errorf("%s: %w", filepath.Base(path), derr)
	}
	return samples, nil
}

// Files lists a capture directory's flight files in ring order (ascending
// index, i.e. oldest first).
func Files(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), filePrefix) && strings.HasSuffix(e.Name(), fileSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out) // zero-padded indices sort chronologically
	return out, nil
}

// DecodeDir decodes every capture file in dir, oldest first, into one
// sample sequence. Per-file corruption stops that file but not the scan:
// the error for the first damaged file is returned alongside everything
// that did decode, so a postmortem still sees the healthy history.
func DecodeDir(dir string) ([]Sample, error) {
	files, err := Files(dir)
	if err != nil {
		return nil, err
	}
	var (
		samples  []Sample
		firstErr error
	)
	for _, f := range files {
		s, err := DecodeFile(f)
		samples = append(samples, s...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return samples, firstErr
}
