package flight

import (
	"os"
	"sort"
	"testing"
	"time"

	"fdx/internal/obs"
)

// benchRegistry builds a registry the size of a busy fdxd's: a few dozen
// labeled counters, gauges, and stage histograms (histograms dominate the
// series count at ~21 series each).
func benchRegistry(tenants int) *obs.Registry {
	m := obs.NewRegistry()
	names := []string{"acme", "globex", "initech", "umbrella"}
	for i := 0; i < tenants; i++ {
		ten := names[i%len(names)]
		m.Counter(obs.Labeled(obs.MServeRows, "tenant", ten)).Add(uint64(1000 * (i + 1)))
		m.Counter(obs.Labeled(obs.MServeBatches, "tenant", ten)).Add(uint64(10 * (i + 1)))
		m.HistogramBuckets(obs.Labeled(obs.MServeIngestSeconds, "tenant", ten), obs.ServeBuckets).Observe(0.002)
		m.HistogramBuckets(obs.Labeled(obs.MServeDiscoverSeconds, "tenant", ten), obs.ServeBuckets).Observe(0.2)
	}
	m.Gauge(obs.MServeSessions).Set(float64(tenants))
	m.Gauge(obs.MServeQueueDepth).Set(2)
	for _, st := range []string{"transform", "covariance", "glasso", "extract"} {
		m.Histogram(obs.StageHist(st)).Observe(0.01)
	}
	return m
}

// BenchmarkFlightSample measures one full recorder tick: registry
// snapshot + runtime stats + delta encoding (the disk write is excluded —
// it is one buffered write of the reported chunk size).
func BenchmarkFlightSample(b *testing.B) {
	m := benchRegistry(4)
	series := m.Snapshot()
	series = appendRuntimeSeries(series)
	sort.Slice(series, func(i, j int) bool { return series[i].Name < series[j].Name })
	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	buf := e.encode(nil, now, series) // prime: steady state is deltas
	b.ReportMetric(float64(len(buf)), "schemaB")

	b.ResetTimer()
	var deltaBytes int
	for i := 0; i < b.N; i++ {
		series = m.Snapshot()
		series = appendRuntimeSeries(series)
		sort.Slice(series, func(x, y int) bool { return series[x].Name < series[y].Name })
		buf = e.encode(buf[:0], now.Add(time.Duration(i+1)*time.Second), series)
		deltaBytes = len(buf)
	}
	b.ReportMetric(float64(deltaBytes), "deltaB")
}

// BenchmarkFlightDecode measures postmortem decode throughput.
func BenchmarkFlightDecode(b *testing.B) {
	m := benchRegistry(4)
	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	data := []byte(magic)
	for i := 0; i < 600; i++ { // ten minutes at 1 Hz
		m.Counter(obs.Labeled(obs.MServeRows, "tenant", "acme")).Add(50)
		data = e.encode(data, now.Add(time.Duration(i)*time.Second), m.Snapshot())
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFlightOverhead is the ≤2% gate from the issue: a metric-hammering
// workload (the hot-path shape of a stream absorb loop) must run within
// 2% of itself while a 1 Hz recorder samples the same registry. Wall
// clock is noisy, so like TestObsOverhead this is opt-in: set
// FDX_FLIGHT_OVERHEAD=1 (`make bench-flight` does), best of three.
func TestFlightOverhead(t *testing.T) {
	if os.Getenv("FDX_FLIGHT_OVERHEAD") != "1" {
		t.Skip("set FDX_FLIGHT_OVERHEAD=1 to run the overhead gate (make bench-flight)")
	}
	m := benchRegistry(4)
	rows := m.Counter(obs.Labeled(obs.MServeRows, "tenant", "acme"))
	hist := m.Histogram(obs.StageHist("transform"))

	workload := func() time.Duration {
		t0 := time.Now()
		for i := 0; i < 2_000_000; i++ {
			rows.Add(1)
			if i%64 == 0 {
				hist.Observe(float64(i%7) * 0.001)
			}
		}
		return time.Since(t0)
	}
	measure := func() time.Duration {
		const rounds = 7
		times := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			times = append(times, workload())
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}

	workload() // warm up
	const attempts = 3
	var best float64
	for a := 0; a < attempts; a++ {
		bare := measure()
		r, err := Start(Options{Dir: t.TempDir(), Interval: time.Second, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		recorded := measure()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		ratio := float64(recorded) / float64(bare)
		t.Logf("attempt %d: bare %v, recorded %v, ratio %.4f", a+1, bare, recorded, ratio)
		if a == 0 || ratio < best {
			best = ratio
		}
		if best <= 1.02 {
			return
		}
	}
	t.Errorf("flight recorder overhead ratio %.4f exceeds 1.02 across %d attempts", best, attempts)
}
