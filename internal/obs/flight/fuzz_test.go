package flight

import (
	"errors"
	"testing"
	"time"

	"fdx/internal/obs"
)

// FuzzFlightDecode: arbitrary bytes must decode into samples or a typed
// ErrCorrupt — never a panic, never an unbounded allocation, and a torn
// final chunk must truncate cleanly (asserted by the valid-prefix seeds).
func FuzzFlightDecode(f *testing.F) {
	m := obs.NewRegistry()
	m.Counter(obs.MRowsAbsorbed).Add(42)
	m.Gauge(obs.MServeQueueDepth).Set(3)
	m.Histogram(obs.StageHist("glasso")).Observe(0.01)

	var e encoder
	now := time.UnixMicro(1_700_000_000_000_000)
	valid := []byte(magic)
	for i := 0; i < 3; i++ {
		m.Counter(obs.MRowsAbsorbed).Add(uint64(i))
		valid = e.encode(valid, now.Add(time.Duration(i)*time.Second), m.Snapshot())
	}

	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:11])           // torn mid-first-chunk
	corrupted := append([]byte(nil), valid...)
	corrupted[len(magic)+5] ^= 0x40
	f.Add(corrupted)
	f.Add(append(append([]byte(nil), valid...), 0x7f, 0x03, 'a', 'b', 'c', 0, 0, 0, 0)) // unknown kind, bad crc
	f.Add([]byte("FDXFTDC2 wrong version magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := Decode(data)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-typed error %v", err)
		}
		for _, s := range samples {
			for _, sr := range s.Series {
				_ = sr.Number()
			}
		}
		// Every decodable capture's strict prefix is either decodable or
		// typed-corrupt too, with no more samples than the whole.
		if err == nil && len(data) > len(magic) {
			cut := len(data) - 1 - (len(data)-len(magic))/2
			if cut < len(magic) {
				cut = len(magic)
			}
			prefix, perr := Decode(data[:cut])
			if perr != nil && !errors.Is(perr, ErrCorrupt) {
				t.Fatalf("prefix: non-typed error %v", perr)
			}
			if len(prefix) > len(samples) {
				t.Fatalf("prefix decoded %d samples, whole only %d", len(prefix), len(samples))
			}
		}
	})
}
