// Package flight is the FDX flight recorder: an always-on black box that
// samples the whole obs metrics registry plus Go runtime stats at a fixed
// interval and appends them, delta+varint-encoded and CRC-framed, to a
// small ring of capture files. The design follows the full-time-data-
// capture (FTDC) pattern: because consecutive samples of a mostly-idle
// registry differ in only a handful of series, a delta sample is tens of
// bytes, so a 1 Hz recorder costs well under the 2% overhead budget
// (gated by `make bench-flight`) while keeping hours of history in a few
// megabytes.
//
// Crash safety comes from the framing, not from fsync: each sample is one
// self-checksummed chunk written with a single write(2), so a kill -9
// loses at most the interval since the last tick, and a torn final chunk
// is detected by its CRC and truncated cleanly on decode. The capture
// directory is therefore a postmortem artifact — `fdx flight summary`
// reads it after the process is gone.
package flight

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"fdx/internal/obs"
)

// Capture file layout: an 8-byte magic, then back-to-back chunks.
//
//	chunk  := kind(1) | uvarint(len(payload)) | payload | crc32c(4, LE)
//	         (the CRC covers kind, length, and payload)
//
// Chunk kinds:
//
//	schema := uvarint(unixMicro) | uvarint(nseries) |
//	          nseries × ( kind(1) | uvarint(len(name)) | name | uvarint(raw) )
//	delta  := uvarint(dtMicro) | nseries × uvarint(diff)
//
// A schema chunk is a full sample: it names every series and carries
// absolute values. A delta chunk carries one varint per series in schema
// order: counters encode cur−prev (monotone, so non-negative), gauges
// encode Float64bits(cur) XOR Float64bits(prev) — zero when unchanged, so
// idle series cost one byte. The encoder falls back to a fresh schema
// chunk whenever the series set changes or a counter appears to decrease
// (a registry swap). Decoders skip chunk kinds they don't know, so new
// kinds can be added without breaking old readers.
const (
	magic = "FDXFTDC1"

	chunkSchema byte = 1
	chunkDelta  byte = 2

	// maxChunkBytes bounds a declared payload length so a corrupt length
	// field cannot make the decoder allocate gigabytes.
	maxChunkBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid capture: bad magic, a CRC
// mismatch on a fully-present chunk, a malformed varint, or an impossible
// length. A torn final chunk (crash mid-write) is NOT corruption — decode
// truncates it silently, per the crash-safety contract.
var ErrCorrupt = errors.New("flight: corrupt capture")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Sample is one decoded flight-recorder tick: a timestamp and the full
// series state at that instant (deltas already resolved).
type Sample struct {
	Time   time.Time
	Series []obs.Series
}

// encoder turns successive snapshots into chunks, tracking the schema and
// previous values needed for delta encoding. Not safe for concurrent use;
// the recorder drives it from a single goroutine.
type encoder struct {
	names     []string
	kinds     []obs.SeriesKind
	prev      []uint64
	lastMicro int64
	buf       []byte // reused chunk build buffer
}

// appendChunk frames a payload: kind | uvarint len | payload | crc.
func appendChunk(dst []byte, kind byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// sameShape reports whether the snapshot matches the current schema.
func (e *encoder) sameShape(series []obs.Series) bool {
	if len(series) != len(e.names) {
		return false
	}
	for i, s := range series {
		if s.Name != e.names[i] || s.Kind != e.kinds[i] {
			return false
		}
	}
	return true
}

// deltaEncodable reports whether every counter moved monotonically
// (a decrease means the registry was swapped; re-baseline with a schema
// chunk instead of encoding an impossible negative delta).
func (e *encoder) deltaEncodable(series []obs.Series) bool {
	for i, s := range series {
		if s.Kind == obs.KindCounter && s.Raw < e.prev[i] {
			return false
		}
	}
	return true
}

// encode appends one sample chunk for the snapshot to dst and returns it.
// The first call — and any call where the schema no longer fits — emits a
// schema chunk; steady state emits deltas.
func (e *encoder) encode(dst []byte, now time.Time, series []obs.Series) []byte {
	micro := now.UnixMicro()
	if e.names != nil && e.sameShape(series) && e.deltaEncodable(series) && micro >= e.lastMicro {
		e.buf = e.buf[:0]
		e.buf = binary.AppendUvarint(e.buf, uint64(micro-e.lastMicro))
		for i, s := range series {
			var diff uint64
			if s.Kind == obs.KindCounter {
				diff = s.Raw - e.prev[i]
			} else {
				diff = s.Raw ^ e.prev[i]
			}
			e.buf = binary.AppendUvarint(e.buf, diff)
			e.prev[i] = s.Raw
		}
		e.lastMicro = micro
		return appendChunk(dst, chunkDelta, e.buf)
	}

	e.names = make([]string, len(series))
	e.kinds = make([]obs.SeriesKind, len(series))
	e.prev = make([]uint64, len(series))
	e.buf = e.buf[:0]
	e.buf = binary.AppendUvarint(e.buf, uint64(micro))
	e.buf = binary.AppendUvarint(e.buf, uint64(len(series)))
	for i, s := range series {
		e.names[i] = s.Name
		e.kinds[i] = s.Kind
		e.prev[i] = s.Raw
		e.buf = append(e.buf, byte(s.Kind))
		e.buf = binary.AppendUvarint(e.buf, uint64(len(s.Name)))
		e.buf = append(e.buf, s.Name...)
		e.buf = binary.AppendUvarint(e.buf, s.Raw)
	}
	e.lastMicro = micro
	return appendChunk(dst, chunkSchema, e.buf)
}

// reset forgets the schema, forcing the next encode to emit a full schema
// chunk — called when the recorder rotates to a new file so every capture
// file decodes standalone.
func (e *encoder) reset() {
	e.names, e.kinds, e.prev = nil, nil, nil
}

// decoder is the inverse state machine. It consumes whole chunks and
// yields Samples; delta chunks before any schema chunk are corruption.
type decoder struct {
	names     []string
	kinds     []obs.SeriesKind
	cur       []uint64
	lastMicro int64
}

// chunk decodes one chunk payload, returning the sample it carries.
// Unknown kinds return ok=false with no error.
func (d *decoder) chunk(kind byte, payload []byte) (s Sample, ok bool, err error) {
	switch kind {
	case chunkSchema:
		return d.schema(payload)
	case chunkDelta:
		return d.delta(payload)
	default:
		return Sample{}, false, nil
	}
}

// uvarint reads one varint from payload at off, failing as corrupt on
// overlong or truncated encodings (the chunk is complete — its CRC
// matched — so a bad varint cannot be a torn write).
func uvarint(payload []byte, off int) (v uint64, n int, err error) {
	v, n = binary.Uvarint(payload[off:])
	if n <= 0 {
		return 0, 0, corruptf("bad varint at payload offset %d", off)
	}
	return v, off + n, nil
}

func (d *decoder) schema(payload []byte) (Sample, bool, error) {
	micro, off, err := uvarint(payload, 0)
	if err != nil {
		return Sample{}, false, err
	}
	n, off, err := uvarint(payload, off)
	if err != nil {
		return Sample{}, false, err
	}
	if n > maxChunkBytes/2 { // each series needs ≥2 payload bytes
		return Sample{}, false, corruptf("schema declares %d series", n)
	}
	names := make([]string, n)
	kinds := make([]obs.SeriesKind, n)
	cur := make([]uint64, n)
	for i := range names {
		if off >= len(payload) {
			return Sample{}, false, corruptf("schema truncated at series %d", i)
		}
		k := obs.SeriesKind(payload[off])
		if k != obs.KindCounter && k != obs.KindGauge {
			return Sample{}, false, corruptf("unknown series kind %d", k)
		}
		off++
		nameLen, o, err := uvarint(payload, off)
		if err != nil {
			return Sample{}, false, err
		}
		off = o
		if nameLen > uint64(len(payload)-off) {
			return Sample{}, false, corruptf("series name overruns payload")
		}
		names[i] = string(payload[off : off+int(nameLen)])
		off += int(nameLen)
		raw, o, err := uvarint(payload, off)
		if err != nil {
			return Sample{}, false, err
		}
		off = o
		kinds[i] = k
		cur[i] = raw
	}
	if off != len(payload) {
		return Sample{}, false, corruptf("%d trailing bytes in schema chunk", len(payload)-off)
	}
	d.names, d.kinds, d.cur = names, kinds, cur
	d.lastMicro = int64(micro)
	return d.sample(), true, nil
}

func (d *decoder) delta(payload []byte) (Sample, bool, error) {
	if d.names == nil {
		return Sample{}, false, corruptf("delta chunk before schema chunk")
	}
	dt, off, err := uvarint(payload, 0)
	if err != nil {
		return Sample{}, false, err
	}
	for i := range d.names {
		diff, o, err := uvarint(payload, off)
		if err != nil {
			return Sample{}, false, err
		}
		off = o
		if d.kinds[i] == obs.KindCounter {
			d.cur[i] += diff
		} else {
			d.cur[i] ^= diff
		}
	}
	if off != len(payload) {
		return Sample{}, false, corruptf("%d trailing bytes in delta chunk", len(payload)-off)
	}
	d.lastMicro += int64(dt)
	return d.sample(), true, nil
}

func (d *decoder) sample() Sample {
	series := make([]obs.Series, len(d.names))
	for i := range series {
		series[i] = obs.Series{Name: d.names[i], Kind: d.kinds[i], Raw: d.cur[i]}
	}
	return Sample{Time: time.UnixMicro(d.lastMicro).UTC(), Series: series}
}

// Number is a convenience mirror of obs.Series.Number for decoded values
// keyed by name; it returns the value of the named series in s and
// whether it exists.
func (s Sample) Number(name string) (float64, bool) {
	for _, sr := range s.Series {
		if sr.Name == name {
			return sr.Number(), true
		}
	}
	return 0, false
}
