package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fdx/internal/obs"
)

const (
	filePrefix = "flight-"
	fileSuffix = ".ftdc"

	// DefaultInterval is the sampling period when Options.Interval is zero.
	DefaultInterval = time.Second
	// DefaultMaxFileBytes rotates capture files at 1 MiB.
	DefaultMaxFileBytes = 1 << 20
	// DefaultMaxFiles keeps an 8-file ring (~8 MiB, hours of 1 Hz history).
	DefaultMaxFiles = 8
)

// Options configures a Recorder. The zero value of every field has a
// usable default except Dir, which is required.
type Options struct {
	// Dir is the capture directory; created if absent. Each recorder run
	// starts a fresh ring file, so captures from a crashed predecessor
	// survive until the ring rotates them out.
	Dir string
	// Interval between samples (default DefaultInterval).
	Interval time.Duration
	// MaxFileBytes rotates the current file when it would grow past this
	// (default DefaultMaxFileBytes).
	MaxFileBytes int64
	// MaxFiles bounds the ring; the oldest file is removed when a rotation
	// would exceed it (default DefaultMaxFiles).
	MaxFiles int
	// Metrics is the registry to sample; nil records runtime stats only.
	Metrics *obs.Registry
	// NoRuntime drops the synthesized go_* series (goroutines, heap, GC).
	NoRuntime bool
	// OnError, when set, receives write/rotation errors. The recorder
	// keeps running regardless — a full disk must not take down the host
	// process; Close returns the first error either way.
	OnError func(error)
}

// Recorder is a running flight recorder. Start it with Start, stop it
// with Close; all sampling happens on one internal goroutine.
type Recorder struct {
	opts Options
	kick chan chan struct{}
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	f       *os.File
	size    int64
	index   int
	enc     encoder
	scratch []byte
	err     error
}

// Start creates the capture directory, opens a fresh ring file after any
// predecessor's, and begins sampling every Interval. The first sample
// (a full schema chunk) is written before Start returns, so even an
// immediately-killed process leaves a decodable capture.
func Start(opts Options) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("flight: Options.Dir is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.MaxFileBytes <= 0 {
		opts.MaxFileBytes = DefaultMaxFileBytes
	}
	if opts.MaxFiles <= 0 {
		opts.MaxFiles = DefaultMaxFiles
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	r := &Recorder{
		opts: opts,
		kick: make(chan chan struct{}),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	next := 1
	if files, err := Files(opts.Dir); err == nil && len(files) > 0 {
		if i, ok := fileIndex(files[len(files)-1]); ok {
			next = i + 1
		}
	}
	if err := r.open(next); err != nil {
		return nil, err
	}
	r.sample(time.Now())
	go r.loop()
	return r, nil
}

// Dir returns the capture directory.
func (r *Recorder) Dir() string { return r.opts.Dir }

// SampleNow forces one out-of-schedule sample and waits until it is
// written — used by tests and by hosts that want a final state recorded
// at a known boundary.
func (r *Recorder) SampleNow() {
	if r == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case r.kick <- ack:
		<-ack
	case <-r.done:
	}
}

// Close writes one final sample, closes the capture file, and returns the
// first error the recorder hit (nil in the common case). Close is
// idempotent; a nil receiver is a no-op.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	select {
	case <-r.done:
	default:
		select {
		case <-r.stop:
		default:
			close(r.stop)
		}
		<-r.done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Recorder) loop() {
	defer close(r.done)
	tick := time.NewTicker(r.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			r.sample(now)
		case ack := <-r.kick:
			r.sample(time.Now())
			close(ack)
		case <-r.stop:
			r.sample(time.Now())
			r.mu.Lock()
			if r.f != nil {
				if err := r.f.Close(); err != nil && r.err == nil {
					r.err = err
				}
				r.f = nil
			}
			r.mu.Unlock()
			return
		}
	}
}

// sample snapshots the registry plus runtime stats and appends one chunk,
// rotating the ring first when the file is full.
func (r *Recorder) sample(now time.Time) {
	series := r.opts.Metrics.Snapshot()
	if !r.opts.NoRuntime {
		series = appendRuntimeSeries(series)
		sort.Slice(series, func(i, j int) bool { return series[i].Name < series[j].Name })
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return
	}
	r.scratch = r.enc.encode(r.scratch[:0], now, series)
	if r.size+int64(len(r.scratch)) > r.opts.MaxFileBytes && r.size > int64(len(magic)) {
		if err := r.rotateLocked(); err != nil {
			r.fail(err)
			return
		}
		// A fresh file must decode standalone: re-encode as a schema chunk.
		r.enc.reset()
		r.scratch = r.enc.encode(r.scratch[:0], now, series)
	}
	n, err := r.f.Write(r.scratch)
	r.size += int64(n)
	if err != nil {
		r.fail(err)
	}
}

// open starts ring file #index (writing the magic) and prunes the ring.
// Callers hold r.mu or have exclusive access.
func (r *Recorder) open(index int) error {
	path := filepath.Join(r.opts.Dir, fmt.Sprintf("%s%08d%s", filePrefix, index, fileSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return fmt.Errorf("flight: %w", err)
	}
	r.f, r.size, r.index = f, int64(len(magic)), index
	r.prune()
	return nil
}

func (r *Recorder) rotateLocked() error {
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	r.f = nil
	return r.open(r.index + 1)
}

// prune removes the oldest ring files beyond MaxFiles. Removal errors are
// reported but never fatal.
func (r *Recorder) prune() {
	files, err := Files(r.opts.Dir)
	if err != nil {
		return
	}
	for len(files) > r.opts.MaxFiles {
		if err := os.Remove(files[0]); err != nil {
			r.fail(err)
			return
		}
		files = files[1:]
	}
}

// fail records the first error and forwards every error to OnError.
// Callers hold r.mu.
func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	if r.opts.OnError != nil {
		r.opts.OnError(err)
	}
}

// fileIndex parses the ring index out of a capture file path.
func fileIndex(path string) (int, bool) {
	name := filepath.Base(path)
	name = strings.TrimPrefix(name, filePrefix)
	name = strings.TrimSuffix(name, fileSuffix)
	i, err := strconv.Atoi(name)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// Runtime-stat series synthesized into every sample (unless NoRuntime):
// the black box should answer "was it leaking goroutines / thrashing the
// GC?" even when the host registered no metrics at all.
const (
	seriesGoroutines = "go_goroutines"
	seriesHeapAlloc  = "go_heap_alloc_bytes"
	seriesHeapSys    = "go_heap_sys_bytes"
	seriesGCCycles   = "go_gc_cycles_total"
	seriesGCPauseNs  = "go_gc_pause_ns_total"
	seriesAllocTotal = "go_alloc_bytes_total"
)

func appendRuntimeSeries(series []obs.Series) []obs.Series {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return append(series,
		obs.Series{Name: seriesGoroutines, Kind: obs.KindGauge, Raw: obs.GaugeBits(float64(runtime.NumGoroutine()))},
		obs.Series{Name: seriesHeapAlloc, Kind: obs.KindGauge, Raw: obs.GaugeBits(float64(ms.HeapAlloc))},
		obs.Series{Name: seriesHeapSys, Kind: obs.KindGauge, Raw: obs.GaugeBits(float64(ms.HeapSys))},
		obs.Series{Name: seriesGCCycles, Kind: obs.KindCounter, Raw: uint64(ms.NumGC)},
		obs.Series{Name: seriesGCPauseNs, Kind: obs.KindCounter, Raw: ms.PauseTotalNs},
		obs.Series{Name: seriesAllocTotal, Kind: obs.KindCounter, Raw: ms.TotalAlloc},
	)
}
