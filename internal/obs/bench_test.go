package obs

import (
	"io"
	"testing"
)

// BenchmarkObsNilHooks measures the disabled-telemetry path every
// instrumentation site pays: a Start/End pair and a Count on zero Hooks.
// This is the cost added to an untraced pipeline run.
func BenchmarkObsNilHooks(b *testing.B) {
	var h Hooks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start("stage")
		h.Count(MGlassoSweeps, 1)
		sp.End()
	}
}

// BenchmarkObsNilStage is the StartStage variant of the disabled path.
func BenchmarkObsNilStage(b *testing.B) {
	var h Hooks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.StartStage("stage").End()
	}
}

// BenchmarkObsLiveSpan measures a traced Start/End pair.
func BenchmarkObsLiveSpan(b *testing.B) {
	tr := New()
	root := tr.StartSpan("run")
	defer root.End()
	h := Hooks{Tracer: tr}.Under(root)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start("stage").End()
	}
}

// BenchmarkObsCounter measures contended counter increments.
func BenchmarkObsCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter(MRowsAbsorbed)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkObsHistogram measures a histogram observation.
func BenchmarkObsHistogram(b *testing.B) {
	reg := NewRegistry()
	hist := reg.Histogram(StageHist("glasso"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hist.Observe(0.003)
	}
}

// BenchmarkObsWriteJSON measures exporting a thousand-span trace.
func BenchmarkObsWriteJSON(b *testing.B) {
	tr := New()
	root := tr.StartSpan("run")
	for i := 0; i < 1000; i++ {
		root.Child("sweep").End()
	}
	root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
