package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects a forest of spans for one or more traced operations.
// It is safe for concurrent use; a nil *Tracer is a valid no-op sink
// (StartSpan returns nil and all downstream span calls vanish).
//
// A Tracer is cheap to create and intended to be scoped to a run: attach
// a fresh one per Discover call or stream session, then export with
// WriteJSON or Summary.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	roots   []*Span
	traceID string // lazily assigned W3C trace-id; see TraceID
	mem     atomic.Bool
}

// New returns an empty tracer whose trace clock starts now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetMemSampling toggles allocation accounting: when on, every span
// started afterwards records the runtime.MemStats.TotalAlloc delta over
// its lifetime. Sampling calls runtime.ReadMemStats twice per span
// (a stop-the-world operation), so leave it off unless allocation
// attribution is wanted.
func (t *Tracer) SetMemSampling(on bool) {
	if t == nil {
		return
	}
	t.mem.Store(on)
}

// StartSpan opens a new root span. The returned span must be closed with
// End; nil receivers return a nil span on which every method is a no-op.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, start: time.Now()}
	if t.mem.Load() {
		s.mem = true
		s.allocStart = totalAlloc()
	}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns a snapshot of the root spans in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Find returns every span named name, in pre-order (parents before
// children, siblings in start order).
func (t *Tracer) Find(name string) []*Span {
	var out []*Span
	for _, s := range t.Spans() {
		if s.Name() == name {
			out = append(out, s)
		}
	}
	return out
}

// Spans returns the whole forest flattened in pre-order.
func (t *Tracer) Spans() []*Span {
	var out []*Span
	for _, r := range t.Roots() {
		r.walk(func(s *Span) { out = append(out, s) })
	}
	return out
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of a trace. Spans nest via Child and are
// closed with End (idempotent). All methods are safe on a nil receiver
// and safe for concurrent use, though a span is normally driven by the
// single goroutine that created it.
type Span struct {
	mu         sync.Mutex
	tracer     *Tracer // nil for detached metrics-only spans
	parent     *Span
	name       string
	id         string // lazily assigned W3C span-id; see SpanID
	start, end time.Time
	ended      bool
	remote     bool // attached from another process via AttachRemote
	track      int
	attrs      []Attr
	children   []*Span
	hist       *Histogram // observed (seconds) on End, for StartStage
	mem        bool
	allocStart uint64
	allocEnd   uint64
}

// Child opens a sub-span. Children of nil or detached spans are nil.
func (s *Span) Child(name string) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, name: name, start: time.Now()}
	if s.tracer.mem.Load() {
		c.mem = true
		c.allocStart = totalAlloc()
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, recording its end time, allocation delta, and —
// for stage spans — its duration in the bound latency histogram. End is
// idempotent: only the first call takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	if s.mem {
		s.allocEnd = totalAlloc()
	}
	d := s.end.Sub(s.start)
	hist := s.hist
	s.mu.Unlock()
	hist.Observe(d.Seconds())
}

// Attr annotates the span; shown in trace JSON args and the summary tree.
func (s *Span) Attr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetTrack assigns the span (and, by inheritance, its children) to a
// numbered track — rendered as a separate thread lane in trace viewers.
// Useful to fan parallel workers out visually; 0 means "inherit".
func (s *Span) SetTrack(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.track = n
	s.mu.Unlock()
}

// Name returns the span name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Parent returns the enclosing span, nil for roots.
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Started returns the span start time.
func (s *Span) Started() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end−start for ended spans and the running elapsed
// time otherwise (0 for nil spans).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// AllocDelta returns the bytes allocated during the span and whether
// allocation sampling was on.
func (s *Span) AllocDelta() (uint64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.mem || !s.ended {
		return 0, s.mem
	}
	return s.allocEnd - s.allocStart, true
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a snapshot of the direct sub-spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// walk visits s and its descendants pre-order.
func (s *Span) walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.walk(fn)
	}
}

// effectiveTrack resolves the viewer lane: the span's own track if set,
// else the nearest ancestor's, else 1.
func (s *Span) effectiveTrack() int {
	for cur := s; cur != nil; cur = cur.Parent() {
		cur.mu.Lock()
		tr := cur.track
		cur.mu.Unlock()
		if tr != 0 {
			return tr
		}
	}
	return 1
}

// StageTiming is the aggregate duration of one named stage: all direct
// children of a root span sharing a name, merged.
type StageTiming struct {
	Stage    string
	Count    int
	Duration time.Duration
}

// StageTimings aggregates the direct children of s by name, in
// first-start order. For a pipeline root span this yields one entry per
// stage (transform, covariance, fit, ...).
func (s *Span) StageTimings() []StageTiming {
	if s == nil {
		return nil
	}
	var (
		out   []StageTiming
		index = map[string]int{}
	)
	for _, c := range s.Children() {
		i, ok := index[c.Name()]
		if !ok {
			i = len(out)
			index[c.Name()] = i
			out = append(out, StageTiming{Stage: c.Name()})
		}
		out[i].Count++
		out[i].Duration += c.Duration()
	}
	return out
}

// totalAlloc samples cumulative heap allocation.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}
