package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// W3C trace-context support: every Tracer owns a 16-byte trace-id and
// every Span an 8-byte span-id, both lazily assigned so untraced runs pay
// nothing. Traceparent/ParseTraceparent implement the `traceparent`
// header (https://www.w3.org/TR/trace-context/, version 00), which is how
// the ShardClient hands its trace identity to fdxd and how fdxd links its
// server spans back to the caller.

var (
	spanBaseOnce sync.Once
	spanBase     uint64
	spanSeq      atomic.Uint64
)

// NewTraceID returns a 32-char lowercase-hex W3C trace-id, random and
// non-zero.
func NewTraceID() string {
	var b [16]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back to
			// the span-id generator rather than panic in telemetry code.
			binary.BigEndian.PutUint64(b[:8], nextSpanWord())
			binary.BigEndian.PutUint64(b[8:], nextSpanWord())
		}
		if b != [16]byte{} {
			return hex.EncodeToString(b[:])
		}
	}
}

// NewSpanID returns a 16-char lowercase-hex W3C span-id. IDs mix a
// process-wide random base with an atomic counter, so generation is one
// atomic add — cheap enough to assign on every traced request.
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nextSpanWord())
	return hex.EncodeToString(b[:])
}

func nextSpanWord() uint64 {
	spanBaseOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			spanBase = binary.BigEndian.Uint64(b[:])
		} else {
			spanBase = uint64(time.Now().UnixNano())
		}
	})
	for {
		w := spanBase ^ (spanSeq.Add(1) * 0x9e3779b97f4a7c15)
		if w != 0 {
			return w
		}
	}
}

// Traceparent formats a version-00 traceparent header value with the
// sampled flag set.
func Traceparent(traceID, spanID string) string {
	return fmt.Sprintf("00-%s-%s-01", traceID, spanID)
}

// ParseTraceparent splits a traceparent header into its trace-id and
// parent span-id. It accepts any version byte (per spec, unknown versions
// are parsed as version 00) and rejects malformed or all-zero IDs.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !isHex(h[:2]) || !isHex(traceID) || !isHex(spanID) || !isHex(h[53:55]) {
		return "", "", false
	}
	if allZero(traceID) || allZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// TraceID returns the tracer's W3C trace-id, assigning a random one on
// first use. Nil tracers return "".
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traceID == "" {
		t.traceID = NewTraceID()
	}
	return t.traceID
}

// SetTraceID adopts an externally assigned trace-id (e.g. extracted from
// an incoming traceparent header), so spans recorded here join the
// caller's trace. Malformed IDs are ignored.
func (t *Tracer) SetTraceID(id string) {
	if t == nil || len(id) != 32 || !isHex(id) || allZero(id) {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// SpanID returns the span's W3C span-id, assigning one on first use.
// Nil and detached spans return "".
func (s *Span) SpanID() string {
	if s == nil || s.tracer == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.id == "" {
		s.id = NewSpanID()
	}
	return s.id
}

// TraceID returns the owning tracer's trace-id ("" for nil or detached
// spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tracer.TraceID()
}

// Remote reports whether the span was grafted from another process via
// AttachRemote.
func (s *Span) Remote() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote
}

// AttachRemote grafts a span observed in another process (e.g. echoed
// back by fdxd in an X-Fdx-Trace response header) under s as an
// already-ended child covering [start, start+dur]. The remote process's
// own span-id, when known, should be passed via id so the merged trace
// keeps stable identities; "" assigns a fresh local id. The returned span
// is ended — callers must not End it again (harmless if they do).
func (s *Span) AttachRemote(name, id string, start time.Time, dur time.Duration, attrs ...Attr) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	if dur < 0 {
		dur = 0
	}
	c := &Span{
		tracer: s.tracer,
		parent: s,
		name:   name,
		id:     id,
		start:  start,
		end:    start.Add(dur),
		ended:  true,
		remote: true,
		attrs:  append([]Attr(nil), attrs...),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}
