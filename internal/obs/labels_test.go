package obs

import (
	"strings"
	"testing"
)

func TestLabeled(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"fdx_serve_rows_total", []string{"tenant", "acme"}, `fdx_serve_rows_total{tenant="acme"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		{"m", nil, "m"},
		{"m", []string{"dangling"}, "m"},
		{"m", []string{"t", `quo"te\back` + "\nnl"}, `m{t="quo\"te\\back\nnl"}`},
	}
	for _, c := range cases {
		if got := Labeled(c.name, c.kv...); got != c.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", c.name, c.kv, got, c.want)
		}
	}
}

// TestPrometheusLabeledGrouping: all series of one family share a single
// # TYPE line with the family (brace-free) name, and labeled histograms
// fold their labels into each sample line.
func TestPrometheusLabeledGrouping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("fdx_serve_rows_total", "tenant", "a")).Add(3)
	r.Counter(Labeled("fdx_serve_rows_total", "tenant", "b")).Add(5)
	r.Gauge("fdx_serve_queue_depth").Set(2)
	r.HistogramBuckets(Labeled("fdx_serve_ingest_seconds", "tenant", "a"), []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE fdx_serve_rows_total counter"); n != 1 {
		t.Errorf("want exactly one TYPE line for the rows family, got %d in:\n%s", n, out)
	}
	if strings.Contains(out, "# TYPE fdx_serve_rows_total{") {
		t.Errorf("TYPE line leaked a label block:\n%s", out)
	}
	for _, want := range []string{
		`fdx_serve_rows_total{tenant="a"} 3`,
		`fdx_serve_rows_total{tenant="b"} 5`,
		`fdx_serve_ingest_seconds_bucket{tenant="a",le="1"} 1`,
		`fdx_serve_ingest_seconds_bucket{tenant="a",le="+Inf"} 1`,
		`fdx_serve_ingest_seconds_sum{tenant="a"} 0.5`,
		`fdx_serve_ingest_seconds_count{tenant="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Series of one family must be contiguous (text-format requirement).
	first := strings.Index(out, `fdx_serve_rows_total{tenant="a"}`)
	second := strings.Index(out, `fdx_serve_rows_total{tenant="b"}`)
	between := out[first:second]
	if strings.Contains(between, "# TYPE") {
		t.Errorf("family interrupted by another TYPE line:\n%s", out)
	}
}
