package profile

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func buildRel(rng *rand.Rand, n int) *dataset.Relation {
	rel := dataset.New("orders", "id", "sku", "category")
	for i := 0; i < n; i++ {
		sku := rng.Intn(12)
		cat := strconv.Itoa(sku % 3)
		catVal := "c" + cat
		if rng.Float64() < 0.02 {
			catVal = "" // missing
		}
		rel.AppendRow([]string{strconv.Itoa(i), "s" + strconv.Itoa(sku), catVal})
	}
	return rel
}

func TestBuildReport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 600)
	rep, err := Build(rel, Options{Discovery: core.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 600 || len(rep.Columns) != 3 {
		t.Fatalf("report shape: %d rows %d cols", rep.Rows, len(rep.Columns))
	}
	// id must surface as a key.
	foundIDKey := false
	for _, k := range rep.Keys {
		if len(k.Attrs) == 1 && k.Attrs[0] == 0 {
			foundIDKey = true
		}
	}
	if !foundIDKey {
		t.Errorf("id key not found: %v", rep.Keys)
	}
	// sku→category should be in the FDs, and both columns marked InFD.
	if len(rep.FDs) == 0 {
		t.Fatal("no FDs in report")
	}
	if !rep.Columns[1].InFD || !rep.Columns[2].InFD {
		t.Error("FD participation flags wrong")
	}
	if rep.Columns[0].InFD {
		t.Error("key column flagged as FD participant")
	}
	if rep.Columns[2].MissingRate == 0 {
		t.Error("missing rate not computed")
	}
	if rep.ErrorRate <= 0 {
		t.Error("error rate should be positive with injected missing cells")
	}
	out := rep.String()
	for _, want := range []string{"profile of orders", "sku", "approximate keys", "foreign-key candidates", "FD violation row rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
}

func TestBuildEmptyFDReport(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := dataset.New("noise", "a", "b")
	for i := 0; i < 200; i++ {
		rel.AppendRow([]string{strconv.Itoa(rng.Intn(8)), strconv.Itoa(rng.Intn(8))})
	}
	rep, err := Build(rel, Options{Discovery: core.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FDs) != 0 {
		t.Errorf("independent data produced FDs: %v", rep.FDs)
	}
	if !strings.Contains(rep.String(), "(none)") {
		t.Error("empty-FD rendering missing")
	}
}
