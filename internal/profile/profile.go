// Package profile assembles a data-profiling report from the discovery
// primitives: per-column statistics, approximate keys, FDX dependencies,
// and the FD-violation error rate — the data-preparation read-out of the
// paper's §5.5, in one place.
package profile

import (
	"fmt"
	"strings"
	"time"

	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/ind"
	"fdx/internal/ucc"
	"fdx/internal/violations"
)

// Options configures report generation.
type Options struct {
	// Discovery holds the FDX options.
	Discovery core.Options
	// KeyError is the approximate-key budget (default 0.01).
	KeyError float64
	// MaxKeySize caps key combination size (default 3).
	MaxKeySize int
	// Deadline bounds the (potentially exponential) key search.
	KeyBudget time.Duration
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.KeyError == 0 {
		o.KeyError = 0.01
	}
	if o.MaxKeySize == 0 {
		o.MaxKeySize = 3
	}
	if o.KeyBudget == 0 {
		o.KeyBudget = 10 * time.Second
	}
}

// ColumnProfile summarizes one attribute.
type ColumnProfile struct {
	Name        string
	Type        dataset.Type
	Cardinality int
	MissingRate float64
	InFD        bool
}

// Report is a full profiling result.
type Report struct {
	Name      string
	Rows      int
	Columns   []ColumnProfile
	FDs       []core.FD
	AttrNames []string
	Keys      []ucc.UCC
	// ForeignKeys are the unary inclusion dependencies with key-like
	// referenced attributes — join-path candidates.
	ForeignKeys []ind.IND
	// ErrorRate is the fraction of rows violating at least one FD.
	ErrorRate float64
	// Model is the fitted FDX model (heatmap etc.).
	Model *core.Model
}

// Build profiles the relation.
func Build(rel *dataset.Relation, opts Options) (*Report, error) {
	opts.defaults()
	model, err := core.Discover(rel, opts.Discovery)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Name:      rel.Name,
		Rows:      rel.NumRows(),
		FDs:       model.FDs,
		AttrNames: rel.AttrNames(),
		Model:     model,
	}
	inFD := map[int]bool{}
	for _, fd := range model.FDs {
		inFD[fd.RHS] = true
		for _, a := range fd.LHS {
			inFD[a] = true
		}
	}
	n := rel.NumRows()
	for j, col := range rel.Columns {
		miss := 0.0
		if n > 0 {
			miss = float64(col.MissingCount()) / float64(n)
		}
		rep.Columns = append(rep.Columns, ColumnProfile{
			Name:        col.Name,
			Type:        col.Type,
			Cardinality: col.Cardinality(),
			MissingRate: miss,
			InFD:        inFD[j],
		})
	}
	rep.Keys = ucc.Discover(rel, ucc.Options{
		MaxError: opts.KeyError,
		MaxSize:  opts.MaxKeySize,
		MaxUCCs:  16,
		Deadline: time.Now().Add(opts.KeyBudget),
	})
	rep.ForeignKeys = ind.ForeignKeyCandidates(ind.Discover(rel, ind.Options{MaxError: opts.KeyError}))
	rep.ErrorRate = violations.ErrorRate(rel, model.FDs)
	return rep, nil
}

// String renders the report as a plain-text profile.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile of %s: %d rows, %d attributes\n\n", r.Name, r.Rows, len(r.Columns))
	fmt.Fprintf(&sb, "%-20s %-12s %9s %8s  %s\n", "attribute", "type", "distinct", "missing", "dependencies")
	sb.WriteString(strings.Repeat("-", 72))
	sb.WriteByte('\n')
	for _, c := range r.Columns {
		dep := ""
		if c.InFD {
			dep = "in FD"
		}
		fmt.Fprintf(&sb, "%-20s %-12s %9d %7.1f%%  %s\n",
			c.Name, c.Type, c.Cardinality, 100*c.MissingRate, dep)
	}
	sb.WriteString("\ndiscovered FDs:\n")
	if len(r.FDs) == 0 {
		sb.WriteString("  (none)\n")
	}
	for _, fd := range r.FDs {
		fmt.Fprintf(&sb, "  %s\n", fd.Format(r.AttrNames))
	}
	sb.WriteString("\napproximate keys:\n")
	if len(r.Keys) == 0 {
		sb.WriteString("  (none within budget)\n")
	}
	for _, k := range r.Keys {
		names := make([]string, len(k.Attrs))
		for i, a := range k.Attrs {
			names[i] = r.AttrNames[a]
		}
		fmt.Fprintf(&sb, "  (%s)  error %.3f\n", strings.Join(names, ", "), k.Error)
	}
	sb.WriteString("\nforeign-key candidates (A \u2286 B, B key-like):\n")
	if len(r.ForeignKeys) == 0 {
		sb.WriteString("  (none)\n")
	}
	for _, d := range r.ForeignKeys {
		fmt.Fprintf(&sb, "  %s \u2286 %s  (coverage %.3f)\n",
			r.AttrNames[d.Dependent], r.AttrNames[d.Referenced], d.Coverage)
	}
	fmt.Fprintf(&sb, "\nFD violation row rate: %.2f%%\n", 100*r.ErrorRate)
	return sb.String()
}
