// Package synth implements the FDX paper's synthetic data generator
// (§5.1, "Synthetic Data Generation"): a schema's attributes are put in a
// global order and split into consecutive groups of two to four attributes
// (X, Y). Half of the groups get a true FD X→Y (each X-combination mapped
// to a uniformly random Y value); the other half get a strong-but-not-
// functional correlation P(Y=r₀|X=l)=ρ with ρ ~ U[0, 0.85]. Noise flips
// cells of FD-participating attributes to random other domain values.
package synth

import (
	"fmt"
	"math/rand"
	"strconv"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

// Config mirrors the paper's Table 2 settings.
type Config struct {
	// Tuples is the number of rows t (paper: 1,000 or 100,000).
	Tuples int
	// Attributes is the number of columns r (paper: 8–16 or 40–80).
	Attributes int
	// DomainCardinality is the target cardinality d of an FD's LHS domain
	// (paper: 64–216 or 1,000–1,728). Each LHS attribute gets
	// ⌈d^(1/|X|)⌉ values so the cartesian product is ≈ d.
	DomainCardinality int
	// NoiseRate is the fraction of FD-participating cells flipped to a
	// random different value (paper: 1% or 30%).
	NoiseRate float64
	// Seed drives generation.
	Seed int64
}

// Setting labels a (t, r, d, n) combination like the paper's figures, e.g.
// "t=large r=small d=large n=high".
type Setting struct {
	TLarge, RLarge, DLarge, NHigh bool
}

// Config returns the paper's parameter values for the setting. Large tuple
// counts are scaled to 20,000 (from the paper's 100,000) so the full suite
// runs in CI time; the contrast between settings is what the experiments
// compare.
func (s Setting) Config(seed int64) Config {
	c := Config{Seed: seed, Tuples: 1000, Attributes: 12, DomainCardinality: 144, NoiseRate: 0.01}
	if s.TLarge {
		c.Tuples = 20000
	}
	if s.RLarge {
		c.Attributes = 48
	}
	if s.DLarge {
		c.DomainCardinality = 1331
	}
	if s.NHigh {
		c.NoiseRate = 0.30
	}
	return c
}

// Name renders the paper's figure-label form.
func (s Setting) Name() string {
	b := func(v bool, big, small string) string {
		if v {
			return big
		}
		return small
	}
	return fmt.Sprintf("t=%s r=%s d=%s n=%s",
		b(s.TLarge, "large", "small"), b(s.RLarge, "large", "small"),
		b(s.DLarge, "large", "small"), b(s.NHigh, "high", "low"))
}

// Instance is a generated data set with its ground truth.
type Instance struct {
	Relation *dataset.Relation
	// TrueFDs are the planted dependencies (one per FD group).
	TrueFDs []core.FD
	// Correlated lists the non-FD correlated groups (for diagnostics).
	Correlated []core.FD
}

// Generate builds one synthetic instance.
func Generate(cfg Config) *Instance {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := cfg.Attributes
	names := make([]string, r)
	for i := range names {
		names[i] = "A" + strconv.Itoa(i)
	}
	rel := dataset.New(fmt.Sprintf("synth-t%d-r%d-d%d-n%g", cfg.Tuples, r, cfg.DomainCardinality, cfg.NoiseRate), names...)

	// Split the global attribute order into consecutive groups of size
	// 2–4: |X| ∈ {1,2,3} plus the determined attribute Y.
	type group struct {
		lhs []int
		rhs int
		fd  bool
	}
	var groups []group
	pos := 0
	makeFD := true // alternate FD / correlation groups
	for pos+2 <= r {
		size := 2 + rng.Intn(3) // group size in [2,4]
		if pos+size > r {
			size = r - pos
		}
		if size < 2 {
			break
		}
		lhs := make([]int, size-1)
		for i := range lhs {
			lhs[i] = pos + i
		}
		groups = append(groups, group{lhs: lhs, rhs: pos + size - 1, fd: makeFD})
		makeFD = !makeFD
		pos += size
	}
	// Leftover attributes become independent columns.

	inst := &Instance{Relation: rel}

	// Per-attribute domain sizes: LHS attributes share the cardinality
	// budget; independent attributes get a moderate domain.
	domain := make([]int, r)
	for i := range domain {
		domain[i] = 16 + rng.Intn(16)
	}
	type mapping struct {
		table map[string]int
		rho   float64
		ydom  int
	}
	mappings := make([]*mapping, len(groups))
	for gi, g := range groups {
		per := intRoot(cfg.DomainCardinality, len(g.lhs))
		for _, a := range g.lhs {
			domain[a] = per
		}
		ydom := cfg.DomainCardinality
		if ydom > 4096 {
			ydom = 4096
		}
		m := &mapping{table: map[string]int{}, ydom: ydom}
		if !g.fd {
			m.rho = rng.Float64() * 0.85
		}
		mappings[gi] = m
		fd := core.FD{LHS: append([]int(nil), g.lhs...), RHS: g.rhs}
		fd.Normalize()
		if g.fd {
			inst.TrueFDs = append(inst.TrueFDs, fd)
		} else {
			inst.Correlated = append(inst.Correlated, fd)
		}
	}

	// Generate rows.
	row := make([]int, r)
	vals := make([]string, r)
	for t := 0; t < cfg.Tuples; t++ {
		for a := 0; a < r; a++ {
			row[a] = rng.Intn(domain[a])
		}
		for gi, g := range groups {
			m := mappings[gi]
			key := ""
			for _, a := range g.lhs {
				key += strconv.Itoa(row[a]) + "|"
			}
			y, ok := m.table[key]
			if !ok {
				y = rng.Intn(m.ydom)
				m.table[key] = y
			}
			if g.fd {
				row[g.rhs] = y
			} else {
				// P(Y=y|X) = ρ, otherwise uniform over the rest.
				if rng.Float64() < m.rho {
					row[g.rhs] = y
				} else {
					other := rng.Intn(m.ydom - 1)
					if other >= y {
						other++
					}
					row[g.rhs] = other
				}
			}
		}
		for a := 0; a < r; a++ {
			vals[a] = "v" + strconv.Itoa(row[a])
		}
		rel.AppendRow(vals)
	}

	// Noise: flip cells of FD-participating attributes.
	if cfg.NoiseRate > 0 {
		participating := map[int]bool{}
		for _, fd := range inst.TrueFDs {
			participating[fd.RHS] = true
			for _, a := range fd.LHS {
				participating[a] = true
			}
		}
		for a := range participating {
			col := rel.Columns[a]
			card := int32(col.Cardinality())
			if card < 2 {
				continue
			}
			for i := 0; i < rel.NumRows(); i++ {
				if rng.Float64() < cfg.NoiseRate {
					cur := col.Code(i)
					next := int32(rng.Intn(int(card) - 1))
					if next >= cur {
						next++
					}
					col.SetCode(i, next)
				}
			}
		}
	}
	core.SortFDs(inst.TrueFDs)
	return inst
}

// intRoot returns ⌈d^(1/k)⌉ (at least 2).
func intRoot(d, k int) int {
	if k <= 1 {
		return maxInt(2, d)
	}
	lo, hi := 2, d
	for lo < hi {
		mid := (lo + hi) / 2
		if pow(mid, k) >= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out > 1<<30 {
			return 1 << 30
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AllSettings enumerates the paper's 8 plotted setting combinations of
// Figure 2 (t, r, d each large/small with n high/low — the figure shows 8
// of the 16; the harness exposes all 16 and the experiment picks the 8).
func AllSettings() []Setting {
	var out []Setting
	for _, t := range []bool{true, false} {
		for _, r := range []bool{true, false} {
			for _, d := range []bool{true, false} {
				for _, n := range []bool{true, false} {
					out = append(out, Setting{TLarge: t, RLarge: r, DLarge: d, NHigh: n})
				}
			}
		}
	}
	return out
}

// Figure2Settings returns the 8 settings plotted in the paper's Figure 2,
// in subfigure order (a)–(h).
func Figure2Settings() []Setting {
	return []Setting{
		{TLarge: true, RLarge: true, DLarge: true, NHigh: true},     // (a)
		{TLarge: true, RLarge: true, DLarge: true, NHigh: false},    // (b)
		{TLarge: true, RLarge: false, DLarge: true, NHigh: true},    // (c)
		{TLarge: true, RLarge: false, DLarge: true, NHigh: false},   // (d)
		{TLarge: false, RLarge: false, DLarge: true, NHigh: true},   // (e)
		{TLarge: false, RLarge: false, DLarge: true, NHigh: false},  // (f)
		{TLarge: false, RLarge: false, DLarge: false, NHigh: true},  // (g)
		{TLarge: false, RLarge: false, DLarge: false, NHigh: false}, // (h)
	}
}
