package synth

import (
	"testing"
	"testing/quick"

	"fdx/internal/metrics"
	"fdx/internal/tane"
)

func TestGenerateShape(t *testing.T) {
	inst := Generate(Config{Tuples: 500, Attributes: 10, DomainCardinality: 64, Seed: 1})
	rel := inst.Relation
	if rel.NumRows() != 500 || rel.NumCols() != 10 {
		t.Fatalf("dims %dx%d", rel.NumRows(), rel.NumCols())
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.TrueFDs) == 0 {
		t.Error("no FDs planted")
	}
	if len(inst.Correlated) == 0 {
		t.Error("no correlated groups planted")
	}
}

func TestGeneratedFDsHoldOnCleanData(t *testing.T) {
	inst := Generate(Config{Tuples: 800, Attributes: 10, DomainCardinality: 64, NoiseRate: 0, Seed: 2})
	// TANE at zero error must rediscover every planted edge (possibly with
	// smaller minimal LHS, so compare recall over edges undirected).
	found := tane.Discover(inst.Relation, tane.Options{MaxLHS: 3})
	m := metrics.Evaluate(inst.TrueFDs, found, true)
	if m.Recall < 0.99 {
		t.Errorf("TANE recall on clean synthetic data = %v; truth %v, found %v",
			m.Recall, inst.TrueFDs, found)
	}
}

func TestNoiseBreaksExactFDs(t *testing.T) {
	clean := Generate(Config{Tuples: 800, Attributes: 8, DomainCardinality: 64, NoiseRate: 0, Seed: 3})
	noisy := Generate(Config{Tuples: 800, Attributes: 8, DomainCardinality: 64, NoiseRate: 0.3, Seed: 3})
	cleanFound := tane.Discover(clean.Relation, tane.Options{MaxLHS: 2})
	noisyFound := tane.Discover(noisy.Relation, tane.Options{MaxLHS: 2})
	cleanRecall := metrics.Evaluate(clean.TrueFDs, cleanFound, true).Recall
	noisyRecall := metrics.Evaluate(noisy.TrueFDs, noisyFound, true).Recall
	if noisyRecall >= cleanRecall {
		t.Errorf("30%% noise did not reduce exact-FD recall: clean %v noisy %v", cleanRecall, noisyRecall)
	}
}

func TestCorrelatedGroupsAreNotFDs(t *testing.T) {
	inst := Generate(Config{Tuples: 2000, Attributes: 12, DomainCardinality: 64, NoiseRate: 0, Seed: 4})
	found := tane.Discover(inst.Relation, tane.Options{MaxLHS: 3})
	fset := metrics.EdgeSet(found)
	// Correlated (ρ<0.85) groups must not hold exactly.
	for _, corr := range inst.Correlated {
		for _, e := range corr.Edges() {
			if fset[e] {
				t.Errorf("correlated edge %v discovered as exact FD", e)
			}
		}
	}
}

func TestSettingConfigs(t *testing.T) {
	small := Setting{}.Config(1)
	large := Setting{TLarge: true, RLarge: true, DLarge: true, NHigh: true}.Config(1)
	if small.Tuples >= large.Tuples || small.Attributes >= large.Attributes {
		t.Error("setting scales not ordered")
	}
	if small.NoiseRate >= large.NoiseRate {
		t.Error("noise rates not ordered")
	}
	if got := (Setting{TLarge: true, NHigh: true}).Name(); got != "t=large r=small d=small n=high" {
		t.Errorf("Name = %q", got)
	}
}

func TestAllSettingsCount(t *testing.T) {
	if len(AllSettings()) != 16 {
		t.Errorf("AllSettings = %d, want 16", len(AllSettings()))
	}
	if len(Figure2Settings()) != 8 {
		t.Errorf("Figure2Settings = %d, want 8", len(Figure2Settings()))
	}
}

func TestIntRoot(t *testing.T) {
	cases := []struct{ d, k, want int }{
		{64, 1, 64}, {64, 2, 8}, {64, 3, 4}, {1331, 3, 11}, {100, 2, 10}, {101, 2, 11},
	}
	for _, c := range cases {
		if got := intRoot(c.d, c.k); got != c.want {
			t.Errorf("intRoot(%d,%d) = %d, want %d", c.d, c.k, got, c.want)
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	f := func(seed int64) bool {
		a := Generate(Config{Tuples: 50, Attributes: 6, DomainCardinality: 27, Seed: seed})
		b := Generate(Config{Tuples: 50, Attributes: 6, DomainCardinality: 27, Seed: seed})
		for i := 0; i < 50; i++ {
			ra, rb := a.Relation.Row(i), b.Relation.Row(i)
			for j := range ra {
				if ra[j] != rb[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
