// Package ucc discovers minimal (approximate) unique column combinations —
// candidate keys validated against the data rather than derived from FDs.
// Key discovery under noise is the sibling problem the FDX paper's related
// work surveys (Köhler et al.'s certain keys); the implementation here is
// the levelwise lattice search over stripped partitions shared with TANE.
package ucc

import (
	"time"

	"fdx/internal/attrset"
	"fdx/internal/dataset"
	"fdx/internal/partition"
)

// Options configures the search.
type Options struct {
	// MaxError is the key error budget: the fraction of tuples that must
	// be removed for the combination to become unique (0 = exact keys).
	MaxError float64
	// MaxSize caps the combination size (0 = no cap).
	MaxSize int
	// MaxUCCs stops the search after this many results (0 = unlimited).
	MaxUCCs int
	// Deadline, when non-zero, stops the search with partial results.
	Deadline time.Time
}

// UCC is one discovered unique column combination.
type UCC struct {
	// Attrs holds the attribute indices, ascending.
	Attrs []int
	// Error is the key error of the combination (≤ Options.MaxError).
	Error float64
}

// Discover returns the minimal (approximate) UCCs of the relation, in
// lattice-level order.
func Discover(rel *dataset.Relation, opts Options) []UCC {
	k := rel.NumCols()
	n := rel.NumRows()
	if k == 0 || n == 0 {
		return nil
	}
	maxSize := opts.MaxSize
	if maxSize == 0 || maxSize > k {
		maxSize = k
	}

	type node struct {
		set  attrset.Set
		part *partition.Partition
	}
	var out []UCC
	var level []node
	// Level 1.
	for a := 0; a < k; a++ {
		p := partition.FromColumn(rel.Columns[a])
		if e := p.Error(); e <= opts.MaxError {
			out = append(out, UCC{Attrs: []int{a}, Error: e})
			if opts.MaxUCCs > 0 && len(out) >= opts.MaxUCCs {
				return out
			}
			continue // supersets are not minimal
		}
		level = append(level, node{set: attrset.New(a), part: p})
	}

	for size := 2; size <= maxSize && len(level) > 0; size++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			break
		}
		present := map[string]*partition.Partition{}
		for _, nd := range level {
			present[nd.set.Key()] = nd.part
		}
		seen := map[string]bool{}
		var next []node
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				u := level[i].set.Union(level[j].set)
				if u.Len() != size {
					continue
				}
				key := u.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				// All immediate subsets must be non-unique (else u is not
				// minimal) and present in the level.
				ok := true
				for _, a := range u.Members() {
					if _, found := present[u.Without(a).Key()]; !found {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				p := partition.Product(level[i].part, level[j].part)
				if e := p.Error(); e <= opts.MaxError {
					out = append(out, UCC{Attrs: u.Members(), Error: e})
					if opts.MaxUCCs > 0 && len(out) >= opts.MaxUCCs {
						return out
					}
					continue
				}
				next = append(next, node{set: u, part: p})
			}
		}
		level = next
	}
	return out
}
