package ucc

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"fdx/internal/attrset"
	"fdx/internal/dataset"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = strconv.Itoa(v)
		}
		r.AppendRow(s)
	}
	return r
}

func hasUCC(uccs []UCC, attrs ...int) bool {
	want := attrset.FromSlice(attrs)
	for _, u := range uccs {
		if attrset.FromSlice(u.Attrs).Equal(want) {
			return true
		}
	}
	return false
}

func TestSingleColumnKey(t *testing.T) {
	rows := [][]int{{0, 5}, {1, 5}, {2, 5}}
	uccs := Discover(relFromCodes(rows, "id", "c"), Options{})
	if !hasUCC(uccs, 0) {
		t.Errorf("id not found as key: %v", uccs)
	}
	if hasUCC(uccs, 1) {
		t.Errorf("constant column reported unique: %v", uccs)
	}
}

func TestCompositeKeyMinimality(t *testing.T) {
	// (a,b) unique, neither alone; also (a,b,c) must not be reported.
	rows := [][]int{{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}}
	uccs := Discover(relFromCodes(rows, "a", "b", "c"), Options{})
	if !hasUCC(uccs, 0, 1) {
		t.Errorf("composite key {a,b} missing: %v", uccs)
	}
	for _, u := range uccs {
		if len(u.Attrs) > 2 {
			t.Errorf("non-minimal UCC: %v", u)
		}
	}
}

func TestBruteForceParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 2+rng.Intn(14), 2+rng.Intn(3)
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, k)
			for j := range rows[i] {
				rows[i][j] = rng.Intn(3)
			}
		}
		names := make([]string, k)
		for j := range names {
			names[j] = "a" + strconv.Itoa(j)
		}
		rel := relFromCodes(rows, names...)
		got := Discover(rel, Options{})

		// Brute force: all minimal unique subsets.
		unique := func(mask int) bool {
			seen := map[string]bool{}
			for i := range rows {
				key := ""
				for a := 0; a < k; a++ {
					if mask&(1<<a) != 0 {
						key += strconv.Itoa(rows[i][a]) + "|"
					}
				}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
			return true
		}
		var want [][]int
		for mask := 1; mask < 1<<k; mask++ {
			if !unique(mask) {
				continue
			}
			minimal := true
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if unique(sub) {
					minimal = false
					break
				}
			}
			if minimal {
				var attrs []int
				for a := 0; a < k; a++ {
					if mask&(1<<a) != 0 {
						attrs = append(attrs, a)
					}
				}
				want = append(want, attrs)
			}
		}
		if len(got) != len(want) {
			t.Logf("seed %d: got %v want %v rows %v", seed, got, want, rows)
			return false
		}
		for _, w := range want {
			if !hasUCC(got, w...) {
				t.Logf("seed %d: missing %v (got %v)", seed, w, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestApproximateKey(t *testing.T) {
	// id column with one duplicate: error = 1/n.
	rows := [][]int{{0}, {1}, {2}, {2}}
	strict := Discover(relFromCodes(rows, "id"), Options{})
	if hasUCC(strict, 0) {
		t.Errorf("duplicate id accepted as exact key: %v", strict)
	}
	loose := Discover(relFromCodes(rows, "id"), Options{MaxError: 0.3})
	if !hasUCC(loose, 0) {
		t.Errorf("approximate key missed: %v", loose)
	}
}

func TestMaxSizeAndMaxUCCs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]int, 50)
	for i := range rows {
		rows[i] = []int{rng.Intn(2), rng.Intn(2), rng.Intn(2), i}
	}
	rel := relFromCodes(rows, "a", "b", "c", "id")
	uccs := Discover(rel, Options{MaxSize: 1})
	for _, u := range uccs {
		if len(u.Attrs) > 1 {
			t.Errorf("MaxSize violated: %v", u)
		}
	}
	capped := Discover(rel, Options{MaxUCCs: 1})
	if len(capped) != 1 {
		t.Errorf("MaxUCCs violated: %v", capped)
	}
}

func TestNullsNeverMatch(t *testing.T) {
	// A column of NULLs is trivially unique under null≠null semantics.
	rel := dataset.New("t", "a")
	rel.AppendRow([]string{""})
	rel.AppendRow([]string{""})
	uccs := Discover(rel, Options{})
	if !hasUCC(uccs, 0) {
		t.Errorf("all-NULL column should be a (vacuous) key: %v", uccs)
	}
}
