// Package violations turns discovered FDs into actionable data-cleaning
// signals: it locates the cells that violate an FD and proposes repairs by
// majority vote within each determinant group. This is the downstream use
// the FDX paper motivates in §5.5 (FD-driven profiling for cleaning
// systems in the HoloClean family).
package violations

import (
	"sort"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

// Violation is one cell that disagrees with the dominant RHS value of its
// determinant group.
type Violation struct {
	// FD is the violated dependency.
	FD core.FD
	// Row is the violating tuple index.
	Row int
	// Observed is the cell's current value ("" when missing).
	Observed string
	// Suggested is the majority value of the tuple's determinant group.
	Suggested string
	// Support is the fraction of the group agreeing with Suggested.
	Support float64
}

// group keys rows by their LHS value combination.
func groupKey(rel *dataset.Relation, lhs []int, row int) (string, bool) {
	key := make([]byte, 0, 16)
	for _, a := range lhs {
		code := rel.Columns[a].Code(row)
		if code == dataset.Missing {
			return "", false
		}
		key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24), '|')
	}
	return string(key), true
}

// Find locates all violations of the FD in the relation. Rows with missing
// LHS cells are skipped (they belong to no group); missing RHS cells in a
// group with a clear majority are reported as violations with an imputation
// suggestion.
func Find(rel *dataset.Relation, fd core.FD) []Violation {
	n := rel.NumRows()
	rhsCol := rel.Columns[fd.RHS]

	type groupStat struct {
		rows   []int
		counts map[int32]int
	}
	groups := map[string]*groupStat{}
	for i := 0; i < n; i++ {
		key, ok := groupKey(rel, fd.LHS, i)
		if !ok {
			continue
		}
		g := groups[key]
		if g == nil {
			g = &groupStat{counts: map[int32]int{}}
			groups[key] = g
		}
		g.rows = append(g.rows, i)
		if code := rhsCol.Code(i); code != dataset.Missing {
			g.counts[code]++
		}
	}

	var out []Violation
	for _, g := range groups {
		if len(g.rows) < 2 {
			continue
		}
		// Majority RHS value of the group.
		var majority int32 = dataset.Missing
		best, total := 0, 0
		for code, c := range g.counts {
			total += c
			if c > best || (c == best && (majority == dataset.Missing || code < majority)) {
				best, majority = c, code
			}
		}
		if majority == dataset.Missing || best == 0 {
			continue
		}
		support := float64(best) / float64(len(g.rows))
		suggested := rhsCol.DictValue(majority)
		for _, r := range g.rows {
			code := rhsCol.Code(r)
			if code == majority {
				continue
			}
			observed := ""
			if code != dataset.Missing {
				observed, _ = rhsCol.Value(r)
			}
			out = append(out, Violation{
				FD:        fd,
				Row:       r,
				Observed:  observed,
				Suggested: suggested,
				Support:   support,
			})
		}
		_ = total
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}

// FindAll locates violations of every FD, sorted by row.
func FindAll(rel *dataset.Relation, fds []core.FD) []Violation {
	var out []Violation
	for _, fd := range fds {
		out = append(out, Find(rel, fd)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].FD.RHS < out[j].FD.RHS
	})
	return out
}

// Repair applies every suggestion with support at least minSupport to a
// copy of the relation and returns it along with the number of repaired
// cells. Violations of several FDs on the same cell apply in FindAll order
// (last writer wins), which is deterministic.
func Repair(rel *dataset.Relation, vs []Violation, minSupport float64) (*dataset.Relation, int) {
	out := rel.Clone()
	repaired := 0
	for _, v := range vs {
		if v.Support < minSupport {
			continue
		}
		col := out.Columns[v.FD.RHS]
		col.SetCode(v.Row, col.CodeOf(v.Suggested))
		repaired++
	}
	return out, repaired
}

// ErrorRate returns the fraction of rows that violate at least one FD — a
// data-quality profile number for the relation.
func ErrorRate(rel *dataset.Relation, fds []core.FD) float64 {
	if rel.NumRows() == 0 {
		return 0
	}
	bad := map[int]bool{}
	for _, v := range FindAll(rel, fds) {
		bad[v.Row] = true
	}
	return float64(len(bad)) / float64(rel.NumRows())
}
