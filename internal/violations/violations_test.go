package violations

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func relFromRows(rows [][]string, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		r.AppendRow(row)
	}
	return r
}

func TestFindSimpleViolation(t *testing.T) {
	rel := relFromRows([][]string{
		{"60611", "chicago"},
		{"60611", "chicago"},
		{"60611", "cicago"}, // typo
		{"53703", "madison"},
		{"53703", "madison"},
	}, "zip", "city")
	fd := core.FD{LHS: []int{0}, RHS: 1}
	vs := Find(rel, fd)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	v := vs[0]
	if v.Row != 2 || v.Observed != "cicago" || v.Suggested != "chicago" {
		t.Errorf("violation = %+v", v)
	}
	if v.Support != 2.0/3 {
		t.Errorf("support = %v", v.Support)
	}
}

func TestFindImputesMissingRHS(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "x"},
		{"a", "x"},
		{"a", ""},
	}, "k", "v")
	vs := Find(rel, core.FD{LHS: []int{0}, RHS: 1})
	if len(vs) != 1 || vs[0].Observed != "" || vs[0].Suggested != "x" {
		t.Fatalf("missing-RHS violation = %v", vs)
	}
}

func TestFindSkipsMissingLHS(t *testing.T) {
	rel := relFromRows([][]string{
		{"", "x"},
		{"", "y"},
	}, "k", "v")
	if vs := Find(rel, core.FD{LHS: []int{0}, RHS: 1}); len(vs) != 0 {
		t.Errorf("missing-LHS rows grouped: %v", vs)
	}
}

func TestFindCompositeLHS(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "1", "p"},
		{"a", "1", "p"},
		{"a", "2", "q"},
		{"a", "1", "r"}, // violates {0,1} -> 2
	}, "x", "y", "z")
	vs := Find(rel, core.FD{LHS: []int{0, 1}, RHS: 2})
	if len(vs) != 1 || vs[0].Row != 3 {
		t.Fatalf("composite violations = %v", vs)
	}
}

func TestCleanDataHasNoViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rows [][]string
	for i := 0; i < 200; i++ {
		a := rng.Intn(10)
		rows = append(rows, []string{strconv.Itoa(a), strconv.Itoa(a % 5)})
	}
	rel := relFromRows(rows, "a", "b")
	if vs := Find(rel, core.FD{LHS: []int{0}, RHS: 1}); len(vs) != 0 {
		t.Errorf("clean FD reported violations: %v", vs)
	}
	if rate := ErrorRate(rel, []core.FD{{LHS: []int{0}, RHS: 1}}); rate != 0 {
		t.Errorf("error rate = %v", rate)
	}
}

func TestRepairFixesInjectedNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rows [][]string
	for i := 0; i < 500; i++ {
		a := rng.Intn(8)
		b := strconv.Itoa(a * 3)
		rows = append(rows, []string{strconv.Itoa(a), b})
	}
	rel := relFromRows(rows, "a", "b")
	// Corrupt 5% of b.
	noisy := rel.Clone()
	corrupted := 0
	for i := 0; i < noisy.NumRows(); i++ {
		if rng.Float64() < 0.05 {
			noisy.Columns[1].SetCode(i, noisy.Columns[1].CodeOf("junk"))
			corrupted++
		}
	}
	fd := core.FD{LHS: []int{0}, RHS: 1}
	vs := Find(noisy, fd)
	if len(vs) < corrupted {
		t.Fatalf("found %d violations, corrupted %d", len(vs), corrupted)
	}
	fixed, repaired := Repair(noisy, vs, 0.6)
	if repaired < corrupted {
		t.Errorf("repaired %d < corrupted %d", repaired, corrupted)
	}
	// After repair the FD must hold exactly again.
	if after := Find(fixed, fd); len(after) != 0 {
		t.Errorf("violations remain after repair: %v", after)
	}
	// The original noisy relation is untouched.
	if len(Find(noisy, fd)) == 0 {
		t.Error("Repair mutated its input")
	}
}

func TestRepairRespectsMinSupport(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "x"}, {"a", "y"}, // 50/50 split: support 0.5
	}, "k", "v")
	vs := Find(rel, core.FD{LHS: []int{0}, RHS: 1})
	_, repaired := Repair(rel, vs, 0.9)
	if repaired != 0 {
		t.Errorf("low-support repair applied: %d", repaired)
	}
}

func TestErrorRate(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "z"},
	}, "k", "v")
	rate := ErrorRate(rel, []core.FD{{LHS: []int{0}, RHS: 1}})
	if rate != 0.25 {
		t.Errorf("error rate = %v, want 0.25", rate)
	}
	if ErrorRate(dataset.New("t", "a"), nil) != 0 {
		t.Error("empty relation error rate should be 0")
	}
}

func TestFindAllSortsByRow(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "x", "1"},
		{"a", "y", "1"},
		{"a", "x", "2"},
	}, "k", "v", "w")
	fds := []core.FD{{LHS: []int{0}, RHS: 1}, {LHS: []int{0}, RHS: 2}}
	vs := FindAll(rel, fds)
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Row > vs[i].Row {
			t.Fatalf("violations unsorted: %v", vs)
		}
	}
}
