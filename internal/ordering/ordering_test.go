package ordering

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestAllMethodsProducePermutations(t *testing.T) {
	methods := append([]string{Reverse, Random}, Methods...)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, 0.3)
		for _, m := range methods {
			p, err := Order(m, g, seed)
			if err != nil || len(p) != n || !p.IsValid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOrderUnknownMethod(t *testing.T) {
	_, err := Order("bogus", NewGraph(3), 0)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	if !errors.Is(err, fdxerr.ErrBadInput) {
		t.Errorf("unknown method error %v does not match ErrBadInput", err)
	}
}

func TestNaturalAndReverse(t *testing.T) {
	g := NewGraph(4)
	p, _ := Order(Natural, g, 0)
	for i, v := range p {
		if v != i {
			t.Fatalf("natural perm = %v", p)
		}
	}
	r, _ := Order(Reverse, g, 0)
	for i, v := range r {
		if v != 3-i {
			t.Fatalf("reverse perm = %v", r)
		}
	}
}

func TestMinDegreeEliminatesLeavesFirst(t *testing.T) {
	// Star graph: center 0 with leaves 1..4. Min degree must order all
	// leaves before the center.
	g := NewGraph(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, i)
	}
	p, _ := Order(Heuristic, g, 0)
	// The first eliminations must be leaves; once only one leaf is left the
	// center's degree drops to 1, so the center lands in the last two slots.
	if p[0] == 0 || p[1] == 0 || p[2] == 0 {
		t.Errorf("center of star eliminated too early: %v", p)
	}
}

func TestMinDegreeReducesFillOnChain(t *testing.T) {
	// For a path graph the min-degree ordering produces no fill; natural
	// ordering also works here, so check fill directly via factorization
	// on an arrow matrix: arrowhead at position 0 is worst-case for the
	// natural order, and min degree should move it last.
	n := 6
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	p, _ := Order(Heuristic, g, 0)
	if p[n-1] != 0 && p[n-2] != 0 {
		t.Errorf("arrow hub should be among the last eliminations, got %v", p)
	}
}

func TestFromPrecision(t *testing.T) {
	theta := linalg.NewDenseData(3, 3, []float64{
		1, 0.5, 0,
		0.5, 1, 1e-9,
		0, 1e-9, 1,
	})
	g := FromPrecision(theta, 1e-6)
	if !g.adj[0][1] || g.adj[1][2] || g.adj[0][2] {
		t.Errorf("graph edges wrong: %v", g.adj)
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
}

func TestNestedDissectionCoversDisconnected(t *testing.T) {
	g := NewGraph(10) // fully disconnected
	for _, m := range []string{METIS, NESDIS} {
		p, err := Order(m, g, 0)
		if err != nil || !p.IsValid() {
			t.Errorf("%s on disconnected graph: %v %v", m, p, err)
		}
	}
}

func TestNestedDissectionGrid(t *testing.T) {
	// 4x4 grid graph.
	n := 16
	g := NewGraph(n)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := r*4 + c
			if c+1 < 4 {
				g.AddEdge(v, v+1)
			}
			if r+1 < 4 {
				g.AddEdge(v, v+4)
			}
		}
	}
	for _, m := range []string{METIS, NESDIS} {
		p, err := Order(m, g, 0)
		if err != nil || len(p) != n || !p.IsValid() {
			t.Fatalf("%s on grid invalid: %v %v", m, p, err)
		}
	}
}

func TestBFSLevels(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	lv := bfsLevels(g, 0)
	if lv[0] != 0 || lv[1] != 1 || lv[2] != 2 || lv[3] != -1 {
		t.Errorf("levels = %v", lv)
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := NewGraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	v := pseudoPeripheral(g)
	if v != 0 && v != 4 {
		t.Errorf("pseudo-peripheral of a path = %d, want an endpoint", v)
	}
}

func TestRandomOrderIsSeedDeterministic(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 12, 0.3)
	p1, _ := Order(Random, g, 99)
	p2, _ := Order(Random, g, 99)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("random ordering not deterministic for fixed seed")
		}
	}
}

func TestFillCounts(t *testing.T) {
	// Path graph a-b-c-d: natural order has zero fill; eliminating the two
	// middle nodes first creates fill.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if f := Fill(g, linalg.Permutation{0, 1, 2, 3}); f != 0 {
		t.Errorf("path natural fill = %d, want 0", f)
	}
	if f := Fill(g, linalg.Permutation{1, 2, 0, 3}); f == 0 {
		t.Error("middle-first elimination should create fill")
	}
	// Star graph: eliminating the hub first fills the leaf clique.
	star := NewGraph(5)
	for i := 1; i < 5; i++ {
		star.AddEdge(0, i)
	}
	if f := Fill(star, linalg.Permutation{0, 1, 2, 3, 4}); f != 6 {
		t.Errorf("star hub-first fill = %d, want C(4,2)=6", f)
	}
	if f := Fill(star, linalg.Permutation{1, 2, 3, 4, 0}); f != 0 {
		t.Errorf("star leaves-first fill = %d, want 0", f)
	}
}

func TestMinDegreeNeverWorseThanReverseOnStars(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 3+rng.Intn(15), 0.3)
		md, _ := Order(Heuristic, g, 0)
		nat, _ := Order(Natural, g, 0)
		if Fill(g, md) > Fill(g, nat)+2 {
			// Min degree is a heuristic; allow tiny slack but it should
			// essentially never lose badly to the natural order.
			t.Errorf("min degree fill %d vs natural %d", Fill(g, md), Fill(g, nat))
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(3, 1)
	g.AddEdge(3, 0)
	g.AddEdge(3, 2)
	nb := g.Neighbors(3)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] > nb[i] {
			t.Fatalf("neighbors unsorted: %v", nb)
		}
	}
	if g.N() != 4 {
		t.Error("N wrong")
	}
}
