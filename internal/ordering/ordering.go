// Package ordering provides the fill-reducing column orderings FDX applies
// before the UDUᵀ factorization of the estimated precision matrix
// (paper §5.6.2, Table 9). Orderings operate on the sparsity graph of Θ
// (nodes = attributes, edges = non-zero off-diagonal entries).
//
// The paper uses CHOLMOD's heuristics; here each is implemented from
// scratch: exact minimum degree ("heuristic", the paper's default), an
// approximate minimum degree variant ("amd"), a column-count flavored
// variant ("colamd"), and two nested-dissection variants standing in for
// METIS ("metis") and CHOLMOD's nesdis ("nesdis"). "natural", "reverse"
// and "random" complete the set.
package ordering

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
	"fdx/internal/obs"
)

// Method names accepted by ByName.
const (
	Natural   = "natural"
	Heuristic = "heuristic" // exact minimum degree (paper default)
	AMD       = "amd"
	COLAMD    = "colamd"
	METIS     = "metis"
	NESDIS    = "nesdis"
	Reverse   = "reverse"
	Random    = "random"
)

// Methods lists all ordering method names (the Table 9 sweep).
var Methods = []string{Heuristic, Natural, AMD, COLAMD, METIS, NESDIS}

// Graph is an undirected graph in adjacency-set form.
type Graph struct {
	n   int
	adj []map[int]bool
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// AddEdge inserts the undirected edge (a, b); self-loops are ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Edges returns the undirected edge count.
func (g *Graph) Edges() int {
	half := 0
	for _, nb := range g.adj {
		half += len(nb)
	}
	return half / 2
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of node v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// clone returns a deep copy of g.
func (g *Graph) clone() *Graph {
	c := NewGraph(g.n)
	for v, nb := range g.adj {
		for u := range nb {
			c.adj[v][u] = true
		}
	}
	return c
}

// FromPrecision builds the sparsity graph of a symmetric matrix: an edge
// for every off-diagonal entry with |θ_ij| > tol.
func FromPrecision(theta *linalg.Dense, tol float64) *Graph {
	n, _ := theta.Dims()
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(theta.At(i, j)) > tol {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Order computes the permutation for the named method. The seed is used
// only by "random". The returned permutation lists original indices in
// elimination order: perm[position] = original column. Unknown method names
// return an ErrBadInput-wrapped error; there is deliberately no panicking
// variant — an ordering typo must surface as a matchable error from
// Discover, not kill the process.
func Order(method string, g *Graph, seed int64) (linalg.Permutation, error) {
	return OrderObs(method, g, seed, obs.Hooks{})
}

// OrderObs is Order with telemetry: the computation runs inside an
// "ordering" stage span annotated with the method and graph size.
func OrderObs(method string, g *Graph, seed int64, h obs.Hooks) (linalg.Permutation, error) {
	sp := h.StartStage("ordering")
	defer sp.End()
	sp.Attr("method", method)
	sp.Attr("nodes", g.N())
	sp.Attr("edges", g.Edges())
	return order(method, g, seed)
}

// order dispatches to the method implementations.
func order(method string, g *Graph, seed int64) (linalg.Permutation, error) {
	switch method {
	case Natural:
		return linalg.IdentityPerm(g.n), nil
	case Reverse:
		p := make(linalg.Permutation, g.n)
		for i := range p {
			p[i] = g.n - 1 - i
		}
		return p, nil
	case Random:
		p := linalg.IdentityPerm(g.n)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(g.n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		return p, nil
	case Heuristic:
		return minDegree(g, exactDegree), nil
	case AMD:
		return minDegree(g, approximateDegree), nil
	case COLAMD:
		return minDegree(g, staticDegree), nil
	case METIS:
		return nestedDissection(g, true), nil
	case NESDIS:
		return nestedDissection(g, false), nil
	default:
		return nil, fmt.Errorf("ordering: unknown method %q: %w", method, fdxerr.ErrBadInput)
	}
}

// Fill returns the number of fill-in edges created when eliminating the
// graph's nodes in the given order: eliminating a node connects all its
// not-yet-eliminated neighbors into a clique, and every edge added that
// way is fill. Fill is what the fill-reducing orderings minimize — for the
// UDUᵀ factorization, fill edges are structurally non-zero entries of U
// that a better order would have kept zero.
func Fill(g0 *Graph, perm linalg.Permutation) int {
	g := g0.clone()
	fill := 0
	for _, v := range perm {
		nbs := g.Neighbors(v)
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				if !g.adj[nbs[i]][nbs[j]] {
					fill++
					g.AddEdge(nbs[i], nbs[j])
				}
			}
		}
		for _, u := range nbs {
			delete(g.adj[u], v)
		}
		g.adj[v] = map[int]bool{}
	}
	return fill
}

// degreeFn scores a candidate node in the current elimination graph; lower
// is eliminated earlier.
type degreeFn func(g *Graph, original *Graph, v int) int

// exactDegree is the true degree in the elimination graph.
func exactDegree(g *Graph, _ *Graph, v int) int { return len(g.adj[v]) }

// approximateDegree upper-bounds the post-elimination degree by the sum of
// neighbor degrees (Amestoy-style bound, without quotient-graph bookkeeping).
func approximateDegree(g *Graph, _ *Graph, v int) int {
	d := 0
	for u := range g.adj[v] {
		d += len(g.adj[u])
	}
	return d
}

// staticDegree ignores fill and uses the original column counts (a
// colamd-flavored heuristic: cheap, column-driven).
func staticDegree(_ *Graph, original *Graph, v int) int { return len(original.adj[v]) }

// minDegree runs the elimination-graph minimum degree algorithm with the
// supplied scoring function. Ties break on the lower original index, making
// the ordering deterministic.
func minDegree(g0 *Graph, score degreeFn) linalg.Permutation {
	g := g0.clone()
	n := g.n
	eliminated := make([]bool, n)
	perm := make(linalg.Permutation, 0, n)
	for len(perm) < n {
		best, bestScore := -1, math.MaxInt
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			s := score(g, g0, v)
			if s < bestScore {
				best, bestScore = v, s
			}
		}
		// Eliminate: connect neighbors into a clique, then remove the node.
		nbs := g.Neighbors(best)
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				g.AddEdge(nbs[i], nbs[j])
			}
		}
		for _, u := range nbs {
			delete(g.adj[u], best)
		}
		g.adj[best] = map[int]bool{}
		eliminated[best] = true
		perm = append(perm, best)
	}
	return perm
}

// nestedDissection recursively splits the graph with a BFS level-set
// separator; parts are ordered first, the separator last (so separator
// columns are eliminated late, confining fill). When refine is true a
// greedy boundary-shrinking pass imitates METIS-style refinement.
func nestedDissection(g *Graph, refine bool) linalg.Permutation {
	nodes := make([]int, g.n)
	for i := range nodes {
		nodes[i] = i
	}
	var out linalg.Permutation
	var recurse func(sub []int)
	recurse = func(sub []int) {
		if len(sub) <= 3 {
			// Base case: order the fragment by minimum degree.
			sg, back := inducedSubgraph(g, sub)
			p := minDegree(sg, exactDegree)
			for _, v := range p {
				out = append(out, back[v])
			}
			return
		}
		sg, back := inducedSubgraph(g, sub)
		left, right, sep := bisect(sg, refine)
		// Guard against non-progressing splits (one side swallowing the
		// whole fragment): fall back to minimum degree for the fragment.
		if len(left) == len(sub) || len(right) == len(sub) {
			p := minDegree(sg, exactDegree)
			for _, v := range p {
				out = append(out, back[v])
			}
			return
		}
		mapBack := func(vs []int) []int {
			o := make([]int, len(vs))
			for i, v := range vs {
				o[i] = back[v]
			}
			return o
		}
		recurse(mapBack(left))
		recurse(mapBack(right))
		for _, v := range mapBack(sep) {
			out = append(out, v)
		}
	}
	recurse(nodes)
	return out
}

// inducedSubgraph returns the subgraph on the given original nodes plus the
// local→original index map.
func inducedSubgraph(g *Graph, nodes []int) (*Graph, []int) {
	local := make(map[int]int, len(nodes))
	for i, v := range nodes {
		local[v] = i
	}
	sg := NewGraph(len(nodes))
	for i, v := range nodes {
		for u := range g.adj[v] {
			if j, ok := local[u]; ok {
				sg.AddEdge(i, j)
			}
		}
	}
	back := append([]int(nil), nodes...)
	return sg, back
}

// bisect splits g into (left, right, separator) via a BFS level structure
// from a pseudo-peripheral vertex. Disconnected remainders go to the
// smaller side. With refine, separator nodes that touch only one side are
// greedily pushed into that side.
func bisect(g *Graph, refine bool) (left, right, sep []int) {
	n := g.n
	start := pseudoPeripheral(g)
	level := bfsLevels(g, start)
	// Unreached nodes (other components) get the max level + 1.
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	for v := range level {
		if level[v] < 0 {
			level[v] = maxLevel + 1
		}
	}
	// Pick the cut level so roughly half the nodes fall below it.
	counts := make([]int, maxLevel+2)
	for _, l := range level {
		counts[l]++
	}
	cut, acc := 0, 0
	for l, c := range counts {
		acc += c
		cut = l
		if acc >= n/2 {
			break
		}
	}
	for v := 0; v < n; v++ {
		switch {
		case level[v] < cut:
			left = append(left, v)
		case level[v] == cut:
			sep = append(sep, v)
		default:
			right = append(right, v)
		}
	}
	// Degenerate splits: fall back to an even index split.
	if len(left) == 0 && len(right) == 0 {
		mid := n / 2
		for v := 0; v < n; v++ {
			if v < mid {
				left = append(left, v)
			} else {
				right = append(right, v)
			}
		}
		return left, right, nil
	}
	if refine {
		left, right, sep = shrinkSeparator(g, left, right, sep)
	}
	return left, right, sep
}

// shrinkSeparator moves separator nodes adjacent to only one side into that
// side, shrinking the separator (a light imitation of KL/FM refinement).
func shrinkSeparator(g *Graph, left, right, sep []int) (l, r, s []int) {
	side := make(map[int]int) // 0 left, 1 right, 2 sep
	for _, v := range left {
		side[v] = 0
	}
	for _, v := range right {
		side[v] = 1
	}
	for _, v := range sep {
		side[v] = 2
	}
	for _, v := range sep {
		touchLeft, touchRight := false, false
		for u := range g.adj[v] {
			switch side[u] {
			case 0:
				touchLeft = true
			case 1:
				touchRight = true
			}
		}
		switch {
		case touchLeft && !touchRight:
			side[v] = 0
		case touchRight && !touchLeft:
			side[v] = 1
		}
	}
	for v, sd := range side {
		switch sd {
		case 0:
			l = append(l, v)
		case 1:
			r = append(r, v)
		default:
			s = append(s, v)
		}
	}
	sort.Ints(l)
	sort.Ints(r)
	sort.Ints(s)
	return l, r, s
}

// pseudoPeripheral finds an approximate graph-diameter endpoint by repeated
// BFS (the standard Gibbs-Poole-Stockmeyer style sweep).
func pseudoPeripheral(g *Graph) int {
	if g.n == 0 {
		return 0
	}
	v := 0
	for iter := 0; iter < 4; iter++ {
		level := bfsLevels(g, v)
		far, farLevel := v, -1
		for u, l := range level {
			if l > farLevel {
				far, farLevel = u, l
			}
		}
		if far == v {
			break
		}
		v = far
	}
	return v
}

// bfsLevels returns per-node BFS depth from start (−1 for unreachable).
func bfsLevels(g *Graph, start int) []int {
	level := make([]int, g.n)
	for i := range level {
		level[i] = -1
	}
	if g.n == 0 {
		return level
	}
	level[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}
