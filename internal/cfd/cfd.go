// Package cfd refines approximate FDs into conditional functional
// dependencies: an FD X→Y that only holds approximately over the whole
// relation often holds exactly on subdomains of X. The tableau lists, per
// X-pattern, the dominant Y value, its support and confidence — the
// pattern-tableau form of Bohannon et al.'s CFDs that the FDX paper's
// related work surveys ([4], [13]).
package cfd

import (
	"fmt"
	"sort"
	"strings"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

// Pattern is one tableau row: a constant LHS assignment with its dominant
// RHS value.
type Pattern struct {
	// LHSValues holds the constant values of the FD's determinant
	// attributes, in the FD's LHS order.
	LHSValues []string
	// RHSValue is the dominant determined value under this pattern.
	RHSValue string
	// Support is the number of tuples matching the LHS pattern.
	Support int
	// Confidence is the fraction of matching tuples agreeing with
	// RHSValue.
	Confidence float64
}

// Tableau is the conditional refinement of one FD.
type Tableau struct {
	FD       core.FD
	Patterns []Pattern
	// GlobalConfidence is the support-weighted mean pattern confidence —
	// 1 iff the FD holds exactly wherever its LHS is fully present.
	GlobalConfidence float64
}

// Options configures tableau construction.
type Options struct {
	// MinSupport drops patterns with fewer matching tuples (default 2).
	MinSupport int
	// MinConfidence drops patterns below this confidence (default 0:
	// keep all, letting the caller split clean from dirty subdomains).
	MinConfidence float64
	// MaxPatterns caps the tableau size, keeping the highest-support
	// patterns (default 64).
	MaxPatterns int
}

func (o *Options) defaults() {
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
	if o.MaxPatterns == 0 {
		o.MaxPatterns = 64
	}
}

// Build constructs the tableau of the FD over the relation. Tuples with
// missing LHS cells match no pattern; missing RHS cells count against
// confidence only when a dominant value exists.
func Build(rel *dataset.Relation, fd core.FD, opts Options) *Tableau {
	opts.defaults()
	n := rel.NumRows()
	type group struct {
		values []string
		counts map[string]int
		total  int
	}
	groups := map[string]*group{}
	for i := 0; i < n; i++ {
		vals := make([]string, len(fd.LHS))
		ok := true
		for gi, a := range fd.LHS {
			v, present := rel.Columns[a].Value(i)
			if !present {
				ok = false
				break
			}
			vals[gi] = v
		}
		if !ok {
			continue
		}
		key := strings.Join(vals, "\x00")
		g := groups[key]
		if g == nil {
			g = &group{values: vals, counts: map[string]int{}}
			groups[key] = g
		}
		g.total++
		if y, present := rel.Columns[fd.RHS].Value(i); present {
			g.counts[y]++
		}
	}

	t := &Tableau{FD: fd}
	weighted := 0.0
	totalSupport := 0
	// Visit groups in sorted key order: the tableau's pattern order (and
	// the float accumulation below) must not depend on map iteration.
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		g := groups[key]
		if g.total < opts.MinSupport {
			continue
		}
		best, bestCount := "", -1
		for v, c := range g.counts {
			if c > bestCount || (c == bestCount && v < best) {
				best, bestCount = v, c
			}
		}
		if bestCount <= 0 {
			continue
		}
		conf := float64(bestCount) / float64(g.total)
		if conf < opts.MinConfidence {
			continue
		}
		t.Patterns = append(t.Patterns, Pattern{
			LHSValues:  g.values,
			RHSValue:   best,
			Support:    g.total,
			Confidence: conf,
		})
		weighted += conf * float64(g.total)
		totalSupport += g.total
	}
	sort.Slice(t.Patterns, func(i, j int) bool {
		if t.Patterns[i].Support != t.Patterns[j].Support {
			return t.Patterns[i].Support > t.Patterns[j].Support
		}
		return strings.Join(t.Patterns[i].LHSValues, "\x00") < strings.Join(t.Patterns[j].LHSValues, "\x00")
	})
	if len(t.Patterns) > opts.MaxPatterns {
		t.Patterns = t.Patterns[:opts.MaxPatterns]
	}
	if totalSupport > 0 {
		t.GlobalConfidence = weighted / float64(totalSupport)
	}
	return t
}

// CleanPatterns returns the patterns holding exactly (confidence 1).
func (t *Tableau) CleanPatterns() []Pattern {
	var out []Pattern
	for _, p := range t.Patterns {
		//fdx:lint-ignore floatcmp confidence is a count ratio; it is exactly 1 iff the pattern holds on every supporting tuple
		if p.Confidence == 1 {
			out = append(out, p)
		}
	}
	return out
}

// DirtyPatterns returns the patterns with violations, most-violated first.
func (t *Tableau) DirtyPatterns() []Pattern {
	var out []Pattern
	for _, p := range t.Patterns {
		if p.Confidence < 1 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Confidence < out[j].Confidence })
	return out
}

// Format renders the tableau with attribute names.
func (t *Tableau) Format(names []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (global confidence %.3f)\n", t.FD.Format(names), t.GlobalConfidence)
	for _, p := range t.Patterns {
		lhs := make([]string, len(t.FD.LHS))
		for i, a := range t.FD.LHS {
			lhs[i] = fmt.Sprintf("%s=%s", names[a], p.LHSValues[i])
		}
		fmt.Fprintf(&sb, "  [%s] -> %s=%s  (support %d, confidence %.3f)\n",
			strings.Join(lhs, ", "), names[t.FD.RHS], p.RHSValue, p.Support, p.Confidence)
	}
	return sb.String()
}
