package cfd

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func relFromRows(rows [][]string, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		r.AppendRow(row)
	}
	return r
}

func TestBuildCleanFD(t *testing.T) {
	rel := relFromRows([][]string{
		{"60611", "chicago"}, {"60611", "chicago"},
		{"53703", "madison"}, {"53703", "madison"},
	}, "zip", "city")
	tab := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{})
	if tab.GlobalConfidence != 1 {
		t.Errorf("clean FD global confidence = %v", tab.GlobalConfidence)
	}
	if len(tab.Patterns) != 2 || len(tab.CleanPatterns()) != 2 || len(tab.DirtyPatterns()) != 0 {
		t.Errorf("patterns = %v", tab.Patterns)
	}
	if tab.Patterns[0].Support != 2 || tab.Patterns[0].Confidence != 1 {
		t.Errorf("pattern = %+v", tab.Patterns[0])
	}
}

func TestBuildSplitsCleanAndDirty(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "x"}, {"a", "x"}, {"a", "x"},
		{"b", "y"}, {"b", "z"}, {"b", "y"}, // dirty subdomain
	}, "k", "v")
	tab := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{})
	clean, dirty := tab.CleanPatterns(), tab.DirtyPatterns()
	if len(clean) != 1 || clean[0].LHSValues[0] != "a" {
		t.Errorf("clean = %v", clean)
	}
	if len(dirty) != 1 || dirty[0].LHSValues[0] != "b" {
		t.Errorf("dirty = %v", dirty)
	}
	if dirty[0].Confidence != 2.0/3 || dirty[0].RHSValue != "y" {
		t.Errorf("dirty pattern = %+v", dirty[0])
	}
	want := (3.0*1 + 3.0*(2.0/3)) / 6.0
	if diff := tab.GlobalConfidence - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("global confidence = %v, want %v", tab.GlobalConfidence, want)
	}
}

func TestBuildCompositeLHSAndMissing(t *testing.T) {
	rel := relFromRows([][]string{
		{"a", "1", "p"}, {"a", "1", "p"},
		{"a", "", "q"}, // missing LHS cell: excluded
		{"b", "2", ""}, {"b", "2", "r"},
	}, "x", "y", "z")
	tab := Build(rel, core.FD{LHS: []int{0, 1}, RHS: 2}, Options{})
	if len(tab.Patterns) != 2 {
		t.Fatalf("patterns = %v", tab.Patterns)
	}
	// (b,2): 2 tuples, one missing RHS → dominant r with confidence 1/2.
	for _, p := range tab.Patterns {
		if p.LHSValues[0] == "b" && (p.RHSValue != "r" || p.Confidence != 0.5) {
			t.Errorf("pattern with missing RHS = %+v", p)
		}
	}
}

func TestBuildSupportAndConfidenceFilters(t *testing.T) {
	rel := relFromRows([][]string{
		{"solo", "x"},
		{"a", "x"}, {"a", "y"},
	}, "k", "v")
	tab := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{MinSupport: 2})
	if len(tab.Patterns) != 1 || tab.Patterns[0].LHSValues[0] != "a" {
		t.Errorf("singleton pattern kept: %v", tab.Patterns)
	}
	strict := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{MinSupport: 2, MinConfidence: 0.9})
	if len(strict.Patterns) != 0 {
		t.Errorf("low-confidence pattern kept: %v", strict.Patterns)
	}
}

func TestBuildMaxPatterns(t *testing.T) {
	var rows [][]string
	for i := 0; i < 100; i++ {
		k := strconv.Itoa(i)
		rows = append(rows, []string{k, "v"}, []string{k, "v"})
	}
	rel := relFromRows(rows, "k", "v")
	tab := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{MaxPatterns: 10})
	if len(tab.Patterns) != 10 {
		t.Errorf("MaxPatterns ignored: %d", len(tab.Patterns))
	}
}

func TestFormatRendering(t *testing.T) {
	rel := relFromRows([][]string{{"a", "x"}, {"a", "x"}}, "k", "v")
	tab := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{})
	out := tab.Format([]string{"k", "v"})
	if !strings.Contains(out, "k=a") || !strings.Contains(out, "v=x") {
		t.Errorf("Format = %q", out)
	}
}

func TestBuildNoisyRandomProperty(t *testing.T) {
	// Global confidence must equal 1 − (fraction of violating tuples).
	rng := rand.New(rand.NewSource(1))
	var rows [][]string
	for i := 0; i < 500; i++ {
		k := strconv.Itoa(rng.Intn(10))
		v := "v" + k
		if rng.Float64() < 0.1 {
			v = "junk"
		}
		rows = append(rows, []string{k, v})
	}
	rel := relFromRows(rows, "k", "v")
	tab := Build(rel, core.FD{LHS: []int{0}, RHS: 1}, Options{})
	if tab.GlobalConfidence < 0.8 || tab.GlobalConfidence > 0.99 {
		t.Errorf("global confidence = %v, want ≈0.9", tab.GlobalConfidence)
	}
}
