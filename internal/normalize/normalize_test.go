package normalize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdx/internal/attrset"
	"fdx/internal/core"
)

// Schema: 0=zip, 1=city, 2=state, 3=street, 4=name.
// FDs: zip→city, zip→state, city→state.
func addressFDs() []core.FD {
	return []core.FD{
		{LHS: []int{0}, RHS: 1},
		{LHS: []int{0}, RHS: 2},
		{LHS: []int{1}, RHS: 2},
	}
}

func TestClosure(t *testing.T) {
	fds := addressFDs()
	c := Closure(attrset.New(0), fds)
	if !c.Equal(attrset.New(0, 1, 2)) {
		t.Errorf("zip closure = %v", c)
	}
	c = Closure(attrset.New(1), fds)
	if !c.Equal(attrset.New(1, 2)) {
		t.Errorf("city closure = %v", c)
	}
	if !Closure(attrset.New(3), fds).Equal(attrset.New(3)) {
		t.Error("street closure should be itself")
	}
}

func TestImplies(t *testing.T) {
	fds := addressFDs()
	if !Implies(fds, []int{0}, 2) {
		t.Error("zip→state should be implied (transitivity)")
	}
	if Implies(fds, []int{1}, 0) {
		t.Error("city→zip should not be implied")
	}
}

func TestMinimalCoverRemovesTransitiveRedundancy(t *testing.T) {
	// zip→state is implied by zip→city, city→state.
	cover := MinimalCover(addressFDs())
	for _, fd := range cover {
		if len(fd.LHS) == 1 && fd.LHS[0] == 0 && fd.RHS == 2 {
			t.Errorf("redundant zip→state kept: %v", cover)
		}
	}
	if len(cover) != 2 {
		t.Errorf("cover = %v, want 2 FDs", cover)
	}
}

func TestMinimalCoverLeftReduction(t *testing.T) {
	// {zip, name}→city has a redundant determinant (name).
	fds := []core.FD{
		{LHS: []int{0, 4}, RHS: 1},
		{LHS: []int{0}, RHS: 1},
	}
	cover := MinimalCover(fds)
	if len(cover) != 1 || len(cover[0].LHS) != 1 || cover[0].LHS[0] != 0 {
		t.Errorf("cover = %v", cover)
	}
}

func TestMinimalCoverEquivalence(t *testing.T) {
	// The cover must imply every original FD and vice versa (random FDs).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(4)
		var fds []core.FD
		for i := 0; i < 1+rng.Intn(6); i++ {
			fd := core.FD{RHS: rng.Intn(k)}
			for j := 0; j < 1+rng.Intn(2); j++ {
				fd.LHS = append(fd.LHS, rng.Intn(k))
			}
			fd.Normalize()
			if len(fd.LHS) > 0 {
				fds = append(fds, fd)
			}
		}
		cover := MinimalCover(fds)
		for _, fd := range fds {
			if !Implies(cover, fd.LHS, fd.RHS) {
				return false
			}
		}
		for _, fd := range cover {
			if !Implies(fds, fd.LHS, fd.RHS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCandidateKeys(t *testing.T) {
	// With FDs zip→city→state, keys must include {zip, street, name}.
	keys := CandidateKeys(5, addressFDs(), 0)
	if len(keys) != 1 {
		t.Fatalf("keys = %v", keys)
	}
	if !keys[0].Equal(attrset.New(0, 3, 4)) {
		t.Errorf("key = %v, want {0,3,4}", keys[0])
	}
}

func TestCandidateKeysMultiple(t *testing.T) {
	// a→b and b→a: both {a,c} and {b,c} are keys of {a,b,c}.
	fds := []core.FD{
		{LHS: []int{0}, RHS: 1},
		{LHS: []int{1}, RHS: 0},
	}
	keys := CandidateKeys(3, fds, 0)
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want 2", keys)
	}
}

func TestCandidateKeysAreMinimalAndValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(4)
		var fds []core.FD
		for i := 0; i < rng.Intn(6); i++ {
			fd := core.FD{RHS: rng.Intn(k), LHS: []int{rng.Intn(k)}}
			fd.Normalize()
			if len(fd.LHS) > 0 {
				fds = append(fds, fd)
			}
		}
		full := attrset.Full(k)
		for _, key := range CandidateKeys(k, fds, 0) {
			if !Closure(key, fds).Equal(full) {
				return false // not a key
			}
			for _, a := range key.Members() {
				if Closure(key.Without(a), fds).Equal(full) {
					return false // not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIsBCNF(t *testing.T) {
	// zip→city with schema {zip, city, street}: zip is not a superkey.
	fds := []core.FD{{LHS: []int{0}, RHS: 1}}
	ok, viol := IsBCNF(3, fds)
	if ok || viol == nil {
		t.Fatal("BCNF violation missed")
	}
	// Schema {zip, city}: zip IS a key → BCNF.
	if ok, _ := IsBCNF(2, fds); !ok {
		t.Error("2-attribute schema should be BCNF")
	}
}

func TestSynthesize3NFAddress(t *testing.T) {
	// Expect: (zip, city), (city, state), (zip, street, name).
	decomp := Synthesize3NF(5, addressFDs())
	if len(decomp) != 3 {
		t.Fatalf("decomposition = %v", decomp)
	}
	union := attrset.Set{}
	for _, d := range decomp {
		union = union.Union(attrset.FromSlice(d.Attrs))
	}
	if !union.Equal(attrset.Full(5)) {
		t.Errorf("decomposition loses attributes: %v", decomp)
	}
}

func TestSynthesize3NFPreservesDependencies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(4)
		var fds []core.FD
		for i := 0; i < rng.Intn(5); i++ {
			fd := core.FD{RHS: rng.Intn(k), LHS: []int{rng.Intn(k)}}
			fd.Normalize()
			if len(fd.LHS) > 0 {
				fds = append(fds, fd)
			}
		}
		decomp := Synthesize3NF(k, fds)
		// Attributes preserved.
		union := attrset.Set{}
		var localFDs []core.FD
		for _, d := range decomp {
			union = union.Union(attrset.FromSlice(d.Attrs))
			localFDs = append(localFDs, d.FDs...)
		}
		if !union.Equal(attrset.Full(k)) {
			return false
		}
		// Dependency preservation: local FDs imply every original FD.
		for _, fd := range fds {
			if !Implies(localFDs, fd.LHS, fd.RHS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSynthesize3NFNoFDs(t *testing.T) {
	decomp := Synthesize3NF(3, nil)
	if len(decomp) != 1 || len(decomp[0].Attrs) != 3 {
		t.Errorf("no-FD decomposition = %v", decomp)
	}
}
