// Package normalize implements the classical dependency-theory algorithms
// that make discovered FDs actionable for schema design — the first
// application the FDX paper's introduction motivates ("FDs are used in
// database normalization to reduce data redundancy and improve data
// integrity"): attribute-set closure, implication testing, minimal covers,
// candidate-key enumeration, BCNF checking, and 3NF synthesis.
package normalize

import (
	"sort"

	"fdx/internal/attrset"
	"fdx/internal/core"
)

// Closure returns the closure of the attribute set under the FDs: the set
// of attributes functionally determined by attrs.
func Closure(attrs attrset.Set, fds []core.FD) attrset.Set {
	out := attrs
	changed := true
	for changed {
		changed = false
		for _, fd := range fds {
			if out.Has(fd.RHS) {
				continue
			}
			if attrset.FromSlice(fd.LHS).SubsetOf(out) {
				out = out.With(fd.RHS)
				changed = true
			}
		}
	}
	return out
}

// Implies reports whether the FD set logically implies X→Y, via the
// closure test Y ∈ X⁺.
func Implies(fds []core.FD, lhs []int, rhs int) bool {
	return Closure(attrset.FromSlice(lhs), fds).Has(rhs)
}

// MinimalCover returns a canonical cover of the FDs: every FD has a
// minimal LHS (no redundant determinant attributes) and no FD is implied
// by the others. The result is deterministic for a given input order.
func MinimalCover(fds []core.FD) []core.FD {
	// Step 1: left-reduce each FD.
	work := make([]core.FD, 0, len(fds))
	for _, fd := range fds {
		cf := core.FD{LHS: append([]int(nil), fd.LHS...), RHS: fd.RHS, Score: fd.Score}
		cf.Normalize()
		if len(cf.LHS) == 0 {
			continue
		}
		reduced := true
		for reduced {
			reduced = false
			for _, a := range cf.LHS {
				smaller := attrset.FromSlice(cf.LHS).Without(a)
				if smaller.IsEmpty() {
					continue
				}
				if Closure(smaller, fds).Has(cf.RHS) {
					cf.LHS = smaller.Members()
					reduced = true
					break
				}
			}
		}
		work = append(work, cf)
	}
	// Step 2: drop FDs implied by the rest.
	var out []core.FD
	for i := range work {
		rest := make([]core.FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i].LHS, work[i].RHS) {
			out = append(out, work[i])
		}
	}
	// Dedup identical FDs.
	seen := map[string]bool{}
	dedup := out[:0]
	for _, fd := range out {
		key := attrset.FromSlice(fd.LHS).Key() + "->" + attrset.New(fd.RHS).Key()
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, fd)
		}
	}
	core.SortFDs(dedup)
	return dedup
}

// CandidateKeys enumerates the minimal keys of a relation with k
// attributes under the FDs, up to maxKeys results (0 = 32). The search
// starts from the full attribute set minus attributes that appear only on
// right-hand sides, then minimizes and branches (Lucchesi-Osborn style).
func CandidateKeys(k int, fds []core.FD, maxKeys int) []attrset.Set {
	if maxKeys == 0 {
		maxKeys = 32
	}
	full := attrset.Full(k)
	isKey := func(s attrset.Set) bool { return Closure(s, fds).Equal(full) }
	if k == 0 {
		return nil
	}

	// minimize shrinks a key to a minimal one (deterministically).
	minimize := func(s attrset.Set) attrset.Set {
		for {
			shrunk := false
			for _, a := range s.Members() {
				cand := s.Without(a)
				if isKey(cand) {
					s = cand
					shrunk = true
					break
				}
			}
			if !shrunk {
				return s
			}
		}
	}

	var keys []attrset.Set
	seen := map[string]bool{}
	queue := []attrset.Set{minimize(full)}
	seen[queue[0].Key()] = true
	for len(queue) > 0 && len(keys) < maxKeys {
		key := queue[0]
		queue = queue[1:]
		keys = append(keys, key)
		// Branch: for each FD X→A with A ∈ key, (key \ A) ∪ X is a
		// superkey that may minimize to a new candidate key.
		for _, fd := range fds {
			if !key.Has(fd.RHS) {
				continue
			}
			cand := key.Without(fd.RHS).Union(attrset.FromSlice(fd.LHS))
			if !isKey(cand) {
				continue
			}
			m := minimize(cand)
			if !seen[m.Key()] {
				seen[m.Key()] = true
				queue = append(queue, m)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i].Members(), keys[j].Members()
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return keys
}

// IsBCNF reports whether the relation (attribute count k) is in
// Boyce-Codd normal form under the FDs: every non-trivial FD's LHS is a
// superkey. It returns the first violating FD otherwise.
func IsBCNF(k int, fds []core.FD) (bool, *core.FD) {
	full := attrset.Full(k)
	for i, fd := range fds {
		lhs := attrset.FromSlice(fd.LHS)
		if lhs.Has(fd.RHS) {
			continue // trivial
		}
		if !Closure(lhs, fds).Equal(full) {
			return false, &fds[i]
		}
	}
	return true, nil
}

// Decomposition is one table of a synthesized schema.
type Decomposition struct {
	// Attrs lists the attribute indices of the table.
	Attrs []int
	// Key is a key of the table within itself.
	Key []int
	// FDs are the dependencies local to the table.
	FDs []core.FD
}

// Synthesize3NF produces a lossless, dependency-preserving third-normal-
// form decomposition of a k-attribute relation via the classical synthesis
// algorithm: one table per minimal-cover FD group (grouped by LHS), plus a
// table holding a candidate key if no table contains one, plus standalone
// attributes not mentioned by any FD.
func Synthesize3NF(k int, fds []core.FD) []Decomposition {
	cover := MinimalCover(fds)

	// Group cover FDs by LHS.
	groups := map[string]*Decomposition{}
	var order []string
	for _, fd := range cover {
		lhs := attrset.FromSlice(fd.LHS)
		key := lhs.Key()
		g, ok := groups[key]
		if !ok {
			g = &Decomposition{Key: lhs.Members()}
			groups[key] = g
			order = append(order, key)
		}
		g.FDs = append(g.FDs, fd)
	}
	var out []Decomposition
	covered := attrset.Set{}
	for _, key := range order {
		g := groups[key]
		attrs := attrset.FromSlice(g.Key)
		for _, fd := range g.FDs {
			attrs = attrs.With(fd.RHS)
		}
		g.Attrs = attrs.Members()
		covered = covered.Union(attrs)
		out = append(out, *g)
	}

	// Ensure some table contains a candidate key of the whole schema.
	keys := CandidateKeys(k, cover, 8)
	if len(keys) > 0 {
		hasKey := false
		for _, d := range out {
			da := attrset.FromSlice(d.Attrs)
			for _, ck := range keys {
				if ck.SubsetOf(da) {
					hasKey = true
					break
				}
			}
			if hasKey {
				break
			}
		}
		if !hasKey {
			ck := keys[0]
			out = append(out, Decomposition{Attrs: ck.Members(), Key: ck.Members()})
			covered = covered.Union(ck)
		}
	}

	// Standalone attributes not touched by any FD go into the key table
	// (they are part of every key).
	missing := attrset.Full(k).Minus(covered)
	if !missing.IsEmpty() {
		out = append(out, Decomposition{Attrs: missing.Members(), Key: missing.Members()})
	}

	// Merge tables subsumed by others, moving their FDs into the subsuming
	// table (classical synthesis folds R_i ⊆ R_j into R_j).
	var final []Decomposition
	dropped := make([]bool, len(out))
	for i := range out {
		if dropped[i] {
			continue
		}
		di := attrset.FromSlice(out[i].Attrs)
		for j := range out {
			if i == j || dropped[j] {
				continue
			}
			oj := attrset.FromSlice(out[j].Attrs)
			if oj.SubsetOf(di) {
				// Fold j into i; identical sets fold the later into the
				// earlier.
				if !di.SubsetOf(oj) || i < j {
					out[i].FDs = append(out[i].FDs, out[j].FDs...)
					dropped[j] = true
				}
			}
		}
	}
	for i := range out {
		if !dropped[i] {
			final = append(final, out[i])
		}
	}
	return final
}
