// Package par provides the deterministic fan-out primitive shared by the
// numeric kernels: a fixed worker pool that processes index ranges in
// chunks whose boundaries depend only on the problem size, never on the
// worker count or the scheduler.
//
// That chunking rule is the package's whole point. Floating-point
// reductions are not associative, so a parallel kernel stays bit-for-bit
// identical to its serial run only if every output element (or partial
// sum) is produced by exactly one chunk, the work inside a chunk runs in
// serial order, and any cross-chunk merge happens in fixed chunk order on
// the caller's goroutine. Pool.For guarantees the first two properties;
// callers that reduce across chunks index their partials by chunk number
// and fold them in ascending order (see glasso's sweep delta).
package par

import (
	"sync"
	"sync/atomic"
)

// task is one chunk handed to a pool worker.
type task struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

// Pool is a fixed set of worker goroutines fed chunked index ranges. The
// zero of the type is not useful; create one with New. A nil *Pool is
// valid everywhere and runs every For serially on the caller's goroutine,
// so kernels hold one optional pool pointer and need no branching at the
// call sites.
type Pool struct {
	workers int
	tasks   chan task
	closed  atomic.Bool
}

// New starts a pool of the given number of worker goroutines and returns
// it. Sizes below 2 need no pool at all: New returns nil, which the Pool
// methods treat as "run serially". Call Close when done with the pool or
// its goroutines leak.
func New(workers int) *Pool {
	if workers < 2 {
		return nil
	}
	p := &Pool{workers: workers, tasks: make(chan task)}
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

// work drains the task channel until Close.
func (p *Pool) work() {
	for t := range p.tasks {
		t.fn(t.lo, t.hi)
		t.wg.Done()
	}
}

// Workers reports the pool's goroutine count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts the pool's workers down. Safe on nil and idempotent; For
// must not be called after Close.
func (p *Pool) Close() {
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.tasks)
}

// Reduce folds n items down to item 0 through a fixed binary tree: at
// stride s = 1, 2, 4, ... it calls merge(i, i+s) for every i divisible by
// 2s with i+s < n, then doubles the stride. The pair set is a function of
// n alone — never of the worker count or the scheduler — so a reduction
// whose merge operation is order-sensitive still produces one fixed,
// reproducible association; pairs within a level touch disjoint items and
// run concurrently across the pool, with a barrier between levels.
//
// merge(dst, src) must fold item src into item dst and leave src
// untouched for the caller. The first error (lowest dst of the earliest
// failing level — deterministic) aborts the remaining levels and is
// returned; merges of the failing level may still have run.
func (p *Pool) Reduce(n int, merge func(dst, src int) error) error {
	for stride := 1; stride < n; stride *= 2 {
		pairs := make([]int, 0, (n+2*stride-1)/(2*stride))
		for i := 0; i+stride < n; i += 2 * stride {
			pairs = append(pairs, i)
		}
		if len(pairs) == 0 {
			continue
		}
		errs := make([]error, len(pairs))
		p.For(len(pairs), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				errs[j] = merge(pairs[j], pairs[j]+stride)
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// For runs fn once per chunk of [0, n), with chunk boundaries
// [0, chunk), [chunk, 2·chunk), ... derived only from n and chunk. On a
// nil pool the chunks run serially in ascending order on the caller's
// goroutine; otherwise they are distributed across the pool's workers,
// with the caller blocking until every chunk has finished. fn must
// confine its writes to state owned by its chunk — For itself adds no
// synchronization between chunks beyond the final barrier.
func (p *Pool) For(n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 || chunk > n {
		chunk = n
	}
	if p == nil {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.tasks <- task{lo: lo, hi: hi, fn: fn, wg: &wg}
	}
	wg.Wait()
}
