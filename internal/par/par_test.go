package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks, for serial and parallel pools, that
// each index of [0, n) is visited exactly once whatever the chunking.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		for _, n := range []int{0, 1, 5, 64, 257} {
			for _, chunk := range []int{0, 1, 3, 64, 1000} {
				p := New(workers)
				visits := make([]int32, n)
				p.For(n, chunk, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				p.Close()
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d chunk=%d: index %d visited %d times", workers, n, chunk, i, v)
					}
				}
			}
		}
	}
}

// TestChunkBoundariesIndependentOfWorkers checks the determinism contract:
// the set of (lo, hi) ranges fn sees depends only on n and chunk.
func TestChunkBoundariesIndependentOfWorkers(t *testing.T) {
	n, chunk := 103, 10
	ranges := func(workers int) map[[2]int]bool {
		p := New(workers)
		defer p.Close()
		ch := make(chan [2]int, n)
		p.For(n, chunk, func(lo, hi int) {
			ch <- [2]int{lo, hi}
		})
		close(ch)
		out := map[[2]int]bool{}
		for r := range ch {
			out[r] = true
		}
		return out
	}
	serial := ranges(1)
	parallel := ranges(8)
	if len(serial) != len(parallel) {
		t.Fatalf("chunk count differs: %d vs %d", len(serial), len(parallel))
	}
	for r := range serial {
		if !parallel[r] {
			t.Fatalf("range %v missing under parallel pool", r)
		}
	}
}

// TestNilPoolIsSerialInOrder checks ascending execution order on the nil
// pool — the property chunked reductions rely on.
func TestNilPoolIsSerialInOrder(t *testing.T) {
	var p *Pool
	last := -1
	p.For(50, 7, func(lo, hi int) {
		if lo <= last {
			t.Fatalf("chunks out of order: lo %d after %d", lo, last)
		}
		last = hi - 1
	})
	if last != 49 {
		t.Fatalf("final index %d, want 49", last)
	}
	p.Close() // no-op on nil
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
}
