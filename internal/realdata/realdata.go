// Package realdata generates schema-compatible replicas of the six
// real-world benchmark data sets of the FDX paper's Table 3 (Australian,
// Hospital, Mammographic, NYPD, Thoracic, Tic-Tac-Toe).
//
// The original files (UCI repository, the HoloClean Hospital benchmark,
// and the NYC open-data complaint extract) are not available offline, so
// each replica preserves the published row/column counts, carries the
// dependency structure the paper discusses (e.g. Hospital's
// ProviderNumber→HospitalName, MeasureCode→MeasureName, ZipCode→City/State
// of Figure 3, Mammographic's {Shape,Margin}→Severity→BI-RADS of Figure 5),
// mixes types, and contains naturally-missing values. As in the paper,
// no ground-truth FD set is claimed for these data sets; experiments report
// runtime, FD counts and qualitative structure.
package realdata

import (
	"fmt"
	"math/rand"
	"strconv"

	"fdx/internal/dataset"
)

// Names lists the replicas in Table 3 order.
func Names() []string {
	return []string{"australian", "hospital", "mammographic", "nypd", "thoracic", "tictactoe"}
}

// ByName builds the named replica with the given seed.
func ByName(name string, seed int64) (*dataset.Relation, error) {
	switch name {
	case "australian":
		return Australian(seed), nil
	case "hospital":
		return Hospital(seed), nil
	case "mammographic":
		return Mammographic(seed), nil
	case "nypd":
		return NYPD(seed), nil
	case "thoracic":
		return Thoracic(seed), nil
	case "tictactoe":
		return TicTacToe(seed), nil
	default:
		return nil, fmt.Errorf("realdata: unknown data set %q", name)
	}
}

// maskMissing blanks out a fraction of cells in the given columns,
// emulating naturally-occurring missing values.
func maskMissing(rel *dataset.Relation, rng *rand.Rand, rate float64, cols ...int) {
	for _, j := range cols {
		col := rel.Columns[j]
		for i := 0; i < rel.NumRows(); i++ {
			if rng.Float64() < rate {
				col.SetCode(i, dataset.Missing)
			}
		}
	}
}

// Hospital builds the 1,000×17 Hospital replica (HoloClean benchmark
// schema). Entities: hospitals carry provider number, name, address,
// city/state/zip/county, phone, type, owner, emergency service; measures
// carry code, name, condition; Stateavg concatenates state and measure
// code (the structure FDX recovers in the paper's Figure 3).
func Hospital(seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	type hospital struct {
		provider, name, addr, city, state, zip, county, phone, htype, owner, emergency string
	}
	type measure struct{ code, name, condition string }

	cities := []struct{ city, county string }{
		{"birmingham", "jefferson"}, {"dothan", "houston"}, {"florence", "lauderdale"},
		{"gadsden", "etowah"}, {"huntsville", "madison"}, {"mobile", "mobile"},
		{"montgomery", "montgomery"}, {"tuscaloosa", "tuscaloosa"}, {"anniston", "calhoun"},
		{"decatur", "morgan"},
	}
	owners := []string{"government - hospital district or authority", "government - local", "proprietary", "voluntary non-profit - church", "voluntary non-profit - private"}
	conditions := []string{"heart attack", "heart failure", "pneumonia", "surgical infection prevention"}

	nh := 60
	hospitals := make([]hospital, nh)
	for i := range hospitals {
		c := cities[rng.Intn(len(cities))]
		state := "al"
		if rng.Float64() < 0.11 { // paper: one state ≈89% of rows
			state = "ak"
		}
		hospitals[i] = hospital{
			provider:  strconv.Itoa(10001 + i),
			name:      fmt.Sprintf("%s medical center %d", c.city, i),
			addr:      fmt.Sprintf("%d %s street", 100+rng.Intn(900), c.city),
			city:      c.city,
			state:     state,
			zip:       strconv.Itoa(35000 + i), // zip unique per hospital
			county:    c.county,
			phone:     fmt.Sprintf("256%07d", 1000000+i),
			htype:     "acute care hospitals",
			owner:     owners[rng.Intn(len(owners))],
			emergency: []string{"yes", "no"}[rng.Intn(2)],
		}
	}
	nm := 25
	measures := make([]measure, nm)
	for i := range measures {
		measures[i] = measure{
			code:      fmt.Sprintf("ami-%d", i+1),
			name:      fmt.Sprintf("measure name %d", i+1),
			condition: conditions[i%len(conditions)],
		}
	}

	rel := dataset.New("hospital",
		"ProviderNumber", "HospitalName", "Address1", "City", "State", "ZipCode",
		"CountyName", "PhoneNumber", "HospitalType", "HospitalOwner", "EmergencyService",
		"Condition", "MeasureCode", "MeasureName", "Score", "Sample", "Stateavg")
	for r := 0; r < 1000; r++ {
		h := hospitals[rng.Intn(nh)]
		m := measures[rng.Intn(nm)]
		score := strconv.Itoa(20+rng.Intn(80)) + "%"
		sample := strconv.Itoa(10+rng.Intn(400)) + " patients"
		stateavg := h.state + "_" + m.code
		rel.AppendRow([]string{
			h.provider, h.name, h.addr, h.city, h.state, h.zip, h.county, h.phone,
			h.htype, h.owner, h.emergency, m.condition, m.code, m.name, score, sample, stateavg,
		})
	}
	maskMissing(rel, rng, 0.02, 2, 6, 7, 14, 15)
	return rel
}

// Australian builds the 690×15 anonymized credit-approval replica
// (attributes A1..A15). A8 determines the class attribute A15 — the
// dependency the paper's Figure 5 highlights — and a few attribute pairs
// are correlated without being functional.
func Australian(seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 15)
	for i := range names {
		names[i] = "A" + strconv.Itoa(i+1)
	}
	rel := dataset.New("australian", names...)
	for r := 0; r < 690; r++ {
		a8 := rng.Intn(2)
		a9 := rng.Intn(2)
		// A15 (class) is a function of A8 with rare exceptions mirroring
		// the real data's strong-but-soft dependency.
		a15 := a8
		if rng.Float64() < 0.02 {
			a15 = 1 - a8
		}
		row := []string{
			strconv.Itoa(rng.Intn(2)),                // A1
			fmt.Sprintf("%.2f", 15+rng.Float64()*60), // A2 age-like
			fmt.Sprintf("%.3f", rng.Float64()*28),    // A3
			strconv.Itoa(1 + rng.Intn(3)),            // A4
			strconv.Itoa(1 + rng.Intn(14)),           // A5
			strconv.Itoa(1 + rng.Intn(9)),            // A6
			fmt.Sprintf("%.3f", rng.Float64()*10),    // A7
			strconv.Itoa(a8),                         // A8
			strconv.Itoa(a9),                         // A9
			strconv.Itoa(rng.Intn(20)),               // A10
			strconv.Itoa(rng.Intn(2)),                // A11
			strconv.Itoa(1 + rng.Intn(3)),            // A12
			strconv.Itoa(rng.Intn(2000)),             // A13
			strconv.Itoa(1 + rng.Intn(100000)),       // A14
			strconv.Itoa(a15),                        // A15 class
		}
		rel.AppendRow(row)
	}
	maskMissing(rel, rng, 0.01, 1, 4, 12)
	return rel
}

// Mammographic builds the 830×6 mass replica: BI-RADS assessment, age,
// shape, margin, density, severity. Severity is (softly) determined by
// {shape, margin} and determines the BI-RADS assessment — the structure
// FDX recovers in the paper's Figure 5(B).
func Mammographic(seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := dataset.New("mammographic", "rads", "age", "shape", "margin", "density", "severity")
	for r := 0; r < 830; r++ {
		shape := 1 + rng.Intn(4)  // round, oval, lobular, irregular
		margin := 1 + rng.Intn(5) // circumscribed … spiculated
		// Malignancy grows with shape irregularity and margin spiculation.
		malignant := 0
		if shape+margin >= 7 {
			malignant = 1
		}
		if rng.Float64() < 0.03 {
			malignant = 1 - malignant
		}
		rads := 2 + malignant*2 + rng.Intn(2) // benign → 2-3, malignant → 4-5
		if rng.Float64() < 0.10 {
			rads = 3 + rng.Intn(2) // uncertain assessment: 3 or 4 either way
		}
		age := 25 + rng.Intn(60)
		density := 1 + rng.Intn(4)
		rel.AppendRow([]string{
			strconv.Itoa(rads), strconv.Itoa(age), strconv.Itoa(shape),
			strconv.Itoa(margin), strconv.Itoa(density), strconv.Itoa(malignant),
		})
	}
	maskMissing(rel, rng, 0.04, 1, 4) // age and density have gaps in the real data
	return rel
}

// NYPD builds the 34,382×17 complaint replica: offense code determines
// offense description and law category; precinct determines borough;
// coordinates pair with precinct.
func NYPD(seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	boroughs := []string{"manhattan", "brooklyn", "queens", "bronx", "staten island"}
	offenses := []struct{ code, desc, cat string }{}
	for i := 0; i < 60; i++ {
		cat := []string{"felony", "misdemeanor", "violation"}[i%3]
		offenses = append(offenses, struct{ code, desc, cat string }{
			strconv.Itoa(101 + i), fmt.Sprintf("offense description %d", i), cat,
		})
	}
	type pct struct{ id, boro string }
	precincts := make([]pct, 77)
	for i := range precincts {
		precincts[i] = pct{strconv.Itoa(i + 1), boroughs[i%len(boroughs)]}
	}
	premises := []string{"street", "residence", "apartment", "commercial", "transit", "park"}

	rel := dataset.New("nypd",
		"CMPLNT_NUM", "CMPLNT_FR_DT", "CMPLNT_FR_TM", "RPT_DT", "KY_CD", "OFNS_DESC",
		"PD_CD", "PD_DESC", "CRM_ATPT_CPTD_CD", "LAW_CAT_CD", "BORO_NM", "ADDR_PCT_CD",
		"LOC_OF_OCCUR_DESC", "PREM_TYP_DESC", "JURIS_DESC", "Latitude", "Longitude")
	for r := 0; r < 34382; r++ {
		of := offenses[rng.Intn(len(offenses))]
		p := precincts[rng.Intn(len(precincts))]
		pd := rng.Intn(4) // internal classification within offense
		lat := 40.5 + rng.Float64()
		lon := -74.3 + rng.Float64()
		rel.AppendRow([]string{
			strconv.Itoa(100000000 + r),
			fmt.Sprintf("%02d/%02d/2015", 1+rng.Intn(12), 1+rng.Intn(28)),
			fmt.Sprintf("%02d:%02d", rng.Intn(24), rng.Intn(60)),
			fmt.Sprintf("%02d/%02d/2015", 1+rng.Intn(12), 1+rng.Intn(28)),
			of.code, of.desc,
			of.code + "-" + strconv.Itoa(pd), fmt.Sprintf("pd description %s-%d", of.code, pd),
			[]string{"completed", "attempted"}[rng.Intn(2)],
			of.cat, p.boro, p.id,
			[]string{"inside", "front of", "opposite of", "rear of"}[rng.Intn(4)],
			premises[rng.Intn(len(premises))],
			"n.y. police dept",
			fmt.Sprintf("%.6f", lat), fmt.Sprintf("%.6f", lon),
		})
	}
	maskMissing(rel, rng, 0.03, 12, 13, 15, 16)
	return rel
}

// Thoracic builds the 470×17 thoracic-surgery replica: diagnosis code,
// pre-operative indicators, age, and one-year survival.
func Thoracic(seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"DGN", "PRE4", "PRE5", "PRE6", "PRE7", "PRE8", "PRE9", "PRE10",
		"PRE11", "PRE14", "PRE17", "PRE19", "PRE25", "PRE30", "PRE32", "AGE", "Risk1Yr"}
	rel := dataset.New("thoracic", names...)
	for r := 0; r < 470; r++ {
		dgn := 1 + rng.Intn(8)
		tumorSize := 1 + rng.Intn(4) // PRE14: T in TNM staging
		// Survival risk is driven by tumor size and diagnosis.
		risk := "f"
		if tumorSize >= 3 && rng.Float64() < 0.7 {
			risk = "t"
		}
		rel.AppendRow([]string{
			"dgn" + strconv.Itoa(dgn),
			fmt.Sprintf("%.2f", 1.4+rng.Float64()*4),
			fmt.Sprintf("%.2f", 0.9+rng.Float64()*5),
			"prz" + strconv.Itoa(rng.Intn(3)),
			boolStr(rng, 0.1), boolStr(rng, 0.07), boolStr(rng, 0.15), boolStr(rng, 0.12),
			boolStr(rng, 0.08),
			"oc1" + strconv.Itoa(tumorSize),
			boolStr(rng, 0.05), boolStr(rng, 0.03), boolStr(rng, 0.1), boolStr(rng, 0.2),
			boolStr(rng, 0.85),
			strconv.Itoa(35 + rng.Intn(50)),
			risk,
		})
	}
	maskMissing(rel, rng, 0.02, 1, 2, 15)
	return rel
}

func boolStr(rng *rand.Rand, pTrue float64) string {
	if rng.Float64() < pTrue {
		return "t"
	}
	return "f"
}

// TicTacToe builds the 958×10 endgame replica: nine board squares and the
// "x wins" class. Boards are terminal positions of random play, so the
// class is a pure function of all nine squares but of no small subset —
// the structure that makes syntactic FD discovery explode on this data.
func TicTacToe(seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"tl", "tm", "tr", "ml", "mm", "mr", "bl", "bm", "br", "class"}
	rel := dataset.New("tictactoe", names...)
	seen := map[string]bool{}
	for rel.NumRows() < 958 {
		board, xWins := playRandomGame(rng)
		key := string(board[:])
		if seen[key] {
			continue
		}
		seen[key] = true
		row := make([]string, 10)
		for i, c := range board {
			row[i] = string(c)
		}
		row[9] = "negative"
		if xWins {
			row[9] = "positive"
		}
		rel.AppendRow(row)
	}
	return rel
}

// playRandomGame plays random tic-tac-toe until the board fills or x wins,
// returning the final board and whether x won (the real data set records
// all terminal boards where x played first).
func playRandomGame(rng *rand.Rand) ([9]byte, bool) {
	var board [9]byte
	for i := range board {
		board[i] = 'b'
	}
	players := []byte{'x', 'o'}
	turn := 0
	for move := 0; move < 9; move++ {
		// Pick a random empty square.
		empties := make([]int, 0, 9)
		for i, c := range board {
			if c == 'b' {
				empties = append(empties, i)
			}
		}
		pos := empties[rng.Intn(len(empties))]
		board[pos] = players[turn%2]
		if w := winner(board); w != 0 {
			return board, w == 'x'
		}
		turn++
	}
	return board, false
}

func winner(b [9]byte) byte {
	lines := [][3]int{
		{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
		{0, 3, 6}, {1, 4, 7}, {2, 5, 8},
		{0, 4, 8}, {2, 4, 6},
	}
	for _, l := range lines {
		if b[l[0]] != 'b' && b[l[0]] == b[l[1]] && b[l[1]] == b[l[2]] {
			return b[l[0]]
		}
	}
	return 0
}
