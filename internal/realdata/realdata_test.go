package realdata

import (
	"testing"

	"fdx/internal/dataset"
	"fdx/internal/partition"
)

func TestTable3Shapes(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"australian", 690, 15},
		{"hospital", 1000, 17},
		{"mammographic", 830, 6},
		{"nypd", 34382, 17},
		{"thoracic", 470, 17},
		{"tictactoe", 958, 10},
	}
	for _, c := range cases {
		rel, err := ByName(c.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rel.NumRows() != c.rows || rel.NumCols() != c.cols {
			t.Errorf("%s: %dx%d, want %dx%d", c.name, rel.NumRows(), rel.NumCols(), c.rows, c.cols)
		}
		if err := rel.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	if _, err := ByName("bogus", 1); err == nil {
		t.Error("unknown data set accepted")
	}
	if len(Names()) != 6 {
		t.Error("Names should list six data sets")
	}
}

func TestMostHaveMissingValues(t *testing.T) {
	for _, name := range Names() {
		if name == "tictactoe" {
			continue // complete by construction, like the original
		}
		rel, _ := ByName(name, 1)
		if rel.MissingRate() == 0 {
			t.Errorf("%s: no missing values", name)
		}
		if rel.MissingRate() > 0.2 {
			t.Errorf("%s: unrealistically high missing rate %v", name, rel.MissingRate())
		}
	}
}

// fdHolds checks X→Y exactly via partitions.
func fdHolds(rel *dataset.Relation, lhs []int, rhs int) bool {
	px := partition.FromColumns(rel, lhs)
	pxy := partition.Product(px, partition.FromColumn(rel.Columns[rhs]))
	return !partition.Violates(px, pxy)
}

func TestHospitalEmbeddedFDs(t *testing.T) {
	rel, _ := ByName("hospital", 2)
	idx := rel.ColumnIndex
	cases := []struct {
		lhs []string
		rhs string
	}{
		{[]string{"ProviderNumber"}, "HospitalName"},
		{[]string{"ProviderNumber"}, "ZipCode"},
		{[]string{"ZipCode"}, "City"},
		{[]string{"MeasureCode"}, "MeasureName"},
		{[]string{"MeasureCode"}, "Condition"},
		{[]string{"State", "MeasureCode"}, "Stateavg"},
	}
	for _, c := range cases {
		lhs := make([]int, len(c.lhs))
		for i, n := range c.lhs {
			lhs[i] = idx(n)
		}
		if !fdHolds(rel, lhs, idx(c.rhs)) {
			t.Errorf("hospital: %v -> %s does not hold", c.lhs, c.rhs)
		}
	}
	// City → CountyName holds approximately: CountyName carries naturally
	// missing values, which break the exact FD (NULLs equal nothing).
	px := partition.FromColumns(rel, []int{idx("City")})
	pxy := partition.Product(px, partition.FromColumn(rel.Columns[idx("CountyName")]))
	if g3 := partition.G3Error(px, pxy); g3 > 0.05 {
		t.Errorf("City -> CountyName g3 = %v, want ≤ 0.05", g3)
	}
}

func TestHospitalStateSkew(t *testing.T) {
	// The paper notes one state covers ≈89% of Hospital rows.
	rel, _ := ByName("hospital", 3)
	col := rel.Columns[rel.ColumnIndex("State")]
	counts := map[string]int{}
	for i := 0; i < col.Len(); i++ {
		if v, ok := col.Value(i); ok {
			counts[v]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / float64(col.Len()); frac < 0.8 {
		t.Errorf("state skew %v, want ≥0.8", frac)
	}
}

func TestNYPDEmbeddedFDs(t *testing.T) {
	rel, _ := ByName("nypd", 4)
	idx := rel.ColumnIndex
	if !fdHolds(rel, []int{idx("KY_CD")}, idx("OFNS_DESC")) {
		t.Error("KY_CD -> OFNS_DESC does not hold")
	}
	if !fdHolds(rel, []int{idx("KY_CD")}, idx("LAW_CAT_CD")) {
		t.Error("KY_CD -> LAW_CAT_CD does not hold")
	}
	if !fdHolds(rel, []int{idx("ADDR_PCT_CD")}, idx("BORO_NM")) {
		t.Error("ADDR_PCT_CD -> BORO_NM does not hold")
	}
}

func TestTicTacToeBoardsAreTerminalAndDistinct(t *testing.T) {
	rel, _ := ByName("tictactoe", 5)
	seen := map[string]bool{}
	for i := 0; i < rel.NumRows(); i++ {
		row := rel.Row(i)
		key := ""
		for _, v := range row[:9] {
			key += v
		}
		if seen[key] {
			t.Fatal("duplicate board")
		}
		seen[key] = true
		var b [9]byte
		for j := 0; j < 9; j++ {
			b[j] = row[j][0]
		}
		w := winner(b)
		if (w == 'x') != (row[9] == "positive") {
			t.Fatalf("class label inconsistent with board %v %s", row[:9], row[9])
		}
	}
}

func TestMammographicStructure(t *testing.T) {
	// severity should be strongly associated with shape+margin (not exact
	// due to the 5% flip), and rads with severity.
	rel, _ := ByName("mammographic", 6)
	idx := rel.ColumnIndex
	sev := idx("severity")
	agree := 0
	n := rel.NumRows()
	for i := 0; i < n; i++ {
		shape := rel.Columns[idx("shape")]
		margin := rel.Columns[idx("margin")]
		s, _ := shape.Value(i)
		m, _ := margin.Value(i)
		v, _ := rel.Columns[sev].Value(i)
		si, _ := atoiSafe(s)
		mi, _ := atoiSafe(m)
		want := "0"
		if si+mi >= 7 {
			want = "1"
		}
		if v == want {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.9 {
		t.Errorf("severity agreement with {shape,margin} rule = %v", frac)
	}
}

func atoiSafe(s string) (int, bool) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func TestSeedsVaryData(t *testing.T) {
	a, _ := ByName("australian", 1)
	b, _ := ByName("australian", 2)
	same := true
	for i := 0; i < a.NumRows() && same; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}
