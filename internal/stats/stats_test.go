package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fdx/internal/linalg"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanAndCovarianceHandComputed(t *testing.T) {
	// Two variables: x = (1,2,3), y = (2,4,6) → cov(x,x)=2/3, cov(x,y)=4/3.
	data := linalg.NewDenseData(3, 2, []float64{1, 2, 2, 4, 3, 6})
	mu := Mean(data)
	if !almostEq(mu[0], 2, 1e-12) || !almostEq(mu[1], 4, 1e-12) {
		t.Errorf("Mean = %v", mu)
	}
	cov := Covariance(data)
	if !almostEq(cov.At(0, 0), 2.0/3, 1e-12) || !almostEq(cov.At(0, 1), 4.0/3, 1e-12) {
		t.Errorf("Covariance = %v", cov)
	}
	if !cov.IsSymmetric(0) {
		t.Error("covariance not symmetric")
	}
}

func TestCovariancePSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 3+rng.Intn(30), 1+rng.Intn(5)
		data := linalg.NewDense(n, k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				data.Set(i, j, rng.NormFloat64())
			}
		}
		cov := Covariance(data)
		min, err := linalg.MinEigenvalue(cov)
		return err == nil && min > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondMomentZeroMeanEqualsCovariance(t *testing.T) {
	// For data symmetric around zero, SecondMoment == Covariance + mu·muᵀ.
	rng := rand.New(rand.NewSource(1))
	n, k := 50, 3
	data := linalg.NewDense(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			data.Set(i, j, rng.NormFloat64())
		}
	}
	mu := Mean(data)
	sm := SecondMoment(data)
	cov := Covariance(data)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			want := cov.At(a, b) + mu[a]*mu[b]
			if !almostEq(sm.At(a, b), want, 1e-9) {
				t.Fatalf("SecondMoment(%d,%d) = %v, want %v", a, b, sm.At(a, b), want)
			}
		}
	}
}

func TestCorrelationBoundsAndDiag(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := linalg.NewDense(100, 4)
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		data.Set(i, 0, x)
		data.Set(i, 1, 2*x+0.01*rng.NormFloat64()) // highly correlated
		data.Set(i, 2, rng.NormFloat64())
		data.Set(i, 3, 7) // constant
	}
	corr := Correlation(Covariance(data))
	for i := 0; i < 4; i++ {
		if corr.At(i, i) != 1 {
			t.Errorf("corr diag [%d] = %v", i, corr.At(i, i))
		}
		for j := 0; j < 4; j++ {
			if math.Abs(corr.At(i, j)) > 1+1e-12 {
				t.Errorf("corr out of bounds at (%d,%d): %v", i, j, corr.At(i, j))
			}
		}
	}
	if corr.At(0, 1) < 0.99 {
		t.Errorf("corr(0,1) = %v, want ≈1", corr.At(0, 1))
	}
	if corr.At(0, 3) != 0 {
		t.Errorf("constant column should have zero correlation, got %v", corr.At(0, 3))
	}
}

func TestShrinkMakesPD(t *testing.T) {
	// Singular PSD matrix.
	s := linalg.NewDenseData(2, 2, []float64{1, 1, 1, 1})
	sh := Shrink(s, 0.1)
	min, err := linalg.MinEigenvalue(sh)
	if err != nil || min <= 0 {
		t.Errorf("Shrink not PD: min eig %v err %v", min, err)
	}
}

func TestStandardize(t *testing.T) {
	data := linalg.NewDenseData(4, 2, []float64{1, 5, 2, 5, 3, 5, 4, 5})
	mu, sd := Standardize(data)
	if !almostEq(mu[0], 2.5, 1e-12) || sd[1] != 0 {
		t.Errorf("mu=%v sd=%v", mu, sd)
	}
	newMu := Mean(data)
	if !almostEq(newMu[0], 0, 1e-12) || !almostEq(newMu[1], 0, 1e-12) {
		t.Errorf("standardized mean = %v", newMu)
	}
	v := Covariance(data)
	if !almostEq(v.At(0, 0), 1, 1e-12) {
		t.Errorf("standardized variance = %v", v.At(0, 0))
	}
}

func TestEntropyBasics(t *testing.T) {
	if Entropy(nil) != 0 || Entropy([]int{5}) != 0 {
		t.Error("degenerate entropies should be 0")
	}
	if !almostEq(Entropy([]int{1, 1}), math.Log(2), 1e-12) {
		t.Error("uniform binary entropy should be ln 2")
	}
	if Entropy([]int{3, 0, 3}) != Entropy([]int{3, 3}) {
		t.Error("zero counts must not contribute")
	}
}

func TestEntropyOfLabels(t *testing.T) {
	if !almostEq(EntropyOfLabels([]int{1, 2, 1, 2}), math.Log(2), 1e-12) {
		t.Error("label entropy wrong")
	}
}

func TestConditionalEntropyChainRule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(4)
			y[i] = rng.Intn(4)
		}
		c := NewContingency(x, y)
		// Invariants: 0 ≤ H(Y|X) ≤ H(Y); I ≥ 0; H(X,Y) = H(X) + H(Y|X).
		if c.ConditionalEntropy() < -1e-12 || c.ConditionalEntropy() > c.EntropyY()+1e-9 {
			return false
		}
		if c.MutualInformation() < 0 {
			return false
		}
		return almostEq(c.JointEntropy(), c.EntropyX()+c.ConditionalEntropy(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFDGivesFullFractionOfInformation(t *testing.T) {
	// y = x mod 2 is a function of x → F(X,Y) = 1, H(Y|X) = 0.
	x := []int{0, 1, 2, 3, 0, 1, 2, 3}
	y := []int{0, 1, 0, 1, 0, 1, 0, 1}
	c := NewContingency(x, y)
	if !almostEq(c.ConditionalEntropy(), 0, 1e-12) {
		t.Errorf("H(Y|X) = %v, want 0", c.ConditionalEntropy())
	}
	if !almostEq(c.FractionOfInformation(), 1, 1e-12) {
		t.Errorf("F = %v, want 1", c.FractionOfInformation())
	}
}

func TestIndependentFractionOfInformation(t *testing.T) {
	// Perfectly independent balanced table → MI = 0.
	x := []int{0, 0, 1, 1}
	y := []int{0, 1, 0, 1}
	c := NewContingency(x, y)
	if !almostEq(c.MutualInformation(), 0, 1e-12) {
		t.Errorf("MI = %v, want 0", c.MutualInformation())
	}
}

func TestJointLabels(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	j := JointLabels(a, b)
	seen := map[int]bool{}
	for _, v := range j {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("joint labels have %d distinct values, want 4", len(seen))
	}
	if j[0] == j[1] || j[0] == j[2] {
		t.Error("distinct combinations must get distinct labels")
	}
	j2 := JointLabels(a)
	for i := range a {
		for k := range a {
			if (a[i] == a[k]) != (j2[i] == j2[k]) {
				t.Error("single-sequence joint labels must preserve equality structure")
			}
		}
	}
	if JointLabels() != nil {
		t.Error("empty JointLabels should be nil")
	}
}

func TestExpectedMIProperties(t *testing.T) {
	// EMI of a 1-value marginal is 0; EMI ≤ min(H(X), H(Y)) + slack; and for
	// independent large samples EMI ≈ MI.
	x := make([]int, 200)
	y := make([]int, 200)
	rng := rand.New(rand.NewSource(3))
	for i := range x {
		x[i] = rng.Intn(3)
		y[i] = rng.Intn(3)
	}
	c := NewContingency(x, y)
	emi := ExpectedMutualInformation(c)
	if emi < 0 {
		t.Error("EMI negative")
	}
	if emi > c.EntropyX()+1e-9 || emi > c.EntropyY()+1e-9 {
		t.Error("EMI exceeds marginal entropy")
	}
	// For independent variables the empirical MI is close to its null
	// expectation, so the corrected score should be near zero.
	if got := ReliableFractionOfInformation(c); got > 0.08 {
		t.Errorf("RFI on independent data = %v, want ≈0", got)
	}
}

func TestRFIDetectsTrueFD(t *testing.T) {
	n := 300
	x := make([]int, n)
	y := make([]int, n)
	rng := rand.New(rand.NewSource(4))
	for i := range x {
		x[i] = rng.Intn(5)
		y[i] = x[i] % 3
	}
	c := NewContingency(x, y)
	if got := ReliableFractionOfInformation(c); got < 0.8 {
		t.Errorf("RFI on a true FD = %v, want near 1", got)
	}
}

func TestRFIUpperBoundDominatesScore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(3)
			y[i] = rng.Intn(3)
		}
		c := NewContingency(x, y)
		return RFIUpperBound(c) >= ReliableFractionOfInformation(c)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredIndependence(t *testing.T) {
	// Perfect independence → statistic 0, p-value 1.
	x := []int{0, 0, 1, 1}
	y := []int{0, 1, 0, 1}
	stat, dof := ChiSquared(NewContingency(x, y))
	if !almostEq(stat, 0, 1e-12) || dof != 1 {
		t.Errorf("stat=%v dof=%d", stat, dof)
	}
	if p := ChiSquaredPValue(stat, dof); !almostEq(p, 1, 1e-9) {
		t.Errorf("p = %v, want 1", p)
	}
}

func TestChiSquaredDependence(t *testing.T) {
	n := 200
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = i % 2
		y[i] = x[i]
	}
	stat, dof := ChiSquared(NewContingency(x, y))
	if stat < float64(n)-1 {
		t.Errorf("stat = %v, want ≈ n", stat)
	}
	if p := ChiSquaredPValue(stat, dof); p > 1e-6 {
		t.Errorf("p = %v, want ≈0", p)
	}
}

func TestChiSquaredPValueAgainstKnownQuantiles(t *testing.T) {
	// Known: P(X²₁ ≥ 3.841) ≈ 0.05, P(X²₂ ≥ 5.991) ≈ 0.05.
	if p := ChiSquaredPValue(3.841, 1); !almostEq(p, 0.05, 2e-3) {
		t.Errorf("p(3.841, 1) = %v", p)
	}
	if p := ChiSquaredPValue(5.991, 2); !almostEq(p, 0.05, 2e-3) {
		t.Errorf("p(5.991, 2) = %v", p)
	}
	if p := ChiSquaredPValue(0, 3); p != 1 {
		t.Errorf("p(0, 3) = %v, want 1", p)
	}
}

func TestCramersV(t *testing.T) {
	n := 100
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = i % 3
		y[i] = x[i]
	}
	if v := CramersV(NewContingency(x, y)); !almostEq(v, 1, 1e-9) {
		t.Errorf("CramersV of identical labels = %v, want 1", v)
	}
	for i := range y {
		y[i] = 0
	}
	if v := CramersV(NewContingency(x, y)); v != 0 {
		t.Errorf("CramersV with constant column = %v, want 0", v)
	}
}

func TestCheckDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CheckDims(linalg.NewDense(2, 2), 3, 3)
}
