package stats

import (
	"runtime"

	"fdx/internal/linalg"
	"fdx/internal/par"
)

// float32-backed variants of the moment routines, consuming the compact
// sample store of core.TransformOptions.Compact. Only the storage is
// narrow: every element is widened to float64 before any arithmetic and
// all accumulation runs in float64, so on the 0/1 pair-transform samples
// (exact in float32) these produce results bit-identical to their
// float64 twins — the covariance handed to the solver does not know
// which store it came from.

// accumulateMoments32 is accumulateMoments over a float32 sample block:
// one pass over the rows, adding each row to the float64 column sums
// (when sums is non-nil) and each row's outer product to the upper
// triangle of s via fused widening Axpy32 updates.
// Panics if s is not k×k (or sums not length k) for data's column count k.
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path over the
// mostly-zero pair-transform samples — a zero multiplier contributes
// nothing to the accumulation.)
func accumulateMoments32(data *linalg.Dense32, sums []float64, s *linalg.Dense) {
	n, k := data.Dims()
	if r, c := s.Dims(); r != k || c != k || (sums != nil && len(sums) != k) {
		panic("stats: accumulateMoments32 operand shapes disagree")
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		if sums != nil {
			linalg.Axpy32(1, row, sums)
		}
		for a := 0; a < k; a++ {
			va := float64(row[a])
			if va == 0 {
				continue
			}
			linalg.Axpy32(va, row[a:], s.Row(a)[a:])
		}
	}
}

// Covariance32 is Covariance over a float32 sample block, normalizing by
// n with the same centering correction and diagonal clamp. The returned
// matrix is float64.
func Covariance32(data *linalg.Dense32) *linalg.Dense {
	n, k := data.Dims()
	s := linalg.NewDense(k, k)
	if n == 0 {
		return s
	}
	vb := getVec(k)
	sums := vb.data
	accumulateMoments32(data, sums, s)
	inv := 1 / float64(n)
	for a := 0; a < k; a++ {
		mua := sums[a] * inv
		for b := a; b < k; b++ {
			v := s.At(a, b)*inv - mua*(sums[b]*inv)
			if b == a && v < 0 {
				v = 0
			}
			s.Set(a, b, v)
			s.Set(b, a, v)
		}
	}
	vecPool.Put(vb)
	return s
}

// StratifiedCovariance32 is StratifiedCovariance over a float32 sample
// block: contiguous equal-size row blocks, per-stratum covariance,
// averaged in fixed ascending order. Falls back to Covariance32 when the
// rows do not split evenly.
func StratifiedCovariance32(data *linalg.Dense32, strata int) *linalg.Dense {
	n, k := data.Dims()
	if strata <= 1 || n == 0 || n%strata != 0 {
		return Covariance32(data)
	}
	block := n / strata
	acc := linalg.NewDense(k, k)
	covs := make([]*linalg.Dense, strata)
	//fdx:lint-ignore detsource worker count only; per-stratum results merge in fixed ascending order
	workers := runtime.GOMAXPROCS(0)
	if workers > strata {
		workers = strata
	}
	pool := par.New(workers)
	pool.For(strata, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			sub := linalg.NewDense32Data(block, k, data.Data()[s*block*k:(s+1)*block*k])
			covs[s] = Covariance32(sub)
		}
	})
	pool.Close()
	for _, cov := range covs {
		linalg.Axpy(1, cov.Data(), acc.Data())
	}
	acc.Scale(1 / float64(strata))
	return acc
}
