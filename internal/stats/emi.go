package stats

import "math"

// logFactCache memoizes log(n!) values. Safe for single-goroutine use; the
// experiment harness computes EMI sequentially per contingency table.
type logFactCache []float64

func newLogFactCache(n int) logFactCache {
	c := make(logFactCache, n+1)
	for i := 2; i <= n; i++ {
		c[i] = c[i-1] + math.Log(float64(i))
	}
	return c
}

func (c logFactCache) at(n int) float64 { return c[n] }

// ExpectedMutualInformation returns E[I(X;Y)] under the permutation null
// model: the expectation of the empirical mutual information when the
// pairing of X and Y labels is a uniformly random permutation, keeping both
// marginals fixed (Vinh et al. 2010). This is the bias term the RFI
// baseline subtracts from the empirical mutual information: even
// independent variables show positive empirical MI on a finite sample, and
// the excess grows with the domain sizes — exactly the overfitting the
// paper attributes to entropy-based FD scores (§2.1).
//
// The computation sums, for every (row marginal a, column marginal b) pair,
// over the support of the hypergeometric distribution of the joint count.
func ExpectedMutualInformation(c *Contingency) float64 {
	if c.N == 0 {
		return 0
	}
	n := c.N
	lf := newLogFactCache(n)
	logN := math.Log(float64(n))
	emi := 0.0
	// The expectation depends only on the marginal count multisets; visit
	// them in sorted order so the float summation is reproducible.
	for _, a := range sortedCounts(c.RowSum) {
		for _, b := range sortedCounts(c.ColSum) {
			lo := a + b - n
			if lo < 1 {
				lo = 1
			}
			hi := a
			if b < hi {
				hi = b
			}
			for nij := lo; nij <= hi; nij++ {
				// P(N_ij = nij) for the hypergeometric(n, a, b):
				// a! b! (n-a)! (n-b)! / (n! nij! (a-nij)! (b-nij)! (n-a-b+nij)!)
				logP := lf.at(a) + lf.at(b) + lf.at(n-a) + lf.at(n-b) -
					lf.at(n) - lf.at(nij) - lf.at(a-nij) - lf.at(b-nij) - lf.at(n-a-b+nij)
				term := float64(nij) / float64(n) *
					(logN + math.Log(float64(nij)) - math.Log(float64(a)) - math.Log(float64(b)))
				emi += math.Exp(logP) * term
			}
		}
	}
	if emi < 0 {
		return 0
	}
	return emi
}

// ReliableFractionOfInformation returns the RFI score of Mandros et al.:
// (I(X;Y) − E[I(X;Y)]) / H(Y), clamped to [0,1]; 0 when H(Y)=0.
// (fdx:numeric-kernel: a single-label Y has entropy exactly 0.)
func ReliableFractionOfInformation(c *Contingency) float64 {
	hy := c.EntropyY()
	if hy == 0 {
		return 0
	}
	s := (c.MutualInformation() - ExpectedMutualInformation(c)) / hy
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// RFIUpperBound returns an admissible optimistic bound for the RFI score of
// any superset X' ⊇ X: extending X can only raise I(X';Y) up to H(Y), but
// the bias E[I] is monotonically non-decreasing in refinement of X, so
//
//	score(X') ≤ (H(Y) − E[I(X;Y)]) / H(Y).
//
// The RFI search uses this bound for branch-and-bound pruning (the same
// bound family as Mandros et al.'s SFI bound, in its simplest admissible
// form).
// (fdx:numeric-kernel: a single-label Y has entropy exactly 0.)
func RFIUpperBound(c *Contingency) float64 {
	hy := c.EntropyY()
	if hy == 0 {
		return 0
	}
	b := (hy - ExpectedMutualInformation(c)) / hy
	if b < 0 {
		return 0
	}
	if b > 1 {
		return 1
	}
	return b
}
