// Package stats provides the statistical primitives shared across FDX and
// the baselines: empirical covariance/correlation, discrete entropies and
// mutual information, the expected mutual information under the permutation
// model (the bias correction used by the RFI baseline), and a chi-squared
// independence test (used by the CORDS baseline).
package stats

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fdx/internal/linalg"
	"fdx/internal/par"
)

// vecPool recycles the per-call scratch vectors (column sums, standard
// deviations) of the moment routines so the streaming accumulator's
// steady state allocates only its result matrices.
var vecPool = sync.Pool{New: func() any { return &vecBuf{} }}

type vecBuf struct{ data []float64 }

// getVec returns a zeroed length-k scratch vector from the pool.
func getVec(k int) *vecBuf {
	vb := vecPool.Get().(*vecBuf)
	if cap(vb.data) < k {
		vb.data = make([]float64, k)
	}
	vb.data = vb.data[:k]
	for i := range vb.data {
		vb.data[i] = 0
	}
	return vb
}

// Mean returns the column means of data (rows are observations).
func Mean(data *linalg.Dense) []float64 {
	n, k := data.Dims()
	mu := make([]float64, k)
	if n == 0 {
		return mu
	}
	for i := 0; i < n; i++ {
		linalg.Axpy(1, data.Row(i), mu)
	}
	for j := range mu {
		mu[j] /= float64(n)
	}
	return mu
}

// accumulateMoments is the shared single-traversal core of Covariance and
// SecondMoment: one pass over the rows of data, adding each row to the
// column sums (when sums is non-nil) and each row's outer product to the
// upper triangle of s via fused Axpy updates.
// Panics if s is not k×k (or sums not length k) for data's column count k.
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path over the
// mostly-zero pair-transform samples — a zero multiplier contributes
// nothing to the accumulation.)
func accumulateMoments(data *linalg.Dense, sums []float64, s *linalg.Dense) {
	n, k := data.Dims()
	if r, c := s.Dims(); r != k || c != k || (sums != nil && len(sums) != k) {
		panic("stats: accumulateMoments operand shapes disagree")
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		if sums != nil {
			linalg.Axpy(1, row, sums)
		}
		for a := 0; a < k; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			linalg.Axpy(va, row[a:], s.Row(a)[a:])
		}
	}
}

// Covariance returns the empirical covariance matrix of data (rows are
// observations, columns variables), normalizing by n. Sums and raw second
// moments accumulate in a single traversal; the centering correction
// cov = E[xy] − E[x]·E[y] is applied at the end, with the diagonal clamped
// at zero so round-off on near-constant columns can never produce a
// negative variance.
func Covariance(data *linalg.Dense) *linalg.Dense {
	n, k := data.Dims()
	s := linalg.NewDense(k, k)
	if n == 0 {
		return s
	}
	vb := getVec(k)
	sums := vb.data
	accumulateMoments(data, sums, s)
	inv := 1 / float64(n)
	for a := 0; a < k; a++ {
		mua := sums[a] * inv
		for b := a; b < k; b++ {
			v := s.At(a, b)*inv - mua*(sums[b]*inv)
			if b == a && v < 0 {
				v = 0
			}
			s.Set(a, b, v)
			s.Set(b, a, v)
		}
	}
	vecPool.Put(vb)
	return s
}

// SecondMoment returns (1/n)·XᵀX without mean-centering. This is the
// covariance estimator FDX applies to the tuple-pair difference samples:
// the pair transform already yields a distribution whose relevant structure
// is around a fixed (not estimated) center, which is what makes the
// estimate robust to corrupted cells (paper §4.3).
func SecondMoment(data *linalg.Dense) *linalg.Dense {
	n, k := data.Dims()
	s := linalg.NewDense(k, k)
	if n == 0 {
		return s
	}
	accumulateMoments(data, nil, s)
	inv := 1 / float64(n)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			v := s.At(a, b) * inv
			s.Set(a, b, v)
			s.Set(b, a, v)
		}
	}
	return s
}

// StratifiedCovariance splits the rows of data into `strata` contiguous
// equal-size blocks, computes the covariance within each block, and returns
// the average. FDX's pair transform (Alg. 2) emits one block per attribute
// (pairs adjacent under that attribute's sort order); the blocks have very
// different marginal means, and pooling them into a single covariance
// manufactures spurious negative cross-correlations between unrelated
// attributes. Per-stratum centering removes that sampling artifact while
// keeping every block's dependence signal.
func StratifiedCovariance(data *linalg.Dense, strata int) *linalg.Dense {
	n, k := data.Dims()
	if strata <= 1 || n == 0 || n%strata != 0 {
		return Covariance(data)
	}
	block := n / strata
	acc := linalg.NewDense(k, k)
	// Strata are independent; compute their covariances concurrently.
	// Stratum s owns covs[s], and the merge below folds them in fixed
	// ascending order, so the result is identical at any worker count.
	covs := make([]*linalg.Dense, strata)
	//fdx:lint-ignore detsource worker count only; per-stratum results merge in fixed ascending order
	workers := runtime.GOMAXPROCS(0)
	if workers > strata {
		workers = strata
	}
	pool := par.New(workers)
	pool.For(strata, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			sub := linalg.NewDenseData(block, k, data.Data()[s*block*k:(s+1)*block*k])
			covs[s] = Covariance(sub)
		}
	})
	pool.Close()
	for _, cov := range covs {
		linalg.Axpy(1, cov.Data(), acc.Data())
	}
	acc.Scale(1 / float64(strata))
	return acc
}

// Correlation converts a covariance matrix to a correlation matrix as a
// new matrix. See CorrelationInPlace.
func Correlation(cov *linalg.Dense) *linalg.Dense {
	return CorrelationInPlace(cov.Clone())
}

// CorrelationInPlace converts the covariance matrix cov to a correlation
// matrix in place and returns it. Zero-variance variables get unit
// diagonal and zero off-diagonals.
// (fdx:numeric-kernel: exact-zero standard deviation is the constant-column
// sentinel; dividing by anything smaller-but-nonzero is still well defined.)
func CorrelationInPlace(cov *linalg.Dense) *linalg.Dense {
	k, _ := cov.Dims()
	vb := getVec(k)
	sd := vb.data
	for i := 0; i < k; i++ {
		sd[i] = math.Sqrt(cov.At(i, i))
	}
	for i := 0; i < k; i++ {
		row := cov.Row(i)
		for j := range row {
			switch {
			case i == j:
				row[j] = 1
			case sd[i] == 0 || sd[j] == 0:
				row[j] = 0
			default:
				row[j] /= sd[i] * sd[j]
			}
		}
	}
	vecPool.Put(vb)
	return cov
}

// Shrink returns (1−γ)·S + γ·trace(S)/k·I as a new matrix. See
// ShrinkInPlace.
func Shrink(s *linalg.Dense, gamma float64) *linalg.Dense {
	return ShrinkInPlace(s.Clone(), gamma)
}

// ShrinkInPlace applies (1−γ)·S + γ·trace(S)/k·I to s in place and
// returns it — a Ledoit-Wolf-style ridge shrinkage that guarantees
// positive definiteness for γ>0 when S is PSD.
// (fdx:numeric-kernel: an exactly-zero trace means S is the zero matrix and
// the identity target is substituted.)
func ShrinkInPlace(s *linalg.Dense, gamma float64) *linalg.Dense {
	k, _ := s.Dims()
	tr := 0.0
	for i := 0; i < k; i++ {
		tr += s.At(i, i)
	}
	target := tr / float64(k)
	if target == 0 {
		target = 1
	}
	s.Scale(1 - gamma)
	for i := 0; i < k; i++ {
		s.Add(i, i, gamma*target)
	}
	return s
}

// Standardize mean-centers and unit-scales each column of data in place.
// Zero-variance columns are centered only. It returns the per-column means
// and standard deviations used.
func Standardize(data *linalg.Dense) (mu, sd []float64) {
	n, k := data.Dims()
	mu = Mean(data)
	sd = make([]float64, k)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := range row {
			d := row[j] - mu[j]
			sd[j] += d * d
		}
	}
	for j := range sd {
		if n > 0 {
			sd[j] = math.Sqrt(sd[j] / float64(n))
		}
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := range row {
			row[j] -= mu[j]
			if sd[j] > 0 {
				row[j] /= sd[j]
			}
		}
	}
	return mu, sd
}

// CheckDims panics unless m has the wanted shape; a development aid for the
// experiment code.
func CheckDims(m *linalg.Dense, rows, cols int) {
	r, c := m.Dims()
	if r != rows || c != cols {
		panic(fmt.Sprintf("stats: got %dx%d matrix, want %dx%d", r, c, rows, cols))
	}
}
