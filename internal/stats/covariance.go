// Package stats provides the statistical primitives shared across FDX and
// the baselines: empirical covariance/correlation, discrete entropies and
// mutual information, the expected mutual information under the permutation
// model (the bias correction used by the RFI baseline), and a chi-squared
// independence test (used by the CORDS baseline).
package stats

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fdx/internal/linalg"
)

// Mean returns the column means of data (rows are observations).
func Mean(data *linalg.Dense) []float64 {
	n, k := data.Dims()
	mu := make([]float64, k)
	if n == 0 {
		return mu
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(n)
	}
	return mu
}

// Covariance returns the empirical covariance matrix of data (rows are
// observations, columns variables), normalizing by n.
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path — a zero
// deviation contributes nothing to any product.)
func Covariance(data *linalg.Dense) *linalg.Dense {
	n, k := data.Dims()
	mu := Mean(data)
	s := linalg.NewDense(k, k)
	if n == 0 {
		return s
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < k; a++ {
			da := row[a] - mu[a]
			if da == 0 {
				continue
			}
			srow := s.Row(a)
			for b := a; b < k; b++ {
				srow[b] += da * (row[b] - mu[b])
			}
		}
	}
	inv := 1 / float64(n)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			v := s.At(a, b) * inv
			s.Set(a, b, v)
			s.Set(b, a, v)
		}
	}
	return s
}

// SecondMoment returns (1/n)·XᵀX without mean-centering. This is the
// covariance estimator FDX applies to the tuple-pair difference samples:
// the pair transform already yields a distribution whose relevant structure
// is around a fixed (not estimated) center, which is what makes the
// estimate robust to corrupted cells (paper §4.3).
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path over the
// mostly-zero pair-transform samples.)
func SecondMoment(data *linalg.Dense) *linalg.Dense {
	n, k := data.Dims()
	s := linalg.NewDense(k, k)
	if n == 0 {
		return s
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < k; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			srow := s.Row(a)
			for b := a; b < k; b++ {
				srow[b] += va * row[b]
			}
		}
	}
	inv := 1 / float64(n)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			v := s.At(a, b) * inv
			s.Set(a, b, v)
			s.Set(b, a, v)
		}
	}
	return s
}

// StratifiedCovariance splits the rows of data into `strata` contiguous
// equal-size blocks, computes the covariance within each block, and returns
// the average. FDX's pair transform (Alg. 2) emits one block per attribute
// (pairs adjacent under that attribute's sort order); the blocks have very
// different marginal means, and pooling them into a single covariance
// manufactures spurious negative cross-correlations between unrelated
// attributes. Per-stratum centering removes that sampling artifact while
// keeping every block's dependence signal.
func StratifiedCovariance(data *linalg.Dense, strata int) *linalg.Dense {
	n, k := data.Dims()
	if strata <= 1 || n == 0 || n%strata != 0 {
		return Covariance(data)
	}
	block := n / strata
	acc := linalg.NewDense(k, k)
	// Strata are independent; compute their covariances concurrently.
	covs := make([]*linalg.Dense, strata)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > strata {
		workers = strata
	}
	strataCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range strataCh {
				sub := linalg.NewDenseData(block, k, data.Data()[s*block*k:(s+1)*block*k])
				covs[s] = Covariance(sub)
			}
		}()
	}
	for s := 0; s < strata; s++ {
		strataCh <- s
	}
	close(strataCh)
	wg.Wait()
	for _, cov := range covs {
		for i, v := range cov.Data() {
			acc.Data()[i] += v
		}
	}
	acc.Scale(1 / float64(strata))
	return acc
}

// Correlation converts a covariance matrix to a correlation matrix.
// Zero-variance variables get unit diagonal and zero off-diagonals.
// (fdx:numeric-kernel: exact-zero standard deviation is the constant-column
// sentinel; dividing by anything smaller-but-nonzero is still well defined.)
func Correlation(cov *linalg.Dense) *linalg.Dense {
	k, _ := cov.Dims()
	out := linalg.NewDense(k, k)
	sd := make([]float64, k)
	for i := 0; i < k; i++ {
		sd[i] = math.Sqrt(cov.At(i, i))
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				out.Set(i, j, 1)
				continue
			}
			if sd[i] == 0 || sd[j] == 0 {
				continue
			}
			out.Set(i, j, cov.At(i, j)/(sd[i]*sd[j]))
		}
	}
	return out
}

// Shrink returns (1−γ)·S + γ·trace(S)/k·I, a Ledoit-Wolf-style ridge
// shrinkage that guarantees positive definiteness for γ>0 when S is PSD.
// (fdx:numeric-kernel: an exactly-zero trace means S is the zero matrix and
// the identity target is substituted.)
func Shrink(s *linalg.Dense, gamma float64) *linalg.Dense {
	k, _ := s.Dims()
	tr := 0.0
	for i := 0; i < k; i++ {
		tr += s.At(i, i)
	}
	target := tr / float64(k)
	if target == 0 {
		target = 1
	}
	out := s.Clone()
	out.Scale(1 - gamma)
	for i := 0; i < k; i++ {
		out.Add(i, i, gamma*target)
	}
	return out
}

// Standardize mean-centers and unit-scales each column of data in place.
// Zero-variance columns are centered only. It returns the per-column means
// and standard deviations used.
func Standardize(data *linalg.Dense) (mu, sd []float64) {
	n, k := data.Dims()
	mu = Mean(data)
	sd = make([]float64, k)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := range row {
			d := row[j] - mu[j]
			sd[j] += d * d
		}
	}
	for j := range sd {
		if n > 0 {
			sd[j] = math.Sqrt(sd[j] / float64(n))
		}
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := range row {
			row[j] -= mu[j]
			if sd[j] > 0 {
				row[j] /= sd[j]
			}
		}
	}
	return mu, sd
}

// CheckDims panics unless m has the wanted shape; a development aid for the
// experiment code.
func CheckDims(m *linalg.Dense, rows, cols int) {
	r, c := m.Dims()
	if r != rows || c != cols {
		panic(fmt.Sprintf("stats: got %dx%d matrix, want %dx%d", r, c, rows, cols))
	}
}
