package stats

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (in nats) of the empirical
// distribution given by counts. Zero counts contribute nothing.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	n := float64(total)
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / n
			h -= p * math.Log(p)
		}
	}
	return h
}

// EntropyOfLabels returns the entropy of an integer label sequence.
func EntropyOfLabels(labels []int) float64 {
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	return Entropy(sortedCounts(counts))
}

// sortedCounts extracts a map's count values in sorted order so that the
// float summations downstream are bit-for-bit reproducible: float addition
// is not associative, and Go randomizes map iteration order per run.
func sortedCounts(counts map[int]int) []int {
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// sortedKeys returns a count map's keys ascending, for deterministic
// iteration wherever the visit order reaches a float accumulation.
func sortedKeys(counts map[int]int) []int {
	ks := make([]int, 0, len(counts))
	for k := range counts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Contingency is a sparse joint count table over two discrete variables.
type Contingency struct {
	N      int // total observations
	Joint  map[[2]int]int
	RowSum map[int]int // marginal counts of X
	ColSum map[int]int // marginal counts of Y
}

// NewContingency tabulates paired label sequences x and y.
// Panics if the sequences have different lengths.
func NewContingency(x, y []int) *Contingency {
	if len(x) != len(y) {
		panic("stats: NewContingency label sequences have different lengths")
	}
	c := &Contingency{
		Joint:  map[[2]int]int{},
		RowSum: map[int]int{},
		ColSum: map[int]int{},
	}
	for i := range x {
		c.Joint[[2]int{x[i], y[i]}]++
		c.RowSum[x[i]]++
		c.ColSum[y[i]]++
		c.N++
	}
	return c
}

// EntropyX returns H(X).
func (c *Contingency) EntropyX() float64 { return entropyOfMap(c.RowSum) }

// EntropyY returns H(Y).
func (c *Contingency) EntropyY() float64 { return entropyOfMap(c.ColSum) }

// JointEntropy returns H(X, Y).
func (c *Contingency) JointEntropy() float64 {
	if c.N == 0 {
		return 0
	}
	cs := make([]int, 0, len(c.Joint))
	for _, cnt := range c.Joint {
		cs = append(cs, cnt)
	}
	sort.Ints(cs)
	h := 0.0
	n := float64(c.N)
	for _, cnt := range cs {
		p := float64(cnt) / n
		h -= p * math.Log(p)
	}
	return h
}

// MutualInformation returns I(X;Y) = H(X) + H(Y) − H(X,Y), clamped at 0.
func (c *Contingency) MutualInformation() float64 {
	mi := c.EntropyX() + c.EntropyY() - c.JointEntropy()
	if mi < 0 {
		return 0
	}
	return mi
}

// ConditionalEntropy returns H(Y|X) = H(X,Y) − H(X), clamped at 0.
func (c *Contingency) ConditionalEntropy() float64 {
	h := c.JointEntropy() - c.EntropyX()
	if h < 0 {
		return 0
	}
	return h
}

// FractionOfInformation returns F(X,Y) = I(X;Y)/H(Y) ∈ [0,1], the
// information-theoretic FD score of paper §2.1; 1 when Y has zero entropy.
// (fdx:numeric-kernel: entropy of a single label is exactly 0, so the
// degenerate case is an exact-zero sentinel, not a tolerance question.)
func (c *Contingency) FractionOfInformation() float64 {
	hy := c.EntropyY()
	if hy == 0 {
		return 1
	}
	f := c.MutualInformation() / hy
	if f > 1 {
		return 1
	}
	return f
}

func entropyOfMap(counts map[int]int) float64 {
	return Entropy(sortedCounts(counts))
}

// JointLabels composes multiple label sequences into a single label
// sequence over the product domain (labels are interned per distinct
// combination).
func JointLabels(seqs ...[]int) []int {
	if len(seqs) == 0 {
		return nil
	}
	n := len(seqs[0])
	out := make([]int, n)
	type key = string
	intern := map[key]int{}
	buf := make([]byte, 0, 8*len(seqs))
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, s := range seqs {
			v := s[i]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), '|')
		}
		k := string(buf)
		id, ok := intern[k]
		if !ok {
			id = len(intern)
			intern[k] = id
		}
		out[i] = id
	}
	return out
}
