package stats

import (
	"math/rand"
	"testing"

	"fdx/internal/linalg"
)

func TestStratifiedCovarianceSingleStratumEqualsPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := linalg.NewDense(40, 3)
	for i := 0; i < 40; i++ {
		for j := 0; j < 3; j++ {
			data.Set(i, j, rng.NormFloat64())
		}
	}
	plain := Covariance(data)
	strat := StratifiedCovariance(data, 1)
	if linalg.MaxAbsDiff(plain, strat) != 0 {
		t.Error("strata=1 should reduce to plain covariance")
	}
	// Non-divisible stratification falls back too.
	fallback := StratifiedCovariance(data, 7)
	if linalg.MaxAbsDiff(plain, fallback) != 0 {
		t.Error("non-divisible strata should fall back to plain covariance")
	}
}

func TestStratifiedCovarianceRemovesBlockShift(t *testing.T) {
	// Two blocks with identical within-block structure but shifted means:
	// the pooled covariance invents correlation; the stratified one must
	// not.
	rng := rand.New(rand.NewSource(32))
	n := 200
	data := linalg.NewDense(2*n, 2)
	for i := 0; i < n; i++ {
		data.Set(i, 0, rng.NormFloat64())
		data.Set(i, 1, rng.NormFloat64())
	}
	for i := n; i < 2*n; i++ {
		data.Set(i, 0, 10+rng.NormFloat64())
		data.Set(i, 1, 10+rng.NormFloat64())
	}
	pooled := Correlation(Covariance(data))
	strat := Correlation(StratifiedCovariance(data, 2))
	if pooled.At(0, 1) < 0.8 {
		t.Fatalf("pooled artifact missing: %v", pooled.At(0, 1))
	}
	if v := strat.At(0, 1); v > 0.2 || v < -0.2 {
		t.Errorf("stratified covariance kept block artifact: %v", v)
	}
}

func TestStratifiedCovarianceMatchesManualAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	strata, block, k := 4, 25, 3
	data := linalg.NewDense(strata*block, k)
	for i := 0; i < strata*block; i++ {
		for j := 0; j < k; j++ {
			data.Set(i, j, rng.NormFloat64())
		}
	}
	got := StratifiedCovariance(data, strata)
	want := linalg.NewDense(k, k)
	for s := 0; s < strata; s++ {
		sub := linalg.NewDense(block, k)
		for i := 0; i < block; i++ {
			copy(sub.Row(i), data.Row(s*block+i))
		}
		cov := Covariance(sub)
		for i, v := range cov.Data() {
			want.Data()[i] += v / float64(strata)
		}
	}
	if linalg.MaxAbsDiff(got, want) > 1e-12 {
		t.Error("parallel stratified covariance differs from manual average")
	}
}

func TestGammaPSeriesPath(t *testing.T) {
	// Small x relative to dof exercises the series branch of gammaQ.
	p := ChiSquaredPValue(0.5, 10) // x=0.25 < a+1=6 → series
	if p < 0.999 {
		t.Errorf("p(0.5, 10) = %v, want ≈1", p)
	}
	if got := ChiSquaredPValue(1, 4); got < 0.9 || got > 0.91 {
		// Known value: P(X²₄ ≥ 1) ≈ 0.9098.
		t.Errorf("p(1, 4) = %v, want ≈0.910", got)
	}
}

func TestEntropyXAndBounds(t *testing.T) {
	c := NewContingency([]int{0, 0, 1}, []int{1, 1, 0})
	if c.EntropyX() <= 0 || c.EntropyY() <= 0 {
		t.Error("entropies should be positive for mixed labels")
	}
	if c.MutualInformation() > c.EntropyX()+1e-12 {
		t.Error("MI exceeds H(X)")
	}
	empty := NewContingency(nil, nil)
	if empty.JointEntropy() != 0 || empty.MutualInformation() != 0 {
		t.Error("empty contingency entropies should be 0")
	}
	if ExpectedMutualInformation(empty) != 0 {
		t.Error("empty EMI should be 0")
	}
	if RFIUpperBound(empty) != 0 || ReliableFractionOfInformation(empty) != 0 {
		t.Error("empty RFI scores should be 0")
	}
}

func TestConstantYScores(t *testing.T) {
	c := NewContingency([]int{0, 1, 0, 1}, []int{7, 7, 7, 7})
	if c.FractionOfInformation() != 1 {
		t.Error("zero-entropy Y should give FI = 1 by convention")
	}
	if ReliableFractionOfInformation(c) != 0 {
		t.Error("zero-entropy Y should give RFI = 0 by convention")
	}
}

func TestInPlaceVariantsMatchCopying(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	data := linalg.NewDense(60, 4)
	for i := 0; i < 60; i++ {
		for j := 0; j < 4; j++ {
			data.Set(i, j, rng.NormFloat64())
		}
	}
	cov := Covariance(data)
	wantCorr := Correlation(cov)
	gotCorr := CorrelationInPlace(cov.Clone())
	if linalg.MaxAbsDiff(wantCorr, gotCorr) != 0 {
		t.Error("CorrelationInPlace differs from Correlation")
	}
	wantShrink := Shrink(cov, 0.05)
	gotShrink := ShrinkInPlace(cov.Clone(), 0.05)
	if linalg.MaxAbsDiff(wantShrink, gotShrink) != 0 {
		t.Error("ShrinkInPlace differs from Shrink")
	}
	// The originals must be untouched by the copying variants.
	if linalg.MaxAbsDiff(cov, Covariance(data)) != 0 {
		t.Error("copying variants mutated their input")
	}
}

func TestCovarianceConstantColumnHasZeroVariance(t *testing.T) {
	// One-pass raw moments subtract two nearly equal numbers for constant
	// columns; the diagonal must clamp at zero, never go negative.
	data := linalg.NewDense(30, 2)
	for i := 0; i < 30; i++ {
		data.Set(i, 0, 7.3)
		data.Set(i, 1, float64(i))
	}
	cov := Covariance(data)
	if v := cov.At(0, 0); v < 0 || v > 1e-10 {
		t.Errorf("constant column variance = %v, want ~0 and never negative", v)
	}
	corr := Correlation(cov)
	if corr.At(0, 0) != 1 || corr.At(0, 1) != 0 {
		t.Errorf("constant-column correlation row = [%v %v], want [1 0]", corr.At(0, 0), corr.At(0, 1))
	}
}
