package stats

import "math"

// ChiSquared returns the chi-squared independence statistic and its degrees
// of freedom for the contingency table. Cells with zero expected count are
// skipped. Marginals are visited in sorted key order so the statistic is
// bit-for-bit reproducible across runs.
func ChiSquared(c *Contingency) (stat float64, dof int) {
	if c.N == 0 {
		return 0, 0
	}
	n := float64(c.N)
	rows := sortedKeys(c.RowSum)
	cols := sortedKeys(c.ColSum)
	for _, rx := range rows {
		a := c.RowSum[rx]
		for _, cy := range cols {
			b := c.ColSum[cy]
			expected := float64(a) * float64(b) / n
			//fdx:lint-ignore floatcmp marginal counts are >=1 so expected>0; defensive exact-zero guard against division by zero
			if expected == 0 {
				continue
			}
			observed := float64(c.Joint[[2]int{rx, cy}])
			d := observed - expected
			stat += d * d / expected
		}
	}
	dof = (len(c.RowSum) - 1) * (len(c.ColSum) - 1)
	if dof < 0 {
		dof = 0
	}
	return stat, dof
}

// ChiSquaredPValue returns P(X² ≥ stat) for a chi-squared distribution with
// dof degrees of freedom, i.e. the upper regularized incomplete gamma
// Q(dof/2, stat/2).
func ChiSquaredPValue(stat float64, dof int) float64 {
	if dof <= 0 || stat <= 0 {
		return 1
	}
	return gammaQ(float64(dof)/2, stat/2)
}

// gammaQ computes the upper regularized incomplete gamma function Q(a, x)
// using the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes style).
// (fdx:numeric-kernel: x == 0 is the exact boundary value Q(a,0)=1.)
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinued(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// CramersV returns Cramér's V association measure in [0,1] for the table.
func CramersV(c *Contingency) float64 {
	stat, _ := ChiSquared(c)
	if c.N == 0 {
		return 0
	}
	k := len(c.RowSum)
	m := len(c.ColSum)
	minDim := k
	if m < minDim {
		minDim = m
	}
	if minDim <= 1 {
		return 0
	}
	v := math.Sqrt(stat / (float64(c.N) * float64(minDim-1)))
	if v > 1 {
		return 1
	}
	return v
}
