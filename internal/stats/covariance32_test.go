package stats

import (
	"math/rand"
	"testing"

	"fdx/internal/linalg"
)

// indicatorSamples builds matching float32/float64 copies of a random 0/1
// sample block — the pair-transform output the compact store carries.
func indicatorSamples(rng *rand.Rand, n, k int) (*linalg.Dense32, *linalg.Dense) {
	d32 := linalg.NewDense32(n, k)
	d64 := linalg.NewDense(n, k)
	for i := 0; i < n; i++ {
		r32, r64 := d32.Row(i), d64.Row(i)
		for j := 0; j < k; j++ {
			v := float64(rng.Intn(2))
			r32[j] = float32(v)
			r64[j] = v
		}
	}
	return d32, d64
}

func assertDenseBitIdentical(t *testing.T, name string, want, got *linalg.Dense) {
	t.Helper()
	wr, wc := want.Dims()
	gr, gc := got.Dims()
	if wr != gr || wc != gc {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, wr, wc, gr, gc)
	}
	for i, v := range want.Data() {
		if v != got.Data()[i] {
			t.Fatalf("%s: element %d differs bit-for-bit: %v vs %v", name, i, v, got.Data()[i])
		}
	}
}

// TestCovariance32BitIdentical pins the compact store's contract: on 0/1
// indicator samples (exact in float32, widened to float64 before any
// arithmetic) the covariance is bit-for-bit the float64 path's.
func TestCovariance32BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range [][2]int{{1, 1}, {7, 3}, {64, 9}, {200, 17}} {
		d32, d64 := indicatorSamples(rng, dims[0], dims[1])
		assertDenseBitIdentical(t, "covariance", Covariance(d64), Covariance32(d32))
	}
}

func TestStratifiedCovariance32BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	d32, d64 := indicatorSamples(rng, 120, 11)
	for _, strata := range []int{1, 2, 4, 7} { // 7 does not divide 120: exercises the uneven-split fallback
		want := StratifiedCovariance(d64, strata)
		got := StratifiedCovariance32(d32, strata)
		assertDenseBitIdentical(t, "stratified covariance", want, got)
	}
}

func TestCovariance32EmptyInput(t *testing.T) {
	cov := Covariance32(linalg.NewDense32(0, 4))
	if r, c := cov.Dims(); r != 4 || c != 4 {
		t.Fatalf("empty input: dims %dx%d", r, c)
	}
	for _, v := range cov.Data() {
		if v != 0 {
			t.Fatal("empty input produced nonzero covariance")
		}
	}
}
