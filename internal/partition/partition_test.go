package partition

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"fdx/internal/dataset"
)

func colFromInts(vals []int) *dataset.Column {
	c := dataset.NewColumn("x", dataset.Categorical)
	for _, v := range vals {
		if v < 0 {
			c.AppendMissing()
		} else {
			c.AppendValue(strconv.Itoa(v))
		}
	}
	return c
}

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = strconv.Itoa(v)
		}
		r.AppendRow(s)
	}
	return r
}

func TestFromColumnStripsSingletons(t *testing.T) {
	p := FromColumn(colFromInts([]int{1, 2, 1, 3, 2, 4}))
	if p.NumClasses() != 2 {
		t.Fatalf("classes = %v", p.Classes)
	}
	if p.Size() != 4 {
		t.Errorf("Size = %d, want 4", p.Size())
	}
	if p.N != 6 {
		t.Errorf("N = %d", p.N)
	}
}

func TestFromColumnNullsAreDistinct(t *testing.T) {
	p := FromColumn(colFromInts([]int{-1, -1, -1}))
	if p.NumClasses() != 0 {
		t.Errorf("NULLs must not group: %v", p.Classes)
	}
}

func TestSingle(t *testing.T) {
	p := Single(4)
	if p.NumClasses() != 1 || len(p.Classes[0]) != 4 {
		t.Errorf("Single(4) = %v", p.Classes)
	}
	if Single(1).NumClasses() != 0 {
		t.Error("Single(1) should be empty")
	}
}

func TestErrorMeasure(t *testing.T) {
	// {1,1,1,2}: one class of 3 → e = (3-1)/4 = 0.5.
	p := FromColumn(colFromInts([]int{1, 1, 1, 2}))
	if got := p.Error(); got != 0.5 {
		t.Errorf("Error = %v, want 0.5", got)
	}
	// All distinct → key → 0.
	if got := FromColumn(colFromInts([]int{1, 2, 3})).Error(); got != 0 {
		t.Errorf("key Error = %v", got)
	}
	if (&Partition{}).Error() != 0 {
		t.Error("empty partition error should be 0")
	}
}

func TestProductMatchesDirectConstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		pa, pb := FromColumn(colFromInts(a)), FromColumn(colFromInts(b))
		prod := Product(pa, pb)
		// Direct: group by the (a,b) value pair.
		groups := map[[2]int][]int{}
		for i := range a {
			k := [2]int{a[i], b[i]}
			groups[k] = append(groups[k], i)
		}
		var want [][]int
		//fdx:lint-ignore maporder samePartition sorts both sides before comparing; group order is irrelevant
		for _, g := range groups {
			if len(g) >= 2 {
				want = append(want, g)
			}
		}
		return samePartition(prod.Classes, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func samePartition(a, b [][]int) bool {
	norm := func(cs [][]int) []string {
		out := make([]string, 0, len(cs))
		for _, c := range cs {
			cc := append([]int(nil), c...)
			sort.Ints(cc)
			s := ""
			for _, v := range cc {
				s += strconv.Itoa(v) + ","
			}
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}
	na, nb := norm(a), norm(b)
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

func TestProductIsMeet(t *testing.T) {
	// Product refines both inputs; product with Single is identity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		pa, pb := FromColumn(colFromInts(a)), FromColumn(colFromInts(b))
		prod := Product(pa, pb)
		if !prod.Refines(pa) || !prod.Refines(pb) {
			return false
		}
		idp := Product(pa, Single(n))
		return samePartition(idp.Classes, pa.Classes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRefinesPartialOrder(t *testing.T) {
	a := FromColumn(colFromInts([]int{0, 0, 1, 1}))
	fine := FromColumn(colFromInts([]int{0, 0, 1, 2}))
	if !fine.Refines(a) {
		t.Error("finer partition should refine coarser")
	}
	if a.Refines(fine) {
		t.Error("coarser must not refine finer")
	}
	if !a.Refines(a) {
		t.Error("Refines must be reflexive")
	}
}

func TestG3ErrorExactFD(t *testing.T) {
	// X = {0,0,1,1}, Y = {5,5,7,7}: X→Y exact.
	rel := relFromCodes([][]int{{0, 5}, {0, 5}, {1, 7}, {1, 7}}, "x", "y")
	px := FromColumns(rel, []int{0})
	pxy := FromColumns(rel, []int{0, 1})
	if g := G3Error(px, pxy); g != 0 {
		t.Errorf("g3 = %v, want 0", g)
	}
	if Violates(px, pxy) {
		t.Error("exact FD flagged as violated")
	}
}

func TestG3ErrorApproximateFD(t *testing.T) {
	// X class {0,1,2} maps to Y values {5,5,9} → 1 removal; N=4 → 0.25.
	rel := relFromCodes([][]int{{0, 5}, {0, 5}, {0, 9}, {1, 7}}, "x", "y")
	px := FromColumns(rel, []int{0})
	pxy := FromColumns(rel, []int{0, 1})
	if g := G3Error(px, pxy); g != 0.25 {
		t.Errorf("g3 = %v, want 0.25", g)
	}
	if !Violates(px, pxy) {
		t.Error("violated FD not flagged")
	}
}

func TestG3ErrorBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = []int{rng.Intn(3), rng.Intn(3)}
		}
		rel := relFromCodes(rows, "x", "y")
		px := FromColumns(rel, []int{0})
		pxy := FromColumns(rel, []int{0, 1})
		g := G3Error(px, pxy)
		return g >= 0 && g <= 1 && (g == 0) == !Violates(px, pxy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromColumnsEmptySet(t *testing.T) {
	rel := relFromCodes([][]int{{0}, {1}, {0}}, "x")
	p := FromColumns(rel, nil)
	if p.NumClasses() != 1 || len(p.Classes[0]) != 3 {
		t.Errorf("empty set partition = %v", p.Classes)
	}
}

func TestFromColumnsMultiAttribute(t *testing.T) {
	rel := relFromCodes([][]int{{0, 0, 1}, {0, 0, 1}, {0, 1, 2}, {1, 0, 3}}, "a", "b", "c")
	p := FromColumns(rel, []int{0, 1})
	if p.NumClasses() != 1 || len(p.Classes[0]) != 2 {
		t.Errorf("partition over {a,b} = %v", p.Classes)
	}
}
