// Package partition implements stripped partitions (position list indices)
// — the workhorse data structure of lattice-based FD discovery (TANE,
// PYRO). A stripped partition of the tuples under an attribute set X keeps
// only the equivalence classes of size ≥ 2; singleton classes carry no FD
// violations and are dropped.
package partition

import (
	"sort"

	"fdx/internal/dataset"
)

// Partition is a stripped partition over N tuples.
type Partition struct {
	// N is the total number of tuples in the relation.
	N int
	// Classes holds the equivalence classes with ≥2 members; row indices
	// within a class are in ascending order of first appearance.
	Classes [][]int
}

// FromColumn builds the stripped partition of a single attribute. NULLs are
// pairwise distinct (a NULL equals nothing), matching the constraint-based
// reading of FDs over incomplete data.
func FromColumn(col *dataset.Column) *Partition {
	n := col.Len()
	groups := make(map[int32][]int)
	order := make([]int32, 0)
	for i := 0; i < n; i++ {
		code := col.Code(i)
		if code == dataset.Missing {
			continue // NULL: singleton by definition
		}
		if _, seen := groups[code]; !seen {
			order = append(order, code)
		}
		groups[code] = append(groups[code], i)
	}
	p := &Partition{N: n}
	for _, code := range order {
		if g := groups[code]; len(g) >= 2 {
			p.Classes = append(p.Classes, g)
		}
	}
	return p
}

// Single returns the partition with one class containing every tuple — the
// partition of the empty attribute set.
func Single(n int) *Partition {
	if n < 2 {
		return &Partition{N: n}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return &Partition{N: n, Classes: [][]int{all}}
}

// NumClasses returns the number of (stripped) classes.
func (p *Partition) NumClasses() int { return len(p.Classes) }

// Size returns ‖π‖ = Σ|c| over stripped classes, the number of tuples that
// participate in some class of size ≥ 2.
func (p *Partition) Size() int {
	s := 0
	for _, c := range p.Classes {
		s += len(c)
	}
	return s
}

// Error returns e(π) = (‖π‖ − |π|) / N: the minimum fraction of tuples to
// remove so that the partition's attribute set becomes a key (TANE's key
// error measure). 0 for n < 1.
func (p *Partition) Error() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.Size()-len(p.Classes)) / float64(p.N)
}

// Product computes the stripped partition of X ∪ Y from the partitions of X
// and Y using the standard linear-time probe-table algorithm.
func Product(a, b *Partition) *Partition {
	// probe[t] = index of t's class in a, or -1.
	probe := make([]int, a.N)
	for i := range probe {
		probe[i] = -1
	}
	for ci, class := range a.Classes {
		for _, t := range class {
			probe[t] = ci
		}
	}
	out := &Partition{N: a.N}
	// For each class of b, bucket members by their class in a. Classes are
	// emitted in sorted a-class order so the product is deterministic.
	buckets := make(map[int][]int)
	var cas []int
	for _, class := range b.Classes {
		cas = cas[:0]
		for _, t := range class {
			if ca := probe[t]; ca >= 0 {
				if len(buckets[ca]) == 0 {
					cas = append(cas, ca)
				}
				buckets[ca] = append(buckets[ca], t)
			}
		}
		sort.Ints(cas)
		for _, ca := range cas {
			members := buckets[ca]
			if len(members) >= 2 {
				cp := make([]int, len(members))
				copy(cp, members)
				out.Classes = append(out.Classes, cp)
			}
			delete(buckets, ca)
		}
	}
	return out
}

// FromColumns builds the stripped partition of an attribute set by
// iterated products.
func FromColumns(rel *dataset.Relation, attrs []int) *Partition {
	if len(attrs) == 0 {
		return Single(rel.NumRows())
	}
	p := FromColumn(rel.Columns[attrs[0]])
	for _, a := range attrs[1:] {
		p = Product(p, FromColumn(rel.Columns[a]))
	}
	return p
}

// Refines reports whether p refines q: every class of p is contained in a
// single class of q (treating stripped singletons as their own classes).
func (p *Partition) Refines(q *Partition) bool {
	cls := make([]int, q.N)
	for i := range cls {
		cls[i] = -(i + 1) // unique negative id per singleton
	}
	for ci, class := range q.Classes {
		for _, t := range class {
			cls[t] = ci
		}
	}
	for _, class := range p.Classes {
		first := cls[class[0]]
		for _, t := range class[1:] {
			if cls[t] != first {
				return false
			}
		}
	}
	return true
}

// G3Error returns the g3 error of the FD X→Y given Π_X and Π_{X∪Y}: the
// minimum fraction of tuples whose removal makes the FD exact. For each
// class c of Π_X it costs |c| − (size of the largest sub-class of c in
// Π_{X∪Y}).
func G3Error(px, pxy *Partition) float64 {
	if px.N == 0 {
		return 0
	}
	// Map tuple → class id in Π_{XY}; singletons get -1.
	cls := make([]int, px.N)
	for i := range cls {
		cls[i] = -1
	}
	for ci, class := range pxy.Classes {
		for _, t := range class {
			cls[t] = ci
		}
	}
	removed := 0
	counts := make(map[int]int)
	for _, class := range px.Classes {
		max := 1 // a singleton sub-class can always be kept
		for _, t := range class {
			if id := cls[t]; id >= 0 {
				counts[id]++
				if counts[id] > max {
					max = counts[id]
				}
			}
		}
		for id := range counts {
			delete(counts, id)
		}
		removed += len(class) - max
	}
	return float64(removed) / float64(px.N)
}

// Violates reports whether the FD with LHS partition px and combined
// partition pxy has any violating tuple pair (exact check: g3 > 0 iff the
// FD does not hold exactly).
func Violates(px, pxy *Partition) bool {
	// The FD holds exactly iff Π_X refines Π_{X∪Y}^-1... equivalently iff
	// ‖·‖−|·| match: e(X) == e(XY) in TANE terms. Cheaper: compare sizes.
	return px.Size()-px.NumClasses() != pxy.Size()-pxy.NumClasses()
}
