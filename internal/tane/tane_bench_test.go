package tane

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/dataset"
)

func benchRelation(rows, cols int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int, rows)
	for i := range data {
		data[i] = make([]int, cols)
		for j := range data[i] {
			if j%2 == 1 {
				data[i][j] = data[i][j-1] % 4 // planted pairwise FDs
			} else {
				data[i][j] = rng.Intn(8)
			}
		}
	}
	names := make([]string, cols)
	for j := range names {
		names[j] = "a" + strconv.Itoa(j)
	}
	return relFromCodes(data, names...)
}

func BenchmarkTane1kx8(b *testing.B) {
	rel := benchRelation(1000, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discover(rel, Options{MaxLHS: 3})
	}
}

func BenchmarkTane1kx12(b *testing.B) {
	rel := benchRelation(1000, 12, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discover(rel, Options{MaxLHS: 3})
	}
}
