// Package tane implements the TANE algorithm for discovering minimal
// (approximate) functional dependencies (Huhtala, Kärkkäinen, Porkka,
// Toivonen 1999): a levelwise search over the attribute-set lattice with
// stripped partitions, rhs⁺ candidate pruning, and key pruning. Approximate
// FDs are admitted when their g3 error is at most MaxError — the "noise
// expected" hyper-parameter the paper refers to in §5.1.
package tane

import (
	"time"

	"fdx/internal/attrset"
	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/partition"
)

// Options configures TANE.
type Options struct {
	// MaxError is the g3 threshold under which an approximate FD is
	// accepted (0 = exact FDs only).
	MaxError float64
	// MaxLHS caps the determinant-set size (0 = no cap). Lattice levels
	// above the cap are not generated.
	MaxLHS int
	// MaxFDs stops discovery after this many FDs (0 = unlimited); a safety
	// valve on wide noisy data where syntactic discovery explodes.
	MaxFDs int
	// Deadline, when non-zero, makes the search stop and return partial
	// results once the wall clock passes it (cooperative cancellation for
	// harness timeouts).
	Deadline time.Time
}

// Discover returns the minimal non-trivial FDs of the relation.
func Discover(rel *dataset.Relation, opts Options) []core.FD {
	n := rel.NumRows()
	k := rel.NumCols()
	if k == 0 || n == 0 {
		return nil
	}
	full := attrset.Full(k)

	type node struct {
		set  attrset.Set
		part *partition.Partition
		// rhs is TANE's C⁺(X): attributes still admissible as the RHS of
		// an FD whose LHS is a subset of X.
		rhs attrset.Set
	}

	// Level 1: single attributes.
	level := make([]*node, 0, k)
	parts := map[string]*partition.Partition{}
	emptyErr := partition.Single(n).Error()
	for a := 0; a < k; a++ {
		p := partition.FromColumn(rel.Columns[a])
		s := attrset.New(a)
		parts[s.Key()] = p
		level = append(level, &node{set: s, part: p, rhs: full})
	}
	// FDs of the form ∅ → A (constant columns): admitted when the empty
	// LHS determines A within the error budget. TANE reports these as the
	// level-1 check with X = {A}; we fold them into the rhs⁺ bookkeeping
	// by simply skipping them (constant columns rarely matter for the
	// benchmark comparison and the paper's edge-based metric ignores
	// empty LHS).
	_ = emptyErr

	var fds []core.FD
	rhsPlus := map[string]attrset.Set{}
	for _, nd := range level {
		rhsPlus[nd.set.Key()] = nd.rhs
	}

	// resolveCPlus returns C⁺(s), deriving it as the intersection of the
	// immediate subsets' C⁺ when s itself was never generated (its branch
	// was key-pruned). This keeps the key rule's minimality test complete:
	// the sibling sets it consults need not exist in the lattice.
	var resolveCPlus func(s attrset.Set) (attrset.Set, bool)
	resolveCPlus = func(s attrset.Set) (attrset.Set, bool) {
		if r, ok := rhsPlus[s.Key()]; ok {
			return r, true
		}
		if s.Len() <= 1 {
			return attrset.Set{}, false
		}
		out := full
		for _, c := range s.Members() {
			sub, ok := resolveCPlus(s.Without(c))
			if !ok {
				return attrset.Set{}, false
			}
			out = out.Intersect(sub)
		}
		rhsPlus[s.Key()] = out
		return out, true
	}

	maxLevel := k
	if opts.MaxLHS > 0 && opts.MaxLHS+1 < maxLevel {
		maxLevel = opts.MaxLHS + 1
	}

	for lvl := 2; lvl <= maxLevel && len(level) > 0; lvl++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			break
		}
		next := apriori(level, func(nd *node) attrset.Set { return nd.set })
		// Phase A: compute partitions and C⁺ sets, check LHS-inside FDs,
		// and record every candidate's C⁺ — key candidates included, since
		// sibling minimality checks in phase B consult them.
		processed := make([]*node, 0, len(next))
		for ci, cand := range next {
			if ci%64 == 0 && !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
				core.SortFDs(fds)
				return fds
			}
			// Compute C⁺(X) = ∩_{A∈X} C⁺(X \ {A}); missing subsets mean a
			// pruned branch.
			rhs := full
			ok := true
			for _, a := range cand.Members() {
				sub := cand.Without(a)
				r, found := rhsPlus[sub.Key()]
				if !found {
					ok = false
					break
				}
				rhs = rhs.Intersect(r)
			}
			if !ok || rhs.IsEmpty() {
				continue
			}
			// Partition via product of two subsets.
			ms := cand.Members()
			p1, ok1 := parts[cand.Without(ms[0]).Key()]
			p2, ok2 := parts[cand.Without(ms[1]).Key()]
			if !ok1 || !ok2 {
				continue
			}
			p := partition.Product(p1, p2)
			parts[cand.Key()] = p

			// Check FDs X\{A} → A for A ∈ X ∩ C⁺(X).
			for _, a := range cand.Intersect(rhs).Members() {
				if !rhs.Has(a) {
					continue // removed by an earlier exact FD this node
				}
				lhs := cand.Without(a)
				pl := parts[lhs.Key()]
				if pl == nil {
					continue
				}
				g3 := partition.G3Error(pl, p)
				if g3 <= opts.MaxError {
					fd := core.FD{LHS: lhs.Members(), RHS: a, Score: 1 - g3}
					fd.Normalize()
					fds = append(fds, fd)
					if opts.MaxFDs > 0 && len(fds) >= opts.MaxFDs {
						core.SortFDs(fds)
						return fds
					}
					rhs = rhs.Without(a)
					//fdx:lint-ignore floatcmp G3 is a ratio of violation counts; exactly zero means a violation-free FD, enabling TANE rule 2
					if g3 == 0 {
						// Exact FD: no attribute outside X can be a
						// minimal RHS for supersets (TANE rule 2).
						rhs = rhs.Minus(full.Minus(cand))
					}
				}
			}
			rhsPlus[cand.Key()] = rhs
			processed = append(processed, &node{set: cand, part: p, rhs: rhs})
		}

		// Phase B: key pruning. A (super)key candidate emits its remaining
		// minimal FDs X → A for A ∈ C⁺(X)\X, then leaves the lattice;
		// candidates with empty C⁺ leave silently.
		newLevel := make([]*node, 0, len(processed))
		for _, nd := range processed {
			cand, p, rhs := nd.set, nd.part, nd.rhs
			if p.Error() <= opts.MaxError {
				for _, a := range rhs.Minus(cand).Members() {
					// Minimality: A must be in C⁺(X∪{A}\{B}) for all B∈X.
					minimal := true
					withA := cand.With(a)
					for _, b := range cand.Members() {
						r, found := resolveCPlus(withA.Without(b))
						if !found || !r.Has(a) {
							minimal = false
							break
						}
					}
					if !minimal {
						continue
					}
					pa := parts[attrset.New(a).Key()]
					pxa := partition.Product(p, pa)
					if partition.G3Error(p, pxa) <= opts.MaxError {
						fd := core.FD{LHS: cand.Members(), RHS: a, Score: 1}
						fd.Normalize()
						fds = append(fds, fd)
						if opts.MaxFDs > 0 && len(fds) >= opts.MaxFDs {
							core.SortFDs(fds)
							return fds
						}
					}
				}
				continue
			}
			if rhs.IsEmpty() {
				continue
			}
			newLevel = append(newLevel, nd)
		}
		level = newLevel
	}
	core.SortFDs(fds)
	return fds
}

// apriori generates the candidate sets of the next level: unions of two
// current-level sets differing in exactly one attribute, keeping only
// candidates all of whose immediate subsets are present.
func apriori[T any](level []T, set func(T) attrset.Set) []attrset.Set {
	present := map[string]bool{}
	for _, nd := range level {
		present[set(nd).Key()] = true
	}
	seen := map[string]bool{}
	var out []attrset.Set
	for i := 0; i < len(level); i++ {
		si := set(level[i])
		for j := i + 1; j < len(level); j++ {
			sj := set(level[j])
			u := si.Union(sj)
			if u.Len() != si.Len()+1 {
				continue
			}
			key := u.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			// All (|u|−1)-subsets must exist in the current level.
			all := true
			for _, a := range u.Members() {
				if !present[u.Without(a).Key()] {
					all = false
					break
				}
			}
			if all {
				out = append(out, u)
			}
		}
	}
	return out
}
