package tane

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			if v < 0 {
				s[j] = ""
			} else {
				s[j] = strconv.Itoa(v)
			}
		}
		r.AppendRow(s)
	}
	return r
}

// bruteMinimalFDs enumerates all exact minimal non-trivial FDs of a tiny
// relation by direct definition checking.
func bruteMinimalFDs(rel *dataset.Relation) []core.FD {
	k := rel.NumCols()
	n := rel.NumRows()
	holds := func(lhs []int, rhs int) bool {
		type key = string
		seen := map[key]int32{}
		for i := 0; i < n; i++ {
			sk := ""
			valid := true
			for _, a := range lhs {
				c := rel.Columns[a].Code(i)
				if c == dataset.Missing {
					valid = false
					break
				}
				sk += strconv.Itoa(int(c)) + "|"
			}
			if !valid {
				continue // NULL on LHS: tuple matches no other tuple
			}
			y := rel.Columns[rhs].Code(i)
			if prev, ok := seen[sk]; ok {
				if prev != y {
					return false
				}
			} else {
				seen[sk] = y
			}
		}
		return true
	}
	var all []core.FD
	// Enumerate subsets by bitmask.
	for rhs := 0; rhs < k; rhs++ {
		var valid [][]int
		for mask := 1; mask < (1 << k); mask++ {
			if mask&(1<<rhs) != 0 {
				continue
			}
			var lhs []int
			for a := 0; a < k; a++ {
				if mask&(1<<a) != 0 {
					lhs = append(lhs, a)
				}
			}
			if holds(lhs, rhs) {
				valid = append(valid, lhs)
			}
		}
		// Keep minimal.
		for i, lhs := range valid {
			minimal := true
			for j, other := range valid {
				if i == j {
					continue
				}
				if isSubset(other, lhs) && len(other) < len(lhs) {
					minimal = false
					break
				}
			}
			if minimal {
				fd := core.FD{LHS: lhs, RHS: rhs}
				fd.Normalize()
				all = append(all, fd)
			}
		}
	}
	core.SortFDs(all)
	return all
}

func isSubset(a, b []int) bool {
	set := map[int]bool{}
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

func fdsEqual(a, b []core.FD) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].RHS != b[i].RHS || len(a[i].LHS) != len(b[i].LHS) {
			return false
		}
		for j := range a[i].LHS {
			if a[i].LHS[j] != b[i].LHS[j] {
				return false
			}
		}
	}
	return true
}

func TestTaneMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		k := 2 + rng.Intn(3)
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, k)
			for j := range rows[i] {
				rows[i][j] = rng.Intn(3)
			}
		}
		names := make([]string, k)
		for j := range names {
			names[j] = "a" + strconv.Itoa(j)
		}
		rel := relFromCodes(rows, names...)
		got := Discover(rel, Options{})
		want := bruteMinimalFDs(rel)
		if !fdsEqual(got, want) {
			t.Logf("seed %d rel %v\n got %v\nwant %v", seed, rows, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTaneSimpleChain(t *testing.T) {
	// a determines b, b determines c (a 1:1 chain with distinct values).
	rows := [][]int{{0, 0, 0}, {1, 1, 0}, {2, 2, 1}, {0, 0, 0}, {3, 3, 1}}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{})
	want := bruteMinimalFDs(rel)
	if !fdsEqual(fds, want) {
		t.Errorf("got %v want %v", fds, want)
	}
}

func TestTaneApproximateFD(t *testing.T) {
	// a→b holds on 9 of 10 tuples (one violation).
	rows := [][]int{
		{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 1},
		{1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2},
	}
	rel := relFromCodes(rows, "a", "b")
	if fds := Discover(rel, Options{MaxError: 0}); len(fds) != 1 {
		// b→a holds exactly (each b value maps to one a).
		t.Fatalf("exact FDs = %v", fds)
	}
	fds := Discover(rel, Options{MaxError: 0.1})
	found := false
	for _, fd := range fds {
		if fd.RHS == 1 && len(fd.LHS) == 1 && fd.LHS[0] == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("approximate FD a→b not found at 10%% budget: %v", fds)
	}
}

func TestTaneMaxLHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]int, 30)
	for i := range rows {
		rows[i] = []int{rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3)}
	}
	rel := relFromCodes(rows, "a", "b", "c", "d")
	fds := Discover(rel, Options{MaxLHS: 1})
	for _, fd := range fds {
		if len(fd.LHS) > 1 {
			t.Errorf("MaxLHS violated: %v", fd)
		}
	}
}

func TestTaneMaxFDs(t *testing.T) {
	rows := [][]int{{0, 0, 0, 0}, {1, 1, 1, 1}, {2, 2, 2, 2}}
	rel := relFromCodes(rows, "a", "b", "c", "d")
	fds := Discover(rel, Options{MaxFDs: 2})
	if len(fds) != 2 {
		t.Errorf("MaxFDs ignored: %d FDs", len(fds))
	}
}

func TestTaneNullsAreDistinct(t *testing.T) {
	// With NULLs pairwise distinct, a→b holds (each NULL row is its own
	// class on the LHS).
	rows := [][]int{{-1, 0}, {-1, 1}, {0, 2}, {0, 2}}
	rel := relFromCodes(rows, "a", "b")
	fds := Discover(rel, Options{})
	found := false
	for _, fd := range fds {
		if fd.RHS == 1 && len(fd.LHS) == 1 && fd.LHS[0] == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("a→b should hold with distinct NULLs: %v", fds)
	}
}

func TestTaneEmptyRelation(t *testing.T) {
	if fds := Discover(dataset.New("t"), Options{}); fds != nil {
		t.Errorf("empty relation FDs = %v", fds)
	}
	rel := dataset.New("t", "a")
	if fds := Discover(rel, Options{}); fds != nil {
		t.Errorf("zero-row relation FDs = %v", fds)
	}
}
