package ind

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/dataset"
)

func relFromRows(rows [][]string, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		r.AppendRow(row)
	}
	return r
}

func hasIND(inds []IND, dep, ref int) bool {
	for _, d := range inds {
		if d.Dependent == dep && d.Referenced == ref {
			return true
		}
	}
	return false
}

func TestDiscoverExactInclusion(t *testing.T) {
	// orders.customer ⊆ customers.id (column 1 ⊆ column 0).
	var rows [][]string
	for i := 0; i < 20; i++ {
		rows = append(rows, []string{strconv.Itoa(i), strconv.Itoa(i % 7)})
	}
	rel := relFromRows(rows, "id", "customer")
	inds := Discover(rel, Options{})
	if !hasIND(inds, 1, 0) {
		t.Fatalf("customer ⊆ id not found: %v", inds)
	}
	if hasIND(inds, 0, 1) {
		t.Errorf("reverse inclusion should not hold: %v", inds)
	}
	for _, d := range inds {
		if d.Dependent == 1 && d.Referenced == 0 {
			if d.Coverage != 1 || !d.KeyLike {
				t.Errorf("ind = %+v", d)
			}
		}
	}
}

func TestDiscoverApproximateInclusion(t *testing.T) {
	rows := [][]string{
		{"a", "a"}, {"b", "b"}, {"c", "c"}, {"d", "zz"},
	}
	rel := relFromRows(rows, "ref", "dep")
	strict := Discover(rel, Options{})
	if hasIND(strict, 1, 0) {
		t.Errorf("25%%-violating inclusion accepted at zero budget: %v", strict)
	}
	loose := Discover(rel, Options{MaxError: 0.3})
	if !hasIND(loose, 1, 0) {
		t.Errorf("approximate inclusion missed: %v", loose)
	}
}

func TestNullsIgnored(t *testing.T) {
	rows := [][]string{
		{"a", "a"}, {"b", ""}, {"c", "c"},
	}
	rel := relFromRows(rows, "ref", "dep")
	inds := Discover(rel, Options{})
	if !hasIND(inds, 1, 0) {
		t.Errorf("NULLs should not break inclusion: %v", inds)
	}
}

func TestMinDistinctFilter(t *testing.T) {
	rows := [][]string{{"x", "a"}, {"x", "b"}, {"x", "c"}}
	rel := relFromRows(rows, "constant", "vals")
	inds := Discover(rel, Options{})
	if hasIND(inds, 0, 1) {
		t.Errorf("single-valued dependent accepted: %v", inds)
	}
}

func TestTypeMatchFilter(t *testing.T) {
	rel := dataset.New("t", "num", "cat")
	rel.Columns[0] = dataset.NewColumn("num", dataset.Numeric)
	rel.Columns[1] = dataset.NewColumn("cat", dataset.Categorical)
	for i := 0; i < 10; i++ {
		rel.Columns[0].AppendValue(strconv.Itoa(i))
		rel.Columns[1].AppendValue(strconv.Itoa(i))
	}
	if inds := Discover(rel, Options{}); len(inds) != 0 {
		t.Errorf("cross-type inclusion accepted by default: %v", inds)
	}
	if inds := Discover(rel, Options{AllowTypeMismatch: true}); len(inds) == 0 {
		t.Error("AllowTypeMismatch had no effect")
	}
}

func TestForeignKeyCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rows [][]string
	for i := 0; i < 50; i++ {
		rows = append(rows, []string{
			strconv.Itoa(i),                 // id (key)
			strconv.Itoa(rng.Intn(20)),      // fk ⊆ id
			"c" + strconv.Itoa(i%3),         // low-cardinality category
			"c" + strconv.Itoa(rng.Intn(3)), // same domain as category
		})
	}
	rel := relFromRows(rows, "id", "fk", "cat1", "cat2")
	inds := Discover(rel, Options{})
	fks := ForeignKeyCandidates(inds)
	foundFK := false
	for _, d := range fks {
		if d.Dependent == 1 && d.Referenced == 0 {
			foundFK = true
		}
		// Mutual category inclusions must be filtered out.
		if (d.Dependent == 2 && d.Referenced == 3) || (d.Dependent == 3 && d.Referenced == 2) {
			t.Errorf("mutual inclusion kept as FK: %+v", d)
		}
	}
	if !foundFK {
		t.Errorf("fk ⊆ id not a foreign-key candidate: %v", fks)
	}
}

func TestDiscoverDegenerate(t *testing.T) {
	if inds := Discover(dataset.New("t"), Options{}); inds != nil {
		t.Error("empty relation should yield nil")
	}
	one := relFromRows([][]string{{"a"}}, "x")
	if inds := Discover(one, Options{}); inds != nil {
		t.Error("single column should yield nil")
	}
}

func TestSortingStrongestFirst(t *testing.T) {
	rows := [][]string{
		{"a", "a", "a"}, {"b", "b", "x"}, {"c", "c", "c"}, {"d", "d", "d"},
	}
	rel := relFromRows(rows, "ref", "exact", "partial")
	inds := Discover(rel, Options{MaxError: 0.5})
	for i := 1; i < len(inds); i++ {
		if inds[i-1].Coverage < inds[i].Coverage {
			t.Fatalf("not sorted by coverage: %v", inds)
		}
	}
}
