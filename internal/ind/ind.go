// Package ind discovers unary (approximate) inclusion dependencies —
// value-containment relationships A ⊆ B between attributes, the signal
// behind foreign-key detection in data-profiling suites. Together with FDs
// (internal/core) and keys (internal/ucc) it completes the profiling
// triad the FDX paper positions its system within (§1, data profiling).
package ind

import (
	"sort"

	"fdx/internal/dataset"
)

// Options configures discovery.
type Options struct {
	// MaxError is the tolerated fraction of the dependent attribute's
	// distinct values missing from the referenced attribute (0 = exact
	// inclusion).
	MaxError float64
	// MinDistinct skips dependent attributes with fewer distinct values
	// (default 2): tiny domains are trivially included everywhere.
	MinDistinct int
	// RequireTypeMatch restricts candidates to attribute pairs of the same
	// inferred type (default behaviour; set AllowTypeMismatch to lift).
	AllowTypeMismatch bool
}

func (o *Options) defaults() {
	if o.MinDistinct == 0 {
		o.MinDistinct = 2
	}
}

// IND is one discovered inclusion dependency: Dependent ⊆ Referenced.
type IND struct {
	// Dependent and Referenced are attribute indices (Dependent's values
	// are contained in Referenced's).
	Dependent, Referenced int
	// Coverage is the fraction of the dependent attribute's distinct
	// values present in the referenced attribute (1 = exact inclusion).
	Coverage float64
	// KeyLike reports whether the referenced attribute is (approximately)
	// unique — the foreign-key shape.
	KeyLike bool
}

// Discover returns the unary INDs of the relation, strongest first. Only
// distinct non-missing values participate (NULLs are ignored, matching the
// SQL semantics of referential integrity).
func Discover(rel *dataset.Relation, opts Options) []IND {
	opts.defaults()
	k := rel.NumCols()
	n := rel.NumRows()
	if k < 2 || n == 0 {
		return nil
	}
	// Distinct value sets per attribute.
	values := make([]map[string]bool, k)
	for j, col := range rel.Columns {
		set := map[string]bool{}
		for i := 0; i < n; i++ {
			if v, ok := col.Value(i); ok {
				set[v] = true
			}
		}
		values[j] = set
	}
	keyLike := make([]bool, k)
	for j, col := range rel.Columns {
		nonMissing := n - col.MissingCount()
		keyLike[j] = nonMissing > 0 && float64(len(values[j])) >= 0.99*float64(nonMissing)
	}

	var out []IND
	for a := 0; a < k; a++ {
		if len(values[a]) < opts.MinDistinct {
			continue
		}
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			if !opts.AllowTypeMismatch && rel.Columns[a].Type != rel.Columns[b].Type {
				continue
			}
			missing := 0
			for v := range values[a] {
				if !values[b][v] {
					missing++
				}
			}
			err := float64(missing) / float64(len(values[a]))
			if err > opts.MaxError {
				continue
			}
			out = append(out, IND{
				Dependent:  a,
				Referenced: b,
				Coverage:   1 - err,
				KeyLike:    keyLike[b],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//fdx:lint-ignore floatcmp exact compare keeps the comparator transitive; equal coverages fall through to index tie-breaks
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		if out[i].Dependent != out[j].Dependent {
			return out[i].Dependent < out[j].Dependent
		}
		return out[i].Referenced < out[j].Referenced
	})
	return out
}

// ForeignKeyCandidates filters the INDs down to the foreign-key shape:
// the referenced attribute is key-like and the pair is not a mutual
// (same-domain) inclusion.
func ForeignKeyCandidates(inds []IND) []IND {
	mutual := map[[2]int]bool{}
	for _, d := range inds {
		mutual[[2]int{d.Dependent, d.Referenced}] = true
	}
	var out []IND
	for _, d := range inds {
		if !d.KeyLike {
			continue
		}
		if mutual[[2]int{d.Referenced, d.Dependent}] {
			continue // both directions hold: same domain, not a reference
		}
		out = append(out, d)
	}
	return out
}
