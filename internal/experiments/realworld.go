package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fdx"
	"fdx/internal/realdata"
	"fdx/internal/rfi"
)

// realWorldNoise is the error budget used by the syntactic methods on the
// real-world replicas (they carry a few percent missing cells).
const realWorldNoise = 0.05

// Table6 reproduces the real-world comparison (paper Table 6): runtime and
// number of discovered FDs per method per data set.
func Table6(cfg Config) *Table {
	t := &Table{
		Title:  "Table 6: runtime (s) and #FDs on real-world data sets",
		Header: append([]string{"Data set", "Measure"}, MethodNames()...),
	}
	for _, name := range realdata.Names() {
		rel, _ := realdata.ByName(name, cfg.Seed)
		if cfg.Fast && rel.NumRows() > 2000 {
			rel = sampleRows(rel, 2000, cfg.Seed)
		}
		timeRow := []string{name, "time (sec)"}
		fdRow := []string{"", "# of FDs"}
		for _, m := range methodRoster(realWorldNoise, cfg.Seed, cfg.Fast) {
			cfg.logf("table6: %s on %s", m.Name(), name)
			r := runWithTimeout(m, rel, cfg.timeout())
			if r.timedOut || r.err != nil {
				timeRow = append(timeRow, "-")
				fdRow = append(fdRow, "-")
				continue
			}
			timeRow = append(timeRow, fmtDur(r.duration))
			fdRow = append(fdRow, strconv.Itoa(len(r.fds)))
		}
		t.Rows = append(t.Rows, timeRow, fdRow)
	}
	return t
}

// sampleRows takes the first n rows of a relation (used only in fast mode).
func sampleRows(rel *fdx.Relation, n int, seed int64) *fdx.Relation {
	out := fdx.NewRelation(rel.Name, rel.AttrNames()...)
	for j, c := range out.Columns {
		c.Type = rel.Columns[j].Type
	}
	if n > rel.NumRows() {
		n = rel.NumRows()
	}
	for i := 0; i < n; i++ {
		out.AppendRow(rel.Row(i))
	}
	return out
}

// Figure3 reproduces the Hospital case study (paper Figure 3): the
// autoregression matrix estimated by FDX rendered as a heatmap plus the
// discovered FDs.
func Figure3(cfg Config) (string, error) {
	rel, _ := realdata.ByName("hospital", cfg.Seed)
	res, err := fdx.Discover(rel, fdx.Options{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 3: FDX autoregression matrix for Hospital\n\n")
	sb.WriteString(res.Heatmap())
	sb.WriteString("\nDiscovered FDs:\n")
	for _, fd := range res.FDs {
		fmt.Fprintf(&sb, "  %s\n", fd)
	}
	return sb.String(), nil
}

// Figure4 reproduces the RFI output on Hospital (paper Figure 4): each
// attribute's best FD with its reliable-fraction-of-information score, in
// descending score order.
func Figure4(cfg Config) (string, error) {
	rel, _ := realdata.ByName("hospital", cfg.Seed)
	visits := 2000
	if cfg.Fast {
		visits = 150
	}
	fds := rfi.RankedFDs(rel, rfi.Options{Alpha: 1.0, MaxLHS: 2, MaxVisitsPerRHS: visits})
	var sb strings.Builder
	sb.WriteString("Figure 4: FDs discovered by RFI for Hospital\n\n")
	names := rel.AttrNames()
	for _, fd := range fds {
		lhs := make([]string, len(fd.LHS))
		for i, x := range fd.LHS {
			lhs[i] = names[x]
		}
		fmt.Fprintf(&sb, "  %s -> %s (%.6f)\n", strings.Join(lhs, ","), names[fd.RHS], fd.Score)
	}
	return sb.String(), nil
}

// Figure5 reproduces the feature-engineering case study (paper Figure 5):
// FDX's autoregression matrices for Australian Credit Approval and
// Mammographic, with the target-attribute dependencies highlighted.
func Figure5(cfg Config) (string, error) {
	var sb strings.Builder
	cases := []struct{ name, target string }{
		{"australian", "A15"},
		{"mammographic", "severity"},
	}
	for _, c := range cases {
		rel, _ := realdata.ByName(c.name, cfg.Seed)
		// Figure 5 profiles small diagnostic tables with binary attributes;
		// a lower edge threshold surfaces the weaker coefficients the
		// paper's heatmaps show.
		res, err := fdx.Discover(rel, fdx.Options{Seed: cfg.Seed, Threshold: 0.08, RelFraction: -1})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "Figure 5 (%s); %s is the goal attribute\n\n", c.name, c.target)
		sb.WriteString(res.Heatmap())
		sb.WriteString("\nFDs involving the goal attribute:\n")
		for _, fd := range res.FDs {
			if fd.RHS == c.target || contains(fd.LHS, c.target) {
				fmt.Fprintf(&sb, "  %s\n", fd)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// GoalDeterminants returns the attributes FDX finds determining the target
// attribute of a data set, sorted — the feature-selection use of §5.5.
func GoalDeterminants(cfg Config, datasetName, target string) ([]string, error) {
	rel, err := realdata.ByName(datasetName, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := fdx.Discover(rel, fdx.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var out []string
	for _, fd := range res.FDs {
		if fd.RHS == target {
			out = append(out, fd.LHS...)
		}
	}
	sort.Strings(out)
	return out, nil
}
