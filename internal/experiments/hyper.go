package experiments

import (
	"fmt"
	"strconv"
	"time"

	"fdx"
	"fdx/internal/bayesnet"
	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/metrics"
	"fdx/internal/ordering"
	"fdx/internal/synth"
)

// discoverWithPooling runs the core pipeline with the chosen covariance
// estimator and returns index-space FDs.
func discoverWithPooling(rel *dataset.Relation, seed int64, pooled bool) ([]core.FD, error) {
	m, err := core.Discover(rel, core.Options{Seed: seed, PooledCovariance: pooled})
	if err != nil {
		return nil, err
	}
	return m.FDs, nil
}

// Table8 reproduces the sparsity sweep (paper Table 8): FDX's precision,
// recall, F1 and FD count on the benchmark networks across Graphical Lasso
// penalties λ ∈ {0, .002, …, .01}.
func Table8(cfg Config) *Table {
	lambdas := []float64{0, 0.002, 0.004, 0.006, 0.008, 0.010}
	t := &Table{
		Title:  "Table 8: FDX under different sparsity (lambda) settings",
		Header: []string{"Data set", "Metric"},
	}
	for _, l := range lambdas {
		t.Header = append(t.Header, fmt.Sprintf("%.3f", l))
	}
	rows := benchmarkSampleRows(cfg.Fast)
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		rel := net.Sample(rows, benchmarkNoise, cfg.Seed)
		truth := net.TrueFDs()
		pRow := []string{name, "Precision"}
		rRow := []string{"", "Recall"}
		fRow := []string{"", "F1-score"}
		nRow := []string{"", "# of FDs"}
		for _, lambda := range lambdas {
			res, err := fdx.Discover(rel, fdx.Options{Seed: cfg.Seed, Lambda: lambda})
			if err != nil {
				pRow, rRow, fRow, nRow = append(pRow, "-"), append(rRow, "-"), append(fRow, "-"), append(nRow, "-")
				continue
			}
			m := metrics.Evaluate(truth, namedFDsToCore(res.FDs, rel), true)
			pRow = append(pRow, fmt3(m.Precision))
			rRow = append(rRow, fmt3(m.Recall))
			fRow = append(fRow, fmt3(m.F1))
			nRow = append(nRow, strconv.Itoa(len(res.FDs)))
		}
		t.Rows = append(t.Rows, pRow, rRow, fRow, nRow)
		cfg.logf("table8: finished %s", name)
	}
	return t
}

// Table9 reproduces the column-ordering study (paper Table 9): FDX's
// accuracy under the different fill-reducing orderings.
func Table9(cfg Config) *Table {
	t := &Table{
		Title:  "Table 9: FDX under different column ordering methods",
		Header: append([]string{"Data set", "Metric"}, ordering.Methods...),
	}
	rows := benchmarkSampleRows(cfg.Fast)
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		rel := net.Sample(rows, benchmarkNoise, cfg.Seed)
		truth := net.TrueFDs()
		pRow := []string{name, "P"}
		rRow := []string{"", "R"}
		fRow := []string{"", "F1"}
		for _, method := range ordering.Methods {
			res, err := fdx.Discover(rel, fdx.Options{Seed: cfg.Seed, Ordering: method})
			if err != nil {
				pRow, rRow, fRow = append(pRow, "-"), append(rRow, "-"), append(fRow, "-")
				continue
			}
			m := metrics.Evaluate(truth, namedFDsToCore(res.FDs, rel), true)
			pRow = append(pRow, fmt3(m.Precision))
			rRow = append(rRow, fmt3(m.Recall))
			fRow = append(fRow, fmt3(m.F1))
		}
		t.Rows = append(t.Rows, pRow, rRow, fRow)
		cfg.logf("table9: finished %s", name)
	}
	return t
}

// Figure6 reproduces the column-wise scalability study (paper Figure 6):
// FDX's total and model-only runtime as the number of attributes grows,
// averaged over several instances per size. The quadratic trend in the
// column count is the series the paper plots.
func Figure6(cfg Config) *Table {
	t := &Table{
		Title:  "Figure 6: column-wise scalability of FDX",
		Header: []string{"# columns", "mean total (s)", "mean model (s)"},
	}
	start, stop, step, reps, tuples := 4, 190, 10, 2, 1000
	if cfg.Fast {
		stop, step, reps, tuples = 40, 12, 1, 400
	}
	for cols := start; cols <= stop; cols += step {
		var total, model time.Duration
		for rep := 0; rep < reps; rep++ {
			inst := synth.Generate(synth.Config{
				Tuples: tuples, Attributes: cols, DomainCardinality: 64,
				NoiseRate: 0.01, Seed: cfg.Seed + int64(rep),
			})
			res, err := fdx.Discover(inst.Relation, fdx.Options{Seed: cfg.Seed})
			if err != nil {
				continue
			}
			total += res.TransformDuration + res.ModelDuration
			model += res.ModelDuration
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(cols),
			fmt.Sprintf("%.3f", total.Seconds()/float64(reps)),
			fmt.Sprintf("%.3f", model.Seconds()/float64(reps)),
		})
		cfg.logf("figure6: finished %d columns", cols)
	}
	return t
}

// OrderFill is an extension experiment quantifying what Table 9's
// orderings optimize: the fill-in each heuristic incurs on the precision
// matrices estimated from the benchmark networks (lower fill = sparser
// UDUᵀ factors = more parsimonious FD candidates).
func OrderFill(cfg Config) *Table {
	t := &Table{
		Title:  "Ordering fill-in on benchmark precision structures (extension)",
		Header: append([]string{"Data set", "graph edges"}, ordering.Methods...),
	}
	rows := benchmarkSampleRows(cfg.Fast)
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		rel := net.Sample(rows, benchmarkNoise, cfg.Seed)
		dt := core.Transform(rel, core.TransformOptions{Seed: cfg.Seed})
		m, err := core.DiscoverFromSamples(dt, rel.AttrNames(), core.Options{Seed: cfg.Seed})
		if err != nil {
			continue
		}
		g := ordering.FromPrecision(m.Theta, 1e-4)
		edges := 0
		for v := 0; v < g.N(); v++ {
			edges += g.Degree(v)
		}
		row := []string{name, strconv.Itoa(edges / 2)}
		for _, method := range ordering.Methods {
			perm, err := ordering.Order(method, g, cfg.Seed)
			if err != nil {
				row = append(row, "error")
				continue
			}
			row = append(row, strconv.Itoa(ordering.Fill(g, perm)))
		}
		t.Rows = append(t.Rows, row)
		cfg.logf("orderfill: finished %s", name)
	}
	return t
}

// RowScale is an extension experiment (not in the paper, which only plots
// column scalability): FDX's runtime split as the number of tuples grows
// with the column count fixed. The transform is the linear-in-rows phase;
// the model phase is row-independent once the covariance is formed.
func RowScale(cfg Config) *Table {
	t := &Table{
		Title:  "Row-wise scalability of FDX (extension)",
		Header: []string{"# rows", "mean total (s)", "mean model (s)"},
	}
	sizes := []int{1000, 5000, 10000, 25000, 50000, 100000}
	reps := 2
	if cfg.Fast {
		sizes = []int{500, 1000, 2000}
		reps = 1
	}
	for _, rows := range sizes {
		var total, model time.Duration
		for rep := 0; rep < reps; rep++ {
			inst := synth.Generate(synth.Config{
				Tuples: rows, Attributes: 12, DomainCardinality: 144,
				NoiseRate: 0.01, Seed: cfg.Seed + int64(rep),
			})
			res, err := fdx.Discover(inst.Relation, fdx.Options{Seed: cfg.Seed})
			if err != nil {
				continue
			}
			total += res.TransformDuration + res.ModelDuration
			model += res.ModelDuration
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(rows),
			fmt.Sprintf("%.3f", total.Seconds()/float64(reps)),
			fmt.Sprintf("%.3f", model.Seconds()/float64(reps)),
		})
		cfg.logf("rowscale: finished %d rows", rows)
	}
	return t
}

// Ablation compares FDX's default stratified pair-covariance estimator to
// the naive pooled estimator on the benchmark networks — the design choice
// DESIGN.md calls out (pooling the per-attribute sort blocks leaks their
// mean differences into the covariance as spurious negative correlation).
func Ablation(cfg Config) *Table {
	t := &Table{
		Title:  "Ablation: stratified vs pooled pair-sample covariance",
		Header: []string{"Data set", "stratified P", "stratified R", "stratified F1", "pooled P", "pooled R", "pooled F1"},
	}
	rows := benchmarkSampleRows(cfg.Fast)
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		rel := net.Sample(rows, benchmarkNoise, cfg.Seed)
		truth := net.TrueFDs()
		row := []string{name}
		for _, pooled := range []bool{false, true} {
			m, err := discoverWithPooling(rel, cfg.Seed, pooled)
			if err != nil {
				row = append(row, "-", "-", "-")
				continue
			}
			s := metrics.Evaluate(truth, m, true)
			row = append(row, fmt3(s.Precision), fmt3(s.Recall), fmt3(s.F1))
		}
		t.Rows = append(t.Rows, row)
		cfg.logf("ablation: finished %s", name)
	}
	return t
}
