package experiments

import (
	"fmt"

	"fdx"
	"fdx/baselines"
	"fdx/internal/bayesnet"
	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/metrics"
	"fdx/internal/synth"
)

// benchmarkSampleRows returns the BN sample size.
func benchmarkSampleRows(fast bool) int {
	if fast {
		return 400
	}
	return 2000
}

// benchmarkNoise is the CPT deviation rate used when sampling the
// benchmark networks (the paper adds no extra noise; the generators'
// "inherent randomness" is this deviation).
const benchmarkNoise = 0.05

// namedFDsToCore converts name-based FDs back to index space for scoring.
func namedFDsToCore(fds []baselines.FD, rel *dataset.Relation) []core.FD {
	idx := map[string]int{}
	for i, n := range rel.AttrNames() {
		idx[n] = i
	}
	var out []core.FD
	for _, fd := range fds {
		cf := core.FD{RHS: idx[fd.RHS], Score: fd.Score}
		for _, l := range fd.LHS {
			cf.LHS = append(cf.LHS, idx[l])
		}
		cf.Normalize()
		out = append(out, cf)
	}
	return out
}

// scoreRun evaluates a timed run against ground truth; negative values mark
// timeouts ("-").
func scoreRun(r runResult, truth []core.FD, rel *dataset.Relation) metrics.PRF1 {
	if r.timedOut || r.err != nil {
		return metrics.PRF1{Precision: -1, Recall: -1, F1: -1}
	}
	return metrics.Evaluate(truth, namedFDsToCore(r.fds, rel), true)
}

// Table4 reproduces the accuracy comparison on the benchmark networks
// (paper Table 4): precision / recall / F1 per method per data set.
func Table4(cfg Config) *Table {
	t := &Table{
		Title:  "Table 4: P/R/F1 on benchmark data sets with known FDs",
		Header: append([]string{"Data set", "Metric"}, MethodNames()...),
	}
	rows := benchmarkSampleRows(cfg.Fast)
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		rel := net.Sample(rows, benchmarkNoise, cfg.Seed)
		truth := net.TrueFDs()
		var prf []metrics.PRF1
		for _, m := range methodRoster(benchmarkNoise, cfg.Seed, cfg.Fast) {
			cfg.logf("table4: %s on %s", m.Name(), name)
			prf = append(prf, scoreRun(runWithTimeout(m, rel, cfg.timeout()), truth, rel))
		}
		pRow := []string{name, "P"}
		rRow := []string{"", "R"}
		fRow := []string{"", "F1"}
		for _, s := range prf {
			pRow = append(pRow, fmt3(s.Precision))
			rRow = append(rRow, fmt3(s.Recall))
			fRow = append(fRow, fmt3(s.F1))
		}
		t.Rows = append(t.Rows, pRow, rRow, fRow)
	}
	return t
}

// Table5 reproduces the runtime comparison on the benchmark networks
// (paper Table 5), in seconds; "-" marks a timeout.
func Table5(cfg Config) *Table {
	t := &Table{
		Title:  "Table 5: runtime (seconds) on benchmark data sets",
		Header: append([]string{"Data set"}, MethodNames()...),
	}
	rows := benchmarkSampleRows(cfg.Fast)
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		rel := net.Sample(rows, benchmarkNoise, cfg.Seed)
		row := []string{name}
		for _, m := range methodRoster(benchmarkNoise, cfg.Seed, cfg.Fast) {
			cfg.logf("table5: %s on %s", m.Name(), name)
			r := runWithTimeout(m, rel, cfg.timeout())
			if r.timedOut {
				row = append(row, "-")
			} else {
				row = append(row, fmtDur(r.duration))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure2 reproduces the synthetic-settings comparison (paper Figure 2):
// median F1 per method on the eight plotted (t, r, d, n) settings.
func Figure2(cfg Config) *Table {
	t := &Table{
		Title:  "Figure 2: median F1 per method across synthetic settings",
		Header: append([]string{"Setting"}, MethodNames()...),
	}
	instances := 5
	if cfg.Fast {
		instances = 2
	}
	names := MethodNames()
	for _, setting := range synth.Figure2Settings() {
		scfg := setting.Config(cfg.Seed)
		if cfg.Fast {
			if scfg.Tuples > 2000 {
				scfg.Tuples = 2000
			}
			if scfg.Attributes > 16 {
				scfg.Attributes = 16
			}
		}
		trials := make([][]metrics.PRF1, len(names))
		skipped := make([]bool, len(names))
		for inst := 0; inst < instances; inst++ {
			scfg.Seed = cfg.Seed + int64(inst)
			data := synth.Generate(scfg)
			for mi, m := range methodRoster(scfg.NoiseRate, scfg.Seed, cfg.Fast) {
				if skipped[mi] {
					continue
				}
				cfg.logf("figure2: %s on %s instance %d", m.Name(), setting.Name(), inst)
				r := runWithTimeout(m, data.Relation, cfg.timeout())
				if r.timedOut {
					// A method that cannot finish the first instance of a
					// setting is skipped for the rest — the paper reports
					// "-" for these.
					skipped[mi] = true
					continue
				}
				trials[mi] = append(trials[mi], scoreRun(r, data.TrueFDs, data.Relation))
			}
		}
		row := []string{setting.Name()}
		for mi := range names {
			if skipped[mi] || len(trials[mi]) == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt3(metrics.MedianByF1(trials[mi]).F1))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure7 reproduces the noise-sensitivity study (paper Figure 7): FDX's
// median F1 as the noise rate grows, per synthetic setting.
func Figure7(cfg Config) *Table {
	noiseRates := []float64{0.01, 0.05, 0.1, 0.3, 0.5}
	t := &Table{
		Title:  "Figure 7: FDX median F1 vs noise rate",
		Header: []string{"Setting"},
	}
	for _, n := range noiseRates {
		t.Header = append(t.Header, fmt.Sprintf("n=%.2f", n))
	}
	instances := 3
	if cfg.Fast {
		instances = 2
	}
	for _, setting := range synth.Figure2Settings() {
		scfg := setting.Config(cfg.Seed)
		if cfg.Fast {
			if scfg.Tuples > 2000 {
				scfg.Tuples = 2000
			}
			if scfg.Attributes > 16 {
				scfg.Attributes = 16
			}
		}
		row := []string{setting.Name()}
		for _, noise := range noiseRates {
			scfg.NoiseRate = noise
			var trials []metrics.PRF1
			for inst := 0; inst < instances; inst++ {
				scfg.Seed = cfg.Seed + int64(inst)
				data := synth.Generate(scfg)
				res, err := fdx.Discover(data.Relation, fdx.Options{Seed: scfg.Seed})
				if err != nil {
					continue
				}
				trials = append(trials, metrics.Evaluate(data.TrueFDs,
					namedFDsToCore(res.FDs, data.Relation), true))
			}
			row = append(row, fmt3(metrics.MedianByF1(trials).F1))
		}
		t.Rows = append(t.Rows, row)
		cfg.logf("figure7: finished %s", setting.Name())
	}
	return t
}
