package experiments

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"fdx/baselines"
	"fdx/internal/dataset"
	"fdx/internal/metrics"
	"fdx/internal/tane"
)

func TestFmtHelpers(t *testing.T) {
	if fmt3(0.5) != "0.500" || fmt3(-1) != "-" {
		t.Error("fmt3 wrong")
	}
	if fmtDur(1500*time.Millisecond) != "1.500" {
		t.Errorf("fmtDur = %q", fmtDur(1500*time.Millisecond))
	}
}

func TestNamedFDsToCoreRoundTrip(t *testing.T) {
	rel := dataset.New("t", "a", "b", "c")
	rel.AppendRow([]string{"1", "2", "3"})
	named := []baselines.FD{{LHS: []string{"c", "a"}, RHS: "b", Score: 0.5}}
	cfds := namedFDsToCore(named, rel)
	if len(cfds) != 1 || cfds[0].RHS != 1 || cfds[0].LHS[0] != 0 || cfds[0].LHS[1] != 2 {
		t.Errorf("round trip = %v", cfds)
	}
}

func TestScoreRunTimeoutSentinel(t *testing.T) {
	rel := dataset.New("t", "a")
	rel.AppendRow([]string{"1"})
	s := scoreRun(runResult{timedOut: true}, nil, rel)
	if s.F1 != -1 || s.Precision != -1 {
		t.Errorf("timeout sentinel = %v", s)
	}
	s = scoreRun(runResult{err: errors.New("boom")}, nil, rel)
	if s.F1 != -1 {
		t.Errorf("error sentinel = %v", s)
	}
	_ = metrics.PRF1{}
}

func TestRunWithTimeoutCompletes(t *testing.T) {
	rel := dataset.New("t", "a", "b")
	for i := 0; i < 50; i++ {
		rel.AppendRow([]string{strconv.Itoa(i % 5), strconv.Itoa(i % 5)})
	}
	d := &baselines.TANE{}
	r := runWithTimeout(d, rel, 10*time.Second)
	if r.timedOut || r.err != nil {
		t.Fatalf("small TANE run should finish: %+v", r)
	}
	if len(r.fds) == 0 {
		t.Error("no FDs from duplicate columns")
	}
}

func TestRunWithTimeoutExpires(t *testing.T) {
	// A TANE run over many columns with tiny budget must report a timeout
	// quickly and, thanks to the cooperative deadline, the abandoned
	// goroutine should terminate on its own shortly after.
	cols := make([]string, 16)
	for i := range cols {
		cols[i] = "c" + strconv.Itoa(i)
	}
	rel := dataset.New("t", cols...)
	for i := 0; i < 3000; i++ {
		row := make([]string, 16)
		for j := range row {
			row[j] = strconv.Itoa((i * (j + 1)) % 50)
		}
		rel.AppendRow(row)
	}
	d := &baselines.TANE{Options: tane.Options{MaxLHS: 6}}
	start := time.Now()
	r := runWithTimeout(d, rel, 50*time.Millisecond)
	if !r.timedOut {
		t.Skip("machine fast enough to finish; nothing to assert")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}
