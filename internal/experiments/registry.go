package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Runner executes one experiment and returns its rendered result.
type Runner func(Config) (string, error)

// Registry maps experiment ids (table4, figure2, …) to runners.
func Registry() map[string]Runner {
	tab := func(f func(Config) *Table) Runner {
		return func(cfg Config) (string, error) { return f(cfg).String(), nil }
	}
	return map[string]Runner{
		"table1":    func(cfg Config) (string, error) { return Table1().String(), nil },
		"table2":    func(cfg Config) (string, error) { return Table2().String(), nil },
		"table3":    tab(Table3),
		"table4":    tab(Table4),
		"table5":    tab(Table5),
		"table6":    tab(Table6),
		"table7":    tab(Table7),
		"table8":    tab(Table8),
		"table9":    tab(Table9),
		"figure2":   tab(Figure2),
		"figure3":   Figure3,
		"figure4":   Figure4,
		"figure5":   Figure5,
		"figure6":   tab(Figure6),
		"figure7":   tab(Figure7),
		"ablation":  tab(Ablation),
		"rowscale":  tab(RowScale),
		"orderfill": tab(OrderFill),
	}
}

// Names returns the registered experiment ids in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the named experiment.
func Run(name string, cfg Config) (string, error) {
	r, ok := Registry()[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r(cfg)
}

// tableRunners maps experiment ids to their structured Table producers
// (case-study figures render prose and are not included).
func tableRunners() map[string]func(Config) *Table {
	return map[string]func(Config) *Table{
		"table1":    func(Config) *Table { return Table1() },
		"table2":    func(Config) *Table { return Table2() },
		"table3":    Table3,
		"table4":    Table4,
		"table5":    Table5,
		"table6":    Table6,
		"table7":    Table7,
		"table8":    Table8,
		"table9":    Table9,
		"figure2":   Figure2,
		"figure6":   Figure6,
		"figure7":   Figure7,
		"ablation":  Ablation,
		"rowscale":  RowScale,
		"orderfill": OrderFill,
	}
}

// RunJSON executes the named experiment and returns its result as JSON.
// Table experiments marshal their structured form; prose experiments
// (figure3/4/5) marshal {"title", "text"}.
func RunJSON(name string, cfg Config) ([]byte, error) {
	if f, ok := tableRunners()[name]; ok {
		return json.MarshalIndent(f(cfg), "", "  ")
	}
	out, err := Run(name, cfg)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(map[string]string{"title": name, "text": out}, "", "  ")
}
