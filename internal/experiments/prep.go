package experiments

import (
	"fdx"
	"fdx/internal/impute"
	"fdx/internal/metrics"
	"fdx/internal/realdata"
)

// Table7 reproduces the data-preparation study (paper Table 7): for each
// real-world data set, attributes are split by whether FDX finds them
// participating in an FD; cells of each attribute are masked under random
// and systematic missingness and imputed by two learners; the table
// reports the median imputation accuracy per group ("w/" vs "w/o").
func Table7(cfg Config) *Table {
	t := &Table{
		Title: "Table 7: imputation accuracy for attributes w/o and w/ FDX dependencies",
		Header: []string{"Data set",
			"rand knn w/o", "rand knn w", "rand boost w/o", "rand boost w",
			"sys knn w/o", "sys knn w", "sys boost w/o", "sys boost w"},
	}
	maskRate := 0.2
	for _, name := range realdata.Names() {
		rel, _ := realdata.ByName(name, cfg.Seed)
		if rel.NumRows() > 4000 || cfg.Fast {
			limit := 4000
			if cfg.Fast {
				limit = 600
			}
			rel = sampleRows(rel, limit, cfg.Seed)
		}
		res, err := fdx.Discover(rel, fdx.Options{Seed: cfg.Seed})
		if err != nil {
			continue
		}
		inFD := map[int]bool{}
		for j, attr := range rel.AttrNames() {
			inFD[j] = res.HasFDWith(attr)
		}
		row := []string{name}
		for _, systematic := range []bool{false, true} {
			for _, imp := range []impute.Imputer{&impute.KNN{Seed: cfg.Seed}, &impute.Boost{Seed: cfg.Seed}} {
				var accWith, accWithout []float64
				for j := range rel.Columns {
					// Skip near-key attributes: nothing can impute them.
					if rel.Columns[j].Cardinality() > rel.NumRows()/2 {
						continue
					}
					var m *impute.Masked
					if systematic {
						m = impute.MaskSystematic(rel, j, maskRate, cfg.Seed+int64(j))
					} else {
						m = impute.MaskRandom(rel, j, maskRate, cfg.Seed+int64(j))
					}
					if len(m.Rows) == 0 {
						continue
					}
					acc := impute.Accuracy(imp.Impute(m), m.Truth)
					if inFD[j] {
						accWith = append(accWith, acc)
					} else {
						accWithout = append(accWithout, acc)
					}
					cfg.logf("table7: %s %s sys=%v attr=%d acc=%.3f fd=%v",
						name, imp.Name(), systematic, j, acc, inFD[j])
				}
				row = append(row, fmt3OrDash(accWithout), fmt3OrDash(accWith))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func fmt3OrDash(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	return fmt3(metrics.MedianFloat(xs))
}
