package experiments

import (
	"strconv"

	"fdx/internal/bayesnet"
	"fdx/internal/realdata"
	"fdx/internal/synth"
)

// Table1 reproduces the benchmark-network inventory (paper Table 1): the
// number of attributes, ground-truth FDs, and FD edges per network.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: benchmark data sets with known dependencies",
		Header: []string{"Data set", "Attributes", "# FDs", "# Edges in FDs"},
	}
	for _, name := range bayesnet.Names() {
		net, _ := bayesnet.ByName(name)
		t.Rows = append(t.Rows, []string{
			net.Name,
			strconv.Itoa(len(net.Nodes)),
			strconv.Itoa(len(net.TrueFDs())),
			strconv.Itoa(net.NumEdges()),
		})
	}
	return t
}

// Table2 reproduces the synthetic-settings grid (paper Table 2).
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: synthetic data settings",
		Header: []string{"Property", "Small setting", "Large setting"},
	}
	small := synth.Setting{}.Config(0)
	large := synth.Setting{TLarge: true, RLarge: true, DLarge: true, NHigh: true}.Config(0)
	t.Rows = append(t.Rows,
		[]string{"Noise Rate (n)", fmt3(small.NoiseRate), fmt3(large.NoiseRate)},
		[]string{"Tuples (t)", strconv.Itoa(small.Tuples), strconv.Itoa(large.Tuples)},
		[]string{"Attributes (r)", strconv.Itoa(small.Attributes), strconv.Itoa(large.Attributes)},
		[]string{"Domain Cardinality (d)", strconv.Itoa(small.DomainCardinality), strconv.Itoa(large.DomainCardinality)},
	)
	return t
}

// Table3 reproduces the real-world data set summary (paper Table 3).
func Table3(cfg Config) *Table {
	t := &Table{
		Title:  "Table 3: real-world data sets",
		Header: []string{"Data set", "Tuples", "Attributes", "Missing rate"},
	}
	for _, name := range realdata.Names() {
		rel, _ := realdata.ByName(name, cfg.Seed)
		t.Rows = append(t.Rows, []string{
			name,
			strconv.Itoa(rel.NumRows()),
			strconv.Itoa(rel.NumCols()),
			fmt3(rel.MissingRate()),
		})
	}
	return t
}
