// Package experiments reproduces every table and figure of the FDX paper's
// evaluation (§5). Each runner returns a structured Table (or rendered
// text) with the same rows/series the paper reports; cmd/fdxbench prints
// them and bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fdx"
	"fdx/baselines"
	"fdx/internal/cords"
	"fdx/internal/dataset"
	"fdx/internal/pyro"
	"fdx/internal/rfi"
	"fdx/internal/tane"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all data generation.
	Seed int64
	// Fast shrinks data sizes and timeouts so the full suite runs in test
	// time; default (false) uses the report-scale settings.
	Fast bool
	// Timeout caps each method run; 0 uses a scale-appropriate default.
	// Methods that exceed it are reported as "-", mirroring the paper's
	// 8-hour limit.
	Timeout time.Duration
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	if c.Fast {
		return 3 * time.Second
	}
	return 60 * time.Second
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// runResult is the outcome of one timed method run.
type runResult struct {
	fds      []baselines.FD
	duration time.Duration
	timedOut bool
	err      error
}

// runWithTimeout executes the discoverer, abandoning it (the goroutine is
// left to finish in the background) if it exceeds the budget — the
// harness-level analogue of the paper's 8-hour cut-off.
func runWithTimeout(d baselines.Discoverer, rel *dataset.Relation, budget time.Duration) runResult {
	if ds, ok := d.(baselines.DeadlineSetter); ok {
		// Cooperative cancellation: the abandoned goroutine stops shortly
		// after the harness gives up, instead of burning CPU indefinitely.
		ds.SetDeadline(time.Now().Add(budget + budget/4))
	}
	done := make(chan runResult, 1)
	start := time.Now()
	go func() {
		fds, err := d.Discover(rel)
		done <- runResult{fds: fds, duration: time.Since(start), err: err}
	}()
	select {
	case r := <-done:
		return r
	case <-time.After(budget):
		return runResult{timedOut: true, duration: budget}
	}
}

// methodRoster builds the paper's method list (§5.1) with options suited to
// the expected noise rate.
func methodRoster(noise float64, seed int64, fast bool) []baselines.Discoverer {
	pyroVisits := 200
	rfiVisits := 2000
	if fast {
		pyroVisits = 60
		rfiVisits = 200
	}
	taneErr := noise
	//fdx:lint-ignore floatcmp zero noise is the experiment grid's "clean data" sentinel, not a computed float
	if taneErr == 0 {
		taneErr = 0.01
	}
	return []baselines.Discoverer{
		&baselines.FDX{Options: fdx.Options{Seed: seed}},
		&baselines.GL{},
		&baselines.PYRO{Options: pyro.Options{MaxError: noise, MaxVisitsPerRHS: pyroVisits, Seed: seed}},
		&baselines.TANE{Options: tane.Options{MaxError: taneErr, MaxLHS: 3}},
		&baselines.CORDS{Options: cords.Options{Seed: seed}},
		&baselines.RFI{Options: rfi.Options{Alpha: 0.3, MaxVisitsPerRHS: rfiVisits}},
		&baselines.RFI{Options: rfi.Options{Alpha: 0.5, MaxVisitsPerRHS: rfiVisits}},
		&baselines.RFI{Options: rfi.Options{Alpha: 1.0, MaxVisitsPerRHS: rfiVisits}},
	}
}

// MethodNames lists the roster's display names in order.
func MethodNames() []string {
	names := make([]string, 0, 8)
	for _, m := range methodRoster(0, 0, true) {
		names = append(names, m.Name())
	}
	return names
}

// fmt3 renders a float with three decimals; "-" for negative sentinel.
func fmt3(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// fmtDur renders a duration in seconds with millisecond resolution.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
