package experiments

import (
	"strings"
	"testing"
	"time"
)

func fastCfg() Config { return Config{Seed: 1, Fast: true, Timeout: 2 * time.Second} }

func TestTableString(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "bb") || !strings.Contains(out, "1") {
		t.Errorf("render = %q", out)
	}
}

func TestInventoryTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 5 {
		t.Errorf("table1 rows = %d", len(t1.Rows))
	}
	t2 := Table2()
	if len(t2.Rows) != 4 {
		t.Errorf("table2 rows = %d", len(t2.Rows))
	}
	t3 := Table3(fastCfg())
	if len(t3.Rows) != 6 {
		t.Errorf("table3 rows = %d", len(t3.Rows))
	}
}

func TestMethodNames(t *testing.T) {
	names := MethodNames()
	if len(names) != 8 || names[0] != "FDX" || names[7] != "RFI(1.0)" {
		t.Errorf("MethodNames = %v", names)
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "figure2", "figure3", "figure4", "figure5",
		"figure6", "figure7", "ablation", "rowscale", "orderfill",
	}
	reg := Registry()
	for _, n := range want {
		if _, ok := reg[n]; !ok {
			t.Errorf("experiment %s missing from registry", n)
		}
	}
	if _, err := Run("bogus", fastCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunJSON(t *testing.T) {
	out, err := RunJSON("table1", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"rows"`) {
		t.Errorf("JSON table output missing rows: %s", out[:min(120, len(out))])
	}
	if _, err := RunJSON("bogus", fastCfg()); err == nil {
		t.Error("unknown experiment accepted by RunJSON")
	}
}

func TestTable4FastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := fastCfg()
	tbl := Table4(cfg)
	if len(tbl.Rows) != 15 { // 5 data sets × 3 metric rows
		t.Fatalf("table4 rows = %d", len(tbl.Rows))
	}
	// FDX column (index 2) must produce numeric scores on the small nets.
	for _, row := range tbl.Rows {
		if row[1] == "F1" && row[0] == "asia" {
			if row[2] == "-" {
				t.Error("FDX timed out on asia in fast mode")
			}
		}
	}
}

func TestTable5FastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := Table5(fastCfg())
	if len(tbl.Rows) != 5 {
		t.Fatalf("table5 rows = %d", len(tbl.Rows))
	}
}

func TestTable8And9FastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t8 := Table8(fastCfg())
	if len(t8.Rows) != 20 { // 5 × 4 metric rows
		t.Errorf("table8 rows = %d", len(t8.Rows))
	}
	t9 := Table9(fastCfg())
	if len(t9.Rows) != 15 {
		t.Errorf("table9 rows = %d", len(t9.Rows))
	}
}

func TestFigure6FastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := Figure6(fastCfg())
	if len(tbl.Rows) < 3 {
		t.Errorf("figure6 rows = %d", len(tbl.Rows))
	}
}

func TestTable7FastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := Table7(fastCfg())
	if len(tbl.Rows) != 6 {
		t.Fatalf("table7 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 9 {
			t.Fatalf("table7 row width = %d: %v", len(row), row)
		}
	}
}

func TestFigure3And5Render(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := Figure3(fastCfg())
	if err != nil || !strings.Contains(out, "Hospital") {
		t.Errorf("figure3: %v %q", err, out[:min(80, len(out))])
	}
	out5, err := Figure5(fastCfg())
	if err != nil || !strings.Contains(out5, "goal attribute") {
		t.Errorf("figure5: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
