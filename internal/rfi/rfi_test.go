package rfi

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			if v < 0 {
				s[j] = ""
			} else {
				s[j] = strconv.Itoa(v)
			}
		}
		r.AppendRow(s)
	}
	return r
}

func findFD(fds []core.FD, rhs int) *core.FD {
	for i := range fds {
		if fds[i].RHS == rhs {
			return &fds[i]
		}
	}
	return nil
}

func TestRFIFindsTrueFD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, 400)
	for i := range rows {
		a := rng.Intn(6)
		rows[i] = []int{a, a % 3, rng.Intn(4)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{})
	fd := findFD(fds, 1)
	if fd == nil || len(fd.LHS) != 1 || fd.LHS[0] != 0 {
		t.Fatalf("b's best determinant should be a: %v", fds)
	}
	if fd.Score < 0.8 {
		t.Errorf("score of true FD = %v, want near 1", fd.Score)
	}
}

func TestRFIIgnoresIndependentAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]int, 500)
	for i := range rows {
		rows[i] = []int{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{})
	if len(fds) != 0 {
		t.Errorf("independent data produced FDs: %v", fds)
	}
}

func TestRFIFindsCompositeFD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := make([][]int, 4)
	for i := range tab {
		tab[i] = make([]int, 4)
		for j := range tab[i] {
			tab[i][j] = rng.Intn(20)
		}
	}
	rows := make([][]int, 800)
	for i := range rows {
		a, b := rng.Intn(4), rng.Intn(4)
		rows[i] = []int{a, b, tab[a][b]}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{})
	fd := findFD(fds, 2)
	if fd == nil || len(fd.LHS) != 2 {
		t.Fatalf("composite determinant not found: %v", fds)
	}
}

func TestRFIPenalizesSpuriousWideLHS(t *testing.T) {
	// Small sample, large domains: empirical FI would pick a wide LHS;
	// the bias correction must keep the spurious determinant score low.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]int, 40)
	for i := range rows {
		rows[i] = []int{rng.Intn(20), rng.Intn(20), rng.Intn(2)}
	}
	rel := relFromCodes(rows, "a", "b", "y")
	fds := Discover(rel, Options{MinScore: 0.3})
	if fd := findFD(fds, 2); fd != nil {
		t.Errorf("spurious determinant scored %v: %v", fd.Score, fd)
	}
}

func TestRFIAlphaApproximationStillFindsStrongFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]int, 300)
	for i := range rows {
		a := rng.Intn(5)
		rows[i] = []int{a, a, rng.Intn(3)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	for _, alpha := range []float64{0.3, 0.5, 1.0} {
		fds := Discover(rel, Options{Alpha: alpha})
		if fd := findFD(fds, 1); fd == nil {
			t.Errorf("alpha %v: exact duplicate column FD lost: %v", alpha, fds)
		}
	}
}

func TestRFITopOnePerAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := make([][]int, 300)
	for i := range rows {
		a := rng.Intn(6)
		rows[i] = []int{a, a % 3, a % 2}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{})
	seen := map[int]int{}
	for _, fd := range fds {
		seen[fd.RHS]++
	}
	for rhs, count := range seen {
		if count > 1 {
			t.Errorf("attribute %d has %d FDs, want ≤1", rhs, count)
		}
	}
}

func TestRFIRankedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]int, 300)
	for i := range rows {
		a := rng.Intn(6)
		b := a % 3
		c := b
		if rng.Float64() < 0.3 {
			c = rng.Intn(3)
		}
		rows[i] = []int{a, b, c}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := RankedFDs(rel, Options{})
	for i := 1; i < len(fds); i++ {
		if fds[i-1].Score < fds[i].Score {
			t.Errorf("ranking out of order: %v", fds)
		}
	}
}

func TestRFIDegenerate(t *testing.T) {
	if fds := Discover(dataset.New("t"), Options{}); fds != nil {
		t.Error("empty relation")
	}
	rel := relFromCodes([][]int{{0, 0}, {-1, 1}}, "a", "b")
	// NULLs present: must not panic, missing treated as a value.
	_ = Discover(rel, Options{})
}

func TestTargetScore(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := make([][]int, 200)
	for i := range rows {
		a := rng.Intn(5)
		rows[i] = []int{a, a}
	}
	rel := relFromCodes(rows, "a", "b")
	lhs, score := TargetScore(rel, 1, Options{})
	if len(lhs) != 1 || lhs[0] != 0 || score < 0.8 {
		t.Errorf("TargetScore = %v, %v", lhs, score)
	}
}
