// Package rfi implements the Reliable Fraction of Information FD scoring
// and search of Mandros, Boley, Vreeken ("Discovering Reliable Approximate
// Functional Dependencies", KDD 2017): for each target attribute Y it
// searches determinant sets X maximizing the bias-corrected score
//
//	F̂(X;Y) = (I(X;Y) − E₀[I(X;Y)]) / H(Y),
//
// where E₀ is the expected mutual information under the permutation null
// model. The search is branch-and-bound with an admissible optimistic bound
// and an α-approximation knob: a branch is pruned when α times its bound
// cannot beat the incumbent, giving results within factor α of optimal
// (α = 1 means exact search). As in the FDX paper's setup (§5.1), the
// discovery keeps the top-1 FD per attribute.
package rfi

import (
	"sort"
	"time"

	"fdx/internal/attrset"
	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/stats"
)

// Options configures the RFI search.
type Options struct {
	// Alpha is the approximation parameter in (0, 1]; 1 = exact search
	// (paper evaluates α ∈ {0.3, 0.5, 1}).
	Alpha float64
	// MinScore is the smallest reliable fraction of information for an FD
	// to be reported (default 0.05, filtering noise-level scores).
	MinScore float64
	// MaxLHS caps the determinant size (default 4).
	MaxLHS int
	// MaxVisitsPerRHS bounds scored candidates per target (default 2000),
	// a safety valve — the real RFI has no such cap and the paper shows it
	// timing out on wide data.
	MaxVisitsPerRHS int
	// Deadline, when non-zero, stops the search with partial results once
	// the wall clock passes it.
	Deadline time.Time
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.MinScore == 0 {
		o.MinScore = 0.05
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 4
	}
	if o.MaxVisitsPerRHS == 0 {
		o.MaxVisitsPerRHS = 2000
	}
}

// Discover returns at most one FD per attribute: the highest-scoring
// reliable determinant set found for that attribute.
func Discover(rel *dataset.Relation, opts Options) []core.FD {
	opts.defaults()
	k := rel.NumCols()
	n := rel.NumRows()
	if k < 2 || n == 0 {
		return nil
	}
	labels := make([][]int, k)
	for j := 0; j < k; j++ {
		labels[j] = columnLabels(rel.Columns[j])
	}
	var fds []core.FD
	for rhs := 0; rhs < k; rhs++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			break
		}
		set, score := searchTarget(labels, rhs, &opts)
		if score >= opts.MinScore && !set.IsEmpty() {
			fd := core.FD{LHS: set.Members(), RHS: rhs, Score: score}
			fd.Normalize()
			fds = append(fds, fd)
		}
	}
	core.SortFDs(fds)
	return fds
}

// TargetScore exposes the per-target search for callers that need the raw
// (set, score) result, e.g. the GL baseline's edge orientation.
func TargetScore(rel *dataset.Relation, rhs int, opts Options) ([]int, float64) {
	opts.defaults()
	k := rel.NumCols()
	labels := make([][]int, k)
	for j := 0; j < k; j++ {
		labels[j] = columnLabels(rel.Columns[j])
	}
	set, score := searchTarget(labels, rhs, &opts)
	return set.Members(), score
}

// searchTarget runs the branch-and-bound search for one RHS attribute.
func searchTarget(labels [][]int, rhs int, opts *Options) (attrset.Set, float64) {
	k := len(labels)
	y := labels[rhs]

	type frame struct {
		set    attrset.Set
		joint  []int
		bound  float64
		maxExt int // extensions limited to attributes > maxExt for canonical enumeration
	}

	var best attrset.Set
	bestScore := 0.0
	visits := 0

	var agenda []frame
	for a := 0; a < k; a++ {
		if a == rhs {
			continue
		}
		agenda = append(agenda, frame{set: attrset.New(a), joint: labels[a], bound: 1, maxExt: a})
	}

	for len(agenda) > 0 && visits < opts.MaxVisitsPerRHS {
		if visits%8 == 0 && !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			break
		}
		// Depth-first with best-bound ordering at each expansion keeps
		// memory small; pop the most promising frame.
		bestIdx := 0
		for i := range agenda {
			if agenda[i].bound > agenda[bestIdx].bound {
				bestIdx = i
			}
		}
		fr := agenda[bestIdx]
		agenda = append(agenda[:bestIdx], agenda[bestIdx+1:]...)

		// α-pruning: the branch cannot α-beat the incumbent.
		if opts.Alpha*fr.bound <= bestScore {
			continue
		}
		visits++
		c := stats.NewContingency(fr.joint, y)
		score := stats.ReliableFractionOfInformation(c)
		//fdx:lint-ignore floatcmp exact-tie check prefers the smaller determinant set; a tolerance would make the preference order-dependent
		if score > bestScore || (score == bestScore && fr.set.Len() < best.Len()) {
			bestScore = score
			best = fr.set
		}
		bound := stats.RFIUpperBound(c)
		if fr.set.Len() >= opts.MaxLHS || opts.Alpha*bound <= bestScore {
			continue
		}
		for a := fr.maxExt + 1; a < k; a++ {
			if a == rhs || fr.set.Has(a) {
				continue
			}
			agenda = append(agenda, frame{
				set:    fr.set.With(a),
				joint:  stats.JointLabels(fr.joint, labels[a]),
				bound:  bound,
				maxExt: a,
			})
		}
	}
	return best, bestScore
}

// columnLabels converts a column to integer labels; NULLs share a single
// label (RFI treats missingness as a value, matching its use on data with
// naturally-missing cells).
func columnLabels(col *dataset.Column) []int {
	out := make([]int, col.Len())
	for i := range out {
		code := col.Code(i)
		if code == dataset.Missing {
			out[i] = -1
		} else {
			out[i] = int(code)
		}
	}
	return out
}

// RankedFDs returns every target's best FD sorted by descending score (the
// presentation of the paper's Figure 4).
func RankedFDs(rel *dataset.Relation, opts Options) []core.FD {
	fds := Discover(rel, opts)
	sort.Slice(fds, func(i, j int) bool { return fds[i].Score > fds[j].Score })
	return fds
}
