package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"fdx"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/obs"
	"fdx/internal/serve/retry"
)

// ShardClient ships shard snapshots to an fdxd session and fetches the
// merged discovery result. Every call runs under the client's retry
// policy with a per-request deadline: transport failures, 429s, and 5xx
// responses are retried with capped exponential backoff (a server-named
// Retry-After overrides the schedule), while 4xx protocol errors fail
// immediately — re-sending the same bytes cannot fix a shard_mismatch.
type ShardClient struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant rides the X-Fdx-Tenant header; empty means the server's
	// default tenant.
	Tenant string
	// HTTPClient overrides http.DefaultClient (tests inject transports).
	HTTPClient *http.Client
	// RequestTimeout bounds each individual attempt. Default 30s.
	RequestTimeout time.Duration
	// Retry paces re-attempts; the zero value uses the package defaults.
	Retry retry.Policy
	// Metrics, when set, counts retried requests (obs.MShardShipRetries).
	Metrics *fdx.Metrics
	// Obs, when it carries a tracer or parent span, records one client
	// span per attempt, injects its identity as a W3C `traceparent`
	// header, and grafts the server's echoed span (X-Fdx-Trace) back in —
	// so the caller's trace file shows both sides of the HTTP hop under
	// one trace id.
	Obs obs.Hooks
}

// RemoteError is a non-2xx response decoded from the wire-error envelope.
// Unwrap maps the taxonomy code back onto the fdxerr sentinel it came
// from, so errors.Is works across the HTTP hop.
type RemoteError struct {
	Status  int
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote %d %s: %s", e.Status, e.Code, e.Message)
}

func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case CodeBadInput:
		return fdxerr.ErrBadInput
	case CodeShardMismatch:
		return fdxerr.ErrShardMismatch
	case CodeCorruptCheckpoint:
		return fdxerr.ErrCorruptCheckpoint
	case CodeCheckpointVersion:
		return fdxerr.ErrCheckpointVersion
	case CodeTimeout:
		return fdxerr.ErrCancelled
	case CodeNotConverged:
		return fdxerr.ErrNotConverged
	case CodeSingular:
		return fdxerr.ErrSingularCovariance
	case CodeNonPositivePivot:
		return fdxerr.ErrNonPositivePivot
	case CodeInternal:
		return fdxerr.ErrInternal
	}
	return nil
}

// CreateSession creates (or idempotently re-creates) a session.
func (c *ShardClient) CreateSession(ctx context.Context, id string, attrs []string, opts SessionOptions) error {
	body, err := json.Marshal(createRequest{ID: id, Attributes: attrs, Options: opts})
	if err != nil {
		return err
	}
	return c.call(ctx, "create", http.MethodPost, "/v1/sessions", "application/json", body, nil)
}

// ShipShard sends one shard snapshot (checkpoint snapshot encoding) at the
// given 1-based sequence number. applied reports whether the merge changed
// the session's state; false means the server already held that coverage —
// the normal answer to a retried ship.
func (c *ShardClient) ShipShard(ctx context.Context, id string, seq int, snapshot []byte) (applied bool, err error) {
	var reply rowsReply
	path := fmt.Sprintf("/v1/sessions/%s/shards?seq=%d", id, seq)
	if err := c.call(ctx, "ship", http.MethodPost, path, "application/octet-stream", snapshot, &reply); err != nil {
		return false, err
	}
	return reply.Applied, nil
}

// Discover runs discovery on the session's merged state.
func (c *ShardClient) Discover(ctx context.Context, id string) (*DiscoverResponse, error) {
	var reply DiscoverResponse
	if err := c.call(ctx, "discover", http.MethodPost, "/v1/sessions/"+id+"/discover", "application/json", nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// call runs one request under the retry policy.
func (c *ShardClient) call(ctx context.Context, op, method, path, contentType string, body []byte, out any) error {
	p := c.Retry
	userNotify := p.Notify
	p.Notify = func(attempt int, wait time.Duration, err error) {
		if c.Metrics != nil {
			c.Metrics.Counter(obs.MShardShipRetries).Inc()
		}
		if userNotify != nil {
			userNotify(attempt, wait, err)
		}
	}
	return p.Do(ctx, func(attempt int) (time.Duration, error) {
		return c.once(ctx, op, attempt, method, path, contentType, body, out)
	})
}

// once performs a single attempt, classifying the outcome for the retry
// loop: nil on 2xx, a retryable error (with the server's Retry-After, if
// named) on transport failures and 429/5xx, retry.Permanent otherwise.
func (c *ShardClient) once(ctx context.Context, op string, attempt int, method, path, contentType string, body []byte, out any) (time.Duration, error) {
	sp := c.Obs.Start("serve." + op)
	defer sp.End()
	if attempt > 0 {
		sp.Attr("attempt", attempt+1)
	}
	timeout := c.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// ShipTimeout burns this attempt's deadline before the request leaves,
	// forcing the timeout-then-retry path under chaos.
	faults.Sleep(faults.ShipTimeout)
	req, err := http.NewRequestWithContext(rctx, method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", contentType)
	if c.Tenant != "" {
		req.Header.Set("X-Fdx-Tenant", c.Tenant)
	}
	if tid := sp.TraceID(); tid != "" {
		req.Header.Set("traceparent", obs.Traceparent(tid, sp.SpanID()))
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Transport failure: the server may be restarting; retry.
		sp.Attr("error", err.Error())
		return 0, fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	graftEcho(sp, resp.Header.Get(TraceEchoHeader))
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBytes))
	if err != nil {
		return 0, fmt.Errorf("serve: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return 0, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return 0, retry.Permanent(fmt.Errorf("serve: decoding %s %s response: %w", method, path, err))
		}
		return 0, nil
	}
	var envelope struct {
		Error wireError `json:"error"`
	}
	json.Unmarshal(raw, &envelope) // best effort; an empty code still errors below
	rerr := &RemoteError{Status: resp.StatusCode, Code: envelope.Error.Code, Message: envelope.Error.Message}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return time.Duration(envelope.Error.RetryAfterMS) * time.Millisecond, rerr
	}
	return 0, retry.Permanent(rerr)
}

// graftEcho attaches the server's echoed span (X-Fdx-Trace) under the
// client attempt span, preserving the remote span id and annotations.
// Best-effort: a missing or malformed echo changes nothing.
func graftEcho(sp *obs.Span, echo string) {
	if sp == nil || echo == "" {
		return
	}
	var wt WireTrace
	if err := json.Unmarshal([]byte(echo), &wt); err != nil || wt.Name == "" {
		return
	}
	keys := make([]string, 0, len(wt.Attrs))
	for k := range wt.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]obs.Attr, 0, len(keys)+1)
	for _, k := range keys {
		attrs = append(attrs, obs.Attr{Key: k, Value: wt.Attrs[k]})
	}
	if wt.TraceID != "" {
		attrs = append(attrs, obs.Attr{Key: "trace_id", Value: wt.TraceID})
	}
	sp.AttachRemote(wt.Name, wt.SpanID, time.UnixMicro(wt.StartUnixUS),
		time.Duration(wt.DurUS)*time.Microsecond, attrs...)
}
