package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fdx"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/obs"
	"fdx/internal/serve/retry"
)

// The shard-shipping API tests: idempotent seq handling, the mismatch and
// corruption taxonomy (bad shards never poison the session), bit-identity
// between a shard-merged session and a sequentially-ingested one, and the
// ShardClient's retry behaviour against a flaky server.

const shardRows = 30 // rows per batch on the shared test grid

// shardSnapshot builds an accumulator holding the given global batches of
// the shared genRows grid and returns its snapshot bytes (the shard wire
// format).
func shardSnapshot(t *testing.T, opts fdx.Options, attrs []string, batches ...int) []byte {
	t.Helper()
	acc := fdx.NewAccumulator(attrs, opts)
	for _, g := range batches {
		rel, herr := buildRelation(attrs, genRows(shardRows, g*shardRows))
		if herr != nil {
			t.Fatalf("building batch %d: %s", g, herr.Message)
		}
		if err := acc.AddAt(rel, g); err != nil {
			t.Fatalf("AddAt(%d): %v", g, err)
		}
	}
	var buf bytes.Buffer
	if err := acc.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// ship POSTs raw snapshot bytes to the shards endpoint.
func ship(t *testing.T, sv *Server, id, tenant string, seq int, snap []byte) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", fmt.Sprintf("/v1/sessions/%s/shards?seq=%d", id, seq),
		bytes.NewReader(snap))
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set("X-Fdx-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, req)
	var decoded map[string]any
	if raw := rec.Body.Bytes(); len(raw) > 0 {
		json.Unmarshal(raw, &decoded)
	}
	return rec, decoded
}

func mustShip(t *testing.T, sv *Server, id, tenant string, seq int, snap []byte) (applied bool) {
	t.Helper()
	rec, body := ship(t, sv, id, tenant, seq, snap)
	if rec.Code != http.StatusOK {
		t.Fatalf("ship seq %d: status %d, body %v", seq, rec.Code, body)
	}
	a, _ := body["applied"].(bool)
	return a
}

// discoverB (crash_test.go) returns the exact B matrix from the wire;
// reflect.DeepEqual over it is bit-identity.

// TestShardShipMatchesSequentialIngest is the service-side equivalence
// check: four batches shipped as two shard snapshots produce a B matrix
// bit-identical to the same four batches ingested sequentially.
func TestShardShipMatchesSequentialIngest(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "seq", "acme")
	for k := 1; k <= 4; k++ {
		ingest(t, sv, "seq", "acme", k, shardRows, (k-1)*shardRows)
	}
	want := discoverB(t, sv, "seq", "acme")

	createSession(t, sv, "sharded", "acme")
	// Ship out of order: the second half first. Order must not matter.
	if !mustShip(t, sv, "sharded", "acme", 2, shardSnapshot(t, fdx.Options{}, testAttrs, 2, 3)) {
		t.Fatal("shard 2 not applied")
	}
	if !mustShip(t, sv, "sharded", "acme", 1, shardSnapshot(t, fdx.Options{}, testAttrs, 0, 1)) {
		t.Fatal("shard 1 not applied")
	}
	if got := discoverB(t, sv, "sharded", "acme"); !reflect.DeepEqual(got, want) {
		t.Error("shard-merged B differs from sequential ingest")
	}
}

// TestShardShipIdempotent pins both dedup layers: a repeated seq is
// acknowledged without re-applying, and a fresh seq whose coverage the
// session already holds merges as a no-op.
func TestShardShipIdempotent(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s", "acme")
	snap := shardSnapshot(t, fdx.Options{}, testAttrs, 0, 1)
	if !mustShip(t, sv, "s", "acme", 1, snap) {
		t.Fatal("first ship not applied")
	}
	if mustShip(t, sv, "s", "acme", 1, snap) {
		t.Error("retried seq re-applied")
	}
	// Same coverage under a new seq: the accumulator's coverage intervals
	// are the durable dedup (this is the post-restart retry path).
	if mustShip(t, sv, "s", "acme", 2, snap) {
		t.Error("duplicate coverage applied under a fresh seq")
	}
	rec, body := do(t, sv, "GET", "/v1/sessions/s", "acme", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d", rec.Code)
	}
	if b, _ := body["batches"].(float64); int(b) != 2 {
		t.Errorf("batches = %v, want 2 (duplicates must not double-count)", body["batches"])
	}
}

// TestShardShipCorruptSnapshot sends garbage and torn snapshots: the
// response is typed corrupt_checkpoint and the session's state is
// untouched — discovery before and after returns the identical matrix.
func TestShardShipCorruptSnapshot(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s", "acme")
	good := shardSnapshot(t, fdx.Options{}, testAttrs, 0)
	mustShip(t, sv, "s", "acme", 1, good)
	want := discoverB(t, sv, "s", "acme")

	for name, bad := range map[string][]byte{
		"garbage": []byte("definitely not a snapshot"),
		"torn":    shardSnapshot(t, fdx.Options{}, testAttrs, 1)[:37],
		"empty":   nil,
	} {
		rec, body := ship(t, sv, "s", "acme", 2, bad)
		if rec.Code != http.StatusInternalServerError {
			t.Errorf("%s snapshot: status %d, want 500", name, rec.Code)
			continue
		}
		if code := errCode(t, body); code != CodeCorruptCheckpoint {
			t.Errorf("%s snapshot: code %s, want %s", name, code, CodeCorruptCheckpoint)
		}
	}
	if got := discoverB(t, sv, "s", "acme"); !reflect.DeepEqual(got, want) {
		t.Error("corrupt ships changed the session's state")
	}
	// The failed seq was never acknowledged; a valid retry under it lands.
	if !mustShip(t, sv, "s", "acme", 2, shardSnapshot(t, fdx.Options{}, testAttrs, 1)) {
		t.Error("valid ship after corrupt attempts not applied")
	}
}

// TestShardShipMismatch covers the 409 shard_mismatch taxonomy: a shard
// built under different options, a different schema, or coverage that
// partially overlaps the session's.
func TestShardShipMismatch(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s", "acme")
	mustShip(t, sv, "s", "acme", 1, shardSnapshot(t, fdx.Options{}, testAttrs, 0, 1))

	// A shard over a narrower schema, built by hand (genRows is 3-wide).
	narrow := fdx.NewAccumulator([]string{"a", "b"}, fdx.Options{})
	rel := fdx.NewRelation("wire", "a", "b")
	for _, row := range genRows(shardRows, 2*shardRows) {
		if err := rel.AppendRow(row[:2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := narrow.AddAt(rel, 2); err != nil {
		t.Fatal(err)
	}
	var narrowSnap bytes.Buffer
	if err := narrow.Snapshot(&narrowSnap); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"options":         shardSnapshot(t, fdx.Options{Seed: 99}, testAttrs, 2),
		"schema":          narrowSnap.Bytes(),
		"partial overlap": shardSnapshot(t, fdx.Options{}, testAttrs, 1, 2),
	}
	for name, snap := range cases {
		rec, body := ship(t, sv, "s", "acme", 7, snap)
		if rec.Code != http.StatusConflict {
			t.Errorf("%s mismatch: status %d, want 409 (body %v)", name, rec.Code, body)
			continue
		}
		if code := errCode(t, body); code != CodeShardMismatch {
			t.Errorf("%s mismatch: code %s, want %s", name, code, CodeShardMismatch)
		}
	}
	// None of the rejects may have consumed the seq or state.
	if !mustShip(t, sv, "s", "acme", 7, shardSnapshot(t, fdx.Options{}, testAttrs, 2)) {
		t.Error("valid ship after mismatches not applied")
	}
}

// TestShardShipBadRequests covers the 400/404 edges of the endpoint.
func TestShardShipBadRequests(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s", "acme")
	snap := shardSnapshot(t, fdx.Options{}, testAttrs, 0)

	if rec, body := ship(t, sv, "s", "acme", 0, snap); rec.Code != 400 || errCode(t, body) != CodeBadInput {
		t.Errorf("seq 0: status %d code %v, want 400 bad_input", rec.Code, body)
	}
	req := httptest.NewRequest("POST", "/v1/sessions/s/shards", bytes.NewReader(snap))
	req.Header.Set("X-Fdx-Tenant", "acme")
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Errorf("missing seq: status %d, want 400", rec.Code)
	}
	if rec, _ := ship(t, sv, "nope", "acme", 1, snap); rec.Code != 404 {
		t.Errorf("unknown session: status %d, want 404", rec.Code)
	}
	if rec, _ := ship(t, sv, "s", "rival", 1, snap); rec.Code != 404 {
		t.Errorf("cross-tenant ship: status %d, want 404 (no existence leak)", rec.Code)
	}
}

// TestShardShipMetrics asserts the shard counters and gauge reach
// /metrics with tenant labels.
func TestShardShipMetrics(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s", "acme")
	snap := shardSnapshot(t, fdx.Options{}, testAttrs, 0, 1)
	mustShip(t, sv, "s", "acme", 1, snap)
	mustShip(t, sv, "s", "acme", 1, snap) // duplicate

	rec, _ := do(t, sv, "GET", "/metrics", "", nil)
	text := rec.Body.String()
	for _, want := range []string{
		obs.MServeShardsMerged + `{tenant="acme"} 1`,
		obs.MServeShardDuplicates + `{tenant="acme"} 1`,
		obs.MServeShardBatches + `{tenant="acme"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// flakyHandler wraps a handler, failing the first n matching requests
// with a 503 draining envelope that names a Retry-After.
type flakyHandler struct {
	inner     http.Handler
	remaining atomic.Int64
	seen      atomic.Int64
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.seen.Add(1)
	if f.remaining.Add(-1) >= 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]wireError{"error": {
			Code: CodeDraining, Message: "induced flake", RetryAfterMS: 5}})
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestShardClientRetriesFlakyServer drives the full client path against a
// server that sheds the first two requests: the client must back off per
// the server's Retry-After, count its retries, and land the ship.
func TestShardClientRetriesFlakyServer(t *testing.T) {
	sv := newServer(t, nil)
	flaky := &flakyHandler{inner: sv.Handler()}
	flaky.remaining.Store(2)
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	reg := fdx.NewMetrics()
	c := &ShardClient{BaseURL: ts.URL, Tenant: "acme", Metrics: reg,
		Retry: retry.Policy{Base: time.Millisecond, MaxAttempts: 5}}
	ctx := context.Background()
	if err := c.CreateSession(ctx, "s", testAttrs, SessionOptions{}); err != nil {
		t.Fatalf("CreateSession through flakes: %v", err)
	}
	applied, err := c.ShipShard(ctx, "s", 1, shardSnapshot(t, fdx.Options{}, testAttrs, 0, 1))
	if err != nil || !applied {
		t.Fatalf("ShipShard: applied=%v err=%v", applied, err)
	}
	res, err := c.Discover(ctx, "s")
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if res.Batches != 2 || len(res.Attributes) != 3 {
		t.Errorf("discover reply batches=%d attrs=%v", res.Batches, res.Attributes)
	}
	var retries uint64
	reg.WritePrometheus(&strings.Builder{}) // ensure registry is materialized
	fmt.Sscanf(metricLine(reg, obs.MShardShipRetries), "%d", &retries)
	if retries != 2 {
		t.Errorf("ship retry counter = %d, want 2", retries)
	}
}

// metricLine extracts a metric's value text from the registry dump.
func metricLine(reg *fdx.Metrics, name string) string {
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	return ""
}

// TestShardClientPermanentErrorsDontRetry ships a mismatched shard: the
// client must fail once, typed, without burning retries.
func TestShardClientPermanentErrorsDontRetry(t *testing.T) {
	sv := newServer(t, nil)
	flaky := &flakyHandler{inner: sv.Handler()} // zero flakes; counts requests
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := &ShardClient{BaseURL: ts.URL, Tenant: "acme",
		Retry: retry.Policy{Base: time.Millisecond, MaxAttempts: 5}}
	ctx := context.Background()
	if err := c.CreateSession(ctx, "s", testAttrs, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ShipShard(ctx, "s", 1, shardSnapshot(t, fdx.Options{}, testAttrs, 0)); err != nil {
		t.Fatal(err)
	}
	before := flaky.seen.Load()
	_, err := c.ShipShard(ctx, "s", 2, shardSnapshot(t, fdx.Options{Seed: 9}, testAttrs, 1))
	if !errors.Is(err, fdxerr.ErrShardMismatch) {
		t.Errorf("mismatched ship error = %v, want ErrShardMismatch across the wire", err)
	}
	var rerr *RemoteError
	if !errors.As(err, &rerr) || rerr.Status != http.StatusConflict || rerr.Code != CodeShardMismatch {
		t.Errorf("error %v does not carry the wire envelope", err)
	}
	if got := flaky.seen.Load() - before; got != 1 {
		t.Errorf("mismatch burned %d requests, want 1 (no retry of a permanent failure)", got)
	}
	if _, err := c.ShipShard(ctx, "nope", 1, shardSnapshot(t, fdx.Options{}, testAttrs, 1)); err == nil {
		t.Error("ship to unknown session succeeded")
	}
}

// TestShardClientShipTimeoutFault arms the ShipTimeout fault: the first
// attempt burns its deadline before the request leaves, the retry lands.
func TestShardClientShipTimeoutFault(t *testing.T) {
	defer faults.Reset()
	sv := newServer(t, nil)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	c := &ShardClient{BaseURL: ts.URL, Tenant: "acme", RequestTimeout: 20 * time.Millisecond,
		Retry: retry.Policy{Base: time.Millisecond, MaxAttempts: 3}}
	ctx := context.Background()
	if err := c.CreateSession(ctx, "s", testAttrs, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.ShipTimeout, faults.Config{Times: 1, Delay: 100 * time.Millisecond})
	applied, err := c.ShipShard(ctx, "s", 1, shardSnapshot(t, fdx.Options{}, testAttrs, 0))
	if err != nil || !applied {
		t.Fatalf("ship through a timed-out attempt: applied=%v err=%v", applied, err)
	}
}
