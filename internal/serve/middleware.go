package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"fdx/internal/obs"
)

// Cross-process tracing: fdxd cannot append spans to the caller's in-memory
// trace, and Chrome trace JSON has no wire format for context propagation —
// so the link is made twice. Inbound, the middleware parses the W3C
// `traceparent` header to adopt the caller's trace-id. Outbound, it echoes
// the server span (identity, timing, request annotations) as JSON in the
// X-Fdx-Trace response header, which ShardClient grafts into the caller's
// tracer via Span.AttachRemote. The result: one `fdx stream -trace` file
// holds supervisor, shard worker, and fdxd server spans under one trace-id.

// TraceEchoHeader carries the server span back to the client as JSON
// (a WireTrace).
const TraceEchoHeader = "X-Fdx-Trace"

// WireTrace is the X-Fdx-Trace payload: enough to reconstruct the server
// span inside the caller's trace.
type WireTrace struct {
	Name        string         `json:"name"`
	TraceID     string         `json:"trace_id"`
	SpanID      string         `json:"span_id"`
	ParentID    string         `json:"parent_span_id,omitempty"`
	StartUnixUS int64          `json:"start_unix_us"`
	DurUS       int64          `json:"dur_us"`
	Attrs       map[string]any `json:"attrs,omitempty"`
}

// reqScope is the per-request observability state: trace identity plus the
// structured-log fields handlers annotate as they learn them (session id
// at routing, seq after body decode).
type reqScope struct {
	name    string
	traceID string
	spanID  string
	parent  string
	start   time.Time

	mu    sync.Mutex
	attrs []obs.Attr
}

type reqScopeKey struct{}

// annotate attaches a key/value to the request's log line and trace echo.
// Safe to call with any request, including ones outside route().
func annotate(r *http.Request, key string, value any) {
	if sc, ok := r.Context().Value(reqScopeKey{}).(*reqScope); ok {
		sc.mu.Lock()
		sc.attrs = append(sc.attrs, obs.Attr{Key: key, Value: value})
		sc.mu.Unlock()
	}
}

func (sc *reqScope) snapshot() []obs.Attr {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]obs.Attr(nil), sc.attrs...)
}

// wire renders the span echo for the response header.
func (sc *reqScope) wire(now time.Time) string {
	wt := WireTrace{
		Name:        sc.name,
		TraceID:     sc.traceID,
		SpanID:      sc.spanID,
		ParentID:    sc.parent,
		StartUnixUS: sc.start.UnixMicro(),
		DurUS:       now.Sub(sc.start).Microseconds(),
	}
	if attrs := sc.snapshot(); len(attrs) > 0 {
		wt.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			wt.Attrs[a.Key] = a.Value
		}
	}
	b, err := json.Marshal(wt)
	if err != nil {
		return ""
	}
	return string(b)
}

// echoWriter wraps the ResponseWriter to capture the status code and to
// emit the trace echo at WriteHeader time — the last moment a header can
// still be set, with the request's handling all but complete.
type echoWriter struct {
	http.ResponseWriter
	scope  *reqScope
	status int
}

func (ew *echoWriter) WriteHeader(status int) {
	if ew.status == 0 {
		ew.status = status
		//fdx:lint-ignore detsource span timing for telemetry echo; never feeds FD scores
		if echo := ew.scope.wire(time.Now()); echo != "" {
			ew.Header().Set(TraceEchoHeader, echo)
		}
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *echoWriter) Write(b []byte) (int, error) {
	if ew.status == 0 {
		ew.WriteHeader(http.StatusOK)
	}
	return ew.ResponseWriter.Write(b)
}

// beginScope builds the request scope, adopting the caller's trace-id from
// a valid traceparent header and minting a fresh one otherwise.
func beginScope(name string, r *http.Request, start time.Time) *reqScope {
	sc := &reqScope{name: "fdxd." + name, spanID: obs.NewSpanID(), start: start}
	if tid, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		sc.traceID, sc.parent = tid, parent
	} else {
		sc.traceID = obs.NewTraceID()
	}
	return sc
}

// logRequest emits the request-scoped structured line: every request gets
// one at Info with trace/span ids, tenant, and whatever the handler
// annotated (session, seq); requests over the slow threshold additionally
// get a Warn, so `grep slow_request` works on an incident box.
func (sv *Server) logRequest(r *http.Request, sc *reqScope, status int, dur time.Duration) {
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("dur", dur),
		slog.String("tenant", tenantOf(r)),
		slog.String("trace_id", sc.traceID),
		slog.String("span_id", sc.spanID),
	}
	for _, a := range sc.snapshot() {
		attrs = append(attrs, slog.Any(a.Key, a.Value))
	}
	sv.cfg.Log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	if sv.cfg.SlowRequest > 0 && dur >= sv.cfg.SlowRequest {
		attrs = append(attrs, slog.Duration("threshold", sv.cfg.SlowRequest))
		sv.cfg.Log.LogAttrs(r.Context(), slog.LevelWarn, "slow_request", attrs...)
	}
}
