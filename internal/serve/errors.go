package serve

import (
	"errors"
	"net/http"
	"time"

	"fdx/internal/fdxerr"
)

// Error codes of the wire taxonomy. Every non-2xx response body is
// {"error":{"code":..., "message":..., "retry_after_ms":...}} with code
// drawn from this fixed set, so clients branch on stable machine-readable
// strings instead of parsing messages. The chaos suite asserts no response
// ever carries a code outside this set.
const (
	// CodeBadInput: the request is malformed (body, id, schema, seq out of
	// order is CodeConflict). Maps fdxerr.ErrBadInput. HTTP 400.
	CodeBadInput = "bad_input"
	// CodeNotFound: no such session. HTTP 404.
	CodeNotFound = "not_found"
	// CodeConflict: the session exists with different parameters, or the
	// ingest seq skips ahead of the accumulator. HTTP 409.
	CodeConflict = "conflict"
	// CodeRateLimited: the tenant exceeded its ingest rows/s. Retry after
	// the bucket refills. HTTP 429.
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded: the tenant is at its session or in-flight
	// discover cap. HTTP 429.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeQueueFull: the discover job queue is at capacity. HTTP 503.
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down and admits no new work.
	// HTTP 503.
	CodeDraining = "draining"
	// CodeTimeout: the request's deadline expired before the work
	// finished. Maps fdxerr.ErrCancelled. HTTP 504.
	CodeTimeout = "timeout"
	// CodeNotConverged: discovery failed to converge under
	// RequireConvergence. Maps fdxerr.ErrNotConverged. HTTP 422.
	CodeNotConverged = "not_converged"
	// CodeSingular: the session's statistics are numerically singular.
	// Maps fdxerr.ErrSingularCovariance. HTTP 422.
	CodeSingular = "singular_covariance"
	// CodeNonPositivePivot: factorization failure past the fallback
	// ladder. Maps fdxerr.ErrNonPositivePivot. HTTP 422.
	CodeNonPositivePivot = "non_positive_pivot"
	// CodeShardMismatch: a shipped shard snapshot cannot merge into the
	// session — different options fingerprint, different schema, or batch
	// coverage partially overlapping what the session already holds.
	// Re-sending the same bytes cannot succeed. Maps
	// fdxerr.ErrShardMismatch. HTTP 409.
	CodeShardMismatch = "shard_mismatch"
	// CodeCorruptCheckpoint: the session's durable state failed
	// validation. Maps fdxerr.ErrCorruptCheckpoint. HTTP 500.
	CodeCorruptCheckpoint = "corrupt_checkpoint"
	// CodeCheckpointVersion: the session's durable state has an
	// incompatible format version. Maps fdxerr.ErrCheckpointVersion.
	// HTTP 500.
	CodeCheckpointVersion = "checkpoint_version"
	// CodeInternal: a recovered invariant violation or unclassified
	// failure. Maps fdxerr.ErrInternal. HTTP 500.
	CodeInternal = "internal"
)

// KnownCode reports whether code belongs to the wire taxonomy (the chaos
// suite's oracle).
func KnownCode(code string) bool {
	switch code {
	case CodeBadInput, CodeNotFound, CodeConflict, CodeRateLimited,
		CodeQuotaExceeded, CodeQueueFull, CodeDraining, CodeTimeout,
		CodeNotConverged, CodeSingular, CodeNonPositivePivot,
		CodeShardMismatch, CodeCorruptCheckpoint, CodeCheckpointVersion,
		CodeInternal:
		return true
	}
	return false
}

// wireError is the JSON error payload (nested under "error" in the
// response envelope).
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, when non-zero, tells the client how long to back off;
	// the same value rides the Retry-After header (rounded up to whole
	// seconds, the header's unit).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// httpError pairs the wire payload with its HTTP status.
type httpError struct {
	status int
	wireError
}

// serveError builds a service-level error response.
func serveError(status int, code, message string) *httpError {
	return &httpError{status: status, wireError: wireError{Code: code, Message: message}}
}

// withRetry attaches a backoff hint.
func (e *httpError) withRetry(d time.Duration) *httpError {
	if d <= 0 {
		d = time.Second
	}
	e.RetryAfterMS = d.Milliseconds()
	if e.RetryAfterMS == 0 {
		e.RetryAfterMS = 1
	}
	return e
}

// taxonomyError maps a library error onto the wire taxonomy. Every fdxerr
// sentinel has a stable code; anything unclassified is CodeInternal, so the
// wire never leaks an untyped failure.
func taxonomyError(err error) *httpError {
	msg := err.Error()
	switch {
	case errors.Is(err, fdxerr.ErrCancelled):
		return serveError(http.StatusGatewayTimeout, CodeTimeout, msg)
	case errors.Is(err, fdxerr.ErrShardMismatch):
		return serveError(http.StatusConflict, CodeShardMismatch, msg)
	case errors.Is(err, fdxerr.ErrCorruptCheckpoint):
		return serveError(http.StatusInternalServerError, CodeCorruptCheckpoint, msg)
	case errors.Is(err, fdxerr.ErrCheckpointVersion):
		return serveError(http.StatusInternalServerError, CodeCheckpointVersion, msg)
	case errors.Is(err, fdxerr.ErrNotConverged):
		return serveError(http.StatusUnprocessableEntity, CodeNotConverged, msg)
	case errors.Is(err, fdxerr.ErrSingularCovariance):
		return serveError(http.StatusUnprocessableEntity, CodeSingular, msg)
	case errors.Is(err, fdxerr.ErrNonPositivePivot):
		return serveError(http.StatusUnprocessableEntity, CodeNonPositivePivot, msg)
	case errors.Is(err, fdxerr.ErrBadInput):
		return serveError(http.StatusBadRequest, CodeBadInput, msg)
	default:
		return serveError(http.StatusInternalServerError, CodeInternal, msg)
	}
}
