// Package serve implements fdxd, the crash-safe FD-discovery service: named
// accumulator sessions with durable checkpoint+WAL state, batched
// idempotent ingest, queued discovery with a bounded worker pool, per-tenant
// admission control (package limit), and graceful drain. Every error on the
// wire carries a code from the fixed taxonomy in errors.go.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fdx"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/obs"
	"fdx/internal/serve/limit"
)

// Config sizes the server. The zero value of each field selects the
// default noted on it.
type Config struct {
	// DataDir holds every session's manifest, checkpoint, and WAL.
	// Required.
	DataDir string
	// Quotas is the per-tenant admission policy (zero fields unlimited).
	Quotas limit.Quotas
	// CheckpointEvery checkpoints a session after this many absorbed
	// batches, bounding WAL replay after a crash. Default 16; negative
	// disables periodic checkpoints (drain and restore still save).
	CheckpointEvery int
	// RequestTimeout bounds each request's handling, propagated as a
	// context deadline into discovery. Default 30s.
	RequestTimeout time.Duration
	// DiscoverWorkers is the structure-learning worker-pool size.
	// Default 2.
	DiscoverWorkers int
	// QueueDepth bounds the discover backlog; a full queue sheds with 503
	// queue_full. Default 16.
	QueueDepth int
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// before checkpointing anyway. Default 10s.
	DrainTimeout time.Duration
	// Metrics receives service counters and histograms; nil creates a
	// private registry (exposed at /metrics either way).
	Metrics *fdx.Metrics
	// Log receives request-scoped structured lines (trace/span ids,
	// tenant, session, seq) and operational events; nil discards them.
	Log *slog.Logger
	// SlowRequest is the slow-request log threshold: requests at or over
	// it are re-logged at Warn as "slow_request". Default 1s; negative
	// disables.
	SlowRequest time.Duration
}

func (c Config) withDefaults() Config {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DiscoverWorkers <= 0 {
		c.DiscoverWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = fdx.NewMetrics()
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = time.Second
	}
	return c
}

// Server is the fdxd request handler plus the state behind it. Create with
// New, mount Handler on an http.Server (or use HTTPServer), and call Drain
// on SIGTERM.
type Server struct {
	cfg      Config
	store    *sessionStore
	queue    *discoverQueue
	tenants  *limit.PerTenant
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a server over cfg.DataDir, restoring every session the
// directory describes (checkpoint + WAL replay) before returning, so a
// restart resumes streams bit-identically.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	sv := &Server{
		cfg:     cfg,
		store:   newSessionStore(cfg.DataDir, cfg.Metrics),
		tenants: limit.NewPerTenant(cfg.Quotas),
	}
	if err := sv.store.restore(); err != nil {
		return nil, err
	}
	// Re-seed the quota ledger with the restored sessions, so a restart
	// does not grant every tenant a fresh allowance.
	for tenant, n := range sv.store.tenantSessions() {
		for i := 0; i < n; i++ {
			sv.tenants.AcquireSession(tenant)
		}
		cfg.Metrics.Gauge(obs.Labeled(obs.MServeSessions, "tenant", tenant)).Set(float64(n))
	}
	sv.queue = newDiscoverQueue(cfg.DiscoverWorkers, cfg.QueueDepth, cfg.Metrics)
	return sv, nil
}

// Metrics returns the server's registry (for expvar publication or tests).
func (sv *Server) Metrics() *fdx.Metrics { return sv.cfg.Metrics }

// Handler returns the fdxd route table.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", sv.route("create", sv.handleCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", sv.route("get", sv.handleGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", sv.route("delete", sv.handleDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/rows", sv.route("rows", sv.handleRows))
	mux.HandleFunc("POST /v1/sessions/{id}/shards", sv.route("shards", sv.handleShards))
	mux.HandleFunc("POST /v1/sessions/{id}/discover", sv.route("discover", sv.handleDiscover))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if sv.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		sv.cfg.Metrics.WritePrometheus(w)
	})
	return mux
}

// HTTPServer wraps Handler in an http.Server with slow-client protection:
// header/body read and response write deadlines, so one stalled peer
// cannot pin a connection goroutine forever.
func (sv *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           sv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       sv.cfg.RequestTimeout + 5*time.Second,
		WriteTimeout:      sv.cfg.RequestTimeout + 5*time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// route wraps a handler with the service envelope: drain shedding, the
// in-flight ledger, the per-request deadline, panic recovery, JSON error
// rendering — and the observability scope, which adopts the caller's W3C
// traceparent, echoes the server span in X-Fdx-Trace, and emits one
// structured log line per request (see middleware.go).
func (sv *Server) route(name string, h func(w http.ResponseWriter, r *http.Request) *httpError) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		//fdx:lint-ignore detsource request timing for logs and trace echo; never feeds FD scores
		start := time.Now()
		scope := beginScope(name, r, start)
		r = r.WithContext(context.WithValue(r.Context(), reqScopeKey{}, scope))
		ew := &echoWriter{ResponseWriter: w, scope: scope}
		if id := r.PathValue("id"); id != "" {
			annotate(r, "session", id)
		}
		if sv.draining.Load() {
			sv.shed(ew, serveError(http.StatusServiceUnavailable, CodeDraining,
				"server is draining").withRetry(sv.cfg.DrainTimeout))
			return
		}
		sv.inflight.Add(1)
		defer sv.inflight.Done()
		ctx, cancel := context.WithTimeout(r.Context(), sv.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		defer func() {
			if p := recover(); p != nil {
				sv.cfg.Log.Error("panic", "method", r.Method, "path", r.URL.Path,
					"trace_id", scope.traceID, "panic", fmt.Sprint(p))
				sv.writeError(ew, serveError(http.StatusInternalServerError, CodeInternal,
					fmt.Sprintf("recovered: %v", p)))
			}
			status := ew.status
			if status == 0 {
				status = http.StatusOK
			}
			//fdx:lint-ignore detsource request timing for logs and trace echo; never feeds FD scores
			sv.logRequest(r, scope, status, time.Since(start))
		}()
		if herr := h(ew, r); herr != nil {
			sv.writeError(ew, herr)
		}
	}
}

// shed answers a rejected request without touching the in-flight ledger
// (drain must not wait for the requests it is refusing).
func (sv *Server) shed(w http.ResponseWriter, herr *httpError) {
	sv.cfg.Metrics.Counter(obs.MServeShed).Inc()
	sv.writeError(w, herr)
}

// writeError renders the wire-error envelope with a Retry-After header
// when the error carries a backoff hint.
func (sv *Server) writeError(w http.ResponseWriter, herr *httpError) {
	w.Header().Set("Content-Type", "application/json")
	if herr.RetryAfterMS > 0 {
		secs := (herr.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(herr.status)
	json.NewEncoder(w).Encode(map[string]wireError{"error": herr.wireError})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// tenantOf resolves the request's tenant: the X-Fdx-Tenant header, or
// "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Fdx-Tenant"); t != "" {
		return t
	}
	return "default"
}

// decodeBody parses the JSON request body into v, rejecting unknown
// fields so typos fail loudly instead of silently configuring nothing.
func decodeBody(r *http.Request, v any) *httpError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return serveError(http.StatusBadRequest, CodeBadInput, "parsing request body: "+err.Error())
	}
	return nil
}

// createRequest is the POST /v1/sessions body.
type createRequest struct {
	ID         string         `json:"id"`
	Tenant     string         `json:"tenant,omitempty"`
	Attributes []string       `json:"attributes"`
	Options    SessionOptions `json:"options,omitempty"`
}

// sessionReply describes a session's identity and stream position.
type sessionReply struct {
	ID         string   `json:"id"`
	Tenant     string   `json:"tenant"`
	Attributes []string `json:"attributes"`
	Rows       int      `json:"rows"`
	Batches    int      `json:"batches"`
}

func replyFor(s *session) sessionReply {
	rows, batches := s.stats()
	return sessionReply{ID: s.id, Tenant: s.tenant, Attributes: s.names, Rows: rows, Batches: batches}
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) *httpError {
	var req createRequest
	if herr := decodeBody(r, &req); herr != nil {
		return herr
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = tenantOf(r)
	}
	if !nameRe.MatchString(tenant) {
		return serveError(http.StatusBadRequest, CodeBadInput, "tenant must match "+nameRe.String())
	}
	if !sv.tenants.AcquireSession(tenant) {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeShed, "tenant", tenant)).Inc()
		return serveError(http.StatusTooManyRequests, CodeQuotaExceeded,
			fmt.Sprintf("tenant %s is at its session quota (%d)", tenant, sv.cfg.Quotas.MaxSessions)).
			withRetry(time.Second)
	}
	s, created, herr := sv.store.create(req.ID, tenant, req.Attributes, req.Options)
	if herr != nil {
		sv.tenants.ReleaseSession(tenant)
		return herr
	}
	status := http.StatusCreated
	if !created {
		// Idempotent re-create of an existing session: give back the slot
		// we optimistically took and answer 200.
		sv.tenants.ReleaseSession(tenant)
		status = http.StatusOK
	}
	sv.cfg.Metrics.Gauge(obs.Labeled(obs.MServeSessions, "tenant", tenant)).
		Set(float64(sv.store.tenantSessions()[tenant]))
	sv.cfg.Log.Info("session_created", "session", s.id, "tenant", tenant, "attributes", len(s.names))
	writeJSON(w, status, replyFor(s))
	return nil
}

func (sv *Server) handleGet(w http.ResponseWriter, r *http.Request) *httpError {
	s, herr := sv.store.get(r.PathValue("id"), tenantOf(r))
	if herr != nil {
		return herr
	}
	writeJSON(w, http.StatusOK, replyFor(s))
	return nil
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) *httpError {
	tenant := tenantOf(r)
	if herr := sv.store.remove(r.PathValue("id"), tenant); herr != nil {
		return herr
	}
	sv.tenants.ReleaseSession(tenant)
	sv.cfg.Metrics.Gauge(obs.Labeled(obs.MServeSessions, "tenant", tenant)).
		Set(float64(sv.store.tenantSessions()[tenant]))
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// rowsRequest is the POST /v1/sessions/{id}/rows body. Seq is the client's
// 1-based batch sequence number; retrying a batch with the same seq is
// safe (the duplicate is acknowledged without re-absorbing).
type rowsRequest struct {
	Seq  int        `json:"seq"`
	Rows [][]string `json:"rows"`
}

type rowsReply struct {
	Applied bool `json:"applied"`
	Rows    int  `json:"rows"`
	Batches int  `json:"batches"`
}

func (sv *Server) handleRows(w http.ResponseWriter, r *http.Request) *httpError {
	tenant := tenantOf(r)
	s, herr := sv.store.get(r.PathValue("id"), tenant)
	if herr != nil {
		return herr
	}
	var req rowsRequest
	if herr := decodeBody(r, &req); herr != nil {
		return herr
	}
	if req.Seq < 1 {
		return serveError(http.StatusBadRequest, CodeBadInput, "seq must be >= 1")
	}
	annotate(r, "seq", req.Seq)
	if ok, retry := sv.tenants.TakeRows(tenant, len(req.Rows)); !ok {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeShed, "tenant", tenant)).Inc()
		return serveError(http.StatusTooManyRequests, CodeRateLimited,
			fmt.Sprintf("tenant %s is over its ingest rate (%g rows/s)", tenant, sv.cfg.Quotas.RowsPerSecond)).
			withRetry(retry)
	}
	rel, herr := buildRelation(s.names, req.Rows)
	if herr != nil {
		return herr
	}
	//fdx:lint-ignore detsource ingest latency metric; never feeds FD scores
	t0 := time.Now()
	applied, herr := s.ingest(rel, req.Seq, sv.cfg.CheckpointEvery)
	if herr != nil {
		return herr
	}
	if applied {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeRows, "tenant", tenant)).Add(uint64(len(req.Rows)))
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeBatches, "tenant", tenant)).Inc()
		//fdx:lint-ignore detsource ingest latency metric; never feeds FD scores
		sv.cfg.Metrics.HistogramBuckets(obs.Labeled(obs.MServeIngestSeconds, "tenant", tenant), obs.ServeBuckets).
			Observe(time.Since(t0).Seconds())
	}
	rows, batches := s.stats()
	writeJSON(w, http.StatusOK, rowsReply{Applied: applied, Rows: rows, Batches: batches})
	return nil
}

// maxShardBytes bounds a shipped shard snapshot. Snapshot size grows with
// the attribute count squared, not the row count, so 64 MiB is far beyond
// any legitimate schema; a larger body is a protocol error, not big data.
const maxShardBytes = 64 << 20

// handleShards applies a shard snapshot shipped by a worker (POST
// /v1/sessions/{id}/shards?seq=N, body application/octet-stream in the
// checkpoint snapshot encoding). Retries with the same seq are
// acknowledged idempotently; a snapshot from an incompatible accumulator
// answers 409 shard_mismatch and a corrupt body 500 corrupt_checkpoint,
// neither touching the session's state.
func (sv *Server) handleShards(w http.ResponseWriter, r *http.Request) *httpError {
	tenant := tenantOf(r)
	s, herr := sv.store.get(r.PathValue("id"), tenant)
	if herr != nil {
		return herr
	}
	seq, err := strconv.Atoi(r.URL.Query().Get("seq"))
	if err != nil || seq < 1 {
		return serveError(http.StatusBadRequest, CodeBadInput, "seq query parameter must be an integer >= 1")
	}
	annotate(r, "seq", seq)
	snap, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardBytes))
	if err != nil {
		return serveError(http.StatusBadRequest, CodeBadInput, "reading shard snapshot: "+err.Error())
	}
	applied, herr := s.mergeShard(snap, seq)
	if herr != nil {
		return herr
	}
	if applied {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeShardsMerged, "tenant", tenant)).Inc()
	} else {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeShardDuplicates, "tenant", tenant)).Inc()
	}
	rows, batches := s.stats()
	sv.cfg.Metrics.Gauge(obs.Labeled(obs.MServeShardBatches, "tenant", tenant)).Set(float64(batches))
	writeJSON(w, http.StatusOK, rowsReply{Applied: applied, Rows: rows, Batches: batches})
	return nil
}

// DiscoverResponse carries the full discovery result; B round-trips
// float64 exactly through JSON, so clients can verify bit-identical
// resumption. Exported for ShardClient callers.
type DiscoverResponse struct {
	Attributes []string    `json:"attributes"`
	FDs        []WireFD    `json:"fds"`
	B          [][]float64 `json:"b"`
	Rows       int         `json:"rows"`
	Batches    int         `json:"batches"`
	Degraded   bool        `json:"degraded,omitempty"`
}

// WireFD is one discovered dependency on the wire.
type WireFD struct {
	LHS   []string `json:"lhs"`
	RHS   string   `json:"rhs"`
	Score float64  `json:"score"`
}

func (sv *Server) handleDiscover(w http.ResponseWriter, r *http.Request) *httpError {
	tenant := tenantOf(r)
	s, herr := sv.store.get(r.PathValue("id"), tenant)
	if herr != nil {
		return herr
	}
	if !sv.tenants.AcquireDiscover(tenant) {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeShed, "tenant", tenant)).Inc()
		return serveError(http.StatusTooManyRequests, CodeQuotaExceeded,
			fmt.Sprintf("tenant %s is at its in-flight discover quota (%d)",
				tenant, sv.cfg.Quotas.MaxInflightDiscover)).withRetry(time.Second)
	}
	defer sv.tenants.ReleaseDiscover(tenant)

	clone, herr := s.clone()
	if herr != nil {
		return herr
	}
	rows, batches := s.stats()
	job := &discoverJob{ctx: r.Context(), acc: clone, done: make(chan discoverResult, 1)}
	if !sv.queue.submit(job) {
		sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeShed, "tenant", tenant)).Inc()
		return serveError(http.StatusServiceUnavailable, CodeQueueFull,
			"discover queue is full").withRetry(time.Second)
	}
	//fdx:lint-ignore detsource discover latency metric; never feeds FD scores
	t0 := time.Now()
	var out discoverResult
	select {
	case out = <-job.done:
	case <-r.Context().Done():
		return taxonomyError(fdxerr.Cancelled(r.Context().Err()))
	}
	if out.err != nil {
		if errors.Is(out.err, context.DeadlineExceeded) || errors.Is(out.err, context.Canceled) {
			out.err = fdxerr.Cancelled(out.err)
		}
		return taxonomyError(out.err)
	}
	sv.cfg.Metrics.Counter(obs.Labeled(obs.MServeDiscovers, "tenant", tenant)).Inc()
	//fdx:lint-ignore detsource discover latency metric; never feeds FD scores
	sv.cfg.Metrics.HistogramBuckets(obs.Labeled(obs.MServeDiscoverSeconds, "tenant", tenant), obs.ServeBuckets).
		Observe(time.Since(t0).Seconds())
	res := out.res
	reply := DiscoverResponse{
		Attributes: res.Attributes,
		FDs:        make([]WireFD, 0, len(res.FDs)),
		B:          res.B,
		Rows:       rows,
		Batches:    batches,
		Degraded:   res.Diagnostics.Degraded(),
	}
	for _, fd := range res.FDs {
		reply.FDs = append(reply.FDs, WireFD{LHS: fd.LHS, RHS: fd.RHS, Score: fd.Score})
	}
	writeJSON(w, http.StatusOK, reply)
	return nil
}

// Drain performs the graceful-shutdown protocol: stop admitting (route
// sheds with 503 draining), wait up to DrainTimeout for in-flight requests
// and queued discoveries, then checkpoint every session — even on timeout,
// so a forced exit after a wedged drain still loses at most the WAL tail.
// Returns an error if the deadline passed with work still in flight.
func (sv *Server) Drain() error {
	if !sv.draining.CompareAndSwap(false, true) {
		return nil
	}
	sv.cfg.Log.Info("draining", "timeout", sv.cfg.DrainTimeout)
	//fdx:lint-ignore detsource drain duration metric; never feeds FD scores
	t0 := time.Now()
	done := make(chan struct{})
	go func() {
		faults.Sleep(faults.DrainTimeout)
		sv.inflight.Wait()
		sv.queue.close()
		close(done)
	}()
	timer := time.NewTimer(sv.cfg.DrainTimeout)
	defer timer.Stop()
	timedOut := false
	select {
	case <-done:
	case <-timer.C:
		timedOut = true
	}
	var firstErr error
	for _, s := range sv.store.all() {
		if err := s.checkpoint(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: drain checkpoint of session %s: %w", s.id, err)
		}
	}
	sv.store.closeAll()
	//fdx:lint-ignore detsource drain duration metric; never feeds FD scores
	sv.cfg.Metrics.Gauge(obs.MServeDrainSeconds).Set(time.Since(t0).Seconds())
	if firstErr != nil {
		return firstErr
	}
	if timedOut {
		return fmt.Errorf("serve: drain deadline (%s) passed with requests still in flight; sessions checkpointed anyway", sv.cfg.DrainTimeout)
	}
	sv.cfg.Log.Info("drain_complete", "dur", time.Since(t0).Round(time.Millisecond))
	return nil
}
