// Package retry is a small, context-aware retry loop with capped
// exponential backoff and deterministic jitter, shared by everything in
// fdx that re-attempts a failed operation against a busy peer: the shard
// supervisor restarting a crashed worker and the shard-shipping client
// talking to fdxd.
//
// The server side of the protocol already names its price — load-shed
// responses carry Retry-After — so the loop treats a server-provided
// delay as authoritative and only falls back to its own exponential
// schedule when the failure carries no hint. Jitter draws from a rand
// seeded by Policy.Seed, so a test replays the same wait sequence on
// every run.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Defaults applied by Policy.Do for zero-valued fields.
const (
	DefaultBase        = 50 * time.Millisecond
	DefaultCap         = 2 * time.Second
	DefaultMaxAttempts = 4
	DefaultJitter      = 0.5
)

// Policy configures a retry loop. The zero value is usable: 4 attempts,
// 50ms base doubling to a 2s cap, half the wait jittered.
type Policy struct {
	// Base is the pre-jitter backoff before the first retry; each retry
	// doubles it up to Cap.
	Base time.Duration
	// Cap bounds the pre-jitter backoff.
	Cap time.Duration
	// MaxAttempts is the total number of calls to the operation
	// (first try included).
	MaxAttempts int
	// Jitter is the fraction of each wait that is randomized away:
	// the actual wait is uniform in [wait*(1-Jitter), wait]. Pulling
	// earlier (never later) keeps the cap honest while still spreading
	// synchronized retriers. 0 applies DefaultJitter; negative disables.
	Jitter float64
	// Seed seeds the jitter sequence, making waits reproducible in tests.
	Seed int64
	// Sleep replaces the context-aware wait, letting tests observe the
	// schedule without real time passing. Nil uses a timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Notify, when set, observes each scheduled retry: the attempt that
	// just failed (0-based), the wait before the next one, and the error.
	// Callers hang retry counters and logs here.
	Notify func(attempt int, wait time.Duration, err error)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns it (unwrapped)
// instead of burning remaining attempts. Use for failures that retrying
// cannot fix: bad input, mismatched shards, corrupt state the caller
// must regenerate. Permanent(nil) is nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do runs op until it succeeds, fails permanently, exhausts
// Policy.MaxAttempts, or ctx is done. op receives the 0-based attempt
// number and returns the delay the peer asked for (its Retry-After;
// 0 when it named none) alongside the error. A peer-provided delay
// overrides the exponential schedule for that wait and is not jittered —
// the server already spread its callers. The returned error is the last
// attempt's (with context errors joined in when the wait was cut short),
// so errors.Is sees the underlying taxonomy.
func (p Policy) Do(ctx context.Context, op func(attempt int) (retryAfter time.Duration, err error)) error {
	base, cp, attempts, jitter := p.Base, p.Cap, p.MaxAttempts, p.Jitter
	if base <= 0 {
		base = DefaultBase
	}
	if cp <= 0 {
		cp = DefaultCap
	}
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	//fdx:lint-ignore floatcmp exactly-zero means "unset, use the default"; a caller wanting no jitter sets a negative value
	if jitter == 0 {
		jitter = DefaultJitter
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	//fdx:lint-ignore detsource seeded jitter spreads retry waits; never feeds FD scores
	rng := rand.New(rand.NewSource(p.Seed))

	backoff := base
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("retry: cancelled after %d attempts: %w: %w", attempt, lastErr, err)
			}
			return err
		}
		retryAfter, err := op(attempt)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if attempt == attempts-1 {
			break
		}
		wait := backoff
		if jitter > 0 {
			wait = time.Duration(float64(wait) * (1 - jitter*rng.Float64()))
		}
		if retryAfter > 0 {
			// The peer named its price; believe it, unjittered.
			wait = retryAfter
		}
		if p.Notify != nil {
			p.Notify(attempt, wait, err)
		}
		if serr := sleep(ctx, wait); serr != nil {
			return fmt.Errorf("retry: cancelled while backing off after attempt %d: %w: %w", attempt, lastErr, serr)
		}
		if backoff < cp/2 {
			backoff *= 2
		} else {
			backoff = cp
		}
	}
	return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, lastErr)
}

// sleepCtx blocks for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
