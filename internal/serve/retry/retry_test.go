package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock records requested waits without sleeping.
type fakeClock struct{ waits []time.Duration }

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.waits = append(c.waits, d)
	return ctx.Err()
}

func TestDoSucceedsFirstTry(t *testing.T) {
	clk := &fakeClock{}
	calls := 0
	err := Policy{Sleep: clk.sleep}.Do(context.Background(), func(int) (time.Duration, error) {
		calls++
		return 0, nil
	})
	if err != nil || calls != 1 || len(clk.waits) != 0 {
		t.Fatalf("err=%v calls=%d waits=%v", err, calls, clk.waits)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	clk := &fakeClock{}
	calls := 0
	err := Policy{Sleep: clk.sleep}.Do(context.Background(), func(attempt int) (time.Duration, error) {
		if calls != attempt {
			t.Errorf("attempt %d reported as %d", calls, attempt)
		}
		calls++
		if calls < 3 {
			return 0, errors.New("transient")
		}
		return 0, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(clk.waits) != 2 {
		t.Fatalf("waits=%v, want 2 entries", clk.waits)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	err := Policy{MaxAttempts: 3, Sleep: (&fakeClock{}).sleep}.Do(context.Background(),
		func(int) (time.Duration, error) { calls++; return 0, sentinel })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("exhausted error %v does not wrap the last attempt's", err)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	sentinel := errors.New("bad request")
	calls := 0
	err := Policy{Sleep: (&fakeClock{}).sleep}.Do(context.Background(),
		func(int) (time.Duration, error) { calls++; return 0, Permanent(sentinel) })
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retry of a permanent failure)", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the wrapped sentinel", err)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) should be nil")
	}
}

func TestDoHonorsRetryAfter(t *testing.T) {
	clk := &fakeClock{}
	calls := 0
	hint := 123 * time.Millisecond
	err := Policy{MaxAttempts: 2, Sleep: clk.sleep}.Do(context.Background(),
		func(int) (time.Duration, error) {
			calls++
			if calls == 1 {
				return hint, errors.New("busy")
			}
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(clk.waits) != 1 || clk.waits[0] != hint {
		t.Fatalf("waits = %v, want exactly the server's Retry-After %v", clk.waits, hint)
	}
}

func TestDoBackoffGrowsAndCaps(t *testing.T) {
	clk := &fakeClock{}
	p := Policy{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond,
		MaxAttempts: 6, Jitter: -1, Sleep: clk.sleep}
	p.Do(context.Background(), func(int) (time.Duration, error) { return 0, errors.New("x") })
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if clk.waits[i] != w*time.Millisecond {
			t.Fatalf("waits = %v, want %v ms sequence", clk.waits, want)
		}
	}
}

func TestDoJitterDeterministicAndBounded(t *testing.T) {
	run := func() []time.Duration {
		clk := &fakeClock{}
		p := Policy{Base: 100 * time.Millisecond, MaxAttempts: 4, Seed: 7, Sleep: clk.sleep}
		p.Do(context.Background(), func(int) (time.Duration, error) { return 0, errors.New("x") })
		return clk.waits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not reproducible: %v vs %v", a, b)
		}
	}
	if a[0] > 100*time.Millisecond || a[0] < 50*time.Millisecond {
		t.Errorf("jittered wait %v outside [base/2, base]", a[0])
	}
}

func TestDoContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("transient")
	err := Policy{Sleep: sleepCtx, Base: time.Millisecond}.Do(ctx,
		func(attempt int) (time.Duration, error) {
			if attempt == 1 {
				cancel()
			}
			return 0, sentinel
		})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, should also wrap the last attempt's error", err)
	}
}

func TestDoNotify(t *testing.T) {
	var seen []int
	p := Policy{MaxAttempts: 3, Sleep: (&fakeClock{}).sleep,
		Notify: func(attempt int, _ time.Duration, _ error) { seen = append(seen, attempt) }}
	p.Do(context.Background(), func(int) (time.Duration, error) { return 0, errors.New("x") })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("notified attempts %v, want [0 1] (no notify after the final failure)", seen)
	}
}
