package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newServer builds a Server over a temp data dir with test-friendly
// defaults; mod tweaks the config before New.
func newServer(t *testing.T, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{DataDir: t.TempDir(), RequestTimeout: 30 * time.Second}
	if mod != nil {
		mod(&cfg)
	}
	sv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sv
}

// do runs one request through the server's handler and decodes the JSON
// response body (when there is one).
func do(t *testing.T, sv *Server, method, path, tenant string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if tenant != "" {
		req.Header.Set("X-Fdx-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, req)
	var decoded map[string]any
	if raw := rec.Body.Bytes(); len(raw) > 0 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: undecodable JSON body %q: %v", method, path, raw, err)
		}
	}
	return rec, decoded
}

// errCode extracts the taxonomy code from an error envelope, failing the
// test if the envelope is malformed.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response is not an error envelope: %v", body)
	}
	code, _ := e["code"].(string)
	if !KnownCode(code) {
		t.Fatalf("error code %q is outside the wire taxonomy", code)
	}
	return code
}

// genRows produces deterministic categorical rows over three attributes
// with b functionally determined by a.
func genRows(n, offset int) [][]string {
	rows := make([][]string, n)
	for i := range rows {
		v := offset + i
		rows[i] = []string{
			fmt.Sprintf("a%d", v%5),
			fmt.Sprintf("b%d", (v%5)*2),
			fmt.Sprintf("c%d", v%3),
		}
	}
	return rows
}

var testAttrs = []string{"a", "b", "c"}

func createSession(t *testing.T, sv *Server, id, tenant string) {
	t.Helper()
	rec, body := do(t, sv, "POST", "/v1/sessions", tenant,
		createRequest{ID: id, Attributes: testAttrs})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create %s: status %d, body %v", id, rec.Code, body)
	}
}

func ingest(t *testing.T, sv *Server, id, tenant string, seq, n, offset int) map[string]any {
	t.Helper()
	rec, body := do(t, sv, "POST", "/v1/sessions/"+id+"/rows", tenant,
		rowsRequest{Seq: seq, Rows: genRows(n, offset)})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest seq %d: status %d, body %v", seq, rec.Code, body)
	}
	return body
}

func TestServeLifecycle(t *testing.T) {
	sv := newServer(t, nil)

	createSession(t, sv, "s1", "acme")

	// Idempotent re-create answers 200 with the same session.
	rec, _ := do(t, sv, "POST", "/v1/sessions", "acme", createRequest{ID: "s1", Attributes: testAttrs})
	if rec.Code != http.StatusOK {
		t.Fatalf("re-create: status %d, want 200", rec.Code)
	}
	// Re-create with different attributes is a conflict.
	rec, body := do(t, sv, "POST", "/v1/sessions", "acme",
		createRequest{ID: "s1", Attributes: []string{"x", "y"}})
	if rec.Code != http.StatusConflict || errCode(t, body) != CodeConflict {
		t.Fatalf("mismatched re-create: status %d code %v", rec.Code, body)
	}

	body = ingest(t, sv, "s1", "acme", 1, 40, 0)
	if body["applied"] != true || body["batches"] != float64(1) {
		t.Fatalf("first batch: %v", body)
	}
	// Duplicate seq is acknowledged without re-applying.
	body = ingest(t, sv, "s1", "acme", 1, 40, 0)
	if body["applied"] != false || body["batches"] != float64(1) {
		t.Fatalf("duplicate batch: %v", body)
	}
	// A gap is a conflict.
	rec, body = do(t, sv, "POST", "/v1/sessions/s1/rows", "acme",
		rowsRequest{Seq: 5, Rows: genRows(4, 0)})
	if rec.Code != http.StatusConflict || errCode(t, body) != CodeConflict {
		t.Fatalf("gap: status %d body %v", rec.Code, body)
	}

	ingest(t, sv, "s1", "acme", 2, 40, 40)

	rec, body = do(t, sv, "GET", "/v1/sessions/s1", "acme", nil)
	if rec.Code != http.StatusOK || body["rows"] != float64(80) || body["batches"] != float64(2) {
		t.Fatalf("get: status %d body %v", rec.Code, body)
	}

	rec, body = do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: status %d body %v", rec.Code, body)
	}
	if _, ok := body["b"].([]any); !ok {
		t.Fatalf("discover reply has no B matrix: %v", body)
	}
	if _, ok := body["fds"].([]any); !ok {
		t.Fatalf("discover reply has no fds: %v", body)
	}

	rec, _ = do(t, sv, "DELETE", "/v1/sessions/s1", "acme", nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", rec.Code)
	}
	rec, body = do(t, sv, "GET", "/v1/sessions/s1", "acme", nil)
	if rec.Code != http.StatusNotFound || errCode(t, body) != CodeNotFound {
		t.Fatalf("get after delete: status %d body %v", rec.Code, body)
	}
}

func TestServeTenantIsolation(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s1", "acme")
	// Another tenant cannot see, feed, or delete the session.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions/s1"},
		{"DELETE", "/v1/sessions/s1"},
		{"POST", "/v1/sessions/s1/discover"},
	} {
		rec, body := do(t, sv, probe.method, probe.path, "rival", nil)
		if rec.Code != http.StatusNotFound || errCode(t, body) != CodeNotFound {
			t.Errorf("%s %s as rival: status %d body %v", probe.method, probe.path, rec.Code, body)
		}
	}
}

func TestServeSessionQuota(t *testing.T) {
	sv := newServer(t, func(c *Config) { c.Quotas.MaxSessions = 1 })
	createSession(t, sv, "s1", "acme")
	rec, body := do(t, sv, "POST", "/v1/sessions", "acme", createRequest{ID: "s2", Attributes: testAttrs})
	if rec.Code != http.StatusTooManyRequests || errCode(t, body) != CodeQuotaExceeded {
		t.Fatalf("over-quota create: status %d body %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// Another tenant is unaffected.
	createSession(t, sv, "s3", "other")
	// Deleting frees the slot.
	do(t, sv, "DELETE", "/v1/sessions/s1", "acme", nil)
	createSession(t, sv, "s2", "acme")
}

func TestServeIngestRateLimit(t *testing.T) {
	sv := newServer(t, func(c *Config) { c.Quotas.RowsPerSecond = 50 })
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 50, 0) // drains the burst
	rec, body := do(t, sv, "POST", "/v1/sessions/s1/rows", "acme",
		rowsRequest{Seq: 2, Rows: genRows(10, 50)})
	if rec.Code != http.StatusTooManyRequests || errCode(t, body) != CodeRateLimited {
		t.Fatalf("over-rate ingest: status %d body %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if e := body["error"].(map[string]any); e["retry_after_ms"] == nil {
		t.Error("429 body without retry_after_ms")
	}
	// A different tenant's bucket is untouched.
	createSession(t, sv, "s2", "other")
	ingest(t, sv, "s2", "other", 1, 50, 0)
}

func TestServeDiscoverInflightQuota(t *testing.T) {
	sv := newServer(t, func(c *Config) { c.Quotas.MaxInflightDiscover = 1 })
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 40, 0)
	// Occupy the tenant's single slot directly, then observe the shed.
	if !sv.tenants.AcquireDiscover("acme") {
		t.Fatal("could not take the discover slot")
	}
	rec, body := do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	if rec.Code != http.StatusTooManyRequests || errCode(t, body) != CodeQuotaExceeded {
		t.Fatalf("over-quota discover: status %d body %v", rec.Code, body)
	}
	sv.tenants.ReleaseDiscover("acme")
	rec, body = do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("discover after release: status %d body %v", rec.Code, body)
	}
}

func TestServeBadInput(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s1", "acme")
	cases := []struct {
		name         string
		method, path string
		body         any
		wantStatus   int
		wantCode     string
	}{
		{"bad id", "POST", "/v1/sessions", createRequest{ID: "no/slash", Attributes: testAttrs}, 400, CodeBadInput},
		{"one attribute", "POST", "/v1/sessions", createRequest{ID: "s9", Attributes: []string{"a"}}, 400, CodeBadInput},
		{"unknown field", "POST", "/v1/sessions", map[string]any{"id": "s9", "attrs": []string{"a", "b"}}, 400, CodeBadInput},
		{"seq zero", "POST", "/v1/sessions/s1/rows", rowsRequest{Seq: 0, Rows: genRows(4, 0)}, 400, CodeBadInput},
		{"no rows", "POST", "/v1/sessions/s1/rows", rowsRequest{Seq: 1}, 400, CodeBadInput},
		{"row arity", "POST", "/v1/sessions/s1/rows", rowsRequest{Seq: 1, Rows: [][]string{{"x"}, {"y"}}}, 400, CodeBadInput},
		{"missing session", "POST", "/v1/sessions/ghost/rows", rowsRequest{Seq: 1, Rows: genRows(4, 0)}, 404, CodeNotFound},
	}
	for _, c := range cases {
		rec, body := do(t, sv, c.method, c.path, "acme", c.body)
		if rec.Code != c.wantStatus || errCode(t, body) != c.wantCode {
			t.Errorf("%s: status %d body %v, want %d %s", c.name, rec.Code, body, c.wantStatus, c.wantCode)
		}
	}
	// A syntactically broken body is bad_input too.
	req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("broken JSON: status %d, want 400", rec.Code)
	}
}

func TestServeDrainSheds(t *testing.T) {
	sv := newServer(t, func(c *Config) { c.DrainTimeout = time.Second })
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 40, 0)
	if err := sv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Every API request is shed with a typed 503 and a Retry-After.
	rec, body := do(t, sv, "POST", "/v1/sessions/s1/rows", "acme",
		rowsRequest{Seq: 2, Rows: genRows(4, 40)})
	if rec.Code != http.StatusServiceUnavailable || errCode(t, body) != CodeDraining {
		t.Fatalf("ingest during drain: status %d body %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After header")
	}
	rec, _ = do(t, sv, "GET", "/healthz", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", rec.Code)
	}
	// Drain is idempotent.
	if err := sv.Drain(); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	// Metrics stay readable during/after drain.
	rec, _ = do(t, sv, "GET", "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("metrics during drain: status %d", rec.Code)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	sv := newServer(t, nil)
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 40, 0)
	rec, body := do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: status %d body %v", rec.Code, body)
	}
	rec, _ = do(t, sv, "GET", "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`fdx_serve_rows_total{tenant="acme"} 40`,
		`fdx_serve_batches_total{tenant="acme"} 1`,
		`fdx_serve_discover_total{tenant="acme"} 1`,
		`fdx_serve_sessions{tenant="acme"} 1`,
		`fdx_serve_ingest_seconds_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestServeRequestTimeout(t *testing.T) {
	// A deadline that expires before the worker picks the job up surfaces
	// as the timeout code, not a hang: one queue worker is busy with a job
	// whose own context is alive, so the second request waits in queue
	// until its 50ms deadline passes.
	sv := newServer(t, func(c *Config) {
		c.DiscoverWorkers = 1
		c.RequestTimeout = 50 * time.Millisecond
	})
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 200, 0)
	rec, body := do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	// Tiny data usually finishes inside 50ms; either a success or a
	// typed timeout is acceptable here — what must not happen is an
	// untyped error.
	if rec.Code != http.StatusOK && rec.Code != http.StatusGatewayTimeout {
		if errCode(t, body) == "" {
			t.Fatalf("discover under deadline: status %d body %v", rec.Code, body)
		}
	}
}
