package serve

import (
	"os"
	"os/signal"
	"syscall"
)

// DrainSignals splits termination signals into two intents shared by fdxd
// and `fdx stream`: SIGTERM asks for a graceful drain (checkpoint, then
// exit 0), SIGINT for a prompt interrupt (exit 130, the shell convention).
// A second signal of either kind is left to the default handler — after
// Stop, a repeat SIGTERM kills a wedged process instead of being swallowed.
type DrainSignals struct {
	drain chan os.Signal
	intr  chan os.Signal
}

// NotifyDrain starts listening for SIGTERM (drain) and SIGINT (interrupt).
func NotifyDrain() *DrainSignals {
	s := &DrainSignals{
		drain: make(chan os.Signal, 1),
		intr:  make(chan os.Signal, 1),
	}
	signal.Notify(s.drain, syscall.SIGTERM)
	signal.Notify(s.intr, os.Interrupt)
	return s
}

// Drain fires when a graceful shutdown was requested.
func (s *DrainSignals) Drain() <-chan os.Signal { return s.drain }

// Interrupt fires when a prompt interrupt was requested.
func (s *DrainSignals) Interrupt() <-chan os.Signal { return s.intr }

// Stop restores default signal handling, so the next signal of either kind
// terminates the process even if the drain has wedged.
func (s *DrainSignals) Stop() {
	signal.Stop(s.drain)
	signal.Stop(s.intr)
}
