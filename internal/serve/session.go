package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"fdx"
	"fdx/internal/faults"
)

// nameRe constrains session and tenant identifiers: they become file names
// (the session's manifest, checkpoint, and WAL), so the grammar is a
// conservative token with no separators or dots.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// SessionOptions is the JSON-facing subset of fdx.Options a client may set
// when creating a session. Telemetry handles (Tracer/Metrics) are the
// server's, never the client's.
type SessionOptions struct {
	Lambda             float64 `json:"lambda,omitempty"`
	Threshold          float64 `json:"threshold,omitempty"`
	RelFraction        float64 `json:"rel_fraction,omitempty"`
	Ordering           string  `json:"ordering,omitempty"`
	MaxRows            int     `json:"max_rows,omitempty"`
	NumericTolerance   float64 `json:"numeric_tolerance,omitempty"`
	TextSimilarity     bool    `json:"text_similarity,omitempty"`
	Workers            int     `json:"workers,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
	RequireConvergence bool    `json:"require_convergence,omitempty"`
}

// options maps the wire options onto fdx.Options, attaching the server's
// metrics registry so WAL and checkpoint counters flow into /metrics.
// MetricLabels splits every pipeline series — including the per-stage
// fdx_stage_*_seconds histograms — by the owning tenant.
func (o SessionOptions) options(m *fdx.Metrics, tenant string) fdx.Options {
	return fdx.Options{
		MetricLabels:       []string{"tenant", tenant},
		Lambda:             o.Lambda,
		Threshold:          o.Threshold,
		RelFraction:        o.RelFraction,
		Ordering:           o.Ordering,
		MaxRows:            o.MaxRows,
		NumericTolerance:   o.NumericTolerance,
		TextSimilarity:     o.TextSimilarity,
		Workers:            o.Workers,
		Seed:               o.Seed,
		RequireConvergence: o.RequireConvergence,
		Metrics:            m,
	}
}

// manifest is the durable description of a session, written next to its
// checkpoint so a restarted server can rebuild the session table. The
// accumulator state itself lives in the checkpoint + WAL pair; the manifest
// only records identity and configuration.
type manifest struct {
	ID         string         `json:"id"`
	Tenant     string         `json:"tenant"`
	Attributes []string       `json:"attributes"`
	Options    SessionOptions `json:"options"`
}

// session is one named accumulator with its durability apparatus. All
// state transitions happen under mu; discover works on a snapshot clone so
// it never holds the lock across structure learning.
type session struct {
	id     string
	tenant string
	names  []string
	wopts  SessionOptions
	opts   fdx.Options // wopts.options(registry), fixed at creation
	path   string      // checkpoint path; WAL at path+fdx.WALSuffix

	mu        sync.Mutex
	acc       *fdx.Accumulator
	wal       *fdx.WAL
	sinceSave int          // batches absorbed since the last checkpoint
	shardSeqs map[int]bool // shard-ship seqs acknowledged (fast retry dedup)
	closed    bool         // deleted or store shut down
}

// ingest absorbs one batch at the given 1-based client sequence number.
// The protocol is idempotent against retries: a seq at or below the
// accumulator's batch count is a duplicate of work already absorbed
// (acknowledged again without re-applying), the next seq is applied, and a
// gap is a conflict. applied reports whether the batch was new. Every
// checkpointEvery applied batches the session checkpoints and resets its
// WAL, bounding replay work after a crash.
func (s *session) ingest(rel *fdx.Relation, seq, checkpointEvery int) (applied bool, herr *httpError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, serveError(404, CodeNotFound, "session "+s.id+" is deleted")
	}
	batches := s.acc.Batches()
	switch {
	case seq <= batches:
		return false, nil // duplicate delivery; already durable
	case seq > batches+1:
		return false, serveError(409, CodeConflict, fmt.Sprintf(
			"seq %d skips ahead: session has %d batches, next is %d", seq, batches, batches+1))
	}
	faults.Sleep(faults.IngestStall)
	if err := s.acc.AddLogged(rel, s.wal); err != nil {
		return false, taxonomyError(err)
	}
	s.sinceSave++
	if checkpointEvery > 0 && s.sinceSave >= checkpointEvery {
		if err := s.saveLocked(); err != nil {
			return true, taxonomyError(err)
		}
	}
	return true, nil
}

// mergeShard merges a shipped shard snapshot at the given 1-based client
// sequence number. An already-acknowledged seq is a duplicate delivery,
// acknowledged again without touching state; a fresh seq whose batch
// coverage the session already holds merges as a no-op (applied=false) —
// the accumulator's coverage intervals are the durable dedup, the seq set
// only an in-memory fast path. Shards may land in any order (workers ship
// concurrently), so unlike ingest there is no skip-ahead conflict: the
// seq set, not a high-water mark, records what was seen, and after a
// restart clears it a retried ship simply re-merges into the coverage
// no-op. Merges bypass the WAL, so a successful merge checkpoints
// immediately — the ack must imply durability.
func (s *session) mergeShard(snapshot []byte, seq int) (applied bool, herr *httpError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, serveError(404, CodeNotFound, "session "+s.id+" is deleted")
	}
	if s.shardSeqs[seq] {
		return false, nil // duplicate delivery; already durable
	}
	applied, err := s.acc.MergeSnapshot(bytes.NewReader(snapshot))
	if err != nil {
		return false, taxonomyError(err)
	}
	if err := s.saveLocked(); err != nil {
		return applied, taxonomyError(err)
	}
	if s.shardSeqs == nil {
		s.shardSeqs = map[int]bool{}
	}
	s.shardSeqs[seq] = true
	return applied, nil
}

// saveLocked checkpoints the accumulator and resets the WAL. Callers hold
// s.mu.
func (s *session) saveLocked() error {
	if err := s.acc.SaveCheckpoint(s.path); err != nil {
		return err
	}
	s.sinceSave = 0
	return s.wal.Reset()
}

// checkpoint durably saves the session's current state (drain and
// explicit-flush path).
func (s *session) checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.saveLocked()
}

// clone snapshots the accumulator under the lock and restores a private
// copy outside it, so discovery runs on a frozen, consistent view while
// ingest continues. The clone shares no mutable state with the session.
func (s *session) clone() (*fdx.Accumulator, *httpError) {
	var buf bytes.Buffer
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, serveError(404, CodeNotFound, "session "+s.id+" is deleted")
	}
	err := s.acc.Snapshot(&buf)
	s.mu.Unlock()
	if err != nil {
		return nil, taxonomyError(err)
	}
	acc, err := fdx.RestoreAccumulator(&buf, s.opts)
	if err != nil {
		return nil, taxonomyError(err)
	}
	return acc, nil
}

// stats reports the session's current position.
func (s *session) stats() (rows, batches int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc.Rows(), s.acc.Batches()
}

// close marks the session unusable and closes its WAL handle. It does not
// remove files; removeFiles does.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.Close()
}

// removeFiles deletes the session's manifest, checkpoint, and WAL.
func (s *session) removeFiles() {
	os.Remove(s.path + manifestSuffix)
	os.Remove(s.path)
	os.Remove(s.path + fdx.WALSuffix)
}

const (
	checkpointSuffix = ".fdx"
	manifestSuffix   = ".json"
)

// sessionStore owns the session table and its on-disk layout: for session
// id the directory holds <id>.fdx (checkpoint), <id>.fdx.wal (WAL), and
// <id>.fdx.json (manifest).
type sessionStore struct {
	dir      string
	registry *fdx.Metrics

	mu       sync.RWMutex
	sessions map[string]*session
}

func newSessionStore(dir string, registry *fdx.Metrics) *sessionStore {
	return &sessionStore{dir: dir, registry: registry, sessions: map[string]*session{}}
}

// create makes a new named session: an empty accumulator checkpointed
// immediately (so a crash before the first batch still restores) plus an
// open WAL, and a manifest recording identity and options. Creating an id
// that already exists with identical tenant/attributes/options is
// idempotent; a mismatch is a conflict.
func (st *sessionStore) create(id, tenant string, names []string, wopts SessionOptions) (s *session, created bool, herr *httpError) {
	if !nameRe.MatchString(id) {
		return nil, false, serveError(400, CodeBadInput, "session id must match "+nameRe.String())
	}
	if !nameRe.MatchString(tenant) {
		return nil, false, serveError(400, CodeBadInput, "tenant must match "+nameRe.String())
	}
	if len(names) < 2 {
		return nil, false, serveError(400, CodeBadInput, "a session needs at least two attributes")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if prev, ok := st.sessions[id]; ok {
		if prev.tenant == tenant && prev.wopts == wopts && equalNames(prev.names, names) {
			return prev, false, nil // idempotent re-create
		}
		return nil, false, serveError(409, CodeConflict, "session "+id+" exists with different parameters")
	}
	s = &session{
		id:     id,
		tenant: tenant,
		names:  append([]string(nil), names...),
		wopts:  wopts,
		opts:   wopts.options(st.registry, tenant),
		path:   filepath.Join(st.dir, id+checkpointSuffix),
	}
	s.acc = fdx.NewAccumulator(s.names, s.opts)
	if err := writeManifest(s.path+manifestSuffix, manifest{
		ID: id, Tenant: tenant, Attributes: s.names, Options: wopts,
	}); err != nil {
		return nil, false, taxonomyError(err)
	}
	if err := s.acc.SaveCheckpoint(s.path); err != nil {
		os.Remove(s.path + manifestSuffix)
		return nil, false, taxonomyError(err)
	}
	wal, err := fdx.OpenWAL(s.path + fdx.WALSuffix)
	if err != nil {
		os.Remove(s.path + manifestSuffix)
		os.Remove(s.path)
		return nil, false, taxonomyError(err)
	}
	s.wal = wal
	st.sessions[id] = s
	return s, true, nil
}

// get looks a session up by id, enforcing tenant ownership: a session is
// invisible to other tenants (404, not 403, to avoid confirming the id
// exists).
func (st *sessionStore) get(id, tenant string) (*session, *httpError) {
	st.mu.RLock()
	s, ok := st.sessions[id]
	st.mu.RUnlock()
	if !ok || s.tenant != tenant {
		return nil, serveError(404, CodeNotFound, "no session "+id)
	}
	return s, nil
}

// remove deletes the session and its files.
func (st *sessionStore) remove(id, tenant string) *httpError {
	st.mu.Lock()
	s, ok := st.sessions[id]
	if ok && s.tenant == tenant {
		delete(st.sessions, id)
	}
	st.mu.Unlock()
	if !ok || s.tenant != tenant {
		return serveError(404, CodeNotFound, "no session "+id)
	}
	s.close()
	s.removeFiles()
	return nil
}

// all returns the live sessions sorted by id (deterministic drain order).
func (st *sessionStore) all() []*session {
	st.mu.RLock()
	out := make([]*session, 0, len(st.sessions))
	for _, s := range st.sessions {
		out = append(out, s)
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// closeAll closes every session's WAL handle (shutdown path; files stay).
func (st *sessionStore) closeAll() {
	for _, s := range st.all() {
		s.close()
	}
}

// restore rebuilds the session table from the data directory: every
// manifest names a session whose accumulator is LoadCheckpoint's job
// (checkpoint + WAL replay, torn tails truncated). Called once at startup
// before the server listens. A session that fails to restore aborts the
// boot — a half-visible session table would silently drop durable data.
func (st *sessionStore) restore() error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("serve: reading data dir: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, checkpointSuffix+manifestSuffix) {
			continue
		}
		var m manifest
		raw, err := os.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			return fmt.Errorf("serve: reading manifest %s: %w", name, err)
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("serve: parsing manifest %s: %w", name, err)
		}
		if !nameRe.MatchString(m.ID) || !nameRe.MatchString(m.Tenant) {
			return fmt.Errorf("serve: manifest %s has an invalid id or tenant", name)
		}
		s := &session{
			id:     m.ID,
			tenant: m.Tenant,
			names:  m.Attributes,
			wopts:  m.Options,
			opts:   m.Options.options(st.registry, m.Tenant),
			path:   filepath.Join(st.dir, m.ID+checkpointSuffix),
		}
		acc, err := fdx.LoadCheckpoint(s.path, s.opts)
		if err != nil {
			return fmt.Errorf("serve: restoring session %s: %w", m.ID, err)
		}
		wal, err := fdx.OpenWAL(s.path + fdx.WALSuffix)
		if err != nil {
			return fmt.Errorf("serve: reopening wal for session %s: %w", m.ID, err)
		}
		s.acc, s.wal = acc, wal
		// Replayed WAL records are in memory but the snapshot on disk
		// predates them; checkpoint now so the WAL can restart empty and a
		// second crash replays nothing twice.
		s.mu.Lock()
		err = s.saveLocked()
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("serve: re-checkpointing session %s: %w", m.ID, err)
		}
		st.sessions[m.ID] = s
	}
	return nil
}

// tenantSessions counts a tenant's live sessions (startup quota re-seed).
func (st *sessionStore) tenantSessions() map[string]int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	counts := map[string]int{}
	for _, s := range st.sessions {
		counts[s.tenant]++
	}
	return counts
}

// writeManifest writes the manifest atomically (temp + rename) so a crash
// mid-create never leaves a half-written manifest for restore to choke on.
func writeManifest(path string, m manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildRelation converts wire rows into a relation over the session's
// attributes. Empty strings become NULLs (dataset convention).
func buildRelation(names []string, rows [][]string) (*fdx.Relation, *httpError) {
	if len(rows) == 0 {
		return nil, serveError(400, CodeBadInput, "rows must be non-empty")
	}
	rel := fdx.NewRelation("wire", names...)
	for i, row := range rows {
		if len(row) != len(names) {
			return nil, serveError(400, CodeBadInput, fmt.Sprintf(
				"row %d has %d values, schema has %d attributes", i, len(row), len(names)))
		}
		if err := rel.AppendRow(row); err != nil {
			return nil, serveError(400, CodeBadInput, err.Error())
		}
	}
	return rel, nil
}
