// Package limit implements the admission-control primitives of the fdxd
// discovery service: a token-bucket rate limiter and a per-tenant quota
// ledger (concurrent sessions, sustained ingest rows/s, in-flight discover
// jobs).
//
// The package never blocks: every check answers immediately with either
// "admitted" or "rejected, retry after d", so the service can shed load
// with a typed 429/503 instead of letting queues grow unboundedly. Clocks
// are injectable for deterministic tests.
package limit

import (
	"sync"
	"time"
)

// Bucket is a token bucket: it holds up to burst tokens, refilled at rate
// tokens per second, and each admitted request consumes its cost. A Bucket
// is safe for concurrent use. The zero Bucket is not useful; create one
// with NewBucket.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewBucket creates a full bucket refilling at rate tokens/s with the
// given capacity. A non-positive rate or burst yields a bucket that admits
// everything (the "unlimited" configuration).
func NewBucket(rate, burst float64) *Bucket {
	//fdx:lint-ignore detsource admission-control clock; never feeds FD scores
	return &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
}

// SetClock replaces the bucket's time source (tests).
func (b *Bucket) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = time.Time{}
}

// Take tries to consume cost tokens. It returns ok=true when admitted;
// otherwise retryAfter estimates how long until the bucket can cover the
// same cost. A cost above the bucket's capacity is clamped to the capacity
// — the oversized request is admitted once the bucket is full rather than
// never, and pays the whole burst.
func (b *Bucket) Take(cost float64) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 || b.burst <= 0 {
		return true, 0
	}
	if cost < 0 {
		cost = 0
	}
	if cost > b.burst {
		cost = b.burst
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	if !b.last.IsZero() {
		b.tokens += t.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	deficit := cost - b.tokens
	d := time.Duration(deficit / b.rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return false, d
}

// Quotas bounds one tenant's admission. Zero fields mean unlimited.
type Quotas struct {
	// MaxSessions caps a tenant's concurrent accumulator sessions.
	MaxSessions int
	// RowsPerSecond is the tenant's sustained ingest rate.
	RowsPerSecond float64
	// Burst is the ingest token-bucket capacity (rows); defaults to one
	// second's worth of RowsPerSecond.
	Burst float64
	// MaxInflightDiscover caps a tenant's concurrently queued or running
	// discover jobs.
	MaxInflightDiscover int
}

// tenantState is one tenant's live ledger.
type tenantState struct {
	bucket   *Bucket
	sessions int
	inflight int
}

// PerTenant tracks every tenant's quota usage under one shared Quotas
// configuration. Safe for concurrent use.
type PerTenant struct {
	mu      sync.Mutex
	quotas  Quotas
	tenants map[string]*tenantState
	clock   func() time.Time
}

// NewPerTenant creates an empty ledger enforcing q for every tenant.
func NewPerTenant(q Quotas) *PerTenant {
	if q.Burst <= 0 {
		q.Burst = q.RowsPerSecond
	}
	return &PerTenant{quotas: q, tenants: map[string]*tenantState{}}
}

// SetClock injects a time source into all (current and future) tenant
// buckets (tests).
func (l *PerTenant) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = now
	for _, st := range l.tenants {
		st.bucket.SetClock(now)
	}
}

// state returns (creating if needed) the tenant's ledger entry.
// Callers hold l.mu.
func (l *PerTenant) state(tenant string) *tenantState {
	st, ok := l.tenants[tenant]
	if !ok {
		st = &tenantState{bucket: NewBucket(l.quotas.RowsPerSecond, l.quotas.Burst)}
		if l.clock != nil {
			st.bucket.SetClock(l.clock)
		}
		l.tenants[tenant] = st
	}
	return st
}

// TakeRows admits or rejects an ingest of n rows against the tenant's
// rate limit.
func (l *PerTenant) TakeRows(tenant string, n int) (ok bool, retryAfter time.Duration) {
	if l.quotas.RowsPerSecond <= 0 {
		return true, 0
	}
	l.mu.Lock()
	b := l.state(tenant).bucket
	l.mu.Unlock()
	return b.Take(float64(n))
}

// AcquireSession reserves one session slot; release with ReleaseSession.
func (l *PerTenant) AcquireSession(tenant string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state(tenant)
	if l.quotas.MaxSessions > 0 && st.sessions >= l.quotas.MaxSessions {
		return false
	}
	st.sessions++
	return true
}

// ReleaseSession returns a session slot.
func (l *PerTenant) ReleaseSession(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.tenants[tenant]; ok && st.sessions > 0 {
		st.sessions--
	}
}

// Sessions reports the tenant's live session count.
func (l *PerTenant) Sessions(tenant string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.tenants[tenant]; ok {
		return st.sessions
	}
	return 0
}

// AcquireDiscover reserves one in-flight discover slot; release with
// ReleaseDiscover.
func (l *PerTenant) AcquireDiscover(tenant string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state(tenant)
	if l.quotas.MaxInflightDiscover > 0 && st.inflight >= l.quotas.MaxInflightDiscover {
		return false
	}
	st.inflight++
	return true
}

// ReleaseDiscover returns an in-flight discover slot.
func (l *PerTenant) ReleaseDiscover(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.tenants[tenant]; ok && st.inflight > 0 {
		st.inflight--
	}
}
