package limit

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBucketAdmitsBurstThenRefills(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 20) // 10 rows/s, burst 20
	b.SetClock(clk.now)

	if ok, _ := b.Take(20); !ok {
		t.Fatal("full bucket rejected its burst")
	}
	ok, retry := b.Take(5)
	if ok {
		t.Fatal("empty bucket admitted 5 tokens")
	}
	// 5 tokens at 10/s is 500ms away.
	if retry < 400*time.Millisecond || retry > 600*time.Millisecond {
		t.Errorf("retryAfter = %v, want ~500ms", retry)
	}
	clk.advance(time.Second) // refills 10 tokens
	if ok, _ := b.Take(5); !ok {
		t.Error("bucket did not refill after 1s")
	}
	if ok, _ := b.Take(5); !ok {
		t.Error("second 5-token take within the refill rejected")
	}
	if ok, _ := b.Take(1); ok {
		t.Error("bucket over-refilled")
	}
}

func TestBucketClampsOversizedCost(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 20)
	b.SetClock(clk.now)
	// A single request bigger than the burst pays the whole burst instead
	// of being unadmittable forever.
	if ok, _ := b.Take(1000); !ok {
		t.Fatal("oversized cost rejected on a full bucket")
	}
	if ok, _ := b.Take(1); ok {
		t.Fatal("bucket not drained by clamped cost")
	}
}

func TestBucketUnlimited(t *testing.T) {
	for _, b := range []*Bucket{NewBucket(0, 0), NewBucket(0, 10), NewBucket(10, 0), nil} {
		if ok, retry := b.Take(1e12); !ok || retry != 0 {
			t.Errorf("unlimited bucket rejected: ok=%v retry=%v", ok, retry)
		}
	}
}

func TestPerTenantSessionsAndDiscoverSlots(t *testing.T) {
	l := NewPerTenant(Quotas{MaxSessions: 2, MaxInflightDiscover: 1})
	if !l.AcquireSession("a") || !l.AcquireSession("a") {
		t.Fatal("session slots under the cap rejected")
	}
	if l.AcquireSession("a") {
		t.Fatal("third session admitted over MaxSessions=2")
	}
	if !l.AcquireSession("b") {
		t.Fatal("tenant b throttled by tenant a's usage")
	}
	l.ReleaseSession("a")
	if !l.AcquireSession("a") {
		t.Fatal("released slot not reusable")
	}
	if got := l.Sessions("a"); got != 2 {
		t.Errorf("Sessions(a) = %d, want 2", got)
	}

	if !l.AcquireDiscover("a") {
		t.Fatal("first discover slot rejected")
	}
	if l.AcquireDiscover("a") {
		t.Fatal("second discover admitted over MaxInflightDiscover=1")
	}
	l.ReleaseDiscover("a")
	if !l.AcquireDiscover("a") {
		t.Fatal("released discover slot not reusable")
	}
	// Releasing below zero must not underflow.
	l.ReleaseDiscover("zzz")
	l.ReleaseSession("zzz")
}

func TestPerTenantRateIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewPerTenant(Quotas{RowsPerSecond: 100}) // burst defaults to 100
	l.SetClock(clk.now)
	if ok, _ := l.TakeRows("a", 100); !ok {
		t.Fatal("tenant a's burst rejected")
	}
	if ok, _ := l.TakeRows("a", 1); ok {
		t.Fatal("tenant a admitted over rate")
	}
	if ok, _ := l.TakeRows("b", 100); !ok {
		t.Fatal("tenant b throttled by tenant a")
	}
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.TakeRows("a", 50); !ok {
		t.Fatal("tenant a did not refill at 100 rows/s")
	}
}

func TestPerTenantUnlimitedRows(t *testing.T) {
	l := NewPerTenant(Quotas{})
	if ok, _ := l.TakeRows("a", 1_000_000); !ok {
		t.Fatal("unlimited quotas rejected rows")
	}
}
