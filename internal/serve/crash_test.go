package serve

import (
	"net/http"
	"reflect"
	"testing"
	"time"

	"fdx"
	"fdx/internal/serve/limit"
)

// discoverB runs a discover and returns the exact B matrix from the wire
// (JSON float64 round-trips shortest-repr exactly, so equality here is
// bit-identity).
func discoverB(t *testing.T, sv *Server, id, tenant string) [][]float64 {
	t.Helper()
	rec, body := do(t, sv, "POST", "/v1/sessions/"+id+"/discover", tenant, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: status %d body %v", rec.Code, body)
	}
	raw := body["b"].([]any)
	b := make([][]float64, len(raw))
	for i, row := range raw {
		cells := row.([]any)
		b[i] = make([]float64, len(cells))
		for j, c := range cells {
			b[i][j] = c.(float64)
		}
	}
	return b
}

// TestCrashServeRestartBitIdentical: feed a session, abandon the server
// without drain (the crash), build a fresh server over the same data dir,
// and require the restored session to (a) resume at the same stream
// position and (b) produce a bit-identical B matrix — both against the
// pre-crash server and against an uninterrupted in-process accumulator fed
// the same batches.
func TestCrashServeRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	// CheckpointEvery 2 leaves a WAL tail record after 5 batches, so the
	// restart exercises snapshot + replay, not just snapshot.
	mk := func() *Server {
		sv, err := New(Config{DataDir: dir, CheckpointEvery: 2, RequestTimeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return sv
	}
	svA := mk()
	createSession(t, svA, "s1", "acme")
	const batches, rowsPer = 5, 40
	for i := 0; i < batches; i++ {
		ingest(t, svA, "s1", "acme", i+1, rowsPer, i*rowsPer)
	}
	wantB := discoverB(t, svA, "s1", "acme")

	// The crash: no Drain, no checkpoint flush. AddLogged fsynced every
	// batch, so the WAL holds everything the client was acknowledged for.
	svB := mk()
	rec, body := do(t, svB, "GET", "/v1/sessions/s1", "acme", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get after restart: status %d body %v", rec.Code, body)
	}
	if body["rows"] != float64(batches*rowsPer) || body["batches"] != float64(batches) {
		t.Fatalf("restored position: %v, want %d rows / %d batches", body, batches*rowsPer, batches)
	}
	gotB := discoverB(t, svB, "s1", "acme")
	if !reflect.DeepEqual(gotB, wantB) {
		t.Errorf("B after crash+restart differs from pre-crash B")
	}

	// Uninterrupted baseline: same batches through a local accumulator.
	acc := fdx.NewAccumulator(testAttrs, fdx.Options{})
	for i := 0; i < batches; i++ {
		rel := fdx.NewRelation("base", testAttrs...)
		for _, row := range genRows(rowsPer, i*rowsPer) {
			if err := rel.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := acc.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, res.B) {
		t.Errorf("B after crash+restart differs from the uninterrupted baseline")
	}

	// The restarted stream keeps going: the next seq is accepted and the
	// idempotent-duplicate rule still holds.
	body = ingest(t, svB, "s1", "acme", batches+1, rowsPer, batches*rowsPer)
	if body["applied"] != true {
		t.Fatalf("post-restart ingest: %v", body)
	}
	body = ingest(t, svB, "s1", "acme", batches+1, rowsPer, batches*rowsPer)
	if body["applied"] != false {
		t.Fatalf("post-restart duplicate: %v", body)
	}
}

// TestCrashServeRestartQuotaReseed: restored sessions count against their
// tenant's session quota after a restart.
func TestCrashServeRestartQuotaReseed(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		sv, err := New(Config{DataDir: dir, Quotas: limit.Quotas{MaxSessions: 1}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return sv
	}
	svA := mk()
	createSession(t, svA, "s1", "acme")
	svB := mk()
	rec, body := do(t, svB, "POST", "/v1/sessions", "acme", createRequest{ID: "s2", Attributes: testAttrs})
	if rec.Code != http.StatusTooManyRequests || errCode(t, body) != CodeQuotaExceeded {
		t.Fatalf("create over restored quota: status %d body %v", rec.Code, body)
	}
}
