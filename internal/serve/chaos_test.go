package serve

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fdx/internal/faults"
	"fdx/internal/obs"
)

// TestFaultServeQueueFull: an armed QueueFull point forces the shed path;
// the client sees 503 queue_full with a Retry-After, and the next attempt
// (point exhausted) succeeds.
func TestFaultServeQueueFull(t *testing.T) {
	defer faults.Reset()
	sv := newServer(t, nil)
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 40, 0)

	faults.Arm(faults.QueueFull, faults.Config{Times: 1})
	rec, body := do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	if rec.Code != http.StatusServiceUnavailable || errCode(t, body) != CodeQueueFull {
		t.Fatalf("forced queue_full: status %d body %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("queue_full 503 without Retry-After header")
	}
	rec, body = do(t, sv, "POST", "/v1/sessions/s1/discover", "acme", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("discover after fault exhausted: status %d body %v", rec.Code, body)
	}
}

// TestFaultServeIngestStallDeadline: a stalled ingest still answers inside
// the taxonomy — the request either completes or the client's next call
// sees consistent idempotent state; nothing panics and no untyped error
// escapes.
func TestFaultServeIngestStallDeadline(t *testing.T) {
	defer faults.Reset()
	sv := newServer(t, func(c *Config) { c.RequestTimeout = 5 * time.Second })
	createSession(t, sv, "s1", "acme")
	faults.Arm(faults.IngestStall, faults.Config{Delay: 20 * time.Millisecond})
	for seq := 1; seq <= 3; seq++ {
		ingest(t, sv, "s1", "acme", seq, 20, (seq-1)*20)
	}
	rec, body := do(t, sv, "GET", "/v1/sessions/s1", "acme", nil)
	if rec.Code != http.StatusOK || body["batches"] != float64(3) {
		t.Fatalf("after stalled ingests: status %d body %v", rec.Code, body)
	}
}

// TestFaultServeDrainTimeout: a drain stalled past its deadline still
// checkpoints every session (the degraded-drain contract) and reports the
// overrun.
func TestFaultServeDrainTimeout(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	sv, err := New(Config{DataDir: dir, DrainTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	createSession(t, sv, "s1", "acme")
	ingest(t, sv, "s1", "acme", 1, 40, 0)

	faults.Arm(faults.DrainTimeout, faults.Config{Delay: 300 * time.Millisecond})
	err = sv.Drain()
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("stalled drain returned %v, want a deadline error", err)
	}
	faults.Reset()

	// The degraded drain still made the state durable: a restart resumes
	// at the acknowledged position.
	sv2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, sv2, "GET", "/v1/sessions/s1", "acme", nil)
	if rec.Code != http.StatusOK || body["batches"] != float64(1) {
		t.Fatalf("restore after degraded drain: status %d body %v", rec.Code, body)
	}
}

// TestFaultServeChaos hammers the server from concurrent tenants while
// ingest stalls and queue-full sheds fire probabilistically, asserting the
// robustness contract: every response is either a success or an error from
// the wire taxonomy — never a panic, a hang, or an untyped error — and the
// sessions stay internally consistent (idempotent seq accounting survives
// the noise). Finally discovery still works once the faults are disarmed.
func TestFaultServeChaos(t *testing.T) {
	defer faults.Reset()
	sv := newServer(t, func(c *Config) {
		c.QueueDepth = 2
		c.DiscoverWorkers = 1
		c.RequestTimeout = 10 * time.Second
	})
	faults.Arm(faults.IngestStall, faults.Config{Prob: 0.3, Seed: 7, Delay: time.Millisecond})
	faults.Arm(faults.QueueFull, faults.Config{Prob: 0.5, Seed: 11})

	const tenants = 4
	const batchesPerTenant = 8
	var wg sync.WaitGroup
	errs := make(chan string, tenants*batchesPerTenant*2)
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := "sess-" + tenant
			rec, body := do(t, sv, "POST", "/v1/sessions", tenant,
				createRequest{ID: id, Attributes: testAttrs})
			if rec.Code != http.StatusCreated {
				errs <- fmt.Sprintf("create %s: %d %v", id, rec.Code, body)
				return
			}
			seq := 1
			for seq <= batchesPerTenant {
				rec, body := do(t, sv, "POST", "/v1/sessions/"+id+"/rows", tenant,
					rowsRequest{Seq: seq, Rows: genRows(20, seq*20)})
				switch rec.Code {
				case http.StatusOK:
					seq++
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Shed: code must be in-taxonomy; retry the same seq
					// (the idempotency contract makes that safe).
					if code, _ := body["error"].(map[string]any)["code"].(string); !KnownCode(code) {
						errs <- fmt.Sprintf("ingest shed with unknown code: %v", body)
						return
					}
				default:
					errs <- fmt.Sprintf("ingest %s seq %d: %d %v", id, seq, rec.Code, body)
					return
				}
				// Interleave discovers; under QueueFull they shed with
				// typed 503s.
				if seq%3 == 0 {
					rec, body := do(t, sv, "POST", "/v1/sessions/"+id+"/discover", tenant, nil)
					switch rec.Code {
					case http.StatusOK, http.StatusGatewayTimeout,
						http.StatusServiceUnavailable, http.StatusTooManyRequests:
						if rec.Code != http.StatusOK {
							if code, _ := body["error"].(map[string]any)["code"].(string); !KnownCode(code) {
								errs <- fmt.Sprintf("discover shed with unknown code: %v", body)
								return
							}
						}
					default:
						errs <- fmt.Sprintf("discover %s: %d %v", id, rec.Code, body)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	faults.Reset()

	// The noise is over; every session must be at exactly batchesPerTenant
	// batches and still discoverable.
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		id := "sess-" + tenant
		rec, body := do(t, sv, "GET", "/v1/sessions/"+id, tenant, nil)
		if rec.Code != http.StatusOK || body["batches"] != float64(batchesPerTenant) {
			t.Fatalf("%s after chaos: status %d body %v", id, rec.Code, body)
		}
		rec, body = do(t, sv, "POST", "/v1/sessions/"+id+"/discover", tenant, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s discover after chaos: status %d body %v", id, rec.Code, body)
		}
	}
	if sv.Metrics().Counter(obs.MServeShed).Value() == 0 {
		// Tenant-labeled shed counters roll up alongside the global one;
		// the armed QueueFull probability makes zero sheds implausible
		// but not impossible, so only note it.
		t.Log("chaos run produced no global sheds")
	}
}

// TestFaultServeChaosDeterministicOutcome: the same chaotic schedule must
// not corrupt results — after any interleaving of stalls and sheds, the
// discovered B equals the clean single-threaded baseline for the same
// batches.
func TestFaultServeChaosDeterministicOutcome(t *testing.T) {
	defer faults.Reset()
	sv := newServer(t, nil)
	createSession(t, sv, "s1", "acme")
	faults.Arm(faults.IngestStall, faults.Config{Prob: 0.5, Seed: 3, Delay: time.Millisecond})
	const batches, rowsPer = 6, 30
	for i := 0; i < batches; i++ {
		ingest(t, sv, "s1", "acme", i+1, rowsPer, i*rowsPer)
	}
	faults.Reset()
	got := discoverB(t, sv, "s1", "acme")

	clean := newServer(t, nil)
	createSession(t, clean, "s1", "acme")
	for i := 0; i < batches; i++ {
		ingest(t, clean, "s1", "acme", i+1, rowsPer, i*rowsPer)
	}
	want := discoverB(t, clean, "s1", "acme")
	if !reflect.DeepEqual(got, want) {
		t.Error("B under injected stalls differs from the clean run")
	}
}
