package serve

import (
	"context"
	"sync"

	"fdx"
	"fdx/internal/faults"
	"fdx/internal/obs"
)

// discoverJob is one queued discovery request. The accumulator is a
// private snapshot clone, so the worker never contends with ingest.
type discoverJob struct {
	ctx  context.Context
	acc  *fdx.Accumulator
	done chan discoverResult
}

type discoverResult struct {
	res *fdx.Result
	err error
}

// discoverQueue bounds the structure-learning backlog: a fixed worker pool
// drains a fixed-depth channel, and a full channel sheds the request
// immediately (503 queue_full) instead of letting latency grow without
// bound. Closing is coordinated through mu+closed so a late submit returns
// queue_full rather than panicking on a closed channel.
type discoverQueue struct {
	jobs    chan *discoverJob
	metrics *obs.Registry

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// newDiscoverQueue starts workers goroutines draining a depth-bounded
// queue.
func newDiscoverQueue(workers, depth int, metrics *obs.Registry) *discoverQueue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &discoverQueue{jobs: make(chan *discoverJob, depth), metrics: metrics}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// submit enqueues a job without blocking. ok=false means the queue is full
// (or closed for drain) and the caller should shed with 503.
func (q *discoverQueue) submit(j *discoverJob) bool {
	if faults.Fire(faults.QueueFull) {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.jobs <- j:
		q.metrics.Gauge(obs.MServeQueueDepth).Set(float64(len(q.jobs)))
		return true
	default:
		return false
	}
}

// worker drains jobs until the channel closes. A job whose context is
// already dead is answered without running discovery — the client stopped
// waiting, so the work would be wasted.
func (q *discoverQueue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		q.metrics.Gauge(obs.MServeQueueDepth).Set(float64(len(q.jobs)))
		if err := j.ctx.Err(); err != nil {
			j.done <- discoverResult{err: err}
			continue
		}
		res, err := j.acc.DiscoverContext(j.ctx)
		j.done <- discoverResult{res: res, err: err}
	}
}

// close stops intake (submit returns false from here on) and waits for the
// workers to finish the jobs already queued.
func (q *discoverQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}
