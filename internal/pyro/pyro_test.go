package pyro

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/tane"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = strconv.Itoa(v)
		}
		r.AppendRow(s)
	}
	return r
}

func hasFD(fds []core.FD, lhs []int, rhs int) bool {
	for _, fd := range fds {
		if fd.RHS != rhs || len(fd.LHS) != len(lhs) {
			continue
		}
		match := true
		for i := range lhs {
			if fd.LHS[i] != lhs[i] {
				match = false
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestPyroFindsSimpleFDs(t *testing.T) {
	// a → b (8→4 table), c independent.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, 400)
	for i := range rows {
		a := rng.Intn(8)
		rows[i] = []int{a, a % 4, rng.Intn(5)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{Seed: 1})
	if !hasFD(fds, []int{0}, 1) {
		t.Errorf("a→b not found: %v", fds)
	}
}

func TestPyroFindsCompositeFD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := make([][]int, 6)
	for i := range tab {
		tab[i] = make([]int, 6)
		for j := range tab[i] {
			tab[i][j] = rng.Intn(30)
		}
	}
	rows := make([][]int, 600)
	for i := range rows {
		a, b := rng.Intn(6), rng.Intn(6)
		rows[i] = []int{a, b, tab[a][b]}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{Seed: 2})
	if !hasFD(fds, []int{0, 1}, 2) {
		t.Errorf("{a,b}→c not found: %v", fds)
	}
}

func TestPyroMinimality(t *testing.T) {
	// a→b exactly; {a,c}→b must not be reported.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]int, 300)
	for i := range rows {
		a := rng.Intn(10)
		rows[i] = []int{a, a % 5, rng.Intn(4)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{Seed: 3})
	for _, fd := range fds {
		if fd.RHS == 1 && len(fd.LHS) > 1 {
			t.Errorf("non-minimal FD reported: %v", fd)
		}
	}
}

func TestPyroApproximateBudget(t *testing.T) {
	// a→b with 5% violations: found at ε=0.1, absent at ε=0.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]int, 500)
	for i := range rows {
		a := rng.Intn(6)
		b := a
		if rng.Float64() < 0.05 {
			b = rng.Intn(6)
		}
		rows[i] = []int{a, b}
	}
	rel := relFromCodes(rows, "a", "b")
	strict := Discover(rel, Options{Seed: 4})
	if hasFD(strict, []int{0}, 1) {
		t.Errorf("noisy FD reported at zero budget: %v", strict)
	}
	loose := Discover(rel, Options{MaxError: 0.1, Seed: 4})
	if !hasFD(loose, []int{0}, 1) {
		t.Errorf("approximate FD missed at 10%% budget: %v", loose)
	}
}

func TestPyroAgreesWithTaneOnCleanData(t *testing.T) {
	// On small clean data, Pyro's found set should be a subset of TANE's
	// exact minimal FDs (sound) and should recover most of them.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]int, 200)
	for i := range rows {
		a := rng.Intn(5)
		rows[i] = []int{a, (a * 2) % 5, rng.Intn(3)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	pyroFDs := Discover(rel, Options{Seed: 5})
	taneFDs := tane.Discover(rel, tane.Options{})
	taneSet := map[string]bool{}
	for _, fd := range taneFDs {
		taneSet[fd.String()] = true
	}
	for _, fd := range pyroFDs {
		if !taneSet[fd.String()] {
			t.Errorf("pyro found FD not in TANE's exact set: %v (tane: %v)", fd, taneFDs)
		}
	}
	if len(pyroFDs) == 0 {
		t.Error("pyro found nothing on clean data with FDs")
	}
}

func TestPyroDegenerateInputs(t *testing.T) {
	if fds := Discover(dataset.New("t"), Options{}); fds != nil {
		t.Error("empty relation should yield nil")
	}
	rel := relFromCodes([][]int{{1}}, "a")
	if fds := Discover(rel, Options{}); fds != nil {
		t.Error("single column should yield nil")
	}
}

func TestSampleRelation(t *testing.T) {
	rows := make([][]int, 100)
	for i := range rows {
		rows[i] = []int{i}
	}
	rel := relFromCodes(rows, "a")
	s := sampleRelation(rel, 10, 1)
	if s.NumRows() != 10 {
		t.Errorf("sample rows = %d", s.NumRows())
	}
	if s2 := sampleRelation(rel, 1000, 1); s2 != rel {
		t.Error("oversized sample should return the original relation")
	}
}

func TestDedupMinimal(t *testing.T) {
	fds := []core.FD{
		{LHS: []int{0}, RHS: 2},
		{LHS: []int{0, 1}, RHS: 2}, // superset: drop
		{LHS: []int{0}, RHS: 2},    // duplicate: drop
		{LHS: []int{1}, RHS: 3},
	}
	out := dedupMinimal(fds)
	if len(out) != 2 {
		t.Errorf("dedup = %v", out)
	}
}
