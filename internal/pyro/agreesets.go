package pyro

import (
	"math/rand"
	"sort"

	"fdx/internal/attrset"
	"fdx/internal/dataset"
)

// agreeSetSampler estimates FD errors from a sample of tuple pairs, the
// way the original PYRO seeds its search: each sampled pair contributes an
// "agree set" (the attributes on which the two tuples agree), and the
// error of X→A is estimated as
//
//	ê(X→A) = #{pairs agreeing on X but not on A} / #{pairs agreeing on X}
//
// — the pair-violation rate among X-agreeing pairs. Pairs are drawn with a
// focused scheme: half uniformly, half between tuples adjacent under a
// random attribute's sort order (uniform pairs almost never agree on
// anything in high-cardinality data, so focused pairs keep the numerator
// populated).
type agreeSetSampler struct {
	sets   []attrset.Set
	counts []int // multiplicity per distinct agree set
}

// newAgreeSetSampler draws `pairs` tuple pairs from the relation.
func newAgreeSetSampler(rel *dataset.Relation, pairs int, seed int64) *agreeSetSampler {
	n := rel.NumRows()
	k := rel.NumCols()
	s := &agreeSetSampler{}
	if n < 2 || k == 0 || pairs <= 0 {
		return s
	}
	rng := rand.New(rand.NewSource(seed))
	index := map[string]int{}
	addPair := func(a, b int) {
		if a == b {
			return
		}
		var set attrset.Set
		for j := 0; j < k; j++ {
			col := rel.Columns[j]
			ca, cb := col.Code(a), col.Code(b)
			if ca != dataset.Missing && ca == cb {
				set = set.With(j)
			}
		}
		key := set.Key()
		if i, ok := index[key]; ok {
			s.counts[i]++
			return
		}
		index[key] = len(s.sets)
		s.sets = append(s.sets, set)
		s.counts = append(s.counts, 1)
	}

	// Uniform pairs.
	for i := 0; i < pairs/2; i++ {
		addPair(rng.Intn(n), rng.Intn(n))
	}
	// Focused pairs: adjacent under a random attribute's sort order.
	perAttr := (pairs - pairs/2) / k
	if perAttr < 1 {
		perAttr = 1
	}
	order := make([]int, n)
	for j := 0; j < k; j++ {
		col := rel.Columns[j]
		for i := range order {
			order[i] = i
		}
		// Partial shuffle + sort by code keeps this O(n log n) per attr.
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		sortByCode(order, col)
		for i := 0; i < perAttr; i++ {
			p := rng.Intn(n - 1)
			addPair(order[p], order[p+1])
		}
	}
	return s
}

func sortByCode(order []int, col *dataset.Column) {
	sort.SliceStable(order, func(a, b int) bool {
		return col.Code(order[a]) < col.Code(order[b])
	})
}

// Estimate returns ê(X→A) and the number of sampled pairs agreeing on X.
// With no X-agreeing pairs in the sample the estimate is 0 (optimistic, as
// in PYRO — validation catches false positives).
func (s *agreeSetSampler) Estimate(x attrset.Set, rhs int) (float64, int) {
	agree, violate := 0, 0
	for i, set := range s.sets {
		if x.SubsetOf(set) {
			agree += s.counts[i]
			if !set.Has(rhs) {
				violate += s.counts[i]
			}
		}
	}
	if agree == 0 {
		return 0, 0
	}
	return float64(violate) / float64(agree), agree
}
