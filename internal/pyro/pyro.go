// Package pyro implements a PYRO-style approximate FD discovery algorithm
// (Kruse & Naumann, "Efficient Discovery of Approximate Dependencies",
// VLDB 2018). Like the original, it runs one search space per RHS
// attribute, uses error estimates computed on a row sample to steer the
// search ("ascend"), validates candidates exactly with stripped partitions,
// and peels validated candidates back to minimal determinant sets
// ("trickle down").
//
// This is a best-effort reimplementation at reduced engineering scale (the
// original is a large Java system); it preserves the qualitative behaviour
// the FDX paper relies on: syntactic discovery with an error budget — high
// recall, a tendency to emit many FDs on noisy data, and speed from
// sampling.
package pyro

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"

	"fdx/internal/attrset"
	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/partition"
)

// Options configures the search.
type Options struct {
	// MaxError is the g3 error budget for an approximate FD.
	MaxError float64
	// SampleRows is the number of rows in the estimation sample
	// (default 1000).
	SampleRows int
	// MaxLHS caps determinant size (default 5).
	MaxLHS int
	// MaxVisitsPerRHS bounds the number of exact validations per search
	// space (default 200).
	MaxVisitsPerRHS int
	// Seed drives sampling.
	Seed int64
	// Deadline, when non-zero, stops the search with partial results once
	// the wall clock passes it.
	Deadline time.Time
	// AgreeSetPairs, when positive, switches the error estimator from
	// sampled-relation partitions to agree-set pair sampling with that
	// many pairs — the estimator of the original PYRO. Exact validation is
	// unaffected.
	AgreeSetPairs int
}

func (o *Options) defaults() {
	if o.SampleRows == 0 {
		o.SampleRows = 1000
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 5
	}
	if o.MaxVisitsPerRHS == 0 {
		o.MaxVisitsPerRHS = 200
	}
}

// Discover returns the minimal approximate FDs found by the search.
func Discover(rel *dataset.Relation, opts Options) []core.FD {
	opts.defaults()
	k := rel.NumCols()
	n := rel.NumRows()
	if k < 2 || n == 0 {
		return nil
	}

	sample := sampleRelation(rel, opts.SampleRows, opts.Seed)
	var agreeSets *agreeSetSampler
	if opts.AgreeSetPairs > 0 {
		agreeSets = newAgreeSetSampler(rel, opts.AgreeSetPairs, opts.Seed)
	}

	var fds []core.FD
	for rhs := 0; rhs < k; rhs++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			break
		}
		space := &searchSpace{
			rel:       rel,
			sample:    sample,
			agreeSets: agreeSets,
			rhs:       rhs,
			opts:      &opts,
			parts:     map[string]*partition.Partition{},
			sparts:    map[string]*partition.Partition{},
			visited:   map[string]bool{},
		}
		fds = append(fds, space.run()...)
	}
	fds = dedupMinimal(fds)
	core.SortFDs(fds)
	return fds
}

// searchSpace is the per-RHS search state.
type searchSpace struct {
	rel       *dataset.Relation
	sample    *dataset.Relation
	agreeSets *agreeSetSampler
	rhs       int
	opts      *Options

	parts   map[string]*partition.Partition // full-data partition cache
	sparts  map[string]*partition.Partition // sample partition cache
	visited map[string]bool
}

type candidate struct {
	set attrset.Set
	est float64
}

type candHeap []candidate

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].est < h[j].est }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (s *searchSpace) run() []core.FD {
	k := s.rel.NumCols()
	agenda := &candHeap{}
	for a := 0; a < k; a++ {
		if a == s.rhs {
			continue
		}
		set := attrset.New(a)
		heap.Push(agenda, candidate{set: set, est: s.estimate(set)})
	}

	var found []attrset.Set
	visits := 0
	for agenda.Len() > 0 && visits < s.opts.MaxVisitsPerRHS {
		if visits%16 == 0 && !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
			break
		}
		cand := heap.Pop(agenda).(candidate)
		key := cand.set.Key()
		if s.visited[key] {
			continue
		}
		s.visited[key] = true
		// Skip supersets of already-found minimal FDs.
		covered := false
		for _, f := range found {
			if f.SubsetOf(cand.set) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		visits++
		err := s.exactError(cand.set)
		if err <= s.opts.MaxError {
			min := s.trickleDown(cand.set)
			found = append(found, min)
			continue
		}
		// Ascend: push extensions ordered by estimated error.
		if cand.set.Len() >= s.opts.MaxLHS {
			continue
		}
		type ext struct {
			set attrset.Set
			est float64
		}
		var exts []ext
		for a := 0; a < k; a++ {
			if a == s.rhs || cand.set.Has(a) {
				continue
			}
			e := cand.set.With(a)
			if s.visited[e.Key()] {
				continue
			}
			exts = append(exts, ext{set: e, est: s.estimate(e)})
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i].est < exts[j].est })
		// Launchpads: keep the three most promising extensions.
		for i := 0; i < len(exts) && i < 3; i++ {
			heap.Push(agenda, candidate{set: exts[i].set, est: exts[i].est})
		}
	}

	var fds []core.FD
	for _, f := range found {
		fd := core.FD{LHS: f.Members(), RHS: s.rhs, Score: 1 - s.exactError(f)}
		fd.Normalize()
		if len(fd.LHS) > 0 {
			fds = append(fds, fd)
		}
	}
	return fds
}

// trickleDown peels attributes off a validated set while the FD still holds
// within budget, yielding a minimal determinant set.
func (s *searchSpace) trickleDown(set attrset.Set) attrset.Set {
	improved := true
	for improved && set.Len() > 1 {
		improved = false
		// Try removals in ascending estimated-error order for stability.
		members := set.Members()
		type rem struct {
			set attrset.Set
			est float64
		}
		var rems []rem
		for _, a := range members {
			r := set.Without(a)
			rems = append(rems, rem{set: r, est: s.estimate(r)})
		}
		sort.Slice(rems, func(i, j int) bool { return rems[i].est < rems[j].est })
		for _, r := range rems {
			if s.exactError(r.set) <= s.opts.MaxError {
				set = r.set
				improved = true
				break
			}
		}
	}
	return set
}

// estimate computes the candidate's error estimate: the agree-set pair
// estimator when configured, otherwise the g3 error on the row sample.
func (s *searchSpace) estimate(set attrset.Set) float64 {
	if s.agreeSets != nil {
		e, _ := s.agreeSets.Estimate(set, s.rhs)
		return e
	}
	return g3On(s.sample, s.sparts, set, s.rhs)
}

// exactError computes the g3 error on the full relation.
func (s *searchSpace) exactError(set attrset.Set) float64 {
	return g3On(s.rel, s.parts, set, s.rhs)
}

func g3On(rel *dataset.Relation, cache map[string]*partition.Partition, set attrset.Set, rhs int) float64 {
	px := partitionOf(rel, cache, set)
	pxy := partitionOf(rel, cache, set.With(rhs))
	return partition.G3Error(px, pxy)
}

func partitionOf(rel *dataset.Relation, cache map[string]*partition.Partition, set attrset.Set) *partition.Partition {
	key := set.Key()
	if p, ok := cache[key]; ok {
		return p
	}
	members := set.Members()
	var p *partition.Partition
	if len(members) == 0 {
		p = partition.Single(rel.NumRows())
	} else if len(members) == 1 {
		p = partition.FromColumn(rel.Columns[members[0]])
	} else {
		// Build from a cached subset when possible.
		sub := set.Without(members[len(members)-1])
		p = partition.Product(
			partitionOf(rel, cache, sub),
			partitionOf(rel, cache, attrset.New(members[len(members)-1])),
		)
	}
	cache[key] = p
	return p
}

// sampleRelation takes a uniform row sample of the relation.
func sampleRelation(rel *dataset.Relation, rows int, seed int64) *dataset.Relation {
	n := rel.NumRows()
	if n <= rows {
		return rel
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:rows]
	sort.Ints(idx)
	out := dataset.New(rel.Name+"-sample", rel.AttrNames()...)
	for j, c := range out.Columns {
		c.Type = rel.Columns[j].Type
	}
	for _, i := range idx {
		out.AppendRow(rel.Row(i))
	}
	return out
}

// dedupMinimal removes duplicate FDs and FDs whose LHS is a superset of
// another found FD with the same RHS.
func dedupMinimal(fds []core.FD) []core.FD {
	byRHS := map[int][]core.FD{}
	var rhss []int
	for _, fd := range fds {
		if _, ok := byRHS[fd.RHS]; !ok {
			rhss = append(rhss, fd.RHS)
		}
		byRHS[fd.RHS] = append(byRHS[fd.RHS], fd)
	}
	sort.Ints(rhss)
	var out []core.FD
	for _, rhs := range rhss {
		group := byRHS[rhs]
		sort.Slice(group, func(i, j int) bool { return len(group[i].LHS) < len(group[j].LHS) })
		var kept []core.FD
		seen := map[string]bool{}
		for _, fd := range group {
			set := attrset.FromSlice(fd.LHS)
			if seen[set.Key()] {
				continue
			}
			redundant := false
			for _, k := range kept {
				if attrset.FromSlice(k.LHS).SubsetOf(set) {
					redundant = true
					break
				}
			}
			if !redundant {
				kept = append(kept, fd)
				seen[set.Key()] = true
			}
		}
		out = append(out, kept...)
	}
	return out
}
