package pyro

import (
	"math"
	"math/rand"
	"testing"

	"fdx/internal/attrset"
	"fdx/internal/partition"
)

func TestAgreeSetEstimateExactFD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, 500)
	for i := range rows {
		a := rng.Intn(6)
		rows[i] = []int{a, a % 3, rng.Intn(4)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	s := newAgreeSetSampler(rel, 2000, 1)
	e, support := s.Estimate(attrset.New(0), 1)
	if support == 0 {
		t.Fatal("no pairs agreed on a frequent attribute")
	}
	if e != 0 {
		t.Errorf("exact FD estimated error = %v", e)
	}
	// c is independent of a: error should be clearly positive.
	e, _ = s.Estimate(attrset.New(0), 2)
	if e < 0.3 {
		t.Errorf("independent attribute estimated error = %v, want large", e)
	}
}

func TestAgreeSetEstimateTracksG3(t *testing.T) {
	// On noisy data the agree-set estimate should approximate the exact
	// pairwise behaviour: compare ordering rather than value against g3.
	rng := rand.New(rand.NewSource(2))
	rows := make([][]int, 800)
	for i := range rows {
		a := rng.Intn(5)
		b := a
		if rng.Float64() < 0.1 {
			b = rng.Intn(5)
		}
		rows[i] = []int{a, b, rng.Intn(5)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	s := newAgreeSetSampler(rel, 4000, 2)
	eFD, _ := s.Estimate(attrset.New(0), 1)
	eInd, _ := s.Estimate(attrset.New(0), 2)
	if eFD >= eInd {
		t.Errorf("noisy FD (%v) should estimate below independent (%v)", eFD, eInd)
	}
	// Sanity vs g3.
	px := partition.FromColumns(rel, []int{0})
	pxy := partition.Product(px, partition.FromColumn(rel.Columns[1]))
	g3 := partition.G3Error(px, pxy)
	if math.Abs(eFD-g3) > 0.25 {
		t.Errorf("agree-set estimate %v too far from g3 %v", eFD, g3)
	}
}

func TestAgreeSetDegenerate(t *testing.T) {
	rel := relFromCodes([][]int{{0}}, "a")
	s := newAgreeSetSampler(rel, 100, 1)
	if e, support := s.Estimate(attrset.New(0), 0); e != 0 || support != 0 {
		t.Errorf("single-row sampler should be empty: %v %v", e, support)
	}
}

func TestPyroWithAgreeSetEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]int, 500)
	for i := range rows {
		a := rng.Intn(8)
		rows[i] = []int{a, a % 4, rng.Intn(5)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{Seed: 3, AgreeSetPairs: 3000})
	if !hasFD(fds, []int{0}, 1) {
		t.Errorf("agree-set mode missed a→b: %v", fds)
	}
}
