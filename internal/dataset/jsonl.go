package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// ReadJSONL parses a relation from JSON Lines: one flat JSON object per
// line. The schema is the union of keys seen across all records, in first-
// appearance order (ties broken alphabetically per record); missing keys
// and JSON nulls become NULL cells; numbers, bools and strings are
// stringified. Nested values are rejected.
func ReadJSONL(name string, r io.Reader) (*Relation, error) {
	type record map[string]interface{}
	var records []record
	var keys []string
	seen := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("dataset: jsonl line %d: %w", line, err)
		}
		newKeys := make([]string, 0, len(rec))
		for k := range rec {
			if !seen[k] {
				seen[k] = true
				newKeys = append(newKeys, k)
			}
		}
		sort.Strings(newKeys)
		keys = append(keys, newKeys...)
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading jsonl: %w", err)
	}

	rel := New(name, keys...)
	row := make([]string, len(keys))
	for ln, rec := range records {
		for i, k := range keys {
			v, ok := rec[k]
			if !ok || v == nil {
				row[i] = ""
				continue
			}
			switch t := v.(type) {
			case string:
				row[i] = t
			case float64:
				row[i] = trimFloat(t)
			case bool:
				if t {
					row[i] = "true"
				} else {
					row[i] = "false"
				}
			default:
				return nil, fmt.Errorf("dataset: jsonl record %d: nested value for key %q", ln+1, k)
			}
		}
		if err := rel.AppendRow(row); err != nil {
			return nil, err
		}
	}
	// Re-infer types: numeric-looking columns become Numeric.
	for _, col := range rel.Columns {
		numeric, vals := true, 0
		for i := 0; i < col.Len() && vals < inferenceSample; i++ {
			v, ok := col.Value(i)
			if !ok {
				continue
			}
			vals++
			if _, err := json.Number(v).Float64(); err != nil {
				numeric = false
				break
			}
		}
		if numeric && vals > 0 {
			col.Type = Numeric
		}
	}
	return rel, nil
}

// LoadJSONL reads a relation from a JSON Lines file.
func LoadJSONL(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(path, f)
}

// WriteJSONL serializes the relation as JSON Lines; NULLs become JSON
// nulls, numeric cells are written as numbers.
func WriteJSONL(r *Relation, w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	names := r.AttrNames()
	for i := 0; i < r.NumRows(); i++ {
		rec := make(map[string]interface{}, len(names))
		for j, col := range r.Columns {
			v, ok := col.Value(i)
			if !ok {
				rec[names[j]] = nil
				continue
			}
			if col.Type == Numeric {
				if f := col.Float(i); !math.IsNaN(f) {
					rec[names[j]] = f
					continue
				}
			}
			rec[names[j]] = v
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// trimFloat renders a float64 without a trailing ".0" for integral values.
// (fdx:numeric-kernel: the integral-value test must be exact — rounding a
// nearly-integral float would change the rendered value.)
func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
