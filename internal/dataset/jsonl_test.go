package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadJSONLBasic(t *testing.T) {
	in := `{"a":"x","b":1}
{"a":"y","b":2.5}
{"a":null,"c":true}
`
	rel, err := ReadJSONL("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 || rel.NumCols() != 3 {
		t.Fatalf("dims %dx%d", rel.NumRows(), rel.NumCols())
	}
	if rel.ColumnIndex("a") < 0 || rel.ColumnIndex("b") < 0 || rel.ColumnIndex("c") < 0 {
		t.Fatal("columns missing")
	}
	b := rel.Columns[rel.ColumnIndex("b")]
	if b.Type != Numeric {
		t.Errorf("b type = %v, want numeric", b.Type)
	}
	if v, _ := b.Value(1); v != "2.5" {
		t.Errorf("b[1] = %q", v)
	}
	if v, _ := b.Value(0); v != "1" {
		t.Errorf("b[0] = %q (integral floats should not carry .0)", v)
	}
	a := rel.Columns[rel.ColumnIndex("a")]
	if !a.IsMissing(2) {
		t.Error("null should be missing")
	}
	if rel.Columns[rel.ColumnIndex("c")].MissingCount() != 2 {
		t.Error("absent keys should be missing")
	}
}

func TestReadJSONLRejectsNested(t *testing.T) {
	if _, err := ReadJSONL("t", strings.NewReader(`{"a":{"x":1}}`)); err == nil {
		t.Error("nested object accepted")
	}
	if _, err := ReadJSONL("t", strings.NewReader(`{"a":[1,2]}`)); err == nil {
		t.Error("array accepted")
	}
	if _, err := ReadJSONL("t", strings.NewReader(`not json`)); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rel := New("t", "name", "score")
	rel.Columns[1].Type = Numeric
	rel.AppendRow([]string{"alice", "3.5"})
	rel.AppendRow([]string{"bob", ""})
	var buf bytes.Buffer
	if err := WriteJSONL(rel, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if v, _ := got.Columns[got.ColumnIndex("name")].Value(0); v != "alice" {
		t.Errorf("name[0] = %q", v)
	}
	if !got.Columns[got.ColumnIndex("score")].IsMissing(1) {
		t.Error("null round trip failed")
	}
	if got.Columns[got.ColumnIndex("score")].Float(0) != 3.5 {
		t.Error("numeric round trip failed")
	}
}

func TestJSONLEmptyAndBlankLines(t *testing.T) {
	rel, err := ReadJSONL("t", strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 0 || rel.NumCols() != 0 {
		t.Error("blank input should give empty relation")
	}
}

func TestLoadJSONLMissingFile(t *testing.T) {
	if _, err := LoadJSONL("/nonexistent/x.jsonl"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" || trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat: %q %q", trimFloat(3), trimFloat(2.5))
	}
}
