package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// inferenceSample is how many rows the type inferencer inspects per column.
const inferenceSample = 1000

// ReadCSV parses a relation from CSV with a header row. Column types are
// inferred: a column whose non-empty sampled values all parse as floats is
// Numeric; otherwise values longer than 32 runes make it Text; otherwise it
// is Categorical. Empty cells are NULLs.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row: %w", err)
		}
		rows = append(rows, rec)
	}
	rel := &Relation{Name: name}
	for j, h := range header {
		rel.Columns = append(rel.Columns, NewColumn(h, inferType(rows, j)))
	}
	for i, rec := range rows {
		if err := rel.AppendRow(rec); err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i, err)
		}
	}
	return rel, nil
}

// LoadCSV reads a relation from a CSV file; the relation is named after the
// path.
func LoadCSV(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(path, f)
}

// WriteCSV serializes the relation as CSV with a header row; NULLs become
// empty cells.
func WriteCSV(r *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.AttrNames()); err != nil {
		return err
	}
	for i := 0; i < r.NumRows(); i++ {
		if err := cw.Write(r.Row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the relation to the given file path.
func SaveCSV(r *Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(r, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func inferType(rows [][]string, col int) Type {
	numeric := true
	seen := 0
	long := false
	for i := 0; i < len(rows) && seen < inferenceSample; i++ {
		if col >= len(rows[i]) {
			continue
		}
		v := rows[i][col]
		if v == "" {
			continue
		}
		seen++
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			numeric = false
		}
		if len([]rune(v)) > 32 {
			long = true
		}
	}
	switch {
	case seen == 0:
		return Categorical
	case numeric:
		return Numeric
	case long:
		return Text
	default:
		return Categorical
	}
}
