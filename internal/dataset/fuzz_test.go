package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser never panics and that everything it
// accepts round-trips structurally.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,\n")
	f.Add("x\n\"quoted, cell\"\n")
	f.Add("h1,h2,h3\n,,\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		rel, err := ReadCSV("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("accepted relation fails validation: %v", err)
		}
		// encoding/csv writes a record whose only field is empty as an
		// empty line, which readers skip: single-column relations with
		// empty names or NULL cells cannot round-trip through CSV.
		if rel.NumCols() <= 1 {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(rel, &buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			if rel.NumCols() == 0 {
				return
			}
			t.Fatalf("round trip unparsable: %v", err)
		}
		if back.NumRows() != rel.NumRows() || back.NumCols() != rel.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.NumRows(), back.NumCols(), rel.NumRows(), rel.NumCols())
		}
	})
}

// FuzzReadJSONL checks the JSONL parser never panics and validates its
// output.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"a":1,"b":"x"}`)
	f.Add("{\"a\":null}\n{\"b\":true}")
	f.Add("")
	f.Add(`{"n":1e308}`)
	f.Fuzz(func(t *testing.T, data string) {
		rel, err := ReadJSONL("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("accepted relation fails validation: %v", err)
		}
	})
}
