package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendAndLookup(t *testing.T) {
	r := New("t", "a", "b")
	if err := r.AppendRow([]string{"x", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendRow([]string{"x", ""}); err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 2 || r.NumCols() != 2 {
		t.Fatalf("dims = %dx%d", r.NumRows(), r.NumCols())
	}
	if v, ok := r.Columns[0].Value(0); !ok || v != "x" {
		t.Errorf("Value(0) = %q, %v", v, ok)
	}
	if !r.Columns[1].IsMissing(1) {
		t.Error("empty cell should be missing")
	}
	if r.Columns[0].Code(0) != r.Columns[0].Code(1) {
		t.Error("same string should share a dictionary code")
	}
	if r.Columns[0].Cardinality() != 1 {
		t.Errorf("cardinality = %d, want 1", r.Columns[0].Cardinality())
	}
}

func TestAppendRowLengthMismatch(t *testing.T) {
	r := New("t", "a")
	if err := r.AppendRow([]string{"x", "y"}); err == nil {
		t.Error("expected error for wrong row width")
	}
}

func TestFloatParsing(t *testing.T) {
	c := NewColumn("n", Numeric)
	c.AppendValue("3.5")
	c.AppendValue("abc")
	c.AppendMissing()
	if c.Float(0) != 3.5 {
		t.Errorf("Float(0) = %v", c.Float(0))
	}
	if !math.IsNaN(c.Float(1)) {
		t.Error("non-numeric string should be NaN")
	}
	if !math.IsNaN(c.Float(2)) {
		t.Error("missing should be NaN")
	}
}

func TestMissingRateAndCount(t *testing.T) {
	r := New("t", "a", "b")
	r.AppendRow([]string{"x", ""})
	r.AppendRow([]string{"", ""})
	if got := r.MissingRate(); got != 0.75 {
		t.Errorf("MissingRate = %v, want 0.75", got)
	}
	if r.Columns[1].MissingCount() != 2 {
		t.Error("MissingCount wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New("t", "a")
	r.AppendRow([]string{"x"})
	c := r.Clone()
	c.Columns[0].SetCode(0, Missing)
	if r.Columns[0].IsMissing(0) {
		t.Error("Clone shares storage")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesRaggedColumns(t *testing.T) {
	r := New("t", "a", "b")
	r.Columns[0].AppendValue("x")
	if err := r.Validate(); err == nil {
		t.Error("Validate accepted ragged columns")
	}
}

func TestSetCodePanicsOutOfRange(t *testing.T) {
	c := NewColumn("a", Categorical)
	c.AppendValue("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.SetCode(0, 5)
}

func TestCodeOfInterning(t *testing.T) {
	c := NewColumn("a", Categorical)
	x := c.CodeOf("x")
	if c.CodeOf("x") != x {
		t.Error("CodeOf not stable")
	}
	if c.DictValue(x) != "x" {
		t.Error("DictValue mismatch")
	}
	if c.Len() != 0 {
		t.Error("CodeOf should not append rows")
	}
}

func TestColumnIndexAndProject(t *testing.T) {
	r := New("t", "a", "b", "c")
	r.AppendRow([]string{"1", "2", "3"})
	if r.ColumnIndex("b") != 1 || r.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	p := r.Project(2, 0)
	if p.NumCols() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Error("Project wrong columns")
	}
	p.Columns[1].SetCode(0, Missing)
	if r.Columns[0].IsMissing(0) {
		t.Error("Project shares storage with original")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nrows := rng.Intn(20)
		r := New("t", "a", "b", "c")
		for i := 0; i < nrows; i++ {
			row := make([]string, 3)
			for j := range row {
				if rng.Intn(5) == 0 {
					row[j] = "" // missing
				} else {
					row[j] = "v" + strconv.Itoa(rng.Intn(6))
				}
			}
			r.AppendRow(row)
		}
		var buf bytes.Buffer
		if err := WriteCSV(r, &buf); err != nil {
			return false
		}
		got, err := ReadCSV("t", &buf)
		if err != nil {
			return false
		}
		if got.NumRows() != r.NumRows() || got.NumCols() != r.NumCols() {
			return false
		}
		for i := 0; i < r.NumRows(); i++ {
			a, b := r.Row(i), got.Row(i)
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVTypeInference(t *testing.T) {
	csvData := "num,cat,txt\n1.5,red," + strings.Repeat("x", 40) + "\n2,blue,short\n,green,\n"
	r, err := ReadCSV("t", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if r.Columns[0].Type != Numeric {
		t.Errorf("col 0 type = %v, want numeric", r.Columns[0].Type)
	}
	if r.Columns[1].Type != Categorical {
		t.Errorf("col 1 type = %v, want categorical", r.Columns[1].Type)
	}
	if r.Columns[2].Type != Text {
		t.Errorf("col 2 type = %v, want text", r.Columns[2].Type)
	}
	if !r.Columns[0].IsMissing(2) {
		t.Error("empty numeric cell should be missing")
	}
}

func TestCSVEmptyBody(t *testing.T) {
	r, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 0 || r.NumCols() != 2 {
		t.Error("empty-body CSV parsed wrong")
	}
}

func TestCSVMalformedHeader(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestTypeString(t *testing.T) {
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" || Text.String() != "text" {
		t.Error("Type.String wrong")
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestCodesViewAndEmptyRelation(t *testing.T) {
	c := NewColumn("a", Categorical)
	c.AppendValue("x")
	if codes := c.Codes(); len(codes) != 1 || codes[0] != 0 {
		t.Errorf("Codes = %v", codes)
	}
	empty := New("t")
	if empty.NumRows() != 0 {
		t.Error("column-less relation should have zero rows")
	}
	if empty.MissingRate() != 0 {
		t.Error("column-less relation missing rate should be 0")
	}
}

func TestSaveCSVErrors(t *testing.T) {
	r := New("t", "a")
	r.AppendRow([]string{"x"})
	if err := SaveCSV(r, "/nonexistent-dir/file.csv"); err == nil {
		t.Error("SaveCSV to bad path should error")
	}
	if _, err := LoadCSV("/nonexistent-dir/file.csv"); err == nil {
		t.Error("LoadCSV of missing file should error")
	}
}

func TestValidateCatchesCorruptCode(t *testing.T) {
	r := New("t", "a")
	r.AppendRow([]string{"x"})
	r.Columns[0].Codes()[0] = 99 // corrupt via the raw view
	if err := r.Validate(); err == nil {
		t.Error("corrupt dictionary code not caught")
	}
}

func TestSaveAndLoadCSV(t *testing.T) {
	r := New("t", "a", "b")
	r.AppendRow([]string{"1", "x"})
	path := t.TempDir() + "/out.csv"
	if err := SaveCSV(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 || got.Row(0)[1] != "x" {
		t.Error("LoadCSV round trip failed")
	}
}
