// Package dataset models the relational input of FD discovery: a relation
// with named, typed attributes, dictionary-encoded values, and explicit
// missing values. It also provides CSV I/O with type inference.
//
// Values are stored column-major as int32 dictionary codes. The sentinel
// Missing marks NULL cells. Numeric columns additionally retain their parsed
// float64 values so difference operators can use approximate equality.
package dataset

import (
	"fmt"
	"math"
	"strconv"
)

// Missing is the dictionary code of a NULL cell.
const Missing int32 = -1

// Type describes the domain of an attribute.
type Type int

const (
	// Categorical attributes compare by exact value equality.
	Categorical Type = iota
	// Numeric attributes carry float64 values and support approximate
	// equality in the pair transform.
	Numeric
	// Text attributes are free-form strings; the pair transform may use a
	// similarity-based difference operator.
	Text
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column is one attribute of a relation.
type Column struct {
	Name string
	Type Type

	// codes holds one dictionary code per tuple; Missing for NULLs.
	codes []int32
	// dict maps a code to its string value.
	dict []string
	// index maps a string value to its code.
	index map[string]int32
	// nums holds parsed values for Numeric columns (NaN where missing),
	// indexed by code.
	nums []float64
}

// NewColumn returns an empty column with the given name and type.
func NewColumn(name string, typ Type) *Column {
	return &Column{Name: name, Type: typ, index: make(map[string]int32)}
}

// Len returns the number of tuples in the column.
func (c *Column) Len() int { return len(c.codes) }

// Cardinality returns the number of distinct non-missing values seen.
func (c *Column) Cardinality() int { return len(c.dict) }

// Code returns the dictionary code of tuple i (Missing for NULL).
func (c *Column) Code(i int) int32 { return c.codes[i] }

// Codes returns the backing code slice (shared).
func (c *Column) Codes() []int32 { return c.codes }

// Value returns the string value of tuple i and whether it is present.
func (c *Column) Value(i int) (string, bool) {
	code := c.codes[i]
	if code == Missing {
		return "", false
	}
	return c.dict[code], true
}

// Float returns the numeric value of tuple i; NaN if missing or the column
// is not numeric-parsable.
func (c *Column) Float(i int) float64 {
	code := c.codes[i]
	if code == Missing || int(code) >= len(c.nums) {
		return math.NaN()
	}
	return c.nums[code]
}

// IsMissing reports whether tuple i is NULL.
func (c *Column) IsMissing(i int) bool { return c.codes[i] == Missing }

// MissingCount returns the number of NULL cells.
func (c *Column) MissingCount() int {
	n := 0
	for _, v := range c.codes {
		if v == Missing {
			n++
		}
	}
	return n
}

// AppendValue appends a string cell, interning it in the dictionary.
func (c *Column) AppendValue(v string) {
	code, ok := c.index[v]
	if !ok {
		code = int32(len(c.dict))
		c.index[v] = code
		c.dict = append(c.dict, v)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			f = math.NaN()
		}
		c.nums = append(c.nums, f)
	}
	c.codes = append(c.codes, code)
}

// AppendMissing appends a NULL cell.
func (c *Column) AppendMissing() { c.codes = append(c.codes, Missing) }

// SetCode overwrites the code of tuple i. The code must be Missing or an
// existing dictionary code; panics otherwise.
func (c *Column) SetCode(i int, code int32) {
	if code != Missing && int(code) >= len(c.dict) {
		panic(fmt.Sprintf("dataset: SetCode %d out of dictionary range %d", code, len(c.dict)))
	}
	c.codes[i] = code
}

// CodeOf returns the dictionary code for value v, interning it if new.
func (c *Column) CodeOf(v string) int32 {
	code, ok := c.index[v]
	if !ok {
		code = int32(len(c.dict))
		c.index[v] = code
		c.dict = append(c.dict, v)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			f = math.NaN()
		}
		c.nums = append(c.nums, f)
	}
	return code
}

// DictValue returns the string for a dictionary code.
func (c *Column) DictValue(code int32) string { return c.dict[code] }

// Relation is a named table with typed columns of equal length.
type Relation struct {
	Name    string
	Columns []*Column
}

// New returns an empty relation with the given attribute names, all
// categorical.
func New(name string, attrs ...string) *Relation {
	r := &Relation{Name: name}
	for _, a := range attrs {
		r.Columns = append(r.Columns, NewColumn(a, Categorical))
	}
	return r
}

// NumRows returns the tuple count (0 for a column-less relation).
func (r *Relation) NumRows() int {
	if len(r.Columns) == 0 {
		return 0
	}
	return r.Columns[0].Len()
}

// NumCols returns the attribute count.
func (r *Relation) NumCols() int { return len(r.Columns) }

// AttrNames returns the attribute names in order.
func (r *Relation) AttrNames() []string {
	names := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		names[i] = c.Name
	}
	return names
}

// ColumnIndex returns the index of the named attribute, or -1.
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AppendRow appends one tuple given as strings; empty strings become NULLs.
func (r *Relation) AppendRow(values []string) error {
	if len(values) != len(r.Columns) {
		return fmt.Errorf("dataset: row has %d values, relation has %d columns", len(values), len(r.Columns))
	}
	for i, v := range values {
		if v == "" {
			r.Columns[i].AppendMissing()
		} else {
			r.Columns[i].AppendValue(v)
		}
	}
	return nil
}

// Row materializes tuple i as strings (empty string for NULL).
func (r *Relation) Row(i int) []string {
	out := make([]string, len(r.Columns))
	for j, c := range r.Columns {
		if v, ok := c.Value(i); ok {
			out[j] = v
		}
	}
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name}
	for _, c := range r.Columns {
		nc := NewColumn(c.Name, c.Type)
		nc.codes = append([]int32(nil), c.codes...)
		nc.dict = append([]string(nil), c.dict...)
		nc.nums = append([]float64(nil), c.nums...)
		for v, code := range c.index {
			nc.index[v] = code
		}
		out.Columns = append(out.Columns, nc)
	}
	return out
}

// Validate checks structural invariants: equal column lengths and in-range
// codes.
func (r *Relation) Validate() error {
	n := r.NumRows()
	for _, c := range r.Columns {
		if c.Len() != n {
			return fmt.Errorf("dataset: column %q has %d rows, expected %d", c.Name, c.Len(), n)
		}
		for i, code := range c.codes {
			if code != Missing && (code < 0 || int(code) >= len(c.dict)) {
				return fmt.Errorf("dataset: column %q row %d has invalid code %d", c.Name, i, code)
			}
		}
	}
	return nil
}

// MissingRate returns the fraction of NULL cells over all cells.
func (r *Relation) MissingRate() float64 {
	total := r.NumRows() * r.NumCols()
	if total == 0 {
		return 0
	}
	miss := 0
	for _, c := range r.Columns {
		miss += c.MissingCount()
	}
	return float64(miss) / float64(total)
}

// Slice returns rows [lo, hi) as a new relation sharing no storage with r,
// preserving column names, types, dictionaries, and numeric values.
// Panics if the range is out of bounds or inverted.
func (r *Relation) Slice(lo, hi int) *Relation {
	if lo < 0 || hi < lo || hi > r.NumRows() {
		panic(fmt.Sprintf("dataset: Slice [%d, %d) out of range for %d rows", lo, hi, r.NumRows()))
	}
	out := &Relation{Name: r.Name}
	for _, c := range r.Columns {
		nc := NewColumn(c.Name, c.Type)
		nc.codes = append([]int32(nil), c.codes[lo:hi]...)
		nc.dict = append([]string(nil), c.dict...)
		nc.nums = append([]float64(nil), c.nums...)
		for v, code := range c.index {
			nc.index[v] = code
		}
		out.Columns = append(out.Columns, nc)
	}
	return out
}

// Project returns a new relation containing only the given column indices
// (sharing no storage with r).
func (r *Relation) Project(cols ...int) *Relation {
	out := &Relation{Name: r.Name}
	clone := r.Clone()
	for _, j := range cols {
		out.Columns = append(out.Columns, clone.Columns[j])
	}
	return out
}
