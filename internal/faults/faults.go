// Package faults is a seeded fault-injection harness for hardening tests.
//
// The pipeline's numerically fragile stages carry *named injection points*:
// fixed places where a test can force the failure that stage guards against
// (a NaN in the covariance, a non-positive pivot, an exhausted iteration
// budget, a slow stage for deadline tests). Production code calls Fire or
// Sleep at the point; tests Arm the point with a Config and assert that the
// pipeline degrades the way the robustness contract promises.
//
// Disarmed points cost one atomic load and a predictable branch — the
// armed-point counter is zero in any process that never calls Arm, so the
// instrumented hot paths run at full speed outside the fault suite. Firing
// is deterministic: a probabilistic point draws from its own rand.Rand
// seeded by Config.Seed, so an armed test replays the same fire sequence on
// every run.
//
// The registry is process-global (the instrumented code cannot thread a
// handle through every layer), so tests that arm points must not run in
// parallel with each other; each should `defer faults.Reset()`.
package faults

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Point names an injection site in the pipeline.
type Point uint8

// The named injection points.
const (
	// CovarianceNaN poisons one covariance entry with NaN before structure
	// learning, exercising the sanitization path.
	CovarianceNaN Point = iota
	// GlassoNoConverge suppresses the Graphical Lasso convergence test so
	// the solver exhausts MaxIter.
	GlassoNoConverge
	// NonPositivePivot forces the UDUᵀ factorization to report a
	// non-positive pivot, exercising the SPD repair and fallback ladder.
	NonPositivePivot
	// SlowStage makes instrumented stage loops sleep Config.Delay per
	// visit, for context-deadline tests.
	SlowStage
	// InternalPanic raises a panic inside the discovery core, exercising
	// the panic-recovery guard at the public API boundary.
	InternalPanic
	// ShortWrite makes a checkpoint write emit only half its bytes and
	// report an error, exercising the durable write path.
	ShortWrite
	// FsyncError makes a checkpoint fsync (file or directory) fail,
	// exercising the durability error path.
	FsyncError
	// ReadBitFlip flips one bit in a checkpoint read buffer, exercising
	// the CRC validation on restore.
	ReadBitFlip
	// RenameFail makes the atomic rename of a finished snapshot fail,
	// exercising temp-file cleanup and the durability error path.
	RenameFail
	// IngestStall makes the service's session-ingest path sleep
	// Config.Delay per batch, exercising request deadlines and
	// backpressure under slow absorption.
	IngestStall
	// QueueFull makes the service's discover job queue report itself full,
	// exercising the load-shedding (503 + Retry-After) path.
	QueueFull
	// DrainTimeout stalls the service's graceful-drain path past its
	// deadline, exercising the degraded-drain (checkpoint everything,
	// report the overrun) contract.
	DrainTimeout
	// ShardCrash kills a shard worker at its checkpoint boundary (the
	// worker returns a simulated crash instead of continuing), exercising
	// the supervisor's restart-from-own-checkpoint protocol.
	ShardCrash
	// ShardStall makes a shard worker sleep Config.Delay before a batch,
	// exercising the supervisor's stall detection and restart.
	ShardStall
	// MergeCorrupt flips one bit in a shard snapshot as it is read for
	// merging, exercising the merge path's validate-before-commit contract
	// (typed ErrCorruptCheckpoint, merged state untouched).
	MergeCorrupt
	// ShipTimeout makes the shard-shipping client sleep Config.Delay
	// before a request, exercising per-request deadlines and the
	// retry/backoff path through fdxd's shard endpoint.
	ShipTimeout

	numPoints
)

// String returns the point's stable name (used in test output).
func (p Point) String() string {
	switch p {
	case CovarianceNaN:
		return "covariance-nan"
	case GlassoNoConverge:
		return "glasso-no-converge"
	case NonPositivePivot:
		return "non-positive-pivot"
	case SlowStage:
		return "slow-stage"
	case InternalPanic:
		return "internal-panic"
	case ShortWrite:
		return "short-write"
	case FsyncError:
		return "fsync-error"
	case ReadBitFlip:
		return "read-bit-flip"
	case RenameFail:
		return "rename-fail"
	case IngestStall:
		return "ingest-stall"
	case QueueFull:
		return "queue-full"
	case DrainTimeout:
		return "drain-timeout"
	case ShardCrash:
		return "shard-crash"
	case ShardStall:
		return "shard-stall"
	case MergeCorrupt:
		return "merge-corrupt"
	case ShipTimeout:
		return "ship-timeout"
	default:
		return "unknown"
	}
}

// Config controls how an armed point fires.
type Config struct {
	// Times caps how often the point fires before auto-disarming;
	// 0 means unlimited.
	Times int
	// Prob fires the point with this probability per visit; 0 means fire
	// on every visit. Draws come from a rand.Rand seeded with Seed, so the
	// sequence is reproducible.
	Prob float64
	// Seed seeds the probabilistic draw sequence.
	Seed int64
	// Delay is how long Sleep blocks per fire (SlowStage).
	Delay time.Duration
}

type pointState struct {
	cfg   Config
	rng   *rand.Rand
	fired int
}

var (
	// armedCount is the fast-path gate: zero means no point is armed and
	// every Fire/Sleep call is a single atomic load.
	armedCount atomic.Int32

	mu     sync.Mutex
	points [numPoints]*pointState
)

// Arm activates a point with the given config, replacing any previous
// arming of the same point.
func Arm(p Point, cfg Config) {
	mu.Lock()
	defer mu.Unlock()
	if points[p] == nil {
		armedCount.Add(1)
	}
	points[p] = &pointState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Disarm deactivates a point; disarming an inactive point is a no-op.
func Disarm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if points[p] != nil {
		points[p] = nil
		armedCount.Add(-1)
	}
}

// Reset disarms every point. Fault tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for i := range points {
		if points[i] != nil {
			points[i] = nil
			armedCount.Add(-1)
		}
	}
}

// Armed reports whether the point is currently armed (it may still decline
// to fire on a given visit under Prob/Times).
func Armed(p Point) bool {
	if armedCount.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	return points[p] != nil
}

// Fire reports whether the point should inject its fault on this visit,
// consuming one of its Times shots when it does. Disarmed points (the
// production case) return false after a single atomic load.
func Fire(p Point) bool {
	if armedCount.Load() == 0 {
		return false
	}
	return fireSlow(p)
}

func fireSlow(p Point) bool {
	mu.Lock()
	defer mu.Unlock()
	st := points[p]
	if st == nil {
		return false
	}
	if st.cfg.Prob > 0 && st.rng.Float64() >= st.cfg.Prob {
		return false
	}
	st.fired++
	if st.cfg.Times > 0 && st.fired >= st.cfg.Times {
		points[p] = nil
		armedCount.Add(-1)
	}
	return true
}

// Sleep blocks for the point's configured Delay if the point fires on this
// visit; the production case is the same single atomic load as Fire.
func Sleep(p Point) {
	if armedCount.Load() == 0 {
		return
	}
	mu.Lock()
	st := points[p]
	var d time.Duration
	if st != nil {
		d = st.cfg.Delay
	}
	mu.Unlock()
	if st != nil && d > 0 && Fire(p) {
		time.Sleep(d)
	}
}
