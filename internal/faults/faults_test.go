package faults

import (
	"sync"
	"testing"
	"time"
)

func TestFaultDisarmedNeverFires(t *testing.T) {
	defer Reset()
	for p := Point(0); p < numPoints; p++ {
		if Fire(p) {
			t.Errorf("disarmed point %v fired", p)
		}
		if Armed(p) {
			t.Errorf("point %v reports armed", p)
		}
	}
}

func TestFaultTimesBudget(t *testing.T) {
	defer Reset()
	Arm(NonPositivePivot, Config{Times: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if Fire(NonPositivePivot) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3", fired)
	}
	if Armed(NonPositivePivot) {
		t.Error("point still armed after exhausting Times")
	}
}

func TestFaultUnlimited(t *testing.T) {
	defer Reset()
	Arm(GlassoNoConverge, Config{})
	for i := 0; i < 100; i++ {
		if !Fire(GlassoNoConverge) {
			t.Fatalf("unlimited point declined to fire on visit %d", i)
		}
	}
	Disarm(GlassoNoConverge)
	if Fire(GlassoNoConverge) {
		t.Error("fired after Disarm")
	}
}

func TestFaultSeededProbIsDeterministic(t *testing.T) {
	defer Reset()
	run := func() []bool {
		Arm(CovarianceNaN, Config{Prob: 0.5, Seed: 42})
		defer Disarm(CovarianceNaN)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire(CovarianceNaN)
		}
		return out
	}
	a, b := run(), run()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire sequences diverge at visit %d", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Errorf("prob 0.5 should fire sometimes but not always (some=%v all=%v)", some, all)
	}
}

func TestFaultSleepDelays(t *testing.T) {
	defer Reset()
	Arm(SlowStage, Config{Times: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	Sleep(SlowStage)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("armed Sleep returned after %v, want ≥ 30ms", d)
	}
	start = time.Now()
	Sleep(SlowStage) // Times exhausted: must be a no-op.
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("exhausted Sleep blocked for %v", d)
	}
}

func TestFaultConcurrentFireIsRaceFree(t *testing.T) {
	defer Reset()
	Arm(SlowStage, Config{Times: 500})
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if Fire(SlowStage) {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 500 {
		t.Errorf("concurrent fires = %d, want exactly 500", total)
	}
}

func TestFaultResetClearsEverything(t *testing.T) {
	Arm(CovarianceNaN, Config{})
	Arm(InternalPanic, Config{})
	Reset()
	if Armed(CovarianceNaN) || Armed(InternalPanic) {
		t.Error("points armed after Reset")
	}
	if armedCount.Load() != 0 {
		t.Errorf("armedCount = %d after Reset", armedCount.Load())
	}
}
