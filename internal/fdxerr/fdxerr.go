// Package fdxerr defines the typed failure taxonomy of the FDX pipeline.
//
// Every failure path in the discovery stack — input validation, the
// Graphical Lasso, precision recovery, the UDUᵀ factorization, the
// regularization fallback ladder — wraps exactly one of these sentinels, so
// callers can classify failures with errors.Is/errors.As without parsing
// message strings. The public package fdx re-exports each sentinel; internal
// packages wrap them with stage-specific context via fmt.Errorf("...: %w").
//
// The taxonomy is deliberately small: each sentinel names a *cause class*
// that demands a different caller reaction, not an individual call site.
//
//   - ErrBadInput: the caller handed us something malformed (wrong
//     dimensions, duplicate attribute names, asymmetric covariance). Fix the
//     input; retrying cannot help.
//   - ErrSingularCovariance: the covariance estimate is (numerically)
//     singular and precision recovery produced a non-positive partial
//     variance. More data or more regularization may help.
//   - ErrNonPositivePivot: a factorization (Cholesky/LDL/UDU) hit a
//     non-positive pivot — the matrix is not positive definite. The fallback
//     ladder retries these with escalating diagonal shrinkage.
//   - ErrNotConverged: an iterative solver exhausted its iteration budget
//     without meeting its tolerance and the caller asked for strict
//     convergence.
//   - ErrCancelled: work was abandoned because the caller's context was
//     cancelled or its deadline expired. The context's own error
//     (context.Canceled / context.DeadlineExceeded) is wrapped alongside, so
//     errors.Is matches either name.
//   - ErrInternal: an internal invariant panic was recovered at the public
//     API boundary and converted into an error. Always a bug in fdx, never
//     in the caller's data; the wrapped message carries the panic value.
//   - ErrCorruptCheckpoint: a durable snapshot or WAL failed validation
//     (bad magic, CRC mismatch, impossible dimensions, mid-log torn record)
//     or could not be durably written (short write, failed fsync or
//     rename). The in-memory state is still good; the on-disk checkpoint
//     must not be trusted.
//   - ErrCheckpointVersion: a checkpoint was written by an incompatible
//     format version. The bytes are intact but this build cannot interpret
//     them; re-snapshot from a live accumulator or upgrade the reader.
//   - ErrShardMismatch: two accumulator shards cannot be merged — their
//     options fingerprints or attribute schemas differ, or their batch
//     coverage overlaps partially (the same batch folded into both). The
//     shards are individually intact; the merge request is what is wrong.
package fdxerr

import (
	"errors"
	"fmt"
)

// Sentinel errors of the taxonomy. See the package comment for when each is
// used and what a caller should do about it.
var (
	ErrBadInput           = errors.New("bad input")
	ErrSingularCovariance = errors.New("singular covariance")
	ErrNonPositivePivot   = errors.New("non-positive pivot")
	ErrNotConverged       = errors.New("solver did not converge")
	ErrCancelled          = errors.New("cancelled")
	ErrInternal           = errors.New("internal invariant violation")
	ErrCorruptCheckpoint  = errors.New("corrupt checkpoint")
	ErrCheckpointVersion  = errors.New("unsupported checkpoint version")
	ErrShardMismatch      = errors.New("shard mismatch")
)

// BadInput wraps ErrBadInput with a formatted message.
func BadInput(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrBadInput)...)
}

// Corrupt wraps ErrCorruptCheckpoint with a formatted message.
func Corrupt(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorruptCheckpoint)...)
}

// Version wraps ErrCheckpointVersion with a formatted message.
func Version(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCheckpointVersion)...)
}

// ShardMismatch wraps ErrShardMismatch with a formatted message.
func ShardMismatch(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrShardMismatch)...)
}

// Cancelled wraps a context error so the result matches both ErrCancelled
// and the original context sentinel under errors.Is. A nil ctxErr returns
// nil, so call sites can pass ctx.Err() through unconditionally.
func Cancelled(ctxErr error) error {
	if ctxErr == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
}

// Recovered converts a recovered panic value into an ErrInternal-wrapped
// error. The stage names the API boundary that caught the panic.
func Recovered(stage string, v any) error {
	if err, ok := v.(error); ok {
		return fmt.Errorf("%s: recovered panic: %w: %w", stage, err, ErrInternal)
	}
	return fmt.Errorf("%s: recovered panic: %v: %w", stage, v, ErrInternal)
}
