package core

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"fdx/internal/dataset"
	"fdx/internal/linalg"
)

func TestTransformDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 5+rng.Intn(40), 2+rng.Intn(6)
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, k)
			for j := range rows[i] {
				rows[i][j] = rng.Intn(4)
			}
		}
		names := make([]string, k)
		for j := range names {
			names[j] = "a" + strconv.Itoa(j)
		}
		rel := relFromCodes(rows, names...)
		seq := Transform(rel, TransformOptions{Seed: seed, Workers: 1})
		par := Transform(rel, TransformOptions{Seed: seed, Workers: 4})
		return linalg.MaxAbsDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDiscoverSurvivesPathologicalColumns(t *testing.T) {
	// Failure injection: constant column, all-distinct key, all-missing
	// column, and a column that equals another exactly. Discovery must not
	// error and must not emit FDs determined by the all-missing column.
	rel := dataset.New("t", "const", "key", "gone", "a", "acopy")
	for i := 0; i < 300; i++ {
		a := strconv.Itoa(i % 7)
		rel.AppendRow([]string{"same", strconv.Itoa(i), "", a, a})
	}
	m, err := Discover(rel, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range m.FDs {
		for _, l := range fd.LHS {
			if l == 2 {
				t.Errorf("all-missing column used as determinant: %v", fd)
			}
		}
		if fd.RHS == 2 {
			t.Errorf("all-missing column determined: %v", fd)
		}
	}
	// The duplicated pair must be linked.
	edges := edgeSet(m.FDs)
	if !edges[[2]int{3, 4}] && !edges[[2]int{4, 3}] {
		t.Errorf("duplicate columns not linked: %s", m.FormatFDs())
	}
}

func TestDiscoverTwoRowRelation(t *testing.T) {
	rel := relFromCodes([][]int{{0, 0}, {1, 1}}, "a", "b")
	if _, err := Discover(rel, Options{}); err != nil {
		t.Fatalf("two-row relation: %v", err)
	}
}

func TestDiscoverManyColumnsSmoke(t *testing.T) {
	// 60 columns exercises the wide path (multi-word attrsets, ordering on
	// a larger graph).
	rng := rand.New(rand.NewSource(14))
	k := 60
	rows := make([][]int, 300)
	for i := range rows {
		rows[i] = make([]int, k)
		for j := 0; j < k; j += 2 {
			v := rng.Intn(6)
			rows[i][j] = v
			rows[i][j+1] = (v * 7) % 6 // pairwise FDs along the schema
		}
	}
	names := make([]string, k)
	for j := range names {
		names[j] = "c" + strconv.Itoa(j)
	}
	rel := relFromCodes(rows, names...)
	m, err := Discover(rel, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FDs) < k/4 {
		t.Errorf("wide relation found only %d FDs", len(m.FDs))
	}
}
