// Package core implements the FDX pipeline of the paper: the tuple-pair
// data transformation (Alg. 2), sparse inverse-covariance structure
// learning with the UDUᵀ factorization (Alg. 1, §4.2), and FD generation
// from the autoregression matrix (Alg. 3).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// FD is a functional dependency X → Y over attribute indices of a relation.
type FD struct {
	// LHS holds the determinant attribute indices, sorted ascending.
	LHS []int
	// RHS is the determined attribute index.
	RHS int
	// Score is a method-specific confidence (for FDX, the largest |B|
	// coefficient on the LHS).
	Score float64
}

// Edges returns the (lhs, rhs) attribute pairs the FD contributes; the
// paper's precision/recall is computed over these edges.
func (fd FD) Edges() [][2]int {
	out := make([][2]int, 0, len(fd.LHS))
	for _, x := range fd.LHS {
		out = append(out, [2]int{x, fd.RHS})
	}
	return out
}

// Format renders the FD with attribute names, e.g. "City,State -> Zip".
func (fd FD) Format(names []string) string {
	lhs := make([]string, len(fd.LHS))
	for i, x := range fd.LHS {
		lhs[i] = names[x]
	}
	return fmt.Sprintf("%s -> %s", strings.Join(lhs, ","), names[fd.RHS])
}

// String renders the FD with positional attribute labels.
func (fd FD) String() string {
	lhs := make([]string, len(fd.LHS))
	for i, x := range fd.LHS {
		lhs[i] = fmt.Sprintf("A%d", x)
	}
	return fmt.Sprintf("%s -> A%d", strings.Join(lhs, ","), fd.RHS)
}

// Normalize sorts the LHS and removes duplicates and any copy of the RHS
// (making the FD non-trivial).
func (fd *FD) Normalize() {
	sort.Ints(fd.LHS)
	out := fd.LHS[:0]
	var prev int
	for i, x := range fd.LHS {
		if x == fd.RHS {
			continue
		}
		if i > 0 && x == prev && len(out) > 0 {
			continue
		}
		out = append(out, x)
		prev = x
	}
	fd.LHS = out
}

// SortFDs orders FDs by RHS then LHS for stable output.
func SortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].RHS != fds[j].RHS {
			return fds[i].RHS < fds[j].RHS
		}
		a, b := fds[i].LHS, fds[j].LHS
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
