package core

import (
	"context"
	"errors"
	"math"
	"strconv"
	"testing"
	"time"

	"fdx/internal/dataset"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

// fdRelation builds a relation with a strong a→b dependency plus a noise
// column — enough signal that the healthy pipeline finds structure.
func fdRelation(n int) *dataset.Relation {
	rows := make([][]int, n)
	for i := range rows {
		a := i % 5
		rows[i] = []int{a, a * 2, i % 3}
	}
	return relFromCodes(rows, "a", "b", "c")
}

func checkValidModel(t *testing.T, m *Model, k int) {
	t.Helper()
	if m == nil {
		t.Fatal("nil model")
	}
	if r, c := m.B.Dims(); r != k || c != k {
		t.Fatalf("B is %dx%d, want %dx%d", r, c, k, k)
	}
	if len(m.Order) != k || !m.Order.IsValid() {
		t.Fatalf("invalid order %v", m.Order)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if math.IsNaN(m.B.At(i, j)) || math.IsInf(m.B.At(i, j), 0) {
				t.Fatalf("B[%d,%d] is not finite", i, j)
			}
		}
	}
}

func TestFaultCovarianceNaNIsSanitized(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.CovarianceNaN, faults.Config{Times: 1})
	m, err := Discover(fdRelation(60), Options{})
	if err != nil {
		t.Fatalf("Discover with poisoned covariance failed: %v", err)
	}
	checkValidModel(t, m, 3)
	if got := m.Diagnostics.SanitizedColumns; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("SanitizedColumns = %v, want [0 2]", got)
	}
	if !m.Diagnostics.Degraded() {
		t.Error("sanitized run not reported as degraded")
	}
}

func TestCovarianceNaNDirectSanitization(t *testing.T) {
	// No fault injection: hand the pipeline a covariance with NaN and Inf
	// entries directly.
	s := linalg.NewDenseData(3, 3, []float64{
		1, 0.5, math.NaN(),
		0.5, math.Inf(1), 0.1,
		math.NaN(), 0.1, 1,
	})
	m, err := DiscoverFromCovariance(s, []string{"a", "b", "c"}, Options{})
	if err != nil {
		t.Fatalf("DiscoverFromCovariance: %v", err)
	}
	checkValidModel(t, m, 3)
	if got := m.Diagnostics.SanitizedColumns; len(got) != 3 {
		t.Errorf("SanitizedColumns = %v, want all three", got)
	}
}

func TestFaultGlassoNonConvergenceDegrades(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.GlassoNoConverge, faults.Config{})
	m, err := Discover(fdRelation(60), Options{})
	if err != nil {
		t.Fatalf("Discover under forced non-convergence failed: %v", err)
	}
	checkValidModel(t, m, 3)
	if m.Diagnostics.GlassoConverged {
		t.Error("Diagnostics.GlassoConverged = true under forced non-convergence")
	}
	if len(m.Diagnostics.Fallbacks) != len(fallbackEpsilons) {
		t.Errorf("Fallbacks = %v, want one per ladder rung", m.Diagnostics.Fallbacks)
	}
	for i, f := range m.Diagnostics.Fallbacks {
		if f.Stage != "glasso" || f.Epsilon != fallbackEpsilons[i] {
			t.Errorf("fallback %d = %+v, want glasso rung ε=%g", i, f, fallbackEpsilons[i])
		}
	}
	if m.Diagnostics.GlassoSweeps == 0 {
		t.Error("GlassoSweeps not recorded")
	}
}

func TestFaultGlassoNonConvergenceStrict(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.GlassoNoConverge, faults.Config{})
	_, err := Discover(fdRelation(60), Options{RequireConvergence: true})
	if !errors.Is(err, fdxerr.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestFaultNonPositivePivotRecoversViaLadder(t *testing.T) {
	defer faults.Reset()
	// Two fires: the first UDU attempt and its nearest-SPD retry both fail,
	// pushing the pipeline onto the ladder; the first rung then succeeds.
	faults.Arm(faults.NonPositivePivot, faults.Config{Times: 2})
	m, err := Discover(fdRelation(60), Options{})
	if err != nil {
		t.Fatalf("Discover with transient pivot failure failed: %v", err)
	}
	checkValidModel(t, m, 3)
	found := false
	for _, f := range m.Diagnostics.Fallbacks {
		if f.Stage == "factorize" && f.Epsilon == fallbackEpsilons[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("Fallbacks = %+v, want a factorize rung at ε=%g", m.Diagnostics.Fallbacks, fallbackEpsilons[0])
	}
}

func TestFaultNonPositivePivotExhaustsLadder(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.NonPositivePivot, faults.Config{})
	_, err := Discover(fdRelation(60), Options{})
	if !errors.Is(err, fdxerr.ErrNonPositivePivot) {
		t.Fatalf("err = %v, want ErrNonPositivePivot", err)
	}
	if !errors.Is(err, linalg.ErrNotPositiveDefinite) {
		t.Errorf("err = %v should also match linalg.ErrNotPositiveDefinite", err)
	}
}

func TestFaultSlowTransformHitsDeadline(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.SlowStage, faults.Config{Delay: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DiscoverContext(ctx, fdRelation(60), Options{})
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, fdxerr.ErrCancelled) {
		t.Fatalf("err = %v, want DeadlineExceeded and ErrCancelled", err)
	}
	// "Promptly": a few slow-stage visits at most, not the whole pipeline.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestDiscoverContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DiscoverContext(ctx, fdRelation(20), Options{})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, fdxerr.ErrCancelled) {
		t.Fatalf("err = %v, want Canceled and ErrCancelled", err)
	}
}

func TestDiscoverContextCancelMidOrderSearch(t *testing.T) {
	// The sparsest-permutation search checks the context per candidate.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := stats_identityLike(6)
	_, err := DiscoverFromCovarianceContext(ctx, s, []string{"a", "b", "c", "d", "e", "f"}, Options{OrderCandidates: 50})
	if !errors.Is(err, fdxerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// stats_identityLike builds a well-conditioned covariance with light
// off-diagonal structure.
func stats_identityLike(k int) *linalg.Dense {
	s := linalg.NewDense(k, k)
	for i := 0; i < k; i++ {
		s.Set(i, i, 1)
		if i+1 < k {
			s.Set(i, i+1, 0.3)
			s.Set(i+1, i, 0.3)
		}
	}
	return s
}

func TestFaultDiagnosticsHealthyRun(t *testing.T) {
	m, err := Discover(fdRelation(60), Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if m.Diagnostics.Degraded() {
		t.Errorf("healthy run reported degraded: %+v", m.Diagnostics)
	}
	if !m.Diagnostics.GlassoConverged || m.Diagnostics.GlassoSweeps == 0 {
		t.Errorf("healthy diagnostics = %+v", m.Diagnostics)
	}
}

func TestValidateRelation(t *testing.T) {
	if err := ValidateRelation(nil); !errors.Is(err, fdxerr.ErrBadInput) {
		t.Errorf("nil relation: err = %v, want ErrBadInput", err)
	}
	dup := dataset.New("t", "a", "b", "a")
	if err := ValidateRelation(dup); !errors.Is(err, fdxerr.ErrBadInput) {
		t.Errorf("duplicate names: err = %v, want ErrBadInput", err)
	}
	ok := relFromCodes([][]int{{1, 2}, {3, 4}}, "a", "b")
	if err := ValidateRelation(ok); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
}

func TestDiscoverDuplicateAttributeNames(t *testing.T) {
	rel := dataset.New("t", "a", "a")
	rel.AppendRow([]string{"1", "2"})
	rel.AppendRow([]string{"3", "4"})
	_, err := Discover(rel, Options{})
	if !errors.Is(err, fdxerr.ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestAccumulatorAddBadBatches(t *testing.T) {
	acc := NewAccumulator([]string{"a", "b"}, Options{})
	cases := []*dataset.Relation{
		nil,
		relFromCodes([][]int{{1, 2, 3}, {4, 5, 6}}, "a", "b", "c"),
		relFromCodes([][]int{{1, 2}, {3, 4}}, "a", "x"),
		relFromCodes([][]int{{1, 2}}, "a", "b"),
	}
	for i, rel := range cases {
		if err := acc.Add(rel); !errors.Is(err, fdxerr.ErrBadInput) {
			t.Errorf("case %d: err = %v, want ErrBadInput", i, err)
		}
	}
	if acc.Rows() != 0 || acc.Batches() != 0 {
		t.Errorf("rejected batches were absorbed: rows=%d batches=%d", acc.Rows(), acc.Batches())
	}
}

func TestFaultTransformContextDrainsWorkers(t *testing.T) {
	// Cancelling mid-transform must not deadlock the attribute feeder even
	// with more attributes than workers.
	defer faults.Reset()
	faults.Arm(faults.SlowStage, faults.Config{Delay: 10 * time.Millisecond})
	names := make([]string, 12)
	rows := make([][]int, 40)
	for j := range names {
		names[j] = "a" + strconv.Itoa(j)
	}
	for i := range rows {
		rows[i] = make([]int, len(names))
		for j := range rows[i] {
			rows[i][j] = (i * (j + 1)) % 7
		}
	}
	rel := relFromCodes(rows, names...)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := TransformContext(ctx, rel, TransformOptions{Workers: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, fdxerr.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("TransformContext did not return after cancellation")
	}
}
