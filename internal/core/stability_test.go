package core

import (
	"math/rand"
	"testing"
)

func TestStabilitySelectionKeepsTrueEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rel := makeFDRelation(rng, 1200, 0.02)
	fds, freqs, err := StabilitySelection(rel, Options{}, StabilityOptions{Runs: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	edges := edgeSet(fds)
	und := func(a, b int) bool { return edges[[2]int{a, b}] || edges[[2]int{b, a}] }
	if !und(0, 1) {
		t.Errorf("stable a—b edge lost: %v", fds)
	}
	if !und(2, 3) {
		t.Errorf("stable c—d edge lost: %v", fds)
	}
	// Frequencies sorted descending and bounded.
	for i, f := range freqs {
		if f.Frequency < 0 || f.Frequency > 1 {
			t.Fatalf("frequency out of range: %v", f)
		}
		if i > 0 && freqs[i-1].Frequency < f.Frequency {
			t.Fatal("frequencies not sorted")
		}
	}
}

func TestStabilitySelectionFiltersUnstableEdges(t *testing.T) {
	// With a very high frequency cut-off, marginal edges disappear while
	// the deterministic one (a→b) survives.
	rng := rand.New(rand.NewSource(11))
	rel := makeFDRelation(rng, 1000, 0.05)
	strict, _, err := StabilitySelection(rel, Options{}, StabilityOptions{Runs: 8, MinFrequency: 0.99, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	loose, _, err := StabilitySelection(rel, Options{}, StabilityOptions{Runs: 8, MinFrequency: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(edgeSet(strict)) > len(edgeSet(loose)) {
		t.Errorf("stricter cut-off kept more edges: %d vs %d", len(edgeSet(strict)), len(edgeSet(loose)))
	}
	edges := edgeSet(strict)
	if !edges[[2]int{0, 1}] && !edges[[2]int{1, 0}] {
		t.Errorf("deterministic edge failed 0.99 stability: %v", strict)
	}
}

func TestOrderCandidatesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rel := makeFDRelation(rng, 800, 0)
	base, err := Discover(rel, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	searched, err := Discover(rel, Options{Seed: 12, OrderCandidates: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The searched model may only have at most as many edges as the base
	// (it minimizes edge count over candidate orders).
	countEdgesOf := func(fds []FD) int {
		n := 0
		for _, fd := range fds {
			n += len(fd.LHS)
		}
		return n
	}
	if countEdgesOf(searched.FDs) > countEdgesOf(base.FDs) {
		t.Errorf("order search increased edges: %d > %d",
			countEdgesOf(searched.FDs), countEdgesOf(base.FDs))
	}
	if !searched.Order.IsValid() {
		t.Error("searched order invalid")
	}
}
