package core

import (
	"context"

	"fdx/internal/dataset"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
)

// Accumulator maintains the sufficient statistics of the FDX pair model
// across appended batches of tuples, so dependencies can be re-derived
// after every batch without retransforming history — the dynamic-data
// direction the paper's related work (DynFD) motivates.
//
// Each batch is transformed on its own (Alg. 2 within the batch) and its
// per-stratum first and second moments are folded into running sums; the
// per-stratum covariances are then pooled exactly as in batch discovery.
// Pairs never span batches, so the estimate is an approximation of the
// full recompute that converges as batches grow; Discover on the
// concatenation remains the reference semantics.
type Accumulator struct {
	names []string
	opts  Options

	// Per stratum (= per attribute): observation count, per-column sums,
	// and the sum of outer products.
	count []int
	sums  [][]float64
	outer []*linalg.Dense

	rows    int
	batches int
}

// NewAccumulator creates an accumulator for relations with the given
// attribute names.
func NewAccumulator(attrNames []string, opts Options) *Accumulator {
	k := len(attrNames)
	a := &Accumulator{
		names: append([]string(nil), attrNames...),
		opts:  opts,
		count: make([]int, k),
		sums:  make([][]float64, k),
		outer: make([]*linalg.Dense, k),
	}
	for s := 0; s < k; s++ {
		a.sums[s] = make([]float64, k)
		a.outer[s] = linalg.NewDense(k, k)
	}
	return a
}

// Rows returns the total number of tuples absorbed.
func (a *Accumulator) Rows() int { return a.rows }

// Batches returns the number of Add calls absorbed.
func (a *Accumulator) Batches() int { return a.batches }

// Add transforms one batch of tuples and folds its statistics in. The
// batch must have the accumulator's schema (same attribute names, in
// order) and at least two rows (a single row forms no pairs).
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path over the
// mostly-zero pair-transform samples.)
func (a *Accumulator) Add(rel *dataset.Relation) error {
	if rel == nil {
		return fdxerr.BadInput("core: nil batch")
	}
	k := len(a.names)
	if rel.NumCols() != k {
		return fdxerr.BadInput("core: batch has %d attributes, accumulator has %d", rel.NumCols(), k)
	}
	for i, n := range rel.AttrNames() {
		if n != a.names[i] {
			return fdxerr.BadInput("core: batch attribute %d is %q, want %q", i, n, a.names[i])
		}
	}
	n := rel.NumRows()
	if n < 2 {
		return fdxerr.BadInput("core: batch needs at least 2 rows, got %d", n)
	}
	topts := a.opts.Transform
	topts.Seed = a.opts.Seed + int64(a.batches)
	dt := Transform(rel, topts)
	// Fold per-stratum moments: stratum s is rows [s·n, (s+1)·n).
	for s := 0; s < k; s++ {
		cnt := a.count[s]
		sums := a.sums[s]
		out := a.outer[s]
		for i := 0; i < n; i++ {
			row := dt.Row(s*n + i)
			for p := 0; p < k; p++ {
				vp := row[p]
				if vp == 0 {
					continue
				}
				sums[p] += vp
				orow := out.Row(p)
				for q := 0; q < k; q++ {
					orow[q] += vp * row[q]
				}
			}
		}
		a.count[s] = cnt + n
	}
	a.rows += n
	a.batches++
	return nil
}

// Covariance returns the pooled per-stratum covariance estimate built from
// the absorbed batches.
// (fdx:numeric-kernel: a stratum's count is an integer held in float64;
// exactly zero means the stratum absorbed no rows and is skipped.)
func (a *Accumulator) Covariance() (*linalg.Dense, error) {
	k := len(a.names)
	if a.rows == 0 {
		return nil, fdxerr.BadInput("core: accumulator has no data")
	}
	acc := linalg.NewDense(k, k)
	for s := 0; s < k; s++ {
		n := float64(a.count[s])
		if n == 0 {
			continue
		}
		for p := 0; p < k; p++ {
			mp := a.sums[s][p] / n
			for q := 0; q < k; q++ {
				mq := a.sums[s][q] / n
				cov := a.outer[s].At(p, q)/n - mp*mq
				acc.Add(p, q, cov)
			}
		}
	}
	acc.Scale(1 / float64(k))
	acc.Symmetrize()
	return acc, nil
}

// Discover derives the current model from the accumulated statistics.
func (a *Accumulator) Discover() (*Model, error) {
	return a.DiscoverContext(context.Background())
}

// DiscoverContext is Discover with cancellation (see DiscoverContext at the
// package level for where the context is checked).
func (a *Accumulator) DiscoverContext(ctx context.Context) (*Model, error) {
	s, err := a.Covariance()
	if err != nil {
		return nil, err
	}
	return DiscoverFromCovarianceContext(ctx, s, a.names, a.opts)
}
