package core

import (
	"context"
	"sync"

	"fdx/internal/dataset"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
	"fdx/internal/obs"
	"fdx/internal/par"
)

// Accumulator maintains the sufficient statistics of the FDX pair model
// across appended batches of tuples, so dependencies can be re-derived
// after every batch without retransforming history — the dynamic-data
// direction the paper's related work (DynFD) motivates.
//
// Each batch is transformed on its own (Alg. 2 within the batch) and its
// per-stratum first and second moments are folded into running sums; the
// per-stratum covariances are then pooled exactly as in batch discovery.
// Pairs never span batches, so the estimate is an approximation of the
// full recompute that converges as batches grow; Discover on the
// concatenation remains the reference semantics.
type Accumulator struct {
	names []string
	opts  Options

	// Per stratum (= per attribute): observation count, per-column sums,
	// and the sum of outer products.
	count []int
	sums  [][]float64
	outer []*linalg.Dense

	rows    int
	batches int
	// ranges is the accumulator's batch coverage: the sorted, disjoint,
	// coalesced set of half-open global-batch intervals it has absorbed.
	// A plain sequential stream covers [0, batches); a shard covers its
	// assigned span. Merge refuses overlapping coverage — the same global
	// batch folded twice would silently double its statistics.
	ranges []BatchRange
}

// BatchRange is a half-open interval [Lo, Hi) of global batch indices.
// The global index identifies a batch's position in the full stream's
// batch grid: it seeds the batch's transform (Options.Seed + index), so
// any shard assignment of the same grid produces bit-identical deltas.
type BatchRange struct {
	Lo, Hi int
}

// rangesCovered reports whether global batch g lies inside the coverage.
func rangesCovered(rs []BatchRange, g int) bool {
	for _, r := range rs {
		if g < r.Lo {
			return false
		}
		if g < r.Hi {
			return true
		}
	}
	return false
}

// rangesInsert adds the single batch [g, g+1) to the coverage, keeping it
// sorted, disjoint, and coalesced. The caller has already checked g is not
// covered.
func rangesInsert(rs []BatchRange, g int) []BatchRange {
	i := 0
	for i < len(rs) && rs[i].Hi < g {
		i++
	}
	// rs[i] is the first range with Hi >= g (if any).
	switch {
	case i < len(rs) && rs[i].Hi == g:
		rs[i].Hi = g + 1
		if i+1 < len(rs) && rs[i+1].Lo == g+1 {
			rs[i].Hi = rs[i+1].Hi
			rs = append(rs[:i+1], rs[i+2:]...)
		}
		return rs
	case i < len(rs) && rs[i].Lo == g+1:
		rs[i].Lo = g
		return rs
	default:
		rs = append(rs, BatchRange{})
		copy(rs[i+1:], rs[i:])
		rs[i] = BatchRange{Lo: g, Hi: g + 1}
		return rs
	}
}

// rangesUnion merges two coverages into canonical form, reporting whether
// they intersect anywhere.
func rangesUnion(a, b []BatchRange) (union []BatchRange, overlap bool) {
	merged := make([]BatchRange, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next BatchRange
		if j >= len(b) || (i < len(a) && a[i].Lo <= b[j].Lo) {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		if n := len(merged); n > 0 && next.Lo <= merged[n-1].Hi {
			if next.Lo < merged[n-1].Hi {
				overlap = true
			}
			if next.Hi > merged[n-1].Hi {
				merged[n-1].Hi = next.Hi
			}
			continue
		}
		merged = append(merged, next)
	}
	return merged, overlap
}

// rangesContainAll reports whether coverage a contains every batch of b.
func rangesContainAll(a, b []BatchRange) bool {
	i := 0
	for _, r := range b {
		for i < len(a) && a[i].Hi <= r.Lo {
			i++
		}
		if i >= len(a) || r.Lo < a[i].Lo || r.Hi > a[i].Hi {
			return false
		}
	}
	return true
}

// rangesBatches sums the coverage's batch count.
func rangesBatches(rs []BatchRange) int {
	n := 0
	for _, r := range rs {
		n += r.Hi - r.Lo
	}
	return n
}

// validRanges reports whether rs is canonical: sorted, disjoint,
// coalesced (no two adjacent intervals touch), with non-negative bounds.
func validRanges(rs []BatchRange) bool {
	prev := -1
	for _, r := range rs {
		if r.Lo < 0 || r.Hi <= r.Lo || r.Lo <= prev {
			return false
		}
		prev = r.Hi
	}
	return true
}

// NewAccumulator creates an accumulator for relations with the given
// attribute names.
func NewAccumulator(attrNames []string, opts Options) *Accumulator {
	k := len(attrNames)
	a := &Accumulator{
		names: append([]string(nil), attrNames...),
		opts:  opts,
		count: make([]int, k),
		sums:  make([][]float64, k),
		outer: make([]*linalg.Dense, k),
	}
	for s := 0; s < k; s++ {
		a.sums[s] = make([]float64, k)
		a.outer[s] = linalg.NewDense(k, k)
	}
	return a
}

// Rows returns the total number of tuples absorbed.
func (a *Accumulator) Rows() int { return a.rows }

// Batches returns the number of Add calls absorbed.
func (a *Accumulator) Batches() int { return a.batches }

// BatchDelta is the statistics contribution of one absorbed batch — the
// unit the durable-streaming WAL (internal/checkpoint) logs and replays.
// Applying a snapshot's state and then each logged delta in sequence
// reproduces the accumulator bit-for-bit, because Absorb folds the live
// batch through the identical ApplyDelta path.
type BatchDelta struct {
	// Seq is the accumulator's batch count after applying this delta
	// (1-based); deltas apply strictly in sequence.
	Seq int
	// Global is the batch's 0-based index in the full stream's batch grid.
	// It seeded the batch's transform (Options.Seed + Global) and extends
	// the accumulator's coverage; for an unsharded stream it is Seq-1.
	Global int
	// Rows is the batch's tuple count (added to every stratum's count).
	Rows int
	// Sums[s] is the batch's per-stratum sum of transformed sample rows.
	Sums [][]float64
	// Outer[s] is the batch's per-stratum sum of outer products.
	Outer []*linalg.Dense
}

// Add transforms one batch of tuples and folds its statistics in. The
// batch must have the accumulator's schema (same attribute names, in
// order) and at least two rows (a single row forms no pairs).
func (a *Accumulator) Add(rel *dataset.Relation) error {
	_, err := a.Absorb(rel)
	return err
}

// dtPool recycles the transformed-sample buffers of Absorb: transformInto
// writes every cell, so a recycled buffer needs no zeroing, and the
// streaming steady state allocates only each batch's delta.
var dtPool = sync.Pool{New: func() any { return &dtBuf{} }}

type dtBuf struct {
	data   []float64
	data32 []float32
}

func getDT(rows, cols int) (*dtBuf, *linalg.Dense) {
	db := dtPool.Get().(*dtBuf)
	if cap(db.data) < rows*cols {
		db.data = make([]float64, rows*cols)
	}
	db.data = db.data[:rows*cols]
	return db, linalg.NewDenseData(rows, cols, db.data)
}

// getDT32 is getDT for the compact float32 sample store
// (TransformOptions.Compact): same pooling, half the bytes per cell.
func getDT32(rows, cols int) (*dtBuf, *linalg.Dense32) {
	db := dtPool.Get().(*dtBuf)
	if cap(db.data32) < rows*cols {
		db.data32 = make([]float32, rows*cols)
	}
	db.data32 = db.data32[:rows*cols]
	return db, linalg.NewDense32Data(rows, cols, db.data32)
}

// Absorb is Add returning the batch's statistics delta, so durable callers
// can log exactly what was folded in and replay it after a crash. The
// batch lands at the next uncovered global index (NextGlobal), which for a
// plain sequential stream is simply the batch count.
func (a *Accumulator) Absorb(rel *dataset.Relation) (*BatchDelta, error) {
	return a.AbsorbAt(rel, a.NextGlobal())
}

// NextGlobal returns the global batch index Absorb would assign next: one
// past the accumulator's last covered batch (0 when empty). A shard
// worker resuming its span continues at its span's start plus its batch
// count, which is exactly this value once the first span batch lands.
func (a *Accumulator) NextGlobal() int {
	if len(a.ranges) == 0 {
		return 0
	}
	return a.ranges[len(a.ranges)-1].Hi
}

// Coverage returns a copy of the accumulator's batch coverage: the
// sorted, disjoint global-batch intervals it has absorbed.
func (a *Accumulator) Coverage() []BatchRange {
	return append([]BatchRange(nil), a.ranges...)
}

// AbsorbAt is Absorb at an explicit global batch index — the sharding
// entry point. The transform seed is Options.Seed + global, a function of
// the batch's position in the full stream's grid and nothing else, so the
// delta is bit-identical no matter which shard absorbs the batch. The
// index must not already be covered.
func (a *Accumulator) AbsorbAt(rel *dataset.Relation, global int) (*BatchDelta, error) {
	if rel == nil {
		return nil, fdxerr.BadInput("core: nil batch")
	}
	if global < 0 {
		return nil, fdxerr.BadInput("core: negative global batch index %d", global)
	}
	if rangesCovered(a.ranges, global) {
		return nil, fdxerr.BadInput("core: global batch %d is already absorbed", global)
	}
	k := len(a.names)
	if rel.NumCols() != k {
		return nil, fdxerr.BadInput("core: batch has %d attributes, accumulator has %d", rel.NumCols(), k)
	}
	for i, n := range rel.AttrNames() {
		if n != a.names[i] {
			return nil, fdxerr.BadInput("core: batch attribute %d is %q, want %q", i, n, a.names[i])
		}
	}
	n := rel.NumRows()
	if n < 2 {
		return nil, fdxerr.BadInput("core: batch needs at least 2 rows, got %d", n)
	}
	// Each batch is its own trace tree: the stream loop may absorb
	// thousands, so they stay roots rather than children of one giant span.
	bsp := a.opts.Obs.Start("absorb-batch")
	defer bsp.End()
	bsp.Attr("seq", a.batches+1)
	bsp.Attr("global", global)
	bsp.Attr("rows", n)
	h := a.opts.Obs.Under(bsp)
	topts := a.opts.Transform
	topts.defaults()
	topts.Obs = h
	topts.Seed = a.opts.Seed + int64(global)
	sn, _ := transformDims(rel, &topts)
	// The compact store halves the transform buffer; the accumulated
	// moments below stay float64 either way and are bit-identical (the
	// samples are exact 0/1 in both stores).
	var (
		db   *dtBuf
		dt   *linalg.Dense
		dt32 *linalg.Dense32
	)
	if topts.Compact {
		db, dt32 = getDT32(sn*k, k)
		if err := transformInto[float32](context.Background(), rel, topts, dt32); err != nil {
			return nil, err
		}
	} else {
		db, dt = getDT(sn*k, k)
		if err := transformInto[float64](context.Background(), rel, topts, dt); err != nil {
			return nil, err
		}
	}
	d := &BatchDelta{
		Seq:    a.batches + 1,
		Global: global,
		Rows:   n,
		Sums:   make([][]float64, k),
		Outer:  make([]*linalg.Dense, k),
	}
	asp := h.StartStage("accumulate")
	// Per-stratum moments of this batch alone: stratum s is transformed
	// rows [s·sn, (s+1)·sn). Strata are independent — stratum s owns
	// d.Sums[s] and d.Outer[s] — so they fan out across the worker pool;
	// results are identical at any worker count.
	workers := a.opts.Workers
	if workers > k {
		workers = k
	}
	pool := par.New(workers)
	pool.For(k, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			csp := asp.Child("absorb.chunk")
			csp.Attr("stratum", s)
			sums := make([]float64, k)
			out := linalg.NewDense(k, k)
			if dt32 != nil {
				accumulateStratum32(dt32, s, sn, sums, out)
			} else {
				accumulateStratum(dt, s, sn, sums, out)
			}
			d.Sums[s] = sums
			d.Outer[s] = out
			csp.End()
		}
	})
	pool.Close()
	dtPool.Put(db)
	asp.End()
	if err := a.ApplyDelta(d); err != nil {
		return nil, err
	}
	h.Count(obs.MRowsAbsorbed, uint64(n))
	h.Count(obs.MBatchesAbsorbed, 1)
	return d, nil
}

// accumulateStratum folds the sn sample rows of stratum s into the
// per-column sums and the outer-product sum. Only the upper triangle is
// accumulated — via fused Axpy updates over each row's tail — and then
// mirrored; the mirror is exact because element (q,p) would sum the very
// same products in the very same order as (p,q).
// Panics if out is not k×k or dt's rows cannot cover the stratum.
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path over the
// mostly-zero pair-transform samples.)
func accumulateStratum(dt *linalg.Dense, s, sn int, sums []float64, out *linalg.Dense) {
	k := len(sums)
	if r, c := out.Dims(); r != k || c != k {
		panic("core: accumulateStratum outer product is not k×k")
	}
	if rows, cols := dt.Dims(); cols != k || (s+1)*sn > rows {
		panic("core: accumulateStratum stratum exceeds transform rows")
	}
	for i := 0; i < sn; i++ {
		row := dt.Row(s*sn + i)
		for p := 0; p < k; p++ {
			vp := row[p]
			if vp == 0 {
				continue
			}
			sums[p] += vp
			linalg.Axpy(vp, row[p:], out.Row(p)[p:])
		}
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
}

// accumulateStratum32 is accumulateStratum over the compact float32
// sample store: every element widens to float64 before the fused Axpy32
// update, so on the 0/1 transform samples the accumulated moments are
// bit-identical to the float64 path's.
// Panics if out is not k×k or dt's rows cannot cover the stratum.
// (fdx:numeric-kernel: the exact-zero test is a sparsity fast path over the
// mostly-zero pair-transform samples.)
func accumulateStratum32(dt *linalg.Dense32, s, sn int, sums []float64, out *linalg.Dense) {
	k := len(sums)
	if r, c := out.Dims(); r != k || c != k {
		panic("core: accumulateStratum32 outer product is not k×k")
	}
	if rows, cols := dt.Dims(); cols != k || (s+1)*sn > rows {
		panic("core: accumulateStratum32 stratum exceeds transform rows")
	}
	for i := 0; i < sn; i++ {
		row := dt.Row(s*sn + i)
		for p := 0; p < k; p++ {
			vp := float64(row[p])
			if vp == 0 {
				continue
			}
			sums[p] += vp
			linalg.Axpy32(vp, row[p:], out.Row(p)[p:])
		}
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
}

// ApplyDelta folds a batch's statistics delta into the running sums — the
// WAL replay path. The delta must be the next one in sequence (Seq equal
// to Batches()+1) and match the accumulator's dimensionality.
func (a *Accumulator) ApplyDelta(d *BatchDelta) error {
	k := len(a.names)
	if d == nil {
		return fdxerr.BadInput("core: nil batch delta")
	}
	if d.Seq != a.batches+1 {
		return fdxerr.BadInput("core: batch delta seq %d, accumulator expects %d", d.Seq, a.batches+1)
	}
	if d.Global < 0 {
		return fdxerr.BadInput("core: batch delta has negative global index %d", d.Global)
	}
	if rangesCovered(a.ranges, d.Global) {
		return fdxerr.BadInput("core: batch delta global %d is already absorbed", d.Global)
	}
	if d.Rows < 2 {
		return fdxerr.BadInput("core: batch delta covers %d rows, need at least 2", d.Rows)
	}
	if len(d.Sums) != k || len(d.Outer) != k {
		return fdxerr.BadInput("core: batch delta has %d/%d strata, accumulator has %d", len(d.Sums), len(d.Outer), k)
	}
	for s := 0; s < k; s++ {
		if len(d.Sums[s]) != k {
			return fdxerr.BadInput("core: batch delta stratum %d has %d sums, want %d", s, len(d.Sums[s]), k)
		}
		if d.Outer[s] == nil {
			return fdxerr.BadInput("core: batch delta stratum %d has nil outer product", s)
		}
		if r, c := d.Outer[s].Dims(); r != k || c != k {
			return fdxerr.BadInput("core: batch delta stratum %d outer is %dx%d, want %dx%d", s, r, c, k, k)
		}
	}
	for s := 0; s < k; s++ {
		a.count[s] += d.Rows
		sums := a.sums[s]
		for p, v := range d.Sums[s] {
			sums[p] += v
		}
		dst := a.outer[s].Data()
		for i, v := range d.Outer[s].Data() {
			dst[i] += v
		}
	}
	a.rows += d.Rows
	a.batches++
	a.ranges = rangesInsert(a.ranges, d.Global)
	return nil
}

// AccumulatorState is the complete serializable state of an Accumulator —
// everything a snapshot must capture so a restored accumulator continues
// the stream bit-for-bit.
type AccumulatorState struct {
	Names   []string
	Rows    int
	Batches int
	Count   []int
	Sums    [][]float64
	Outer   []*linalg.Dense
	// Ranges is the batch coverage in canonical form. Nil means the state
	// predates sharding (a version-1 snapshot without a ranges section)
	// and defaults to the sequential coverage [0, Batches).
	Ranges []BatchRange
}

// State returns a deep copy of the accumulator's serializable state.
func (a *Accumulator) State() *AccumulatorState {
	k := len(a.names)
	st := &AccumulatorState{
		Names:   append([]string(nil), a.names...),
		Rows:    a.rows,
		Batches: a.batches,
		Count:   append([]int(nil), a.count...),
		Sums:    make([][]float64, k),
		Outer:   make([]*linalg.Dense, k),
		Ranges:  append([]BatchRange(nil), a.ranges...),
	}
	for s := 0; s < k; s++ {
		st.Sums[s] = append([]float64(nil), a.sums[s]...)
		st.Outer[s] = a.outer[s].Clone()
	}
	return st
}

// Options returns a copy of the accumulator's pipeline configuration.
func (a *Accumulator) Options() Options { return a.opts }

// NewAccumulatorFromState reconstructs an accumulator from a snapshot
// state, validating its internal consistency. The state is deep-copied.
func NewAccumulatorFromState(st *AccumulatorState, opts Options) (*Accumulator, error) {
	if st == nil {
		return nil, fdxerr.BadInput("core: nil accumulator state")
	}
	k := len(st.Names)
	if st.Rows < 0 || st.Batches < 0 || (st.Rows > 0 && st.Batches == 0) || (st.Batches > 0 && st.Rows < 2*st.Batches) {
		return nil, fdxerr.BadInput("core: state has impossible counters rows=%d batches=%d", st.Rows, st.Batches)
	}
	ranges := st.Ranges
	if ranges == nil && st.Batches > 0 {
		// Pre-sharding state: sequential coverage.
		ranges = []BatchRange{{Lo: 0, Hi: st.Batches}}
	}
	if !validRanges(ranges) {
		return nil, fdxerr.BadInput("core: state batch coverage %v is not sorted, disjoint, and coalesced", ranges)
	}
	if rangesBatches(ranges) != st.Batches {
		return nil, fdxerr.BadInput("core: state coverage spans %d batches, counters say %d", rangesBatches(ranges), st.Batches)
	}
	if len(st.Count) != k || len(st.Sums) != k || len(st.Outer) != k {
		return nil, fdxerr.BadInput("core: state has %d/%d/%d strata, want %d", len(st.Count), len(st.Sums), len(st.Outer), k)
	}
	a := NewAccumulator(st.Names, opts)
	for s := 0; s < k; s++ {
		if st.Count[s] < 0 || st.Count[s] > st.Rows {
			return nil, fdxerr.BadInput("core: state stratum %d count %d out of range [0, %d]", s, st.Count[s], st.Rows)
		}
		if len(st.Sums[s]) != k {
			return nil, fdxerr.BadInput("core: state stratum %d has %d sums, want %d", s, len(st.Sums[s]), k)
		}
		if st.Outer[s] == nil {
			return nil, fdxerr.BadInput("core: state stratum %d has nil outer product", s)
		}
		if r, c := st.Outer[s].Dims(); r != k || c != k {
			return nil, fdxerr.BadInput("core: state stratum %d outer is %dx%d, want %dx%d", s, r, c, k, k)
		}
		a.count[s] = st.Count[s]
		copy(a.sums[s], st.Sums[s])
		copy(a.outer[s].Data(), st.Outer[s].Data())
	}
	a.rows = st.Rows
	a.batches = st.Batches
	a.ranges = append([]BatchRange(nil), ranges...)
	return a, nil
}

// Merge folds another accumulator's statistics into this one — the scale-
// out path: shards absorb disjoint spans of the batch grid independently
// and merge into the full-stream state. Requirements (checked before any
// mutation, so a failed merge changes neither side):
//
//   - identical attribute schemas, else ErrShardMismatch;
//   - batch coverages must not partially overlap, else ErrShardMismatch
//     (the same batch folded twice would double its statistics).
//
// A donor whose coverage this accumulator already contains entirely is a
// duplicate delivery — Merge reports applied=false and changes nothing,
// making shard shipping idempotent. The transform emits only 0/1 samples,
// so every accumulated statistic is an integer-valued float64 and the
// fold is exact: the merged state is bit-identical to absorbing the same
// batches sequentially, in any merge order. Options fingerprints are the
// caller's to check (the fdx root layer does) — core cannot see the
// checkpoint fingerprint without an import cycle. The donor is never
// modified.
func (a *Accumulator) Merge(other *Accumulator) (applied bool, err error) {
	if other == nil {
		return false, fdxerr.BadInput("core: nil merge donor")
	}
	if len(other.names) != len(a.names) {
		return false, fdxerr.ShardMismatch("core: merge donor has %d attributes, accumulator has %d", len(other.names), len(a.names))
	}
	for i, n := range other.names {
		if n != a.names[i] {
			return false, fdxerr.ShardMismatch("core: merge donor attribute %d is %q, want %q", i, n, a.names[i])
		}
	}
	if rangesContainAll(a.ranges, other.ranges) {
		return false, nil // duplicate delivery; already folded in
	}
	union, overlap := rangesUnion(a.ranges, other.ranges)
	if overlap {
		return false, fdxerr.ShardMismatch("core: merge coverage %v overlaps %v", other.ranges, a.ranges)
	}
	k := len(a.names)
	for s := 0; s < k; s++ {
		a.count[s] += other.count[s]
		sums := a.sums[s]
		for p, v := range other.sums[s] {
			sums[p] += v
		}
		dst := a.outer[s].Data()
		for i, v := range other.outer[s].Data() {
			dst[i] += v
		}
	}
	a.rows += other.rows
	a.batches += other.batches
	a.ranges = union
	return true, nil
}

// Covariance returns the pooled per-stratum covariance estimate built from
// the absorbed batches.
func (a *Accumulator) Covariance() (*linalg.Dense, error) {
	return a.covariance(a.opts.Obs)
}

// covariance is Covariance reporting under the given telemetry context,
// so the stage span can nest under a caller's "discover" root.
// (fdx:numeric-kernel: a stratum's count is an integer held in float64;
// exactly zero means the stratum absorbed no rows and is skipped.)
func (a *Accumulator) covariance(h obs.Hooks) (*linalg.Dense, error) {
	k := len(a.names)
	if a.rows == 0 {
		return nil, fdxerr.BadInput("core: accumulator has no data")
	}
	sp := h.StartStage("covariance")
	defer sp.End()
	sp.Attr("dim", k)
	sp.Attr("batches", a.batches)
	acc := linalg.NewDense(k, k)
	for s := 0; s < k; s++ {
		n := float64(a.count[s])
		if n == 0 {
			continue
		}
		for p := 0; p < k; p++ {
			mp := a.sums[s][p] / n
			for q := 0; q < k; q++ {
				mq := a.sums[s][q] / n
				cov := a.outer[s].At(p, q)/n - mp*mq
				acc.Add(p, q, cov)
			}
		}
	}
	acc.Scale(1 / float64(k))
	acc.Symmetrize()
	return acc, nil
}

// Discover derives the current model from the accumulated statistics.
func (a *Accumulator) Discover() (*Model, error) {
	return a.DiscoverContext(context.Background())
}

// DiscoverContext is Discover with cancellation (see DiscoverContext at the
// package level for where the context is checked).
func (a *Accumulator) DiscoverContext(ctx context.Context) (*Model, error) {
	run := a.opts.Obs.Start("discover")
	defer run.End()
	h := a.opts.Obs.Under(run)
	h.Count(obs.MDiscoverRuns, 1)
	s, err := a.covariance(h)
	if err != nil {
		return nil, err
	}
	opts := a.opts
	opts.Obs = h
	m, err := DiscoverFromCovarianceContext(ctx, s, a.names, opts)
	if err != nil {
		return nil, err
	}
	run.End()
	m.Trace = run
	return m, nil
}
