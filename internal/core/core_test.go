package core

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"fdx/internal/dataset"
	"fdx/internal/linalg"
)

// relFromCodes builds a categorical relation from integer cell values.
func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("test", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = "v" + strconv.Itoa(v)
		}
		r.AppendRow(s)
	}
	return r
}

func TestFDNormalizeAndString(t *testing.T) {
	fd := FD{LHS: []int{3, 1, 3, 2}, RHS: 2}
	fd.Normalize()
	if len(fd.LHS) != 2 || fd.LHS[0] != 1 || fd.LHS[1] != 3 {
		t.Errorf("Normalize = %v", fd.LHS)
	}
	if fd.String() != "A1,A3 -> A2" {
		t.Errorf("String = %q", fd.String())
	}
	if got := fd.Format([]string{"w", "x", "y", "z"}); got != "x,z -> y" {
		t.Errorf("Format = %q", got)
	}
	edges := fd.Edges()
	if len(edges) != 2 || edges[0] != [2]int{1, 2} || edges[1] != [2]int{3, 2} {
		t.Errorf("Edges = %v", edges)
	}
}

func TestSortFDs(t *testing.T) {
	fds := []FD{{LHS: []int{2}, RHS: 1}, {LHS: []int{0}, RHS: 0}, {LHS: []int{1}, RHS: 1}}
	SortFDs(fds)
	if fds[0].RHS != 0 || fds[1].LHS[0] != 1 || fds[2].LHS[0] != 2 {
		t.Errorf("SortFDs = %v", fds)
	}
}

func TestTransformShapeAndBinary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(20), 1+rng.Intn(5)
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, k)
			for j := range rows[i] {
				rows[i][j] = rng.Intn(3)
			}
		}
		names := make([]string, k)
		for j := range names {
			names[j] = "a" + strconv.Itoa(j)
		}
		rel := relFromCodes(rows, names...)
		dt := Transform(rel, TransformOptions{Seed: seed})
		r, c := dt.Dims()
		if r != n*k || c != k {
			return false
		}
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				v := dt.At(i, j)
				if v != 0 && v != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransformConstantColumnAllOnes(t *testing.T) {
	rows := [][]int{{1, 0}, {1, 1}, {1, 2}}
	rel := relFromCodes(rows, "c", "x")
	dt := Transform(rel, TransformOptions{})
	for i := 0; i < dt.Rows(); i++ {
		if dt.At(i, 0) != 1 {
			t.Fatal("constant column must always match")
		}
	}
}

func TestTransformAllDistinctColumnAllZeros(t *testing.T) {
	rows := [][]int{{0}, {1}, {2}, {3}}
	rel := relFromCodes(rows, "key")
	dt := Transform(rel, TransformOptions{})
	for i := 0; i < dt.Rows(); i++ {
		if dt.At(i, 0) != 0 {
			t.Fatal("all-distinct column must never match")
		}
	}
}

func TestTransformMissingNeverMatches(t *testing.T) {
	rel := dataset.New("t", "a")
	rel.AppendRow([]string{""})
	rel.AppendRow([]string{""})
	dt := Transform(rel, TransformOptions{})
	for i := 0; i < dt.Rows(); i++ {
		if dt.At(i, 0) != 0 {
			t.Fatal("missing cells must not match")
		}
	}
}

func TestTransformMaxRows(t *testing.T) {
	rows := make([][]int, 100)
	for i := range rows {
		rows[i] = []int{i % 7}
	}
	rel := relFromCodes(rows, "a")
	dt := Transform(rel, TransformOptions{MaxRows: 10})
	if dt.Rows() != 10 {
		t.Errorf("MaxRows ignored: %d rows", dt.Rows())
	}
}

func TestTransformNumericTolerance(t *testing.T) {
	rel := dataset.New("t", "x")
	rel.Columns[0] = dataset.NewColumn("x", dataset.Numeric)
	for _, v := range []string{"1.00", "1.001", "5.0", "9.0"} {
		rel.Columns[0].AppendValue(v)
	}
	// Scale = 8; tolerance 0.01 → |1.00−1.001| = .001 ≤ .08 matches.
	dt := Transform(rel, TransformOptions{NumericTol: 0.01})
	ones := 0
	for i := 0; i < dt.Rows(); i++ {
		ones += int(dt.At(i, 0))
	}
	if ones == 0 {
		t.Error("approximate numeric equality found no matches")
	}
	// Effectively exact tolerance → no matches.
	dt = Transform(rel, TransformOptions{})
	for i := 0; i < dt.Rows(); i++ {
		if dt.At(i, 0) != 0 {
			t.Error("exact numeric mode matched unequal values")
		}
	}
}

func TestJaccard3Gram(t *testing.T) {
	if jaccard3gram("chicago", "chicago") != 1 {
		t.Error("identical strings should have similarity 1")
	}
	if jaccard3gram("ab", "ab") != 1 || jaccard3gram("ab", "cd") != 0 {
		t.Error("short-string fallback wrong")
	}
	s := jaccard3gram("chicago", "chicagoo")
	if s <= 0.5 || s >= 1 {
		t.Errorf("near-duplicate similarity = %v", s)
	}
	if jaccard3gram("Chicago", "chicago") != 1 {
		t.Error("similarity should be case-insensitive")
	}
}

func TestTransformTextSimilarity(t *testing.T) {
	rel := dataset.New("t", "s")
	rel.Columns[0] = dataset.NewColumn("s", dataset.Text)
	rel.Columns[0].AppendValue("3435 W Washington Ave")
	rel.Columns[0].AppendValue("3435 W Washington Av")
	dt := Transform(rel, TransformOptions{TextSimilarity: true, TextThreshold: 0.7})
	found := false
	for i := 0; i < dt.Rows(); i++ {
		if dt.At(i, 0) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("text similarity operator found no matches")
	}
}

// makeFDRelation builds a relation over 4 attributes where
// A0 → A1 (deterministic), A2 independent, {A0, A2} → A3 (deterministic).
func makeFDRelation(rng *rand.Rand, n int, noise float64) *dataset.Relation {
	// Random lookup tables, as in the paper's synthetic generator: each
	// LHS value combination maps to a uniformly random RHS value.
	bTab := make([]int, 8)
	for i := range bTab {
		bTab[i] = rng.Intn(8)
	}
	dTab := make([][]int, 8)
	for i := range dTab {
		dTab[i] = make([]int, 4)
		for j := range dTab[i] {
			dTab[i][j] = rng.Intn(12)
		}
	}
	rows := make([][]int, n)
	for i := range rows {
		a := rng.Intn(8)
		b := bTab[a]
		c := rng.Intn(4)
		d := dTab[a][c]
		rows[i] = []int{a, b, c, d}
	}
	// Flip noise.
	for i := range rows {
		for j := range rows[i] {
			if rng.Float64() < noise {
				rows[i][j] = rng.Intn(12)
			}
		}
	}
	return relFromCodes(rows, "a", "b", "c", "d")
}

func edgeSet(fds []FD) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, fd := range fds {
		for _, e := range fd.Edges() {
			out[e] = true
		}
	}
	return out
}

func TestDiscoverRecoversCleanFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := makeFDRelation(rng, 1500, 0)
	m, err := Discover(rel, Options{Seed: 1, Threshold: 0.2, RelFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	edges := edgeSet(m.FDs)
	// The dependency structure links {0,1} and {0,2,3}; direction depends
	// on the learned order, so check undirected recovery of the pairs.
	und := func(a, b int) bool { return edges[[2]int{a, b}] || edges[[2]int{b, a}] }
	if !und(0, 1) {
		t.Errorf("A0—A1 dependency not recovered; FDs:\n%s", m.FormatFDs())
	}
	if !und(3, 2) {
		t.Errorf("A3—A2 dependency not recovered; FDs:\n%s", m.FormatFDs())
	}
	// A3's second determinant (A0) carries a coefficient of ≈1/|X| under
	// the soft-logic relaxation and may fall below the conservative default
	// threshold — the paper's own benchmark recall sits near 0.5 for the
	// same reason — so it is intentionally not required here.
	// The independent attribute pair (1,2)/(0,2) must not be linked.
	if und(0, 2) || und(1, 2) {
		t.Errorf("spurious edge on independent attributes; FDs:\n%s", m.FormatFDs())
	}
}

func TestDiscoverRobustToNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := makeFDRelation(rng, 2000, 0.05)
	m, err := Discover(rel, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := edgeSet(m.FDs)
	und := func(a, b int) bool { return edges[[2]int{a, b}] || edges[[2]int{b, a}] }
	if !und(0, 1) {
		t.Errorf("A0—A1 lost under 5%% noise; FDs:\n%s", m.FormatFDs())
	}
}

func TestDiscoverEmptyRelation(t *testing.T) {
	rel := dataset.New("t")
	m, err := Discover(rel, Options{})
	if err != nil || len(m.FDs) != 0 {
		t.Errorf("empty relation: %v %v", m, err)
	}
}

func TestDiscoverSingleColumn(t *testing.T) {
	rel := relFromCodes([][]int{{1}, {2}, {1}}, "a")
	m, err := Discover(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FDs) != 0 {
		t.Errorf("single column cannot have FDs, got %v", m.FDs)
	}
}

func TestDiscoverFromSamplesDimMismatch(t *testing.T) {
	if _, err := DiscoverFromSamples(linalg.NewDense(4, 3), []string{"a", "b"}, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestGenerateFDsRespectsOrder(t *testing.T) {
	// B in permuted space with edge (0→2) under perm [2,0,1]: attribute 2
	// precedes 0 precedes 1. LHS entries must always precede RHS in the
	// permuted order.
	k := 3
	bP := linalg.NewDense(k, k)
	bP.Set(0, 2, 0.9) // position 0 (attr 2) determines position 2 (attr 1)
	perm := linalg.Permutation{2, 0, 1}
	fds := GenerateFDs(bP, perm, 0.5, 0.4)
	if len(fds) != 1 {
		t.Fatalf("fds = %v", fds)
	}
	if fds[0].RHS != 1 || len(fds[0].LHS) != 1 || fds[0].LHS[0] != 2 {
		t.Errorf("fd = %v, want 2 -> 1", fds[0])
	}
	if fds[0].Score != 0.9 {
		t.Errorf("score = %v", fds[0].Score)
	}
}

func TestGenerateFDsThreshold(t *testing.T) {
	bP := linalg.NewDense(2, 2)
	bP.Set(0, 1, 0.05)
	fds := GenerateFDs(bP, linalg.IdentityPerm(2), 0.15, 0.4)
	if len(fds) != 0 {
		t.Errorf("sub-threshold coefficient produced FD: %v", fds)
	}
}

func TestModelFormatAndHeatmap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := makeFDRelation(rng, 500, 0)
	m, err := Discover(rel, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Heatmap() == "" {
		t.Error("empty heatmap")
	}
	if len(m.FDs) > 0 && m.FormatFDs() == "" {
		t.Error("empty FD formatting")
	}
	if !m.Order.IsValid() {
		t.Error("invalid order permutation")
	}
}

func TestDiscoverOrderingVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := makeFDRelation(rng, 800, 0)
	for _, ord := range []string{"natural", "heuristic", "amd", "colamd", "metis", "nesdis"} {
		if _, err := Discover(rel, Options{Ordering: ord, Seed: 4}); err != nil {
			t.Errorf("ordering %s: %v", ord, err)
		}
	}
	if _, err := Discover(rel, Options{Ordering: "bogus"}); err == nil {
		t.Error("bogus ordering accepted")
	}
}

func TestDiscoverLambdaSweepRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := makeFDRelation(rng, 600, 0.01)
	prev := -1
	for _, lam := range []float64{0, 0.002, 0.01, 0.05} {
		m, err := Discover(rel, Options{Lambda: lam, Seed: 5})
		if err != nil {
			t.Fatalf("lambda %v: %v", lam, err)
		}
		_ = prev
		prev = len(m.FDs)
	}
}
