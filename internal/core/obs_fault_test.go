package core

import (
	"context"
	"testing"
	"time"

	"fdx/internal/faults"
	"fdx/internal/obs"
)

// TestFaultSlowStageVisibleInTransformSpan arms the slow-stage fault once
// — it fires in the transform's first attribute block — and checks the
// tracer attributes the delay to the transform span, not to a later stage.
// This is the telemetry-validates-faults loop: the trace must localize an
// injected stall to the stage that actually stalled.
func TestFaultSlowStageVisibleInTransformSpan(t *testing.T) {
	defer faults.Reset()
	const delay = 40 * time.Millisecond
	faults.Arm(faults.SlowStage, faults.Config{Times: 1, Delay: delay})

	tr := obs.New()
	opts := Options{Obs: obs.Hooks{Tracer: tr}}
	opts.Transform.Workers = 1
	if _, err := Discover(fdRelation(60), opts); err != nil {
		t.Fatalf("Discover: %v", err)
	}

	transforms := tr.Find("transform")
	if len(transforms) != 1 {
		t.Fatalf("found %d transform spans, want 1", len(transforms))
	}
	if d := transforms[0].Duration(); d < delay {
		t.Errorf("transform span lasted %v, want at least the injected %v", d, delay)
	}
	// The fault fired inside transform, so later stages must not absorb it.
	gens := tr.Find("generate")
	if len(gens) != 1 {
		t.Fatalf("found %d generate spans, want 1", len(gens))
	}
	if d := gens[0].Duration(); d >= delay {
		t.Errorf("generate span lasted %v; the injected delay leaked out of the transform span", d)
	}
}

// TestFaultSlowStageVisibleInSweepSpan arms the fault after the transform
// has already run, so the single injected stall lands in the first glasso
// sweep; the sweep's span must carry it.
func TestFaultSlowStageVisibleInSweepSpan(t *testing.T) {
	defer faults.Reset()
	const delay = 40 * time.Millisecond

	// Transform fault-free first, then discover from the samples with the
	// fault armed: the only faults.Sleep left on the path is the sweep's.
	rel := fdRelation(60)
	dt := Transform(rel, TransformOptions{})
	names := rel.AttrNames()

	tr := obs.New()
	faults.Arm(faults.SlowStage, faults.Config{Times: 1, Delay: delay})
	opts := Options{Obs: obs.Hooks{Tracer: tr}}
	opts.Transform.Workers = 1
	if _, err := DiscoverFromSamplesContext(context.Background(), dt, names, opts); err != nil {
		t.Fatalf("DiscoverFromSamples: %v", err)
	}

	sweeps := tr.Find("glasso-sweep")
	if len(sweeps) == 0 {
		t.Fatal("no glasso-sweep spans recorded")
	}
	if d := sweeps[0].Duration(); d < delay {
		t.Errorf("first glasso-sweep span lasted %v, want at least the injected %v", d, delay)
	}
	var rest time.Duration
	for _, sp := range sweeps[1:] {
		rest += sp.Duration()
	}
	if rest >= delay {
		t.Errorf("later sweeps lasted %v combined; the injected delay should be confined to the first", rest)
	}
}
