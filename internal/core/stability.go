package core

import (
	"math/rand"
	"sort"

	"fdx/internal/dataset"
)

// StabilityOptions configures stability selection for FD edges.
type StabilityOptions struct {
	// Runs is the number of resampled discovery runs (default 20).
	Runs int
	// MinFrequency is the fraction of runs an edge must appear in to be
	// kept (default 0.7).
	MinFrequency float64
	// SampleFraction is the fraction of tuples drawn (without
	// replacement) for each run (default 0.8).
	SampleFraction float64
	// Seed drives resampling.
	Seed int64
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *StabilityOptions) defaults() {
	if o.Runs == 0 {
		o.Runs = 20
	}
	if o.MinFrequency == 0 {
		o.MinFrequency = 0.7
	}
	if o.SampleFraction == 0 {
		o.SampleFraction = 0.8
	}
}

// EdgeFrequency is the stability of one dependency edge.
type EdgeFrequency struct {
	LHS, RHS  int
	Frequency float64
}

// StabilitySelection runs discovery on repeated subsamples of the relation
// and keeps the edges that recur in at least MinFrequency of the runs —
// a robustness wrapper in the spirit of Meinshausen & Bühlmann's stability
// selection for the lasso, which the structure-learning literature the
// paper builds on recommends for controlling false discoveries.
//
// It returns the stable FDs (edges regrouped per RHS, scored by their
// frequency) and the full per-edge frequency table.
func StabilitySelection(rel *dataset.Relation, opts Options, sopts StabilityOptions) ([]FD, []EdgeFrequency, error) {
	sopts.defaults()
	rng := rand.New(rand.NewSource(sopts.Seed))
	n := rel.NumRows()
	counts := map[[2]int]int{}
	for run := 0; run < sopts.Runs; run++ {
		sub := subsample(rel, rng, sopts.SampleFraction)
		o := opts
		o.Seed = sopts.Seed + int64(run+1)
		m, err := Discover(sub, o)
		if err != nil {
			return nil, nil, err
		}
		for _, fd := range m.FDs {
			for _, e := range fd.Edges() {
				counts[e]++
			}
		}
	}
	var freqs []EdgeFrequency
	for e, c := range counts {
		freqs = append(freqs, EdgeFrequency{
			LHS: e[0], RHS: e[1],
			Frequency: float64(c) / float64(sopts.Runs),
		})
	}
	sort.Slice(freqs, func(i, j int) bool {
		//fdx:lint-ignore floatcmp frequencies are count ratios c/Runs; the exact compare keeps the comparator transitive, which a tolerance would break
		if freqs[i].Frequency != freqs[j].Frequency {
			return freqs[i].Frequency > freqs[j].Frequency
		}
		if freqs[i].RHS != freqs[j].RHS {
			return freqs[i].RHS < freqs[j].RHS
		}
		return freqs[i].LHS < freqs[j].LHS
	})

	// Regroup stable edges into per-RHS FDs.
	byRHS := map[int][]int{}
	score := map[int]float64{}
	for _, f := range freqs {
		if f.Frequency >= sopts.MinFrequency {
			byRHS[f.RHS] = append(byRHS[f.RHS], f.LHS)
			if f.Frequency > score[f.RHS] {
				score[f.RHS] = f.Frequency
			}
		}
	}
	var fds []FD
	for rhs, lhs := range byRHS {
		fd := FD{LHS: lhs, RHS: rhs, Score: score[rhs]}
		fd.Normalize()
		if len(fd.LHS) > 0 {
			fds = append(fds, fd)
		}
	}
	SortFDs(fds)
	_ = n
	return fds, freqs, nil
}

// subsample draws a fraction of the rows without replacement.
func subsample(rel *dataset.Relation, rng *rand.Rand, fraction float64) *dataset.Relation {
	n := rel.NumRows()
	take := int(float64(n) * fraction)
	if take < 2 {
		take = n
	}
	idx := rng.Perm(n)[:take]
	sort.Ints(idx)
	out := dataset.New(rel.Name, rel.AttrNames()...)
	for j, c := range out.Columns {
		c.Type = rel.Columns[j].Type
	}
	for _, i := range idx {
		out.AppendRow(rel.Row(i))
	}
	return out
}
