package core

import (
	"math/rand"
	"testing"

	"fdx/internal/dataset"
	"fdx/internal/linalg"
	"fdx/internal/stats"
)

func TestAccumulatorSchemaChecks(t *testing.T) {
	a := NewAccumulator([]string{"a", "b"}, Options{})
	wrong := dataset.New("t", "a")
	wrong.AppendRow([]string{"1"})
	wrong.AppendRow([]string{"2"})
	if err := a.Add(wrong); err == nil {
		t.Error("wrong column count accepted")
	}
	renamed := dataset.New("t", "a", "c")
	renamed.AppendRow([]string{"1", "2"})
	renamed.AppendRow([]string{"1", "2"})
	if err := a.Add(renamed); err == nil {
		t.Error("renamed attribute accepted")
	}
	tiny := dataset.New("t", "a", "b")
	tiny.AppendRow([]string{"1", "2"})
	if err := a.Add(tiny); err == nil {
		t.Error("single-row batch accepted")
	}
	if _, err := a.Discover(); err == nil {
		t.Error("empty accumulator discover should fail")
	}
}

func TestAccumulatorSingleBatchMatchesBatchCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := makeFDRelation(rng, 400, 0)
	a := NewAccumulator(rel.AttrNames(), Options{Seed: 7})
	if err := a.Add(rel); err != nil {
		t.Fatal(err)
	}
	got, err := a.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	dt := Transform(rel, TransformOptions{Seed: 7})
	want := stats.StratifiedCovariance(dt, rel.NumCols())
	if d := linalg.MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("single-batch covariance differs from batch estimator by %v", d)
	}
}

func TestAccumulatorIncrementalDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewAccumulator([]string{"a", "b", "c", "d"}, Options{Seed: 6})
	// Stream five batches from the same distribution.
	for batch := 0; batch < 5; batch++ {
		rel := makeFDRelation(rng, 300, 0.01)
		if err := a.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	if a.Rows() != 1500 || a.Batches() != 5 {
		t.Errorf("rows=%d batches=%d", a.Rows(), a.Batches())
	}
	m, err := a.Discover()
	if err != nil {
		t.Fatal(err)
	}
	edges := edgeSet(m.FDs)
	und := func(x, y int) bool { return edges[[2]int{x, y}] || edges[[2]int{y, x}] }
	if !und(0, 1) {
		t.Errorf("streamed discovery lost a—b: %s", m.FormatFDs())
	}
	if !und(3, 2) {
		t.Errorf("streamed discovery lost c—d: %s", m.FormatFDs())
	}
}

func TestAccumulatorMatchesFullRecomputeApproximately(t *testing.T) {
	// The incremental estimate (pairs within batches) should stay close to
	// the full recompute on the concatenation.
	rng := rand.New(rand.NewSource(7))
	full := dataset.New("t", "a", "b", "c", "d")
	a := NewAccumulator(full.AttrNames(), Options{Seed: 8})
	for batch := 0; batch < 4; batch++ {
		rel := makeFDRelation(rng, 500, 0)
		for i := 0; i < rel.NumRows(); i++ {
			full.AppendRow(rel.Row(i))
		}
		if err := a.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := a.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	dt := Transform(full, TransformOptions{Seed: 8})
	batchCov := stats.StratifiedCovariance(dt, full.NumCols())
	// Same sign structure and magnitudes within a loose tolerance. The
	// batches draw fresh random FD lookup tables, so only coarse agreement
	// is expected on off-diagnonal strength.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if d := inc.At(i, j) - batchCov.At(i, j); d > 0.2 || d < -0.2 {
				t.Errorf("covariance (%d,%d): incremental %v vs full %v", i, j, inc.At(i, j), batchCov.At(i, j))
			}
		}
	}
}

// TestAccumulateStratumZeroAlloc pins the absorb inner loop at zero
// allocations per stratum: the kernel works entirely in caller-provided
// sums and outer-product buffers, so steady-state absorption costs only
// the per-batch delta bookkeeping.
func TestAccumulateStratumZeroAlloc(t *testing.T) {
	const k, sn = 8, 64
	dt := linalg.NewDense(k*sn, k)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < k*sn; i++ {
		row := dt.Row(i)
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = 1
			}
		}
	}
	sums := make([]float64, k)
	out := linalg.NewDense(k, k)
	allocs := testing.AllocsPerRun(10, func() {
		for i := range sums {
			sums[i] = 0
		}
		accumulateStratum(dt, 2, sn, sums, out)
	})
	if allocs != 0 {
		t.Fatalf("accumulateStratum allocates %.1f times per stratum, want 0", allocs)
	}
}
