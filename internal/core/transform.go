package core

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"fdx/internal/dataset"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/linalg"
	"fdx/internal/obs"
)

// TransformOptions configures the tuple-pair transformation (paper Alg. 2).
type TransformOptions struct {
	// Seed drives the initial row shuffle.
	Seed int64
	// MaxRows caps the number of input tuples used (0 = all). When the
	// input is larger, a uniform row sample is taken first; the paper
	// notes sampling as the remedy for the transform's self-join cost on
	// large instances (§5.4).
	MaxRows int
	// NumericTol is the relative tolerance for numeric approximate
	// equality, as a fraction of the column's value scale (default 1e-9,
	// i.e. effectively exact).
	NumericTol float64
	// TextSimilarity enables Jaccard 3-gram similarity ≥ TextThreshold as
	// the text difference operator; otherwise text compares exactly.
	TextSimilarity bool
	// TextThreshold is the Jaccard similarity above which two text values
	// are considered equal (default 0.9).
	TextThreshold float64
	// Workers sets the number of goroutines processing attribute blocks
	// (0 = GOMAXPROCS, 1 = sequential). Each attribute's sorted block is
	// independent, so the output is identical at any worker count.
	Workers int
	// Compact stores the transformed sample block in float32, halving the
	// memory footprint and traffic of the n·k × k sample matrix — the
	// lever that matters on wide schemas, where the sample block dwarfs
	// every other allocation. The transform emits only 0/1 indicator
	// cells, which float32 represents exactly, and every consumer widens
	// to float64 before accumulating (covariance sums and solves stay
	// float64), so results are bit-identical to the float64 store.
	Compact bool
	// Obs carries the optional telemetry sinks; inherited from the
	// pipeline options by core.Options.defaults. Never part of the
	// checkpoint fingerprint.
	Obs obs.Hooks
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *TransformOptions) defaults() {
	if o.NumericTol == 0 {
		o.NumericTol = 1e-9
	}
	if o.TextThreshold == 0 {
		o.TextThreshold = 0.9
	}
}

// Transform implements Algorithm 2: for every attribute, sort the (shuffled)
// relation by that attribute, pair each tuple with its successor under a
// circular shift, and emit one binary row per pair whose l-th entry
// indicates equality on attribute l. The output has n·k rows and k columns.
//
// Missing cells never match anything (including other missing cells): an
// unknown value gives no evidence that the pair agrees.
func Transform(rel *dataset.Relation, opts TransformOptions) *linalg.Dense {
	// A background context never expires, so the error return is dead here.
	dt, _ := TransformContext(context.Background(), rel, opts)
	return dt
}

// TransformContext is Transform with cancellation: workers poll the context
// between attribute blocks and every few thousand pair rows, and a wrapped
// ctx.Err() is returned promptly on expiry.
func TransformContext(ctx context.Context, rel *dataset.Relation, opts TransformOptions) (*linalg.Dense, error) {
	opts.defaults()
	n, k := transformDims(rel, &opts)
	if n == 0 || k == 0 {
		return linalg.NewDense(0, k), nil
	}
	out := linalg.NewDense(n*k, k)
	if err := transformInto[float64](ctx, rel, opts, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformContext32 is TransformContext with the float32 backing store of
// TransformOptions.Compact: same sample block, half the memory. The 0/1
// indicator cells are exact in float32, so a float64 widening of the
// result is bit-identical to TransformContext's output.
func TransformContext32(ctx context.Context, rel *dataset.Relation, opts TransformOptions) (*linalg.Dense32, error) {
	opts.defaults()
	n, k := transformDims(rel, &opts)
	if n == 0 || k == 0 {
		return linalg.NewDense32(0, k), nil
	}
	out := linalg.NewDense32(n*k, k)
	if err := transformInto[float32](ctx, rel, opts, out); err != nil {
		return nil, err
	}
	return out, nil
}

// transformDims returns the shape of the transform's sample block: the
// effective tuple count after MaxRows sampling and the attribute count.
// The output matrix is (rows·cols) × cols. opts must have defaults
// applied.
func transformDims(rel *dataset.Relation, opts *TransformOptions) (rows, cols int) {
	rows, cols = rel.NumRows(), rel.NumCols()
	if opts.MaxRows > 0 && rows > opts.MaxRows {
		rows = opts.MaxRows
	}
	return rows, cols
}

// colCtx is the per-attribute comparison context shared by the transform
// workers: the column, its numeric tolerance scale, and — for text
// columns under TextSimilarity — per-dictionary-code 3-gram sets built
// once up front, so the pair loop never allocates.
type colCtx struct {
	col   *dataset.Column
	scale float64
	grams *textGrams
}

// transformInto is the core of the pair transform, writing the sample
// block into the caller's preallocated out matrix (shape per
// transformDims; every cell is written, so recycled buffers need no
// zeroing). opts must have defaults applied. It is generic over the
// element type so the float64 and Compact float32 backing stores share
// one implementation — the emitted cells are the exact integers 0 and 1
// in either type, which is what makes the compact store lossless.
func transformInto[F float32 | float64](ctx context.Context, rel *dataset.Relation, opts TransformOptions, out interface{ Row(int) []F }) error {
	n := rel.NumRows()
	k := rel.NumCols()
	rng := rand.New(rand.NewSource(opts.Seed))

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	rng.Shuffle(n, func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	if opts.MaxRows > 0 && n > opts.MaxRows {
		rows = rows[:opts.MaxRows]
		n = opts.MaxRows
	}

	// Pre-compute the per-column comparison contexts: numeric scales for
	// approximate equality, 3-gram sets per distinct text value.
	ctxs := make([]colCtx, k)
	for j, col := range rel.Columns {
		// Building a text column's 3-gram sets scans every distinct value;
		// honor cancellation between columns.
		if err := ctx.Err(); err != nil {
			return fdxerr.Cancelled(err)
		}
		ctxs[j].col = col
		if col.Type == dataset.Numeric {
			ctxs[j].scale = numericScale(col, rows)
		}
		if col.Type == dataset.Text && opts.TextSimilarity {
			ctxs[j].grams = buildTextGrams(col)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		//fdx:lint-ignore detsource worker count only; chunking is fixed-order and results are count-invariant
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	tsp := opts.Obs.StartStage("transform")
	defer tsp.End()
	tsp.Attr("rows", n)
	tsp.Attr("attrs", k)
	tsp.Attr("workers", workers)
	var wg sync.WaitGroup
	attrCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One span per worker, on its own viewer track so parallel
			// workers fan out as lanes in the trace.
			wsp := tsp.Child("worker")
			wsp.SetTrack(w + 2)
			defer wsp.End()
			sorted := make([]int, n)
			for attr := range attrCh {
				// Cancelled: keep draining the channel so the feeder never
				// blocks, but stop doing work.
				if ctx.Err() != nil {
					continue
				}
				bsp := wsp.Child("block")
				bsp.Attr("attr", rel.Columns[attr].Name)
				faults.Sleep(faults.SlowStage)
				copy(sorted, rows)
				col := rel.Columns[attr]
				sort.SliceStable(sorted, func(a, b int) bool {
					return col.Code(sorted[a]) < col.Code(sorted[b])
				})
				base := attr * n
				for j := 0; j < n; j++ {
					if j&0xfff == 0 && ctx.Err() != nil {
						break
					}
					a := sorted[j]
					b := sorted[(j+1)%n]
					row := out.Row(base + j)
					for l := range ctxs {
						if cellsEqual(&ctxs[l], a, b, &opts) {
							row[l] = 1
						} else {
							row[l] = 0
						}
					}
				}
				bsp.End()
			}
		}(w)
	}
	for attr := 0; attr < k; attr++ {
		attrCh <- attr
	}
	close(attrCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fdxerr.Cancelled(err)
	}
	opts.Obs.Count(obs.MTransformPairs, uint64(n)*uint64(k))
	return nil
}

// numericScale returns a robust per-column value scale (max−min over the
// sampled rows) used for relative numeric tolerance.
// (fdx:numeric-kernel: max == min is the degenerate constant-column
// sentinel; any genuinely tiny range is still a valid scale.)
func numericScale(col *dataset.Column, rows []int) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, i := range rows {
		v := col.Float(i)
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if math.IsInf(min, 1) || max == min {
		return 1
	}
	return max - min
}

// cellsEqual is the per-type difference operator of §4.1: exact code
// equality for categorical data, tolerance-based equality for numeric data,
// optional q-gram similarity for text (against the precomputed per-code
// gram sets in cc).
func cellsEqual(cc *colCtx, a, b int, opts *TransformOptions) bool {
	col := cc.col
	ca, cb := col.Code(a), col.Code(b)
	if ca == dataset.Missing || cb == dataset.Missing {
		return false
	}
	if ca == cb {
		return true
	}
	switch col.Type {
	case dataset.Numeric:
		fa, fb := col.Float(a), col.Float(b)
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return false
		}
		return math.Abs(fa-fb) <= opts.NumericTol*cc.scale
	case dataset.Text:
		if cc.grams == nil {
			return false
		}
		return cc.grams.jaccard(ca, cb) >= opts.TextThreshold
	default:
		return false
	}
}

// textGrams caches, per dictionary code of one text column, the
// case-folded value and its 3-gram set (nil for values shorter than one
// gram). Built once per transform so the pair loop compares precomputed
// sets instead of re-deriving them per pair.
type textGrams struct {
	lower []string
	grams []map[string]bool
}

func buildTextGrams(col *dataset.Column) *textGrams {
	card := col.Cardinality()
	tg := &textGrams{lower: make([]string, card), grams: make([]map[string]bool, card)}
	for c := 0; c < card; c++ {
		s := strings.ToLower(col.DictValue(int32(c)))
		tg.lower[c] = s
		if len(s) >= 3 {
			tg.grams[c] = gramSet(s)
		}
	}
	return tg
}

// jaccard mirrors jaccard3gram over the precomputed sets of two
// dictionary codes: short values fall back to exact (case-folded)
// comparison.
func (tg *textGrams) jaccard(ca, cb int32) float64 {
	ga, gb := tg.grams[ca], tg.grams[cb]
	if ga == nil || gb == nil {
		if tg.lower[ca] == tg.lower[cb] {
			return 1
		}
		return 0
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// jaccard3gram returns the Jaccard similarity of the 3-gram sets of two
// strings (case-folded). Short strings fall back to exact comparison.
func jaccard3gram(a, b string) float64 {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if len(a) < 3 || len(b) < 3 {
		if a == b {
			return 1
		}
		return 0
	}
	ga := gramSet(a)
	gb := gramSet(b)
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func gramSet(s string) map[string]bool {
	out := make(map[string]bool, len(s))
	for i := 0; i+3 <= len(s); i++ {
		out[s[i:i+3]] = true
	}
	return out
}
