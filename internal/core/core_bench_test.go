package core

import (
	"math/rand"
	"testing"
)

func BenchmarkTransform1kx12(b *testing.B)  { benchTransform(b, 1000, 12) }
func BenchmarkTransform10kx12(b *testing.B) { benchTransform(b, 10000, 12) }
func BenchmarkTransform1kx48(b *testing.B)  { benchTransform(b, 1000, 48) }

func benchTransform(b *testing.B, rows, cols int) {
	rng := rand.New(rand.NewSource(1))
	data := make([][]int, rows)
	for i := range data {
		data[i] = make([]int, cols)
		for j := range data[i] {
			data[i][j] = rng.Intn(16)
		}
	}
	names := make([]string, cols)
	for j := range names {
		names[j] = "a"
	}
	rel := relFromCodes(data, names...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(rel, TransformOptions{Seed: 1})
	}
}

func BenchmarkDiscover1kx12(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rel := makeFDRelation(rng, 1000, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(rel, Options{Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
