package core

import (
	"math"

	"fdx/internal/linalg"
)

// Fallback records one degradation step the discovery pipeline took instead
// of failing.
type Fallback struct {
	// Stage names the stage whose failure triggered the fallback:
	// "glasso" (sparse precision estimation), "factorize" (the UDUᵀ
	// factorization), or "spd-repair" (the nearest-SPD diagonal shift
	// applied before retrying a failed factorization).
	Stage string
	// Epsilon is the diagonal shrinkage S + εI applied on the retry this
	// record announces; 0 for repairs that did not re-run the solver.
	Epsilon float64
	// Reason is the failure that forced the fallback.
	Reason string
}

// Diagnostics reports how a discovery run degraded — which fallbacks were
// taken, whether the Graphical Lasso converged, and which attributes had
// corrupt statistics quarantined. A fully healthy run has GlassoConverged
// true and every slice empty.
type Diagnostics struct {
	// GlassoSweeps is the number of outer sweeps of the accepted Graphical
	// Lasso solve.
	GlassoSweeps int
	// GlassoConverged reports whether that solve met its tolerance; false
	// means the estimates come from the best iterate after exhausting the
	// iteration budget on every rung of the fallback ladder. For a
	// screened (block-diagonal) solve, worst case wins: every block must
	// converge.
	GlassoConverged bool
	// GlassoBlocks is the number of connected components the covariance
	// screening pass split the accepted solve into (1 = screening found
	// nothing and the solve ran dense).
	GlassoBlocks int
	// Fallbacks lists the regularization fallbacks applied, in order.
	Fallbacks []Fallback
	// SanitizedColumns lists attribute indices whose covariance entries
	// were non-finite (NaN/±Inf) and were replaced before structure
	// learning; such attributes carry degraded (or no) dependency signal.
	SanitizedColumns []int
}

// Degraded reports whether the run deviated from the healthy path in any
// recorded way.
func (d *Diagnostics) Degraded() bool {
	return !d.GlassoConverged || len(d.Fallbacks) > 0 || len(d.SanitizedColumns) > 0
}

// sanitizeCovariance replaces non-finite entries of the covariance estimate
// in place — NaN off-diagonals become 0 (no evidence of dependence),
// non-finite diagonals become 1 (a unit-variance placeholder) — and returns
// the implicated column indices in ascending order (nil when every entry
// is finite and s is untouched). The caller owns s; DiscoverFromCovariance
// hands it a private clone of the user's matrix.
func sanitizeCovariance(s *linalg.Dense) []int {
	k, _ := s.Dims()
	implicated := make([]bool, k)
	dirty := false
	for i := 0; i < k; i++ {
		row := s.Row(i)
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				implicated[i] = true
				implicated[j] = true
				dirty = true
			}
		}
	}
	if !dirty {
		return nil
	}
	var cols []int
	for i := 0; i < k; i++ {
		if implicated[i] {
			cols = append(cols, i)
		}
		row := s.Row(i)
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if i == j {
					row[j] = 1
				} else {
					row[j] = 0
				}
			}
		}
	}
	return cols
}

// addDiag returns s + εI without modifying s — one rung of the
// regularization fallback ladder.
func addDiag(s *linalg.Dense, eps float64) *linalg.Dense {
	out := s.Clone()
	k, _ := out.Dims()
	for i := 0; i < k; i++ {
		out.Add(i, i, eps)
	}
	return out
}
