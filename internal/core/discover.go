package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"fdx/internal/dataset"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/glasso"
	"fdx/internal/linalg"
	"fdx/internal/obs"
	"fdx/internal/ordering"
	"fdx/internal/stats"
)

// Options configures the FDX discovery pipeline.
type Options struct {
	// Lambda is the Graphical Lasso sparsity penalty (paper Table 8 sweeps
	// {0, .002, …, .01}).
	Lambda float64
	// Threshold is the absolute floor on |B| coefficients for an edge to
	// enter an FD (default 0.05). It combines with RelFraction into the
	// per-column rule: keep coefficient b_ij iff
	//
	//	|b_ij| ≥ max(Threshold, RelFraction·max_i |b_ij|).
	//
	// The relative part adapts to each data set's coefficient scale —
	// under the soft-logic relaxation (paper Eq. 3) a determinant set of
	// size m carries coefficients ≈ 1/m, but the overall scale shrinks
	// with noise and with large value domains.
	Threshold float64
	// RelFraction is the relative per-column threshold fraction
	// (default 0.4); set negative to disable the relative rule and use
	// Threshold alone.
	RelFraction float64
	// Ordering names the column-ordering heuristic (see internal/ordering);
	// default "heuristic" (minimum degree), the paper's default.
	Ordering string
	// GraphTol is the |Θ| cutoff when building the sparsity graph fed to
	// the ordering heuristic.
	GraphTol float64
	// UseCorrelation normalizes the pair-sample covariance to a correlation
	// matrix before structure learning, making Lambda and Threshold
	// scale-free across attributes. Enabled by default.
	UseCorrelation bool
	// RawCovariance disables UseCorrelation when true (kept separate so the
	// zero Options value means "paper defaults").
	RawCovariance bool
	// PooledCovariance disables the stratified (per-sort-block) covariance
	// estimator and pools all pair samples into one covariance, as a naive
	// reading of Alg. 2 would. Pooling lets the blocks' different marginal
	// means leak into the estimate as spurious negative correlations; the
	// flag exists for the ablation benchmark.
	PooledCovariance bool
	// OrderCandidates, when positive, enables sparsest-permutation order
	// search (Raskutti & Uhler, whom the paper builds on): in addition to
	// the configured ordering heuristic, that many random global orders
	// are factorized and the order producing the fewest FD edges wins.
	OrderCandidates int
	// RequireConvergence makes a Graphical Lasso estimate that still has
	// not converged after the full regularization fallback ladder a hard
	// ErrNotConverged failure. By default such an estimate is accepted as
	// a degraded result with Diagnostics.GlassoConverged == false.
	RequireConvergence bool
	// Workers sets the number of goroutines used by the numeric stages:
	// the Graphical Lasso screened-block fan-out and regularization
	// paths, and the accumulator's per-stratum moment accumulation (0 or
	// 1 = serial). Results are bit-for-bit identical at any worker count;
	// see internal/par for the chunking contract that guarantees it. The
	// pair transform's fan-out is configured separately via
	// Transform.Workers.
	Workers int
	// Seed drives the transform shuffle.
	Seed int64
	// Transform holds the pair-transformation options.
	Transform TransformOptions
	// Obs carries the optional telemetry sinks (tracer span context and
	// metrics registry). The zero value disables instrumentation at
	// effectively no cost; see internal/obs. Telemetry never affects
	// results or checkpoint compatibility.
	Obs obs.Hooks
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.Threshold == 0 {
		o.Threshold = 0.05
	}
	if o.RelFraction == 0 {
		o.RelFraction = 0.4
	}
	// Negative RelFraction (the "disabled" sentinel) is preserved here —
	// defaults() runs once per pipeline layer, and clamping the sentinel
	// would let a later layer re-default it to 0.4. columnThreshold treats
	// any non-positive fraction as disabled.
	if o.Ordering == "" {
		o.Ordering = ordering.Heuristic
	}
	if o.GraphTol == 0 {
		o.GraphTol = 1e-4
	}
	o.Transform.Seed = o.Seed
	// The transform inherits the pipeline's telemetry sinks; it never has
	// independently configured ones.
	o.Transform.Obs = o.Obs
}

// Model is the fitted FDX model: the estimated precision matrix, the
// autoregression matrix in original attribute coordinates, the global
// attribute order used, and the generated FDs.
type Model struct {
	AttrNames []string
	// Theta is the sparse precision estimate of the pair model.
	Theta *linalg.Dense
	// B is the autoregression matrix in original coordinates: B[i][j] is
	// the coefficient of attribute i in the linear equation of attribute j.
	B *linalg.Dense
	// Order is the global attribute order used by the factorization:
	// Order[position] = attribute index.
	Order linalg.Permutation
	// FDs are the discovered dependencies.
	FDs []FD
	// Diagnostics records how the run degraded (fallbacks taken, solver
	// convergence, sanitized columns); see the Diagnostics type.
	Diagnostics Diagnostics
	// Trace is the root telemetry span of the run that produced the model
	// (nil when no tracer was attached). Its StageTimings break the fit
	// down per stage.
	Trace *obs.Span
	// TransformRows and ModelDuration-style accounting live in the caller;
	// the model keeps only statistical state.
}

// ValidateRelation checks that a relation is structurally sound for
// discovery: non-nil, unique attribute names, equal column lengths, and
// in-range dictionary codes. Violations return ErrBadInput-wrapped errors.
func ValidateRelation(rel *dataset.Relation) error {
	if rel == nil {
		return fdxerr.BadInput("core: nil relation")
	}
	seen := make(map[string]bool, rel.NumCols())
	for _, name := range rel.AttrNames() {
		if seen[name] {
			return fdxerr.BadInput("core: duplicate attribute name %q", name)
		}
		seen[name] = true
	}
	if err := rel.Validate(); err != nil {
		return fmt.Errorf("%w: %w", err, fdxerr.ErrBadInput)
	}
	return nil
}

// Discover runs the full FDX pipeline on a relation (paper Alg. 1).
func Discover(rel *dataset.Relation, opts Options) (*Model, error) {
	return DiscoverContext(context.Background(), rel, opts)
}

// DiscoverContext is Discover with cancellation: the context is checked in
// the transform worker loop, each Graphical Lasso outer sweep, every rung
// of the fallback ladder, and the ordering search, and a wrapped ctx.Err()
// is returned promptly on expiry.
func DiscoverContext(ctx context.Context, rel *dataset.Relation, opts Options) (*Model, error) {
	opts.defaults()
	if err := ValidateRelation(rel); err != nil {
		return nil, err
	}
	// Root telemetry span for the run; stages nest under it. End is
	// deferred for error paths and idempotent on success.
	run := opts.Obs.Start("discover")
	defer run.End()
	opts.Obs = opts.Obs.Under(run)
	opts.Transform.Obs = opts.Obs
	opts.Obs.Count(obs.MDiscoverRuns, 1)
	k := rel.NumCols()
	if k == 0 {
		return &Model{Theta: linalg.NewDense(0, 0), B: linalg.NewDense(0, 0), Diagnostics: Diagnostics{GlassoConverged: true}, Trace: run}, nil
	}
	var m *Model
	if opts.Transform.Compact {
		dt, err := TransformContext32(ctx, rel, opts.Transform)
		if err != nil {
			return nil, err
		}
		m, err = DiscoverFromSamples32Context(ctx, dt, rel.AttrNames(), opts)
		if err != nil {
			return nil, err
		}
	} else {
		dt, err := TransformContext(ctx, rel, opts.Transform)
		if err != nil {
			return nil, err
		}
		m, err = DiscoverFromSamplesContext(ctx, dt, rel.AttrNames(), opts)
		if err != nil {
			return nil, err
		}
	}
	run.End()
	m.Trace = run
	return m, nil
}

// DiscoverFromSamples runs structure learning + FD generation on an
// already-transformed binary sample matrix (rows = tuple-pair indicators).
// It is exposed separately so the scalability experiments can time the
// model phase apart from the transform (paper Fig. 6 reports both).
func DiscoverFromSamples(dt *linalg.Dense, names []string, opts Options) (*Model, error) {
	return DiscoverFromSamplesContext(context.Background(), dt, names, opts)
}

// DiscoverFromSamplesContext is DiscoverFromSamples with cancellation.
func DiscoverFromSamplesContext(ctx context.Context, dt *linalg.Dense, names []string, opts Options) (*Model, error) {
	opts.defaults()
	k := len(names)
	if c := dt.Cols(); c != k {
		return nil, fdxerr.BadInput("core: sample matrix has %d columns, want %d", c, k)
	}

	csp := opts.Obs.StartStage("covariance")
	var s *linalg.Dense
	if opts.PooledCovariance {
		s = stats.Covariance(dt)
	} else {
		// One stratum per attribute-sorted block of the transform.
		s = stats.StratifiedCovariance(dt, k)
	}
	csp.Attr("dim", k)
	csp.End()
	return DiscoverFromCovarianceContext(ctx, s, names, opts)
}

// DiscoverFromSamples32Context is DiscoverFromSamplesContext over the
// compact float32 sample store (TransformOptions.Compact). The covariance
// accumulates in float64 from the widened samples, so the model is
// bit-identical to the float64 path's.
func DiscoverFromSamples32Context(ctx context.Context, dt *linalg.Dense32, names []string, opts Options) (*Model, error) {
	opts.defaults()
	k := len(names)
	if c := dt.Cols(); c != k {
		return nil, fdxerr.BadInput("core: sample matrix has %d columns, want %d", c, k)
	}

	csp := opts.Obs.StartStage("covariance")
	var s *linalg.Dense
	if opts.PooledCovariance {
		s = stats.Covariance32(dt)
	} else {
		// One stratum per attribute-sorted block of the transform.
		s = stats.StratifiedCovariance32(dt, k)
	}
	csp.Attr("dim", k)
	csp.End()
	return DiscoverFromCovarianceContext(ctx, s, names, opts)
}

// DiscoverFromCovariance runs structure learning + FD generation on a
// pre-computed covariance estimate of the pair model — the entry point for
// incremental discovery, where the covariance is maintained as running
// sufficient statistics instead of recomputed from samples.
func DiscoverFromCovariance(s *linalg.Dense, names []string, opts Options) (*Model, error) {
	return DiscoverFromCovarianceContext(context.Background(), s, names, opts)
}

// DiscoverFromCovarianceContext is DiscoverFromCovariance with
// cancellation. Non-finite covariance entries are sanitized (recorded in
// Diagnostics) rather than propagated, and failures of the Graphical Lasso
// or the UDUᵀ factorization walk a deterministic regularization fallback
// ladder before being reported.
func DiscoverFromCovarianceContext(ctx context.Context, s *linalg.Dense, names []string, opts Options) (*Model, error) {
	opts.defaults()
	k := len(names)
	if r, c := s.Dims(); r != k || c != k {
		return nil, fdxerr.BadInput("core: covariance is %dx%d, want %dx%d", r, c, k, k)
	}

	// One working copy of the caller's covariance up front: the fault
	// poison, sanitization, correlation, and shrinkage below all operate
	// on it in place with no further cloning.
	s = s.Clone()

	// Fault injection: poison one covariance entry (sanitization test) or
	// blow up inside the core (public panic-guard test).
	if k > 0 && faults.Fire(faults.CovarianceNaN) {
		s.Set(0, k-1, math.NaN())
		s.Set(k-1, 0, math.NaN())
	}
	if faults.Fire(faults.InternalPanic) {
		//fdx:lint-ignore nakedpanic armed-fault injection exercising the public panic guards
		panic("faults: injected panic (internal-panic)")
	}

	diag := Diagnostics{}

	// Quarantine non-finite statistics instead of letting NaN/Inf propagate
	// through the solvers as opaque failures.
	psp := opts.Obs.StartStage("prepare")
	diag.SanitizedColumns = sanitizeCovariance(s)

	if !opts.RawCovariance {
		stats.CorrelationInPlace(s)
	}
	// Light shrinkage keeps the estimate well-conditioned when columns are
	// (nearly) collinear — exact FDs make Z columns exactly dependent.
	stats.ShrinkInPlace(s, 0.05)
	psp.Attr("sanitized", len(diag.SanitizedColumns))
	psp.End()
	opts.Obs.Count(obs.MSanitizedColumns, uint64(len(diag.SanitizedColumns)))

	fsp := opts.Obs.StartStage("fit")
	lopts := opts
	lopts.Obs = opts.Obs.Under(fsp)
	fit, err := fitLadder(ctx, s, &diag, lopts)
	fsp.Attr("sweeps", diag.GlassoSweeps)
	fsp.Attr("fallbacks", len(diag.Fallbacks))
	fsp.End()
	if err != nil {
		return nil, err
	}
	theta := fit.br.DensePrecision()
	perm := fit.globalPerm()

	// The per-block factorization is exact only under the adaptive
	// threshold rule with a positive floor (cross-block coefficients are
	// exact zeros, which a positive floor can never admit); a non-positive
	// floor or the global random-order search needs the dense assembly.
	dense := opts.OrderCandidates > 0 || opts.Threshold <= 0
	var bP *linalg.Dense
	if dense {
		bP = fit.denseBP()
	}

	// Sparsest-permutation search: try extra random global orders and keep
	// the one whose thresholded autoregression matrix has the fewest edges.
	if opts.OrderCandidates > 0 {
		osp := opts.Obs.StartStage("order-search")
		osp.Attr("candidates", opts.OrderCandidates)
		bestEdges := countEdges(bP, opts.Threshold, opts.RelFraction)
		rng := rand.New(rand.NewSource(opts.Seed + 1))
		for c := 0; c < opts.OrderCandidates; c++ {
			if cerr := ctx.Err(); cerr != nil {
				osp.End()
				return nil, fdxerr.Cancelled(cerr)
			}
			cand := linalg.Permutation(rng.Perm(k))
			cb, _, cerr := autoregress(theta, cand)
			if cerr != nil {
				continue
			}
			if e := countEdges(cb, opts.Threshold, opts.RelFraction); e < bestEdges {
				bestEdges, bP, perm = e, cb, cand
			}
		}
		osp.End()
	}

	gsp := opts.Obs.StartStage("generate")
	// Map back to original attribute coordinates.
	b := linalg.NewDense(k, k)
	var fds []FD
	if dense {
		//fdx:lint-ignore ctxflow O(k²) index remap of a finished result; bounded glue with no kernel work
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				b.Set(perm[i], perm[j], bP.At(i, j))
			}
		}
		fds = GenerateFDs(bP, perm, opts.Threshold, opts.RelFraction)
	} else {
		// Blocked path: remap and generate per block, never touching the
		// off-block entries (exact zeros by the screening theorem, and b
		// starts zeroed). Identical output to the dense path: a positive
		// floor never admits a zero coefficient, so cross-block entries
		// can neither enter an FD nor raise a per-column relative max.
		off := 0
		//fdx:lint-ignore ctxflow O(Σ|block|²) index remap of a finished result; bounded glue with no kernel work
		for c, bPc := range fit.bPs {
			n := len(fit.br.Part.Block(c))
			bperm := perm[off : off+n]
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					b.Set(bperm[i], bperm[j], bPc.At(i, j))
				}
			}
			fds = append(fds, GenerateFDs(bPc, bperm, opts.Threshold, opts.RelFraction)...)
			off += n
		}
		SortFDs(fds)
	}
	gsp.Attr("fds", len(fds))
	gsp.End()
	opts.Obs.Count(obs.MFDsGenerated, uint64(len(fds)))
	return &Model{
		AttrNames:   names,
		Theta:       theta,
		B:           b,
		Order:       perm,
		FDs:         fds,
		Diagnostics: diag,
	}, nil
}

// fallbackEpsilons is the deterministic regularization ladder: when the
// Graphical Lasso fails (or does not converge) or the UDUᵀ factorization
// hits a non-positive pivot, the solve is retried on S + εI with these
// escalating diagonal shrinkages. Ridge shrinkage is the principled
// degradation of the same estimator (cf. Guo & Rekatsinas, "Learning
// Functional Dependencies with Sparse Regression"): it trades a little bias
// for conditioning without changing the sparsity structure sought.
var fallbackEpsilons = []float64{1e-8, 1e-6, 1e-4, 1e-2}

// blockFit is the screened fit the ladder accepted: the blocked glasso
// result plus one fill-reducing order and autoregression matrix per
// block. Nothing here is densified; the dense assemblies (Model.Theta,
// the OrderCandidates search input) are built on demand by the caller.
type blockFit struct {
	br    *glasso.BlockedResult
	perms []linalg.Permutation // per-block orders, position → local index
	bPs   []*linalg.Dense      // per-block autoregression, local permuted coords
}

// globalPerm concatenates the per-block orders into one global attribute
// order: blocks in partition order (ascending smallest member), each
// internally in its fill-reducing order. For a block-diagonal precision
// estimate the within-block relative order is all that matters to the
// factorization and the FDs — cross-block coefficients are exact zeros
// under any interleaving.
func (f *blockFit) globalPerm() linalg.Permutation {
	perm := make(linalg.Permutation, 0, f.br.Part.K())
	for c, p := range f.perms {
		verts := f.br.Part.Block(c)
		for _, local := range p {
			perm = append(perm, verts[local])
		}
	}
	return perm
}

// denseBP assembles the block-diagonal autoregression matrix in the
// coordinates of globalPerm (exact zeros off-block).
func (f *blockFit) denseBP() *linalg.Dense {
	k := f.br.Part.K()
	out := linalg.NewDense(k, k)
	off := 0
	for c, bPc := range f.bPs {
		n := len(f.br.Part.Block(c))
		for i := 0; i < n; i++ {
			copy(out.Row(off + i)[off:off+n], bPc.Row(i))
		}
		off += n
	}
	return out
}

// fitLadder estimates the precision matrix and factorizes it, walking the
// regularization fallback ladder on failure. It returns the accepted
// blocked fit — per-block precision, order, and autoregression matrices —
// recording every fallback in diag.
func fitLadder(ctx context.Context, s *linalg.Dense, diag *Diagnostics, opts Options) (*blockFit, error) {
	var (
		lastErr error
		best    *glasso.BlockedResult // best-effort non-converged estimate, most regularized
	)
	// escalate records the fallback about to be taken after a failure at
	// rung i (a no-op on the final rung, where there is nothing to escalate
	// to).
	escalate := func(i int, stage, reason string) {
		if i < len(fallbackEpsilons) {
			diag.Fallbacks = append(diag.Fallbacks, Fallback{Stage: stage, Epsilon: fallbackEpsilons[i], Reason: reason})
			opts.Obs.Count(obs.MFallbacks, 1)
		}
	}
	for rung := 0; rung <= len(fallbackEpsilons); rung++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fdxerr.Cancelled(cerr)
		}
		trial := s
		eps := 0.0
		if rung > 0 {
			eps = fallbackEpsilons[rung-1]
			trial = addDiag(s, eps)
		}
		rsp := opts.Obs.Start("ladder-rung")
		rsp.Attr("rung", rung)
		rsp.Attr("epsilon", eps)
		ropts := opts
		ropts.Obs = opts.Obs.Under(rsp)
		res, err := glasso.SolveBlocksContext(ctx, trial, glasso.Options{Lambda: opts.Lambda, Workers: opts.Workers, Obs: ropts.Obs})
		if err != nil {
			rsp.End()
			if errors.Is(err, fdxerr.ErrCancelled) {
				return nil, err
			}
			lastErr = fmt.Errorf("core: graphical lasso: %w", err)
			escalate(rung, "glasso", err.Error())
			continue
		}
		if !res.Converged() {
			rsp.End()
			best = res
			lastErr = fmt.Errorf("core: graphical lasso exhausted %d sweeps: %w", res.Iterations(), fdxerr.ErrNotConverged)
			escalate(rung, "glasso", fmt.Sprintf("not converged after %d sweeps", res.Iterations()))
			continue
		}
		fit, err := orderAndFactorizeBlocks(ctx, res, diag, ropts)
		rsp.End()
		if err != nil {
			if !errors.Is(err, fdxerr.ErrNonPositivePivot) {
				return nil, err
			}
			lastErr = err
			escalate(rung, "factorize", err.Error())
			continue
		}
		diag.GlassoConverged = true
		diag.GlassoSweeps = res.Iterations()
		diag.GlassoBlocks = res.Part.NumBlocks()
		return fit, nil
	}
	// Ladder exhausted. A non-converged estimate is still a usable (if
	// degraded) structure estimate unless the caller demanded strictness.
	if best != nil && !opts.RequireConvergence {
		fit, err := orderAndFactorizeBlocks(ctx, best, diag, opts)
		if err == nil {
			diag.GlassoConverged = false
			diag.GlassoSweeps = best.Iterations()
			diag.GlassoBlocks = best.Part.NumBlocks()
			return fit, nil
		}
		if !errors.Is(err, fdxerr.ErrNonPositivePivot) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// orderAndFactorizeBlocks runs the fill-reducing ordering and UDUᵀ
// factorization independently on every screened block. Singleton blocks
// are closed-form (order [0], B = 0). Any block's non-positive pivot
// fails the whole rung — the ladder's diagonal shrinkage applies to the
// full matrix, so per-block retries would diverge from the dense path.
func orderAndFactorizeBlocks(ctx context.Context, br *glasso.BlockedResult, diag *Diagnostics, opts Options) (*blockFit, error) {
	fit := &blockFit{
		br:    br,
		perms: make([]linalg.Permutation, len(br.Blocks)),
		bPs:   make([]*linalg.Dense, len(br.Blocks)),
	}
	for c, blk := range br.Blocks {
		if len(br.Part.Block(c)) == 1 {
			// 1×1: θ = [t], t > 0 by construction; U = [1], B = I − U = [0].
			fit.perms[c] = linalg.Permutation{0}
			fit.bPs[c] = linalg.NewDense(1, 1)
			continue
		}
		perm, bP, err := orderAndFactorize(ctx, blk.Precision, diag, opts)
		if err != nil {
			return nil, err
		}
		fit.perms[c] = perm
		fit.bPs[c] = bP
	}
	return fit, nil
}

// orderAndFactorize computes the fill-reducing order for theta and
// factorizes it into the autoregression matrix, recording a nearest-SPD
// repair in diag when one was needed.
func orderAndFactorize(ctx context.Context, theta *linalg.Dense, diag *Diagnostics, opts Options) (linalg.Permutation, *linalg.Dense, error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, nil, fdxerr.Cancelled(cerr)
	}
	g := ordering.FromPrecision(theta, opts.GraphTol)
	perm, err := ordering.OrderObs(opts.Ordering, g, opts.Seed, opts.Obs)
	if err != nil {
		// Already ErrBadInput-wrapped by the ordering package.
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	usp := opts.Obs.StartStage("udu")
	bP, repaired, err := autoregress(theta, perm)
	usp.End()
	if err != nil {
		return nil, nil, err
	}
	if repaired {
		diag.Fallbacks = append(diag.Fallbacks, Fallback{Stage: "spd-repair", Reason: "nearest-SPD diagonal shift before UDU"})
	}
	return perm, bP, nil
}

// autoregress factorizes the permuted precision matrix and returns the
// autoregression matrix B = I − U in permuted coordinates (paper Alg. 1),
// plus whether a nearest-SPD repair was needed to factorize.
func autoregress(theta *linalg.Dense, perm linalg.Permutation) (*linalg.Dense, bool, error) {
	k, _ := theta.Dims()
	thetaP := linalg.PermuteSym(theta, perm)
	u, _, err := linalg.UDU(thetaP)
	repaired := false
	if errors.Is(err, linalg.ErrNotPositiveDefinite) {
		// Numerical slack: nudge the spectrum and retry once.
		fixed, ferr := linalg.NearestSPD(thetaP, 1e-8)
		if ferr != nil {
			return nil, false, ferr
		}
		u, _, err = linalg.UDU(fixed)
		repaired = err == nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: UDU factorization: %w", err)
	}
	return linalg.Sub(linalg.Identity(k), u), repaired, nil
}

// columnThreshold computes the per-column cutoff of the adaptive rule:
// max(floor, frac · max_i |b_ij|) for column j restricted to rows above
// the diagonal.
func columnThreshold(bP *linalg.Dense, j int, floor, frac float64) float64 {
	if frac <= 0 {
		return floor
	}
	max := 0.0
	for i := 0; i < j; i++ {
		if v := math.Abs(bP.At(i, j)); v > max {
			max = v
		}
	}
	if t := frac * max; t > floor {
		return t
	}
	return floor
}

// countEdges counts super-diagonal entries of bP passing the adaptive
// threshold rule.
func countEdges(bP *linalg.Dense, floor, frac float64) int {
	k, _ := bP.Dims()
	edges := 0
	for j := 0; j < k; j++ {
		th := columnThreshold(bP, j, floor, frac)
		for i := 0; i < j; i++ {
			if math.Abs(bP.At(i, j)) >= th {
				edges++
			}
		}
	}
	return edges
}

// GenerateFDs implements Algorithm 3 on a permuted autoregression matrix:
// for each column j, the rows i<j whose |B[i,j]| passes the adaptive
// threshold rule (floor and per-column relative fraction) form the
// determinant set of an FD for attribute perm[j]. Indices in the returned
// FDs are original attribute indices.
// Panics if perm's length differs from bP's dimension.
func GenerateFDs(bP *linalg.Dense, perm linalg.Permutation, floor, frac float64) []FD {
	k, _ := bP.Dims()
	if len(perm) != k {
		panic(fmt.Sprintf("core: GenerateFDs permutation length %d != matrix dimension %d", len(perm), k))
	}
	var fds []FD
	for j := 0; j < k; j++ {
		th := columnThreshold(bP, j, floor, frac)
		var lhs []int
		score := 0.0
		for i := 0; i < j; i++ {
			if v := math.Abs(bP.At(i, j)); v >= th {
				lhs = append(lhs, perm[i])
				if v > score {
					score = v
				}
			}
		}
		if len(lhs) > 0 {
			fd := FD{LHS: lhs, RHS: perm[j], Score: score}
			fd.Normalize()
			fds = append(fds, fd)
		}
	}
	SortFDs(fds)
	return fds
}

// FormatFDs renders the model's FDs one per line using attribute names.
func (m *Model) FormatFDs() string {
	var b strings.Builder
	for _, fd := range m.FDs {
		b.WriteString(fd.Format(m.AttrNames))
		b.WriteByte('\n')
	}
	return b.String()
}

// Heatmap renders the absolute autoregression matrix as an ASCII heatmap
// (rows/columns in original attribute order), the textual analogue of the
// paper's Figure 3/5 plots.
func (m *Model) Heatmap() string {
	k := len(m.AttrNames)
	var sb strings.Builder
	width := 0
	for _, n := range m.AttrNames {
		if len(n) > width {
			width = len(n)
		}
	}
	if width > 18 {
		width = 18
	}
	ramp := []byte(" .:-=+*#%@")
	for i := 0; i < k; i++ {
		name := m.AttrNames[i]
		if len(name) > width {
			name = name[:width]
		}
		fmt.Fprintf(&sb, "%-*s |", width, name)
		for j := 0; j < k; j++ {
			v := math.Abs(m.B.At(i, j))
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(ramp)-1))
			sb.WriteByte(ramp[idx])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
