package bayesnet

import (
	"testing"
	"testing/quick"

	"fdx/internal/dataset"
)

func TestAllNetworksValid(t *testing.T) {
	for _, name := range Names() {
		net, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestTable1Inventory(t *testing.T) {
	cases := []struct {
		name              string
		nodes, fds, edges int
	}{
		{"alarm", 37, 25, 46},
		{"asia", 8, 6, 8},
		{"cancer", 5, 3, 4},
		{"child", 20, 19, 25},
		{"earthquake", 5, 3, 4},
	}
	for _, c := range cases {
		net, _ := ByName(c.name)
		if len(net.Nodes) != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.name, len(net.Nodes), c.nodes)
		}
		if got := len(net.TrueFDs()); got != c.fds {
			t.Errorf("%s: %d FDs, want %d", c.name, got, c.fds)
		}
		if got := net.NumEdges(); got != c.edges {
			t.Errorf("%s: %d edges, want %d", c.name, got, c.edges)
		}
	}
}

func TestSampleShapeAndDomains(t *testing.T) {
	net := Asia()
	rel := net.Sample(200, 0.1, 1)
	if rel.NumRows() != 200 || rel.NumCols() != 8 {
		t.Fatalf("sample dims %dx%d", rel.NumRows(), rel.NumCols())
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, col := range rel.Columns {
		if col.Cardinality() > net.Nodes[i].States {
			t.Errorf("node %s: %d observed states > %d", net.Nodes[i].Name, col.Cardinality(), net.Nodes[i].States)
		}
		if col.MissingCount() != 0 {
			t.Errorf("node %s has missing values", net.Nodes[i].Name)
		}
	}
}

func TestZeroEpsIsDeterministic(t *testing.T) {
	// With eps=0, every child is an exact function of its parents: check
	// FD consistency on the sample.
	net := Cancer()
	rel := net.Sample(500, 0, 2)
	for i, nd := range net.Nodes {
		if len(nd.Parents) == 0 {
			continue
		}
		seen := map[string]string{}
		for r := 0; r < rel.NumRows(); r++ {
			key := ""
			for _, p := range nd.Parents {
				v, _ := rel.Columns[p].Value(r)
				key += v + "|"
			}
			y, _ := rel.Columns[i].Value(r)
			if prev, ok := seen[key]; ok && prev != y {
				t.Fatalf("node %s not deterministic at eps=0", nd.Name)
			}
			seen[key] = y
		}
	}
}

func TestSampleSeedDeterminism(t *testing.T) {
	net := Earthquake()
	a := net.Sample(50, 0.1, 7)
	b := net.Sample(50, 0.1, 7)
	for i := 0; i < 50; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatal("same seed produced different samples")
			}
		}
	}
	c := net.Sample(50, 0.1, 8)
	same := true
	for i := 0; i < 50 && same; i++ {
		ra, rc := a.Row(i), c.Row(i)
		for j := range ra {
			if ra[j] != rc[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestNoiseRateAffectsDeterminism(t *testing.T) {
	net := Asia()
	rel := net.Sample(2000, 0.5, 3)
	// With eps=0.5 the child "tub" should disagree with any single-valued
	// function of "asia" on a sizeable fraction of rows.
	violations := 0
	seen := map[string]string{}
	for r := 0; r < rel.NumRows(); r++ {
		k, _ := rel.Columns[0].Value(r)
		v, _ := rel.Columns[2].Value(r)
		if prev, ok := seen[k]; ok && prev != v {
			violations++
		} else {
			seen[k] = v
		}
	}
	if violations < 100 {
		t.Errorf("expected many violations at eps=0.5, got %d", violations)
	}
}

func TestTrueFDsProperties(t *testing.T) {
	f := func(pick uint8) bool {
		names := Names()
		net, _ := ByName(names[int(pick)%len(names)])
		fds := net.TrueFDs()
		for _, fd := range fds {
			if len(fd.LHS) == 0 {
				return false
			}
			for _, x := range fd.LHS {
				if x == fd.RHS || x < 0 || x >= len(net.Nodes) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleValuesCarryNodePrefix(t *testing.T) {
	rel := Asia().Sample(5, 0, 4)
	v, ok := rel.Columns[0].Value(0)
	if !ok || len(v) < 4 || v[:3] != "asi" {
		t.Errorf("value format unexpected: %q", v)
	}
	_ = dataset.Missing
}
