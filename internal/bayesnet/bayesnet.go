// Package bayesnet provides discrete Bayesian networks with ancestral
// sampling, and ships the five benchmark networks of the FDX paper's
// Table 1 (Alarm, Asia, Cancer, Child, Earthquake) with their published
// DAG structures.
//
// The paper samples these networks from the bnlearn repository, whose
// generators "exhibit deterministic dependencies". The bnlearn CPT tables
// are not available offline, so each child node gets a synthesized
// near-deterministic CPT: every parent-state combination has a dominant
// child state drawn from a seeded table, taken with probability 1−eps. The
// ground-truth FDs are the parent sets of non-root nodes — the same
// edge-level ground truth the paper scores against.
package bayesnet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

// Node is one variable of a network. Nodes are stored in topological order.
type Node struct {
	Name    string
	States  int   // number of discrete states (≥2)
	Parents []int // indices of parent nodes (all smaller than this node's index)
}

// Network is a discrete Bayesian network.
type Network struct {
	Name  string
	Nodes []Node
}

// NumEdges returns the number of parent→child arcs.
func (n *Network) NumEdges() int {
	e := 0
	for _, nd := range n.Nodes {
		e += len(nd.Parents)
	}
	return e
}

// TrueFDs returns the ground-truth dependencies: one FD per non-root node,
// with the node's parent set as the determinant.
func (n *Network) TrueFDs() []core.FD {
	var fds []core.FD
	for i, nd := range n.Nodes {
		if len(nd.Parents) == 0 {
			continue
		}
		fd := core.FD{LHS: append([]int(nil), nd.Parents...), RHS: i}
		fd.Normalize()
		fds = append(fds, fd)
	}
	core.SortFDs(fds)
	return fds
}

// AttrNames returns the node names in order.
func (n *Network) AttrNames() []string {
	out := make([]string, len(n.Nodes))
	for i, nd := range n.Nodes {
		out[i] = nd.Name
	}
	return out
}

// Validate checks the topological-order invariant and state counts.
func (n *Network) Validate() error {
	for i, nd := range n.Nodes {
		if nd.States < 2 {
			return fmt.Errorf("bayesnet: node %s has %d states", nd.Name, nd.States)
		}
		for _, p := range nd.Parents {
			if p >= i || p < 0 {
				return fmt.Errorf("bayesnet: node %s has non-topological parent %d", nd.Name, p)
			}
		}
	}
	return nil
}

// Sample draws rows tuples by ancestral sampling. eps is the per-node
// probability of deviating from the dominant (functional) child state;
// eps=0 makes every non-root node a deterministic function of its parents.
// The CPT dominant-state tables are derived deterministically from the
// network and node names, so repeated calls describe the same joint
// distribution.
func (n *Network) Sample(rows int, eps float64, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := dataset.New(n.Name, n.AttrNames()...)

	// Dominant-state lookup per node: flat table over parent combos.
	tables := make([][]int, len(n.Nodes))
	priors := make([][]float64, len(n.Nodes))
	for i, nd := range n.Nodes {
		nodeRng := rand.New(rand.NewSource(nodeSeed(n.Name, nd.Name)))
		if len(nd.Parents) == 0 {
			// Non-uniform prior (Dirichlet-ish via normalized uniforms).
			pr := make([]float64, nd.States)
			sum := 0.0
			for s := range pr {
				pr[s] = 0.2 + nodeRng.Float64()
				sum += pr[s]
			}
			for s := range pr {
				pr[s] /= sum
			}
			priors[i] = pr
			continue
		}
		combos := 1
		for _, p := range nd.Parents {
			combos *= n.Nodes[p].States
		}
		tab := make([]int, combos)
		for c := range tab {
			tab[c] = nodeRng.Intn(nd.States)
		}
		tables[i] = tab
	}

	state := make([]int, len(n.Nodes))
	vals := make([]string, len(n.Nodes))
	for r := 0; r < rows; r++ {
		for i, nd := range n.Nodes {
			if len(nd.Parents) == 0 {
				state[i] = samplePrior(rng, priors[i])
			} else {
				combo := 0
				for _, p := range nd.Parents {
					combo = combo*n.Nodes[p].States + state[p]
				}
				dominant := tables[i][combo]
				if eps > 0 && rng.Float64() < eps {
					state[i] = rng.Intn(nd.States)
				} else {
					state[i] = dominant
				}
			}
			vals[i] = nd.Name[:min(3, len(nd.Name))] + strconv.Itoa(state[i])
		}
		rel.AppendRow(vals)
	}
	return rel
}

func samplePrior(rng *rand.Rand, prior []float64) int {
	u := rng.Float64()
	acc := 0.0
	for s, p := range prior {
		acc += p
		if u < acc {
			return s
		}
	}
	return len(prior) - 1
}

func nodeSeed(network, node string) int64 {
	h := fnv.New64a()
	h.Write([]byte(network))
	h.Write([]byte{0})
	h.Write([]byte(node))
	return int64(h.Sum64())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ByName returns the named benchmark network.
func ByName(name string) (*Network, error) {
	switch name {
	case "alarm":
		return Alarm(), nil
	case "asia":
		return Asia(), nil
	case "cancer":
		return Cancer(), nil
	case "child":
		return Child(), nil
	case "earthquake":
		return Earthquake(), nil
	default:
		return nil, fmt.Errorf("bayesnet: unknown network %q", name)
	}
}

// Names lists the benchmark networks in the paper's Table 1 order.
func Names() []string { return []string{"alarm", "asia", "cancer", "child", "earthquake"} }
