package bayesnet

// The five benchmark networks of the FDX paper's Table 1, with their
// published DAG structures (bnlearn repository). Nodes are listed in
// topological order; parent indices refer to earlier entries.

// Asia returns the 8-node ASIA (chest clinic) network: 6 dependent nodes,
// 8 arcs — matching Table 1's "6 FDs, 8 edges".
func Asia() *Network {
	return &Network{Name: "asia", Nodes: []Node{
		{Name: "asia", States: 2},                         // 0
		{Name: "smoke", States: 2},                        // 1
		{Name: "tub", States: 2, Parents: []int{0}},       // 2
		{Name: "lung", States: 2, Parents: []int{1}},      // 3
		{Name: "bronc", States: 2, Parents: []int{1}},     // 4
		{Name: "either", States: 2, Parents: []int{2, 3}}, // 5
		{Name: "xray", States: 2, Parents: []int{5}},      // 6
		{Name: "dysp", States: 2, Parents: []int{4, 5}},   // 7
	}}
}

// Cancer returns the 5-node CANCER network: 3 dependent nodes, 4 arcs —
// matching Table 1's "3 FDs, 4 edges".
func Cancer() *Network {
	return &Network{Name: "cancer", Nodes: []Node{
		{Name: "Pollution", States: 2},                    // 0
		{Name: "Smoker", States: 2},                       // 1
		{Name: "Cancer", States: 2, Parents: []int{0, 1}}, // 2
		{Name: "Xray", States: 2, Parents: []int{2}},      // 3
		{Name: "Dyspnoea", States: 2, Parents: []int{2}},  // 4
	}}
}

// Earthquake returns the 5-node EARTHQUAKE network (3 dependent nodes,
// 4 arcs). Table 1 lists 8 edges for this network; the published structure
// has 4 parent→child arcs, so the ground truth here uses the published
// structure (see DESIGN.md).
func Earthquake() *Network {
	return &Network{Name: "earthquake", Nodes: []Node{
		{Name: "Burglary", States: 2},                     // 0
		{Name: "Earthquake", States: 2},                   // 1
		{Name: "Alarm", States: 2, Parents: []int{0, 1}},  // 2
		{Name: "JohnCalls", States: 2, Parents: []int{2}}, // 3
		{Name: "MaryCalls", States: 2, Parents: []int{2}}, // 4
	}}
}

// Child returns the 20-node CHILD network (25 arcs, 19 dependent nodes).
func Child() *Network {
	return &Network{Name: "child", Nodes: []Node{
		{Name: "BirthAsphyxia", States: 2},                       // 0
		{Name: "Disease", States: 6, Parents: []int{0}},          // 1
		{Name: "Sick", States: 2, Parents: []int{1}},             // 2
		{Name: "Age", States: 3, Parents: []int{1, 2}},           // 3
		{Name: "DuctFlow", States: 3, Parents: []int{1}},         // 4
		{Name: "CardiacMixing", States: 4, Parents: []int{1}},    // 5
		{Name: "LungParench", States: 3, Parents: []int{1}},      // 6
		{Name: "LungFlow", States: 3, Parents: []int{1}},         // 7
		{Name: "LVH", States: 2, Parents: []int{1}},              // 8
		{Name: "LVHreport", States: 2, Parents: []int{8}},        // 9
		{Name: "HypDistrib", States: 2, Parents: []int{4, 5}},    // 10
		{Name: "HypoxiaInO2", States: 3, Parents: []int{5, 6}},   // 11
		{Name: "CO2", States: 3, Parents: []int{6}},              // 12
		{Name: "ChestXray", States: 5, Parents: []int{6, 7}},     // 13
		{Name: "Grunting", States: 2, Parents: []int{2, 6}},      // 14
		{Name: "LowerBodyO2", States: 3, Parents: []int{10, 11}}, // 15
		{Name: "RUQO2", States: 3, Parents: []int{11}},           // 16
		{Name: "CO2Report", States: 2, Parents: []int{12}},       // 17
		{Name: "XrayReport", States: 5, Parents: []int{13}},      // 18
		{Name: "GruntingReport", States: 2, Parents: []int{14}},  // 19
	}}
}

// Alarm returns the 37-node ALARM network (46 arcs, 25 dependent nodes),
// the ICU monitoring network of Beinlich et al. Table 1 lists "24 FDs, 45
// edges"; the published structure has 25 dependent nodes and 46 arcs.
func Alarm() *Network {
	return &Network{Name: "alarm", Nodes: []Node{
		{Name: "MINVOLSET", States: 3},                               // 0
		{Name: "DISCONNECT", States: 2},                              // 1
		{Name: "KINKEDTUBE", States: 2},                              // 2
		{Name: "INTUBATION", States: 3},                              // 3
		{Name: "FIO2", States: 2},                                    // 4
		{Name: "PULMEMBOLUS", States: 2},                             // 5
		{Name: "HYPOVOLEMIA", States: 2},                             // 6
		{Name: "LVFAILURE", States: 2},                               // 7
		{Name: "ANAPHYLAXIS", States: 2},                             // 8
		{Name: "INSUFFANESTH", States: 2},                            // 9
		{Name: "ERRLOWOUTPUT", States: 2},                            // 10
		{Name: "ERRCAUTER", States: 2},                               // 11
		{Name: "VENTMACH", States: 4, Parents: []int{0}},             // 12
		{Name: "VENTTUBE", States: 4, Parents: []int{12, 1}},         // 13
		{Name: "VENTLUNG", States: 4, Parents: []int{13, 2, 3}},      // 14
		{Name: "VENTALV", States: 4, Parents: []int{14, 3}},          // 15
		{Name: "ARTCO2", States: 3, Parents: []int{15}},              // 16
		{Name: "EXPCO2", States: 4, Parents: []int{16, 14}},          // 17
		{Name: "PVSAT", States: 3, Parents: []int{15, 4}},            // 18
		{Name: "SHUNT", States: 2, Parents: []int{5, 3}},             // 19
		{Name: "SAO2", States: 3, Parents: []int{18, 19}},            // 20
		{Name: "PAP", States: 3, Parents: []int{5}},                  // 21
		{Name: "PRESS", States: 4, Parents: []int{3, 2, 13}},         // 22
		{Name: "MINVOL", States: 4, Parents: []int{14, 3}},           // 23
		{Name: "LVEDVOLUME", States: 3, Parents: []int{6, 7}},        // 24
		{Name: "CVP", States: 3, Parents: []int{24}},                 // 25
		{Name: "PCWP", States: 3, Parents: []int{24}},                // 26
		{Name: "HISTORY", States: 2, Parents: []int{7}},              // 27
		{Name: "STROKEVOLUME", States: 3, Parents: []int{6, 7}},      // 28
		{Name: "TPR", States: 3, Parents: []int{8}},                  // 29
		{Name: "CATECHOL", States: 2, Parents: []int{29, 20, 16, 9}}, // 30
		{Name: "HR", States: 3, Parents: []int{30}},                  // 31
		{Name: "CO", States: 3, Parents: []int{28, 31}},              // 32
		{Name: "BP", States: 3, Parents: []int{32, 29}},              // 33
		{Name: "HRBP", States: 3, Parents: []int{31, 10}},            // 34
		{Name: "HREKG", States: 3, Parents: []int{31, 11}},           // 35
		{Name: "HRSAT", States: 3, Parents: []int{31, 11}},           // 36
	}}
}
