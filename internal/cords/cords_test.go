package cords

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = strconv.Itoa(v)
		}
		r.AppendRow(s)
	}
	return r
}

func hasEdge(fds []core.FD, lhs, rhs int) bool {
	for _, fd := range fds {
		if fd.RHS == rhs && len(fd.LHS) == 1 && fd.LHS[0] == lhs {
			return true
		}
	}
	return false
}

func TestCordsFindsSoftFD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, 500)
	for i := range rows {
		a := rng.Intn(10)
		rows[i] = []int{a, a % 5, rng.Intn(6)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{Seed: 1})
	if !hasEdge(fds, 0, 1) {
		t.Errorf("a→b soft FD not found: %v", fds)
	}
	if hasEdge(fds, 2, 0) || hasEdge(fds, 0, 2) {
		t.Errorf("independent attribute linked: %v", fds)
	}
}

func TestCordsExcludesNearKeys(t *testing.T) {
	rows := make([][]int, 300)
	for i := range rows {
		rows[i] = []int{i, i % 3} // column a is a key
	}
	rel := relFromCodes(rows, "id", "b")
	fds := Discover(rel, Options{Seed: 2})
	if hasEdge(fds, 0, 1) {
		t.Errorf("key column proposed as determinant: %v", fds)
	}
}

func TestCordsOnlyPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]int, 300)
	for i := range rows {
		rows[i] = []int{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	for _, fd := range Discover(rel, Options{Seed: 3}) {
		if len(fd.LHS) != 1 {
			t.Errorf("CORDS emitted multi-attribute LHS: %v", fd)
		}
	}
}

func TestCordsSamplingCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := make([][]int, 5000)
	for i := range rows {
		a := rng.Intn(8)
		rows[i] = []int{a, a % 4}
	}
	rel := relFromCodes(rows, "a", "b")
	fds := Discover(rel, Options{SampleRows: 200, Seed: 4})
	if !hasEdge(fds, 0, 1) {
		t.Errorf("sampled run missed the FD: %v", fds)
	}
}

func TestCordsDegenerate(t *testing.T) {
	if fds := Discover(dataset.New("t"), Options{}); fds != nil {
		t.Error("empty relation should yield nil")
	}
}

func TestSoftFDStrength(t *testing.T) {
	if got := softFDStrength([]int{0, 0, 1}, []int{5, 5, 7}); got != 1 {
		t.Errorf("exact FD strength = %v, want 1", got)
	}
	// One of four rows deviates from the dominant mapping.
	if got := softFDStrength([]int{0, 0, 0, 0}, []int{5, 5, 5, 9}); got != 0.75 {
		t.Errorf("approximate strength = %v, want 0.75", got)
	}
	if softFDStrength(nil, nil) != 0 {
		t.Error("empty strength should be 0")
	}
}

func TestCordsTolatesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := make([][]int, 600)
	for i := range rows {
		a := rng.Intn(8)
		b := a % 4
		if rng.Float64() < 0.05 {
			b = rng.Intn(4)
		}
		rows[i] = []int{a, b}
	}
	rel := relFromCodes(rows, "a", "b")
	fds := Discover(rel, Options{Seed: 9})
	if !hasEdge(fds, 0, 1) {
		t.Errorf("5%% noise broke the soft FD: %v", fds)
	}
}
