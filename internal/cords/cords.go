// Package cords is a best-effort implementation of CORDS (Ilyas, Markl,
// Haas, Brown, Aboulnaga, SIGMOD 2004), which detects soft functional
// dependencies and correlations between attribute *pairs* using sampling
// and distinct-value statistics. The FDX paper uses it as the
// pairwise-statistics baseline (its code is not public; hyper-parameters
// follow the paper's description, §5.1).
package cords

import (
	"math/rand"
	"sort"

	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/stats"
)

// Options configures CORDS.
type Options struct {
	// SampleRows is the row-sample size used for the statistics
	// (default 2000).
	SampleRows int
	// Strength is the minimum soft-FD strength for an FD A→B: the fraction
	// of sampled rows consistent with the dominant A→B mapping (default
	// 0.9; 1.0 means every sampled A-value maps to exactly one B-value).
	Strength float64
	// PValue is the chi-squared significance threshold below which a pair
	// is deemed correlated (default 1e-3), required in addition to the
	// soft-FD strength.
	PValue float64
	// KeyFraction excludes near-key determinants: attributes with more
	// than KeyFraction·n distinct values in the sample are not proposed as
	// LHS (default 0.9). Keys trivially determine everything and CORDS
	// filters them.
	KeyFraction float64
	// Seed drives sampling.
	Seed int64
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.SampleRows == 0 {
		o.SampleRows = 2000
	}
	if o.Strength == 0 {
		o.Strength = 0.9
	}
	if o.PValue == 0 {
		o.PValue = 1e-3
	}
	if o.KeyFraction == 0 {
		o.KeyFraction = 0.9
	}
}

// Discover returns the soft FDs between attribute pairs.
func Discover(rel *dataset.Relation, opts Options) []core.FD {
	opts.defaults()
	k := rel.NumCols()
	n := rel.NumRows()
	if k < 2 || n == 0 {
		return nil
	}

	// Row sample.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if n > opts.SampleRows {
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:opts.SampleRows]
		sort.Ints(idx)
	}
	m := len(idx)

	labels := make([][]int, k)
	distinct := make([]int, k)
	for j := 0; j < k; j++ {
		labels[j] = make([]int, m)
		seen := map[int32]int{}
		for i, r := range idx {
			code := rel.Columns[j].Code(r)
			id, ok := seen[code]
			if !ok {
				id = len(seen)
				seen[code] = id
			}
			labels[j][i] = id
		}
		distinct[j] = len(seen)
	}

	var fds []core.FD
	for a := 0; a < k; a++ {
		if float64(distinct[a]) > opts.KeyFraction*float64(m) {
			continue // near-key LHS: trivial, skipped
		}
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			strength := softFDStrength(labels[a], labels[b])
			if strength < opts.Strength {
				continue
			}
			// Require statistical association, not just low joint count.
			c := stats.NewContingency(labels[a], labels[b])
			stat, dof := stats.ChiSquared(c)
			if dof > 0 && stats.ChiSquaredPValue(stat, dof) > opts.PValue {
				continue
			}
			fds = append(fds, core.FD{LHS: []int{a}, RHS: b, Score: strength})
		}
	}
	core.SortFDs(fds)
	return fds
}

// softFDStrength returns the fraction of rows consistent with the dominant
// per-a-value mapping a→b: Σ_a max_b count(a,b) / n. 1.0 iff a→b holds
// exactly on the sample; high values mean the soft FD holds for most rows.
func softFDStrength(a, b []int) float64 {
	if len(a) == 0 {
		return 0
	}
	counts := map[[2]int]int{}
	for i := range a {
		counts[[2]int{a[i], b[i]}]++
	}
	best := map[int]int{}
	for k, c := range counts {
		if c > best[k[0]] {
			best[k[0]] = c
		}
	}
	covered := 0
	for _, c := range best {
		covered += c
	}
	return float64(covered) / float64(len(a))
}
