// Package impute provides the missing-value imputation study of the FDX
// paper's Table 7: cells of a target attribute are masked under a random
// or a systematic missingness model, two ML imputers of different families
// predict them back, and accuracy is compared between attributes that
// participate in an FDX-discovered FD and attributes that do not.
//
// The paper uses AimNet (attention-based) and XGBoost; offline substitutes
// here are a k-nearest-neighbour imputer and gradient-boosted decision
// stumps — two from-scratch learners of different families, preserving the
// two-model structure of the table (see DESIGN.md, substitution 4).
package impute

import (
	"math"
	"math/rand"
	"sort"

	"fdx/internal/dataset"
)

// Masked describes a masking experiment on one target attribute.
type Masked struct {
	// Relation is a deep copy of the input with the masked cells set to
	// missing.
	Relation *dataset.Relation
	// Target is the attribute index that was masked.
	Target int
	// Rows lists the masked row indices.
	Rows []int
	// Truth holds the original codes of the masked cells, parallel to Rows.
	Truth []int32
}

// MaskRandom masks a uniform fraction of the target attribute's non-missing
// cells (missing completely at random).
func MaskRandom(rel *dataset.Relation, target int, rate float64, seed int64) *Masked {
	rng := rand.New(rand.NewSource(seed))
	out := &Masked{Relation: rel.Clone(), Target: target}
	col := out.Relation.Columns[target]
	for i := 0; i < col.Len(); i++ {
		if col.IsMissing(i) {
			continue
		}
		if rng.Float64() < rate {
			out.Rows = append(out.Rows, i)
			out.Truth = append(out.Truth, col.Code(i))
			col.SetCode(i, dataset.Missing)
		}
	}
	return out
}

// MaskSystematic masks cells conditioned on a co-attribute: rows whose
// pivot attribute takes its most frequent value are masked with double
// probability and other rows with half — missingness that correlates with
// the data (missing not at random), the "systematic noise" column of the
// paper's Table 7.
func MaskSystematic(rel *dataset.Relation, target int, rate float64, seed int64) *Masked {
	rng := rand.New(rand.NewSource(seed))
	out := &Masked{Relation: rel.Clone(), Target: target}
	pivot := (target + 1) % rel.NumCols()
	if pivot == target {
		return MaskRandom(rel, target, rate, seed)
	}
	pivotCol := out.Relation.Columns[pivot]
	counts := map[int32]int{}
	for i := 0; i < pivotCol.Len(); i++ {
		counts[pivotCol.Code(i)]++
	}
	var modal int32
	best := -1
	for code, c := range counts {
		if c > best {
			best, modal = c, code
		}
	}
	col := out.Relation.Columns[target]
	for i := 0; i < col.Len(); i++ {
		if col.IsMissing(i) {
			continue
		}
		p := rate / 2
		if pivotCol.Code(i) == modal {
			p = rate * 2
		}
		if rng.Float64() < p {
			out.Rows = append(out.Rows, i)
			out.Truth = append(out.Truth, col.Code(i))
			col.SetCode(i, dataset.Missing)
		}
	}
	return out
}

// Imputer predicts the masked values of a target attribute.
type Imputer interface {
	// Name identifies the imputer in experiment tables.
	Name() string
	// Impute returns predicted codes for the masked rows. The relation has
	// the masked cells set to missing; training data is every row where
	// the target is present.
	Impute(m *Masked) []int32
}

// Accuracy returns the fraction of exact predictions — micro-averaged F1
// for single-label multi-class prediction.
func Accuracy(pred, truth []int32) float64 {
	if len(truth) == 0 {
		return 0
	}
	hit := 0
	for i := range truth {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// trainRows returns the rows where the target attribute is present.
func trainRows(m *Masked) []int {
	col := m.Relation.Columns[m.Target]
	var rows []int
	for i := 0; i < col.Len(); i++ {
		if !col.IsMissing(i) {
			rows = append(rows, i)
		}
	}
	return rows
}

// majorityCode returns the most frequent code among the given rows
// (fallback prediction).
func majorityCode(col *dataset.Column, rows []int) int32 {
	counts := map[int32]int{}
	for _, r := range rows {
		if !col.IsMissing(r) {
			counts[col.Code(r)]++
		}
	}
	var best int32
	bestC := -1
	for code, c := range counts {
		if c > bestC || (c == bestC && code < best) {
			best, bestC = code, c
		}
	}
	if bestC < 0 {
		return 0
	}
	return best
}

// KNN is an instance-based imputer: the predicted value is the majority
// label among the K nearest training rows under a mixed Hamming/absolute
// distance over the non-target attributes.
type KNN struct {
	// K is the neighbourhood size (default 7).
	K int
	// MaxTrain caps the training rows scanned per query (default 2000);
	// larger training sets are subsampled for tractability.
	MaxTrain int
	// Seed drives the training subsample.
	Seed int64
}

// Name implements Imputer.
func (k *KNN) Name() string { return "knn" }

// Impute implements Imputer.
func (k *KNN) Impute(m *Masked) []int32 {
	kk := k.K
	if kk == 0 {
		kk = 7
	}
	maxTrain := k.MaxTrain
	if maxTrain == 0 {
		maxTrain = 2000
	}
	rel := m.Relation
	train := trainRows(m)
	if len(train) > maxTrain {
		rng := rand.New(rand.NewSource(k.Seed))
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		train = train[:maxTrain]
	}
	target := m.Target
	tcol := rel.Columns[target]

	// Numeric scales for distance normalization.
	scales := make([]float64, rel.NumCols())
	for j, col := range rel.Columns {
		if col.Type == dataset.Numeric {
			min, max := math.Inf(1), math.Inf(-1)
			for i := 0; i < col.Len(); i++ {
				v := col.Float(i)
				if math.IsNaN(v) {
					continue
				}
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			if max > min {
				scales[j] = max - min
			}
		}
	}

	dist := func(a, b int) float64 {
		d := 0.0
		for j, col := range rel.Columns {
			if j == target {
				continue
			}
			ca, cb := col.Code(a), col.Code(b)
			if ca == dataset.Missing || cb == dataset.Missing {
				d += 0.5 // unknown: half penalty
				continue
			}
			if ca == cb {
				continue
			}
			if col.Type == dataset.Numeric && scales[j] > 0 {
				fa, fb := col.Float(a), col.Float(b)
				if !math.IsNaN(fa) && !math.IsNaN(fb) {
					d += math.Min(1, math.Abs(fa-fb)/scales[j])
					continue
				}
			}
			d += 1
		}
		return d
	}

	type nb struct {
		d    float64
		code int32
	}
	out := make([]int32, len(m.Rows))
	fallback := majorityCode(tcol, train)
	for qi, q := range m.Rows {
		nbs := make([]nb, 0, len(train))
		for _, t := range train {
			nbs = append(nbs, nb{d: dist(q, t), code: tcol.Code(t)})
		}
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].d < nbs[j].d })
		votes := map[int32]int{}
		limit := kk
		if limit > len(nbs) {
			limit = len(nbs)
		}
		bestCode, bestVotes := fallback, 0
		for i := 0; i < limit; i++ {
			votes[nbs[i].code]++
			if votes[nbs[i].code] > bestVotes {
				bestVotes = votes[nbs[i].code]
				bestCode = nbs[i].code
			}
		}
		out[qi] = bestCode
	}
	return out
}
