package impute

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/dataset"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			if v < 0 {
				s[j] = ""
			} else {
				s[j] = strconv.Itoa(v)
			}
		}
		r.AppendRow(s)
	}
	return r
}

// fdRelation: b = f(a) with lookup table, c pure noise.
func fdRelation(rng *rand.Rand, n int) *dataset.Relation {
	tab := make([]int, 10)
	for i := range tab {
		tab[i] = rng.Intn(6)
	}
	rows := make([][]int, n)
	for i := range rows {
		a := rng.Intn(10)
		rows[i] = []int{a, tab[a], rng.Intn(6)}
	}
	return relFromCodes(rows, "a", "b", "c")
}

func TestMaskRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := fdRelation(rng, 500)
	m := MaskRandom(rel, 1, 0.2, 1)
	if len(m.Rows) < 50 || len(m.Rows) > 150 {
		t.Errorf("masked %d of 500 at rate 0.2", len(m.Rows))
	}
	for i, r := range m.Rows {
		if !m.Relation.Columns[1].IsMissing(r) {
			t.Fatal("masked cell not missing")
		}
		if m.Truth[i] == dataset.Missing {
			t.Fatal("truth recorded as missing")
		}
	}
	// Original untouched.
	if rel.Columns[1].MissingCount() != 0 {
		t.Error("masking mutated the input relation")
	}
}

func TestMaskSystematicBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := fdRelation(rng, 2000)
	m := MaskSystematic(rel, 1, 0.2, 2)
	if len(m.Rows) == 0 {
		t.Fatal("nothing masked")
	}
	// Rows with the pivot's modal value must be masked at a higher rate.
	pivot := rel.Columns[2]
	counts := map[int32]int{}
	for i := 0; i < pivot.Len(); i++ {
		counts[pivot.Code(i)]++
	}
	var modal int32
	best := -1
	for code, c := range counts {
		if c > best {
			best, modal = c, code
		}
	}
	maskedModal, totalModal := 0, counts[modal]
	maskedOther, totalOther := 0, rel.NumRows()-totalModal
	inMask := map[int]bool{}
	for _, r := range m.Rows {
		inMask[r] = true
	}
	for i := 0; i < rel.NumRows(); i++ {
		if pivot.Code(i) == modal {
			if inMask[i] {
				maskedModal++
			}
		} else if inMask[i] {
			maskedOther++
		}
	}
	rateModal := float64(maskedModal) / float64(totalModal)
	rateOther := float64(maskedOther) / float64(totalOther)
	if rateModal <= rateOther {
		t.Errorf("systematic mask not biased: modal %v vs other %v", rateModal, rateOther)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int32{1, 2, 3}, []int32{1, 0, 3}); got != 2.0/3 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestKNNImputesFDAttributeWell(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := fdRelation(rng, 600)
	m := MaskRandom(rel, 1, 0.2, 3)
	pred := (&KNN{}).Impute(m)
	if acc := Accuracy(pred, m.Truth); acc < 0.9 {
		t.Errorf("kNN accuracy on FD attribute = %v, want ≥0.9", acc)
	}
}

func TestBoostImputesFDAttributeWell(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := fdRelation(rng, 600)
	m := MaskRandom(rel, 1, 0.2, 4)
	pred := (&Boost{}).Impute(m)
	if acc := Accuracy(pred, m.Truth); acc < 0.9 {
		t.Errorf("boost accuracy on FD attribute = %v, want ≥0.9", acc)
	}
}

func TestImputersStruggleOnIndependentAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := fdRelation(rng, 600)
	m := MaskRandom(rel, 2, 0.2, 5) // c is independent noise over 6 values
	for _, imp := range []Imputer{&KNN{}, &Boost{}} {
		pred := imp.Impute(m)
		if acc := Accuracy(pred, m.Truth); acc > 0.5 {
			t.Errorf("%s accuracy on independent attribute = %v, suspiciously high", imp.Name(), acc)
		}
	}
}

func TestFDvsNonFDContrast(t *testing.T) {
	// The Table 7 signal: imputation accuracy should be clearly higher for
	// the FD-determined attribute than for the independent one.
	rng := rand.New(rand.NewSource(6))
	rel := fdRelation(rng, 800)
	for _, imp := range []Imputer{&KNN{Seed: 6}, &Boost{Seed: 6}} {
		mFD := MaskRandom(rel, 1, 0.2, 6)
		mNo := MaskRandom(rel, 2, 0.2, 6)
		accFD := Accuracy(imp.Impute(mFD), mFD.Truth)
		accNo := Accuracy(imp.Impute(mNo), mNo.Truth)
		if accFD-accNo < 0.2 {
			t.Errorf("%s: FD %.2f vs non-FD %.2f — contrast too weak", imp.Name(), accFD, accNo)
		}
	}
}

func TestImputersHandleNumericAndMissingFeatures(t *testing.T) {
	rel := dataset.New("t", "x", "y")
	rel.Columns[0] = dataset.NewColumn("x", dataset.Numeric)
	rel.Columns[1] = dataset.NewColumn("y", dataset.Categorical)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		v := rng.Float64() * 10
		label := "low"
		if v > 5 {
			label = "high"
		}
		if rng.Float64() < 0.05 {
			rel.Columns[0].AppendMissing()
		} else {
			rel.Columns[0].AppendValue(strconv.FormatFloat(v, 'f', 3, 64))
		}
		rel.Columns[1].AppendValue(label)
	}
	m := MaskRandom(rel, 1, 0.2, 7)
	for _, imp := range []Imputer{&KNN{}, &Boost{}} {
		pred := imp.Impute(m)
		if acc := Accuracy(pred, m.Truth); acc < 0.75 {
			t.Errorf("%s accuracy with numeric feature = %v", imp.Name(), acc)
		}
	}
}

func TestImputersDegenerate(t *testing.T) {
	rel := relFromCodes([][]int{{0, 1}, {1, 0}}, "a", "b")
	m := MaskRandom(rel, 1, 1.0, 8) // everything masked: no training rows
	for _, imp := range []Imputer{&KNN{}, &Boost{}} {
		pred := imp.Impute(m)
		if len(pred) != len(m.Rows) {
			t.Errorf("%s: prediction length mismatch", imp.Name())
		}
	}
}
