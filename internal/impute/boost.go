package impute

import (
	"math"
	"math/rand"
	"sort"

	"fdx/internal/dataset"
)

// Boost is a gradient-boosted decision-stump imputer: one-vs-rest logistic
// boosting over one-hot encoded features of the non-target attributes, in
// the spirit of the XGBoost baseline of the paper's Table 7.
type Boost struct {
	// Rounds is the number of boosting rounds (default 25).
	Rounds int
	// LearningRate shrinks each stump's contribution (default 0.4).
	LearningRate float64
	// MaxTrain caps training rows (default 2000).
	MaxTrain int
	// MaxClasses caps the number of target classes modelled; remaining
	// classes fall back to the majority prediction (default 24).
	MaxClasses int
	// Seed drives subsampling.
	Seed int64
}

// Name implements Imputer.
func (b *Boost) Name() string { return "boost" }

// stump is one boosted weak learner: a test on a single binary feature
// with additive scores for the two outcomes.
type stump struct {
	feature   int
	hit, miss float64
}

// quantileBins returns ascending bin edges covering the column's values.
func quantileBins(col *dataset.Column, nbins int) []float64 {
	var vals []float64
	for i := 0; i < col.Len(); i++ {
		if v := col.Float(i); !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	edges := make([]float64, 0, nbins-1)
	for b := 1; b < nbins; b++ {
		edges = append(edges, vals[len(vals)*b/nbins])
	}
	return edges
}

// binOf returns the index of the bin containing v.
func binOf(edges []float64, v float64) int {
	for i, e := range edges {
		if v < e {
			return i
		}
	}
	return len(edges)
}

// Impute implements Imputer.
func (b *Boost) Impute(m *Masked) []int32 {
	rounds := b.Rounds
	if rounds == 0 {
		rounds = 25
	}
	lr := b.LearningRate
	//fdx:lint-ignore floatcmp zero LearningRate is the unset sentinel, never a computed float
	if lr == 0 {
		lr = 0.4
	}
	maxTrain := b.MaxTrain
	if maxTrain == 0 {
		maxTrain = 2000
	}
	maxClasses := b.MaxClasses
	if maxClasses == 0 {
		maxClasses = 24
	}

	rel := m.Relation
	target := m.Target
	tcol := rel.Columns[target]
	train := trainRows(m)
	if len(train) > maxTrain {
		rng := rand.New(rand.NewSource(b.Seed))
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		train = train[:maxTrain]
	}
	fallback := majorityCode(tcol, train)
	out := make([]int32, len(m.Rows))
	for i := range out {
		out[i] = fallback
	}
	if len(train) == 0 {
		return out
	}

	// Feature space: one feature per (attribute, code) pair over attributes
	// with modest cardinality. featureOf(row) lists active feature ids.
	type featKey struct {
		attr int
		code int32
	}
	featID := map[featKey]int{}
	var featList []featKey
	// Numeric columns are quantile-binned so stumps generalize across
	// nearby values; categorical columns contribute one-hot features.
	bins := map[int][]float64{}
	for j, col := range rel.Columns {
		if j != target && col.Type == dataset.Numeric {
			bins[j] = quantileBins(col, 8)
		}
	}
	activeFeatures := func(row int) []int {
		var fs []int
		for j, col := range rel.Columns {
			if j == target {
				continue
			}
			code := col.Code(row)
			if code == dataset.Missing {
				continue
			}
			var k featKey
			if edges, numeric := bins[j]; numeric && !math.IsNaN(col.Float(row)) {
				k = featKey{attr: j, code: int32(binOf(edges, col.Float(row)))}
			} else if col.Cardinality() <= 256 {
				k = featKey{attr: j, code: code}
			} else {
				continue
			}
			id, ok := featID[k]
			if !ok {
				id = len(featList)
				featID[k] = id
				featList = append(featList, k)
			}
			fs = append(fs, id)
		}
		return fs
	}

	// Pre-compute features per training row (also interns all feature ids).
	trainFeats := make([][]int, len(train))
	for i, r := range train {
		trainFeats[i] = activeFeatures(r)
	}
	nf := len(featList)
	if nf == 0 {
		return out
	}

	// Classes: most frequent first, capped.
	classCount := map[int32]int{}
	for _, r := range train {
		classCount[tcol.Code(r)]++
	}
	type cc struct {
		code int32
		n    int
	}
	var classes []cc
	for code, n := range classCount {
		classes = append(classes, cc{code, n})
	}
	// Sort by frequency descending (stable by code).
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].n != classes[j].n {
			return classes[i].n > classes[j].n
		}
		return classes[i].code < classes[j].code
	})
	if len(classes) > maxClasses {
		classes = classes[:maxClasses]
	}

	n := len(train)
	models := make([][]stump, len(classes))
	// Per-class one-vs-rest logistic boosting.
	for ci, cl := range classes {
		y := make([]float64, n) // ±1 targets as 0/1
		for i, r := range train {
			if tcol.Code(r) == cl.code {
				y[i] = 1
			}
		}
		score := make([]float64, n)
		var stumps []stump
		// Per-feature accumulators reused across rounds.
		sumR := make([]float64, nf)
		cnt := make([]float64, nf)
		for round := 0; round < rounds; round++ {
			// Pseudo-residuals of logistic loss: r_i = y_i − p_i.
			var total float64
			for i := range sumR {
				sumR[i], cnt[i] = 0, 0
			}
			resid := make([]float64, n)
			for i := range resid {
				p := 1 / (1 + math.Exp(-score[i]))
				resid[i] = y[i] - p
				total += resid[i]
			}
			for i, fs := range trainFeats {
				for _, f := range fs {
					sumR[f] += resid[i]
					cnt[f]++
				}
			}
			// Choose the stump minimizing squared error ⇔ maximizing
			// variance explained between hit/miss groups.
			bestF, bestGain := -1, 0.0
			for f := 0; f < nf; f++ {
				//fdx:lint-ignore floatcmp cnt holds integer counts in float64; the degenerate-split boundary test is exact
				if cnt[f] == 0 || cnt[f] == float64(n) {
					continue
				}
				hitMean := sumR[f] / cnt[f]
				missMean := (total - sumR[f]) / (float64(n) - cnt[f])
				gain := cnt[f]*hitMean*hitMean + (float64(n)-cnt[f])*missMean*missMean
				if gain > bestGain {
					bestGain, bestF = gain, f
				}
			}
			if bestF < 0 || bestGain < 1e-9 {
				break
			}
			hit := lr * sumR[bestF] / cnt[bestF]
			miss := lr * (total - sumR[bestF]) / (float64(n) - cnt[bestF])
			stumps = append(stumps, stump{feature: bestF, hit: hit, miss: miss})
			for i, fs := range trainFeats {
				applied := miss
				for _, f := range fs {
					if f == bestF {
						applied = hit
						break
					}
				}
				score[i] += applied
			}
		}
		models[ci] = stumps
	}

	// Predict masked rows: argmax class score.
	for qi, q := range m.Rows {
		fs := activeFeatures(q)
		fset := map[int]bool{}
		for _, f := range fs {
			fset[f] = true
		}
		bestScore := math.Inf(-1)
		best := fallback
		for ci, cl := range classes {
			s := 0.0
			for _, st := range models[ci] {
				if fset[st.feature] {
					s += st.hit
				} else {
					s += st.miss
				}
			}
			if s > bestScore {
				bestScore, best = s, cl.code
			}
		}
		out[qi] = best
	}
	return out
}
